"""Fig. 5: average running time per subtensor.

Reports the ART of every algorithm per (dataset, setting) from the
shared grid run, plus the paper's headline ratio (SOFIA's speed-up over
the second-most accurate method).  The parametrized benchmarks time one
streaming step of each algorithm on the same warmed-up Chicago stream,
which is the honest pytest-benchmark analogue of Fig. 5.
"""

import numpy as np
import pytest
from conftest import report

from repro.baselines import Mast, Olstec, OnlineSGD, OrMstc, SofiaImputer
from repro.experiments import SMALL_SCALE, dataset_stream, format_table
from repro.experiments.imputation import sofia_config_for_rank
from repro.streams import CorruptionSpec, TensorStream, corrupt

_ALGOS = {
    "SOFIA": lambda rank, period: SofiaImputer(
        sofia_config_for_rank(rank, period)
    ),
    "OnlineSGD": lambda rank, period: OnlineSGD(rank, seed=0),
    "OLSTEC": lambda rank, period: Olstec(rank, seed=0),
    "MAST": lambda rank, period: Mast(rank, seed=0),
    "OR-MSTC": lambda rank, period: OrMstc(rank, seed=0),
}


def test_bench_fig5_art_report(benchmark, imputation_grid):
    grid = imputation_grid
    datasets = sorted({c.dataset for c in grid.cells})
    algorithms = sorted({c.algorithm for c in grid.cells})

    def aggregate():
        rows = []
        ratios = []
        for dataset in datasets:
            for setting in SMALL_SCALE.settings:
                cells = {
                    c.algorithm: c
                    for c in grid.cells
                    if c.dataset == dataset and c.setting == setting
                }
                row = [dataset, setting.label] + [
                    cells[a].art_seconds * 1e3 for a in algorithms
                ]
                second_most_accurate = min(
                    (c for name, c in cells.items() if name != "SOFIA"),
                    key=lambda c: c.rae,
                )
                ratio = second_most_accurate.art_seconds / max(
                    cells["SOFIA"].art_seconds, 1e-12
                )
                ratios.append(ratio)
                row.append(f"{ratio:.1f}x")
                rows.append(row)
        return rows, ratios

    rows, ratios = benchmark(aggregate)
    report(
        format_table(
            ["Dataset", "Setting"]
            + [f"{a} (ms)" for a in algorithms]
            + ["speedup vs 2nd-acc"],
            rows,
            title="Fig. 5: average running time per subtensor, small preset",
        )
    )
    report(
        f"SOFIA speed-up over the second-most accurate: up to "
        f"{max(ratios):.0f}x (paper reports up to 935x on MATLAB/larger data)"
    )
    # Shape assertion: SOFIA is at least as fast as the second-most
    # accurate competitor in most cells.
    assert np.median(ratios) >= 1.0


@pytest.mark.parametrize("name", list(_ALGOS))
def test_bench_fig5_step(benchmark, name):
    ds = dataset_stream("chicago_taxi", SMALL_SCALE)
    corrupted = corrupt(ds.data, CorruptionSpec(50, 20, 4), seed=0)
    observed = TensorStream(
        data=corrupted.observed, mask=corrupted.mask, period=ds.period
    )
    algo = _ALGOS[name](SMALL_SCALE.ranks["chicago_taxi"], ds.period)
    algo.initialize(*observed.startup(3 * ds.period))
    y = observed.subtensor(3 * ds.period)
    mask = observed.mask_at(3 * ds.period)
    out = benchmark(lambda: algo.step(y, mask))
    assert out.shape == observed.subtensor_shape
