"""SOFIA: robust factorization of real-world tensor streams (ICDE 2021).

A from-scratch Python reproduction of Lee & Shin, *Robust Factorization of
Real-world Tensor Streams with Patterns, Missing Values, and Outliers*
(ICDE 2021), including the SOFIA algorithm, all seven compared baselines,
the corruption/evaluation harness, and synthetic stand-ins for the paper's
four real-world datasets.

Public entry points::

    from repro import Sofia, SofiaConfig
    from repro.datasets import load_dataset
    from repro.streams import CorruptionSpec, corrupt_stream, StreamRunner
"""

from repro._version import __version__
from repro.exceptions import (
    CheckpointError,
    ConfigError,
    ConvergenceError,
    DatasetError,
    NotFittedError,
    ReproError,
    SessionError,
    SessionExistsError,
    SessionNotFoundError,
    ShapeError,
)

__all__ = [
    "CheckpointError",
    "ConfigError",
    "ConvergenceError",
    "DatasetError",
    "NotFittedError",
    "ReproError",
    "SessionError",
    "SessionExistsError",
    "SessionNotFoundError",
    "ShapeError",
    "Sofia",
    "SofiaConfig",
    "__version__",
]


def __getattr__(name):
    # Lazy imports keep `import repro` cheap and avoid import cycles while
    # the subpackages are being assembled.
    if name in ("Sofia", "SofiaConfig"):
        from repro.core import Sofia, SofiaConfig

        return {"Sofia": Sofia, "SofiaConfig": SofiaConfig}[name]
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
