"""Validate a Prometheus text-exposition dump.

The observability CI gate scrapes ``/v1/metrics?format=prometheus``
from a replayed gateway (or router fleet) and runs this checker over
the dump: a malformed exposition fails silently at scrape time in a
real deployment, so the gate treats parse problems as build failures.

Checks, per the text exposition format (version 0.0.4):

* every sample line parses as ``name[{labels}] value``, with a metric
  name matching ``[a-zA-Z_:][a-zA-Z0-9_:]*`` and a float-parseable
  value;
* every sample is preceded by a ``# TYPE`` line for its family
  (histogram/summary samples belong to the family's base name);
* counter samples are named ``*_total`` and are non-negative;
* histogram families are internally consistent: ``_bucket`` lines
  carry ``le`` labels in strictly increasing order, cumulative counts
  are non-decreasing, the ``+Inf`` bucket is present and equals
  ``_count``, and ``_sum`` exists.

Exit status is non-zero if anything fails.  Run::

    python tools/check_prom.py prom.txt

The ``parse_exposition`` / ``check_exposition`` functions are
importable — the observability test-suite runs them over freshly
rendered snapshots.
"""

from __future__ import annotations

import argparse
import math
import pathlib
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')

#: Suffixes that attach a sample to its family's base name.
FAMILY_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_exposition(text: str) -> tuple[dict, list[str]]:
    """Parse exposition text into families; returns (families, problems).

    ``families`` maps family base name to ``{"type": str, "samples":
    [(name, labels_dict, value), ...]}``.  Problems are human-readable
    parse failures; a failed line is skipped but parsing continues so
    one bad line reports every problem it causes, not just the first.
    """
    families: dict[str, dict] = {}
    problems: list[str] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE"):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                problems.append(f"line {lineno}: malformed TYPE: {raw!r}")
                continue
            name = parts[2]
            if not NAME_RE.match(name):
                problems.append(
                    f"line {lineno}: bad metric name {name!r}"
                )
                continue
            if name in families:
                problems.append(
                    f"line {lineno}: duplicate TYPE for {name}"
                )
                continue
            families[name] = {"type": parts[3], "samples": []}
            continue
        if line.startswith("#"):
            continue  # HELP or comment
        match = SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: unparseable sample: {raw!r}")
            continue
        name = match.group("name")
        labels: dict[str, str] = {}
        bad_label = False
        if match.group("labels"):
            for pair in match.group("labels").split(","):
                label = LABEL_RE.match(pair.strip())
                if not label:
                    problems.append(
                        f"line {lineno}: bad label {pair!r} in {raw!r}"
                    )
                    bad_label = True
                    break
                labels[label.group("key")] = label.group("value")
        if bad_label:
            continue
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            problems.append(
                f"line {lineno}: unparseable value in {raw!r}"
            )
            continue
        family = name
        for suffix in FAMILY_SUFFIXES:
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
                break
        if family not in families:
            problems.append(
                f"line {lineno}: sample {name} has no preceding TYPE"
            )
            continue
        families[family]["samples"].append((name, labels, value))
    return families, problems


def _check_histogram(name: str, family: dict) -> list[str]:
    problems: list[str] = []
    buckets: list[tuple[float, float]] = []
    total_sum = None
    total_count = None
    for sample, labels, value in family["samples"]:
        if sample == f"{name}_bucket":
            if "le" not in labels:
                problems.append(f"{name}: bucket sample without le label")
                continue
            try:
                bound = _parse_value(labels["le"])
            except ValueError:
                problems.append(
                    f"{name}: unparseable le {labels['le']!r}"
                )
                continue
            buckets.append((bound, value))
        elif sample == f"{name}_sum":
            total_sum = value
        elif sample == f"{name}_count":
            total_count = value
    if not buckets:
        problems.append(f"{name}: histogram has no _bucket samples")
        return problems
    bounds = [bound for bound, _ in buckets]
    if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
        problems.append(f"{name}: le bounds not strictly increasing")
    counts = [count for _, count in buckets]
    if any(a > b for a, b in zip(counts, counts[1:])):
        problems.append(f"{name}: bucket counts not cumulative")
    if bounds[-1] != math.inf:
        problems.append(f"{name}: missing le=\"+Inf\" bucket")
    if total_count is None:
        problems.append(f"{name}: missing _count")
    elif bounds[-1] == math.inf and counts[-1] != total_count:
        problems.append(
            f"{name}: +Inf bucket {counts[-1]} != _count {total_count}"
        )
    if total_sum is None:
        problems.append(f"{name}: missing _sum")
    return problems


def check_exposition(text: str) -> list[str]:
    """Every problem with one exposition dump (empty list: valid)."""
    families, problems = parse_exposition(text)
    if not families:
        problems.append("no metric families found")
    for name, family in families.items():
        kind = family["type"]
        if kind == "histogram":
            problems.extend(_check_histogram(name, family))
            continue
        if not family["samples"]:
            problems.append(f"{name}: TYPE with no samples")
        if kind == "counter":
            for sample, _labels, value in family["samples"]:
                if not sample.endswith("_total"):
                    problems.append(
                        f"{name}: counter sample {sample} not *_total"
                    )
                if value < 0 or value != value:
                    problems.append(
                        f"{name}: counter value {value} negative or NaN"
                    )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate a Prometheus text-exposition dump."
    )
    parser.add_argument("path", type=pathlib.Path)
    args = parser.parse_args(argv)
    text = args.path.read_text(encoding="utf-8")
    problems = check_exposition(text)
    for problem in problems:
        print(f"check_prom: {problem}", file=sys.stderr)
    if problems:
        print(
            f"check_prom: {len(problems)} problem(s) in {args.path}",
            file=sys.stderr,
        )
        return 1
    families, _ = parse_exposition(text)
    print(
        f"check_prom: OK ({len(families)} families in {args.path})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
