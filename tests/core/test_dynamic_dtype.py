"""Float32 end-to-end SOFIA: the dtype policy through the whole stack.

``SofiaConfig(dtype="float32")`` must keep the dynamic phase in float32
(state, kernel calls, per-step outputs) *and* stay numerically faithful:
on the Fig. 7-style fully observed stream the float32 per-step NRE must
match the float64 run within 1e-3 — the acceptance bound of the dtype
refactor.  A kernel that silently upcasts (the pre-refactor behavior)
fails the dtype assertions; a kernel that loses precision (e.g. a
float16 sneaking in, or a wrongly scaled ridge) fails the NRE bound.
"""

import numpy as np
import pytest

from repro.core import Sofia, SofiaConfig
from repro.datasets import scalability_stream
from repro.exceptions import ConfigError
from repro.streams.metrics import normalized_residual_error

PERIOD = 7
STARTUP = 3 * PERIOD
N_STEPS = 90


def _fig7_stream(seed=0):
    return scalability_stream(12, 10, N_STEPS, period=PERIOD, rank=3, seed=seed)


def _run(dtype, batch_size=1, seed=0):
    stream = _fig7_stream(seed)
    config = SofiaConfig(
        rank=3,
        period=PERIOD,
        lambda1=0.1,
        lambda2=0.1,
        max_outer_iters=50,
        dtype=dtype,
        batch_size=batch_size,
    )
    model = Sofia(config)
    model.initialize([stream.data[..., t] for t in range(STARTUP)])
    steps = model.run(
        (stream.data[..., t], None) for t in range(STARTUP, N_STEPS)
    )
    nre = np.array(
        [
            normalized_residual_error(
                step.completed, stream.data[..., STARTUP + i]
            )
            for i, step in enumerate(steps)
        ]
    )
    return model, steps, nre


class TestFloat32EndToEnd:
    def test_config_rejects_unknown_dtype(self):
        with pytest.raises(ConfigError, match="dtype"):
            SofiaConfig(rank=2, period=4, dtype="float16")

    def test_state_and_outputs_stay_float32(self):
        model, steps, _ = _run("float32")
        state = model.state
        assert state.dtype == np.float32
        assert all(f.dtype == np.float32 for f in state.non_temporal)
        assert state.temporal_buffer.dtype == np.float32
        assert state.sigma.dtype == np.float32
        last = steps[-1]
        assert last.completed.dtype == np.float32
        assert last.prediction.dtype == np.float32
        assert last.outliers.dtype == np.float32
        assert model.forecast(3).dtype == np.float32

    def test_float64_default_unchanged(self):
        model, steps, _ = _run("float64")
        assert model.state.dtype == np.float64
        assert steps[-1].completed.dtype == np.float64

    @pytest.mark.parametrize("batch_size", [1, 4])
    def test_float32_nre_matches_float64_within_1e3(self, batch_size):
        _, _, nre64 = _run("float64", batch_size=batch_size)
        _, _, nre32 = _run("float32", batch_size=batch_size)
        assert nre64.shape == nre32.shape
        assert np.abs(nre32 - nre64).max() < 1e-3
        # And the run is actually good, not just consistently bad.
        assert nre32.mean() < 0.25

    def test_sparse_batch_path_stays_float32(self):
        # A sparsely observed mini-batch engages robust_step_batch_at
        # (log-bincount scale products), whose float64 accumulation
        # must not leak into the model state.
        rng = np.random.default_rng(5)
        stream = _fig7_stream()
        mask = rng.random(stream.data.shape) < 0.03
        config = SofiaConfig(
            rank=3,
            period=PERIOD,
            max_outer_iters=30,
            dtype="float32",
            batch_size=4,
            density_threshold=1.0,
        )
        model = Sofia(config)
        model.initialize([stream.data[..., t] for t in range(STARTUP)])
        model.run(
            (
                np.where(mask[..., t], stream.data[..., t], 0.0),
                mask[..., t],
            )
            for t in range(STARTUP, STARTUP + 12)
        )
        state = model.state
        assert state.sigma.dtype == np.float32
        assert all(f.dtype == np.float32 for f in state.non_temporal)

    def test_float32_forecast_tracks_float64(self):
        model64, _, _ = _run("float64")
        model32, _, _ = _run("float32")
        f64 = model64.forecast(PERIOD)
        f32 = model32.forecast(PERIOD)
        scale = np.abs(f64).max() + 1e-12
        assert np.abs(f32 - f64).max() / scale < 1e-3
