"""Unit tests for SOFIA_ALS (paper Alg. 2, Thm. 1-2)."""

import numpy as np
import pytest

from repro.core import SofiaConfig, batch_cost, sofia_als
from repro.core.als import accumulate_normal_equations
from repro.exceptions import ShapeError
from repro.tensor import (
    kruskal_to_tensor,
    masked_relative_error,
    random_factors,
    relative_error,
)

from tests.core.conftest import make_seasonal_stream


@pytest.fixture
def low_rank_case():
    true = random_factors((8, 7, 24), 2, seed=1)
    tensor = kruskal_to_tensor(true)
    rng = np.random.default_rng(2)
    mask = rng.random(tensor.shape) > 0.3
    return tensor, mask, true


def default_config(**kwargs):
    base = dict(
        rank=2, period=6, lambda1=0.0, lambda2=0.0,
        max_als_iters=200, tol=1e-8,
    )
    base.update(kwargs)
    return SofiaConfig(**base)


class TestNormalEquations:
    def test_full_mask_matches_dense_formula(self):
        # With all entries observed, B_i = KR(others)^T KR(others) for all
        # rows and c_i = row of unfold(Y) @ KR(others).
        factors = random_factors((4, 5, 6), 3, seed=3)
        tensor = kruskal_to_tensor(factors)
        mask = np.ones(tensor.shape, dtype=bool)
        coords = np.nonzero(mask)
        values = tensor[coords]
        from repro.tensor import khatri_rao, unfold

        for mode in range(3):
            big_b, big_c = accumulate_normal_equations(
                coords, values, factors, mode
            )
            others = [factors[l] for l in range(3) if l != mode]
            kr = khatri_rao(others)
            gram = kr.T @ kr
            for i in range(factors[mode].shape[0]):
                np.testing.assert_allclose(big_b[i], gram, atol=1e-9)
            np.testing.assert_allclose(
                big_c, unfold(tensor, mode) @ kr, atol=1e-9
            )

    def test_masked_counts_only_observed(self):
        factors = random_factors((3, 3, 3), 2, seed=4)
        tensor = kruskal_to_tensor(factors)
        mask = np.zeros(tensor.shape, dtype=bool)
        mask[0, 1, 2] = True
        coords = np.nonzero(mask)
        values = tensor[coords]
        big_b, big_c = accumulate_normal_equations(coords, values, factors, 0)
        # only row 0 of mode 0 gets contributions
        assert big_b[0].any()
        assert not big_b[1].any()
        assert not big_b[2].any()
        prod = factors[1][1] * factors[2][2]
        np.testing.assert_allclose(big_b[0], np.outer(prod, prod))
        np.testing.assert_allclose(big_c[0], values[0] * prod)


class TestRecovery:
    def test_full_observation(self, low_rank_case):
        tensor, _, _ = low_rank_case
        mask = np.ones(tensor.shape, dtype=bool)
        init = random_factors(tensor.shape, 2, seed=11)
        result = sofia_als(
            tensor, mask, np.zeros_like(tensor), init, default_config()
        )
        assert relative_error(result.completed, tensor) < 1e-3

    def test_missing_30pct(self, low_rank_case):
        tensor, mask, _ = low_rank_case
        init = random_factors(tensor.shape, 2, seed=12)
        result = sofia_als(
            tensor, mask, np.zeros_like(tensor), init, default_config()
        )
        assert relative_error(result.completed, tensor) < 1e-2

    def test_outlier_corrected_input(self, low_rank_case):
        # Feeding the exact outlier tensor must recover as if clean.
        tensor, mask, _ = low_rank_case
        rng = np.random.default_rng(13)
        outliers = np.where(
            rng.random(tensor.shape) < 0.1, 50.0, 0.0
        )
        corrupted = tensor + outliers
        init = random_factors(tensor.shape, 2, seed=12)
        result = sofia_als(corrupted, mask, outliers, init, default_config())
        assert relative_error(result.completed, tensor) < 1e-2

    def test_smooth_recovers_seasonal_under_missing(self):
        tensor, temporal, _ = make_seasonal_stream(
            dims=(10, 8), rank=2, period=8, n_steps=32, seed=5
        )
        rng = np.random.default_rng(6)
        mask = rng.random(tensor.shape) > 0.5
        init = random_factors(tensor.shape, 2, seed=14, scale=0.1)
        cfg = SofiaConfig(
            rank=2, period=8, lambda1=0.1, lambda2=0.1,
            max_als_iters=300, tol=1e-10,
        )
        result = sofia_als(tensor, mask, np.zeros_like(tensor), init, cfg)
        assert relative_error(result.completed, tensor) < 0.1


class TestInvariants:
    def test_non_temporal_columns_unit_norm(self, low_rank_case):
        tensor, mask, _ = low_rank_case
        init = random_factors(tensor.shape, 2, seed=15)
        result = sofia_als(
            tensor, mask, np.zeros_like(tensor), init, default_config()
        )
        for factor in result.factors[:-1]:
            np.testing.assert_allclose(
                np.linalg.norm(factor, axis=0), 1.0, atol=1e-9
            )

    def test_decreases_batch_cost(self, low_rank_case):
        tensor, mask, _ = low_rank_case
        cfg = default_config(lambda1=0.01, lambda2=0.01, max_als_iters=20)
        init = random_factors(tensor.shape, 2, seed=16)
        outliers = np.zeros_like(tensor)
        before = batch_cost(tensor, mask, init, outliers, cfg)
        result = sofia_als(tensor, mask, outliers, init, cfg)
        after = batch_cost(tensor, mask, result.factors, outliers, cfg)
        assert after < before

    def test_does_not_mutate_input_factors(self, low_rank_case):
        tensor, mask, _ = low_rank_case
        init = random_factors(tensor.shape, 2, seed=17)
        snapshots = [f.copy() for f in init]
        sofia_als(tensor, mask, np.zeros_like(tensor), init,
                  default_config(max_als_iters=3))
        for before, after in zip(snapshots, init):
            np.testing.assert_array_equal(before, after)

    def test_fitness_reported(self, low_rank_case):
        tensor, mask, _ = low_rank_case
        init = random_factors(tensor.shape, 2, seed=18)
        result = sofia_als(
            tensor, mask, np.zeros_like(tensor), init, default_config()
        )
        expected = 1.0 - masked_relative_error(result.completed, tensor, mask)
        assert result.fitness == pytest.approx(expected, abs=1e-9)

    def test_smoothness_reduces_temporal_roughness(self):
        tensor, _, _ = make_seasonal_stream(
            dims=(8, 6), rank=2, period=6, n_steps=24, seed=7
        )
        noisy = tensor + np.random.default_rng(8).normal(0, 0.3, tensor.shape)
        mask = np.ones(tensor.shape, dtype=bool)
        init = random_factors(tensor.shape, 2, seed=19, scale=0.1)
        from repro.core import smoothness_penalty

        cfg_smooth = SofiaConfig(
            rank=2, period=6, lambda1=5.0, lambda2=5.0,
            max_als_iters=100, tol=1e-9,
        )
        rough = sofia_als(
            noisy, mask, np.zeros_like(noisy), init, cfg_smooth, smooth=False
        )
        smooth = sofia_als(
            noisy, mask, np.zeros_like(noisy), init, cfg_smooth, smooth=True
        )

        def roughness(factors):
            u = factors[-1]
            return smoothness_penalty(u, 1) / max(np.sum(u * u), 1e-12)

        assert roughness(smooth.factors) < roughness(rough.factors)


class TestValidation:
    def test_shape_mismatch_factors(self, low_rank_case):
        tensor, mask, _ = low_rank_case
        bad = random_factors((8, 7, 23), 2, seed=20)
        with pytest.raises(ShapeError):
            sofia_als(tensor, mask, np.zeros_like(tensor), bad, default_config())

    def test_1d_tensor_rejected(self):
        with pytest.raises(ShapeError):
            sofia_als(
                np.ones(5),
                np.ones(5, dtype=bool),
                np.zeros(5),
                [np.ones((5, 2))],
                default_config(),
            )

    def test_empty_mask_no_crash(self, low_rank_case):
        # Nothing observed: factors cannot move; should not raise.
        tensor, _, _ = low_rank_case
        mask = np.zeros(tensor.shape, dtype=bool)
        init = random_factors(tensor.shape, 2, seed=21)
        result = sofia_als(
            tensor, mask, np.zeros_like(tensor), init,
            default_config(max_als_iters=2),
        )
        assert result.completed.shape == tensor.shape
