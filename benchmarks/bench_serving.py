"""Serving-throughput benchmark: micro-batching vs per-step flushing.

Measures sustained ingestion throughput (slices/sec) of the
multi-tenant serving runtime at fleet sizes N ∈ {1, 8, 64}.  For each
N the identical workload — S slices per session, submitted round-robin
across the fleet — runs twice through the same scheduler/worker
machinery:

* ``per_step``: ``max_batch=1`` — every slice is flushed through its
  own ``Sofia.step`` dispatch (the naive serving loop);
* ``batched``: ``max_batch=16`` — the micro-batching scheduler fuses
  buffered slices into ``Sofia.step_batch`` calls, amortizing the
  per-step kernel dispatch over the batch (PR 2's B-sweep is where the
  ratio comes from).

All sessions warm-start from one pre-fitted checkpoint, so the timed
region contains only the dynamic phase.  The latency deadline is
pushed out of reach: flushes are size-triggered, making the batch
boundaries (and thus the report) deterministic.  Reported per case
``serving_sessions_<N>``:

* ``per_step_seconds`` / ``batched_seconds`` — wall-clock for the
  whole workload (gated by ``check_regression.py``);
* ``speedup`` — per_step over batched (gated machine-independently);
* ``per_step_slices_per_sec`` / ``batched_slices_per_sec`` —
  the headline throughput numbers (informational).

A final ``eviction_capped_64`` case re-runs the batched N=64 workload
with ``max_resident=8``, reporting the capped throughput and the
eviction/rehydration counts (informational — checkpoint I/O is too
disk-dependent to gate).

Executor-seam matrix
--------------------
The largest fleet additionally runs through the worker-pool matrix:
worker count × worker kind (``thread``/``process``) × cross-session
fusion on/off, reporting slices/sec and the fused-dispatch share per
cell (``pool_<kind>_w<N>_<fused|unfused>`` cases, informational).  One
gated case, ``process_vs_thread_64``, pins the tentpole claim: at 64
sessions the process pool's wall-clock (``process_seconds``) and its
advantage over the thread pool (``speedup``) must not regress.  The
committed baseline comes from whatever machine last refreshed it — on
a multi-core runner the GIL-free pool pulls ahead and the gate only
tightens in the passing direction (faster-than-baseline always
passes).

Run::

    python benchmarks/bench_serving.py --quick --json BENCH_serving.json
"""

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import Sofia, SofiaConfig
from repro.core.serialization import save_sofia
from repro.datasets import seasonal_stream
from repro.serving import SessionManager

DIMS = (40, 30)
RANK = 5
PERIOD = 12
MAX_BATCH = 16


def make_checkpoint(directory: Path) -> tuple[Path, SofiaConfig]:
    """Fit one model on a startup window and checkpoint it."""
    config = SofiaConfig(
        rank=RANK,
        period=PERIOD,
        init_seasons=2,
        lambda1=0.1,
        lambda2=0.1,
        max_outer_iters=50,
        tol=1e-5,
    )
    stream = seasonal_stream(
        dims=DIMS,
        rank=RANK,
        period=PERIOD,
        n_steps=config.init_steps,
        seed=5,
    )
    sofia = Sofia(config)
    sofia.initialize(
        [stream.data[..., t] for t in range(config.init_steps)]
    )
    path = directory / "serving-baseline.npz"
    save_sofia(sofia, path)
    return path, config


def make_workload(n_slices: int, seed: int) -> np.ndarray:
    """(n_slices, *DIMS) of fresh post-startup slices."""
    stream = seasonal_stream(
        dims=DIMS, rank=RANK, period=PERIOD, n_steps=n_slices, seed=seed
    )
    return np.moveaxis(stream.data, -1, 0).copy()


def run_fleet(
    checkpoint: Path,
    n_sessions: int,
    slices: np.ndarray,
    *,
    max_batch: int,
    workers: int,
    worker_kind: str = "thread",
    fuse_sessions: bool = True,
    max_resident: int | None = None,
) -> tuple[float, dict]:
    """Time one full workload; returns (seconds, metrics snapshot)."""
    with SessionManager(
        max_resident=max_resident,
        max_batch=max_batch,
        max_latency_s=3600.0,
        workers=workers,
        worker_kind=worker_kind,
        fuse_sessions=fuse_sessions,
        keep_results=1,
    ) as manager:
        for i in range(n_sessions):
            manager.create_session(f"s{i}", checkpoint=str(checkpoint))
        started = time.perf_counter()
        for t in range(slices.shape[0]):
            for i in range(n_sessions):
                manager.ingest(f"s{i}", slices[t])
        manager.drain()
        elapsed = time.perf_counter() - started
        metrics = manager.metrics.snapshot()
    return elapsed, metrics


def run_serving_report(
    *,
    quick: bool = False,
    workers: int = 2,
    fleet_sizes: tuple[int, ...] = (1, 8, 64),
) -> dict:
    # Sized so even the fastest gated timing (batched, N=1) clears
    # check_regression's 5 ms noise floor with margin.
    slices_per_session = 48 if quick else 128
    results = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-serving-") as tmp:
        checkpoint, _ = make_checkpoint(Path(tmp))
        workload = make_workload(slices_per_session, seed=6)
        for n_sessions in fleet_sizes:
            total_slices = n_sessions * slices_per_session
            per_step_seconds, _ = run_fleet(
                checkpoint,
                n_sessions,
                workload,
                max_batch=1,
                workers=workers,
            )
            batched_seconds, batched_metrics = run_fleet(
                checkpoint,
                n_sessions,
                workload,
                max_batch=MAX_BATCH,
                workers=workers,
            )
            results.append(
                {
                    "case": f"serving_sessions_{n_sessions}",
                    "n_sessions": n_sessions,
                    "slices_per_session": slices_per_session,
                    "per_step_seconds": per_step_seconds,
                    "batched_seconds": batched_seconds,
                    "speedup": per_step_seconds
                    / max(batched_seconds, 1e-12),
                    "per_step_slices_per_sec": total_slices
                    / max(per_step_seconds, 1e-12),
                    "batched_slices_per_sec": total_slices
                    / max(batched_seconds, 1e-12),
                    "mean_batch_size": batched_metrics["mean_batch_size"],
                }
            )
        # Executor-seam matrix at the largest fleet: worker count x
        # worker kind x fusion.  Informational (slices/sec only, no
        # *_seconds keys) except for the one gated comparison below.
        n_matrix = max(fleet_sizes)
        matrix_total = n_matrix * slices_per_session
        matrix_seconds: dict[tuple[str, int, bool], float] = {}
        for worker_kind in ("thread", "process"):
            for n_workers in (1, workers, 2 * workers):
                for fuse in (True, False):
                    if (worker_kind, n_workers, fuse) in matrix_seconds:
                        continue
                    elapsed, metrics = run_fleet(
                        checkpoint,
                        n_matrix,
                        workload,
                        max_batch=MAX_BATCH,
                        workers=n_workers,
                        worker_kind=worker_kind,
                        fuse_sessions=fuse,
                    )
                    matrix_seconds[(worker_kind, n_workers, fuse)] = (
                        elapsed
                    )
                    suffix = "fused" if fuse else "unfused"
                    results.append(
                        {
                            "case": (
                                f"pool_{worker_kind}_w{n_workers}"
                                f"_{suffix}"
                            ),
                            "n_sessions": n_matrix,
                            "worker_kind": worker_kind,
                            "workers": n_workers,
                            "fuse_sessions": fuse,
                            "slices_per_sec": matrix_total
                            / max(elapsed, 1e-12),
                            "mean_fused_sessions": metrics[
                                "mean_fused_sessions"
                            ],
                            "dispatches": metrics["dispatches"],
                        }
                    )
        # The gated tentpole comparison: thread vs process at the
        # configured worker count, fusion on.
        thread_seconds = matrix_seconds[("thread", workers, True)]
        process_seconds = matrix_seconds[("process", workers, True)]
        results.append(
            {
                "case": f"process_vs_thread_{n_matrix}",
                "n_sessions": n_matrix,
                "workers": workers,
                "thread_seconds": thread_seconds,
                "process_seconds": process_seconds,
                "speedup": thread_seconds / max(process_seconds, 1e-12),
                "thread_slices_per_sec": matrix_total
                / max(thread_seconds, 1e-12),
                "process_slices_per_sec": matrix_total
                / max(process_seconds, 1e-12),
            }
        )
        # Eviction-capped run: informational (disk-bound), not gated —
        # no *_seconds / speedup keys on purpose.
        n_capped = max(fleet_sizes)
        capped_elapsed, capped_metrics = run_fleet(
            checkpoint,
            n_capped,
            workload,
            max_batch=MAX_BATCH,
            workers=workers,
            max_resident=8,
        )
        results.append(
            {
                "case": f"eviction_capped_{n_capped}",
                "n_sessions": n_capped,
                "max_resident": 8,
                "capped_slices_per_sec": n_capped
                * slices_per_session
                / max(capped_elapsed, 1e-12),
                "evictions": capped_metrics["evictions"],
                "rehydrations": capped_metrics["rehydrations"],
            }
        )
    return {
        "benchmark": "serving_throughput",
        "dims": list(DIMS),
        "rank": RANK,
        "period": PERIOD,
        "max_batch": MAX_BATCH,
        "workers": workers,
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Serving throughput: micro-batched vs per-step "
        "flushing across fleet sizes."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized workload (48 slices/session instead of 128)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="flush workers (default 2)"
    )
    parser.add_argument(
        "--json",
        default=None,
        help="also write the report to this path",
    )
    args = parser.parse_args(argv)

    payload = run_serving_report(quick=args.quick, workers=args.workers)
    for entry in payload["results"]:
        if "per_step_seconds" in entry:
            print(
                f"{entry['case']}: per-step "
                f"{entry['per_step_slices_per_sec']:.0f} sl/s, batched "
                f"{entry['batched_slices_per_sec']:.0f} sl/s "
                f"({entry['speedup']:.2f}x, mean batch "
                f"{entry['mean_batch_size']:.1f})"
            )
        elif "worker_kind" in entry:
            print(
                f"{entry['case']}: {entry['slices_per_sec']:.0f} sl/s "
                f"({entry['mean_fused_sessions']:.1f} sessions/dispatch)"
            )
        elif "thread_seconds" in entry:
            print(
                f"{entry['case']}: thread "
                f"{entry['thread_slices_per_sec']:.0f} sl/s, process "
                f"{entry['process_slices_per_sec']:.0f} sl/s "
                f"({entry['speedup']:.2f}x)"
            )
        else:
            print(
                f"{entry['case']}: {entry['capped_slices_per_sec']:.0f} "
                f"sl/s with max_resident={entry['max_resident']} "
                f"({entry['evictions']} evictions, "
                f"{entry['rehydrations']} rehydrations)"
            )
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
