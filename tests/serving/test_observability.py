"""Observability: lifecycle tracing, Prometheus, quality telemetry.

Trace propagation is pinned over every transport the runtime has —
in-process client, HTTP gateway, the router hop of a 2-shard cluster,
and the pickled process-pool flush — plus the rendering properties the
scrape gate relies on: bucket lines sum to the histogram count and
fleet-merged percentiles reproduce a single combined histogram's.
"""

import threading

import numpy as np
import pytest

from repro.exceptions import SessionNotFoundError
from repro.serving import (
    TRACE_STAGES,
    HTTPServingClient,
    InProcessServingClient,
    LatencyHistogram,
    ServingMetrics,
    SessionManager,
    SessionQuality,
    SliceSpan,
    TraceBuffer,
    render_prometheus,
    start_local_cluster,
)
from repro.serving.gateway import serve
from repro.serving.shard import aggregate_snapshots
from tests.serving.conftest import CONFIG_KWARGS, make_session_stream
from tools.check_prom import check_exposition

INIT_STEPS = CONFIG_KWARGS["init_seasons"] * CONFIG_KWARGS["period"]


def _span(**overrides) -> SliceSpan:
    base = dict(
        trace_id="t1",
        session_id="s",
        seq=0,
        accepted=1.0,
        enqueued=2.0,
        dispatched=3.0,
        executed=4.0,
        committed=5.0,
    )
    base.update(overrides)
    return SliceSpan(**base)


class TestTraceBuffer:
    def test_rate_zero_never_samples(self):
        tracer = TraceBuffer(sample_rate=0.0)
        assert all(tracer.sample() is None for _ in range(100))

    def test_rate_one_always_samples(self):
        tracer = TraceBuffer(sample_rate=1.0)
        ids = [tracer.sample() for _ in range(50)]
        assert all(ids)
        assert len(set(ids)) == 50

    def test_fractional_rate_samples_proportionally(self):
        tracer = TraceBuffer(sample_rate=0.25)
        hits = sum(tracer.sample() is not None for _ in range(100))
        assert hits == 25  # accumulator sampler is deterministic

    def test_explicit_id_always_wins(self):
        tracer = TraceBuffer(sample_rate=0.0)
        assert tracer.sample("given") == "given"

    def test_capacity_evicts_and_counts_drops(self):
        tracer = TraceBuffer(sample_rate=1.0, capacity=2)
        for seq in range(5):
            tracer.record(_span(seq=seq, trace_id=f"t{seq}"))
        stats = tracer.stats()
        assert stats["recorded"] == 2
        assert stats["dropped"] == 3
        assert [s["seq"] for s in tracer.spans()] == [3, 4]

    def test_span_filters(self):
        tracer = TraceBuffer(sample_rate=1.0)
        tracer.record(_span(session_id="a", trace_id="x"))
        tracer.record(_span(session_id="b", trace_id="y"))
        assert [
            s["trace_id"] for s in tracer.spans(session_id="b")
        ] == ["y"]
        assert [
            s["session_id"] for s in tracer.spans(trace_id="x")
        ] == ["a"]
        assert len(tracer.spans(limit=1)) == 1

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            TraceBuffer(sample_rate=1.5)
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)


class TestSliceSpan:
    def test_monotone_chain(self):
        assert _span().is_monotone()
        assert not _span(dispatched=1.5).is_monotone()

    def test_as_dict_stage_decomposition(self):
        span = _span(execute_seconds=0.4).as_dict()
        assert list(span["stages"]) == list(TRACE_STAGES)
        assert span["queue_seconds"] == pytest.approx(1.0)
        assert span["total_seconds"] == pytest.approx(4.0)
        # (executed - dispatched) - execute_seconds is the IPC share.
        assert span["overhead_seconds"] == pytest.approx(0.6)


class TestSessionQuality:
    def test_snapshot_fields_are_sane(self):
        quality = SessionQuality(window=4)
        quality.observe_batch(
            [(0, 10, 1.0, 100.0, 2), (1, 10, 4.0, 100.0, 0)],
            0.5,
            committed_at=10.0,
        )
        snap = quality.snapshot(now=12.5)
        assert snap["slices_applied"] == 2
        assert snap["window_slices"] == 2
        assert snap["running_nre"] == pytest.approx((5.0 / 200.0) ** 0.5)
        assert 0.0 <= snap["outlier_fraction"] <= 1.0
        assert snap["error_scale"] == 0.5
        assert snap["last_flush_age_seconds"] == pytest.approx(2.5)

    def test_window_is_bounded(self):
        quality = SessionQuality(window=3)
        quality.observe_batch(
            [(seq, 1, 1.0, 1.0, 1) for seq in range(10)],
            None,
            committed_at=1.0,
        )
        snap = quality.snapshot(now=1.0)
        assert snap["window_slices"] == 3
        assert snap["slices_applied"] == 10

    def test_empty_window_has_no_nre(self):
        snap = SessionQuality().snapshot(now=0.0)
        assert snap["running_nre"] is None
        assert snap["outlier_fraction"] == 0.0
        assert snap["last_flush_age_seconds"] is None


class TestPrometheusRender:
    def test_bucket_lines_sum_to_count(self):
        metrics = ServingMetrics()
        rng = np.random.default_rng(7)
        for value in rng.exponential(0.01, size=200):
            metrics.observe_latency("ingest", float(value))
        text = render_prometheus(metrics.snapshot())
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_ingest_latency_seconds_bucket")
        ]
        # Cumulative buckets: the +Inf (last) line carries the count.
        assert lines[-1].startswith(
            'repro_ingest_latency_seconds_bucket{le="+Inf"}'
        )
        assert int(lines[-1].split()[-1]) == 200
        counts = [int(line.split()[-1]) for line in lines]
        assert counts == sorted(counts)
        assert "repro_ingest_latency_seconds_count 200" in text

    def test_render_passes_scrape_checker(self):
        metrics = ServingMetrics()
        metrics.observe_latency("ingest", 0.01)
        metrics.observe_http(200)
        metrics.observe_http(404)
        assert check_exposition(render_prometheus(metrics.snapshot())) == []

    def test_counters_and_gauges_are_typed(self):
        metrics = ServingMetrics()
        metrics.register_gauge("resident_sessions", lambda: 3)
        metrics.observe_http(500)
        text = render_prometheus(metrics.snapshot())
        assert "# TYPE repro_http_requests_total counter" in text
        assert "repro_http_errors_5xx_total 1" in text
        assert "# TYPE repro_resident_sessions gauge" in text
        assert "repro_resident_sessions 3" in text

    def test_summary_fallback_without_buckets(self):
        snapshot = {
            "ingest_latency": {
                "count": 4,
                "mean_seconds": 0.2,
                "p50_seconds": 0.1,
                "p95_seconds": 0.3,
                "p99_seconds": 0.4,
                "max_seconds": 0.4,
            }
        }
        text = render_prometheus(snapshot)
        assert 'quantile="0.95"' in text
        assert check_exposition(text) == []


class TestHistogramMerge:
    def test_merged_percentiles_match_combined_histogram(self):
        rng = np.random.default_rng(3)
        samples_a = rng.exponential(0.005, size=300)
        samples_b = rng.exponential(0.05, size=150)
        shard_a, shard_b, combined = (
            LatencyHistogram(),
            LatencyHistogram(),
            LatencyHistogram(),
        )
        for value in samples_a:
            shard_a.record(float(value))
            combined.record(float(value))
        for value in samples_b:
            shard_b.record(float(value))
            combined.record(float(value))
        merged = aggregate_snapshots(
            {
                "a": {"ingest_latency": shard_a.summary()},
                "b": {"ingest_latency": shard_b.summary()},
            }
        )["ingest_latency"]
        reference = combined.summary()
        for key in ("p50_seconds", "p95_seconds", "p99_seconds"):
            assert merged[key] == reference[key]
        assert merged["count"] == reference["count"]
        assert merged["buckets"]["counts"] == reference["buckets"]["counts"]

    def test_merge_falls_back_without_buckets(self):
        # Old shards (pre-bucket summaries) still merge conservatively.
        summary = {
            "count": 10,
            "mean_seconds": 0.1,
            "p50_seconds": 0.1,
            "p95_seconds": 0.2,
            "p99_seconds": 0.3,
            "max_seconds": 0.3,
        }
        other = dict(summary, p95_seconds=0.5, count=5)
        merged = aggregate_snapshots(
            {
                "a": {"ingest_latency": summary},
                "b": {"ingest_latency": other},
            }
        )["ingest_latency"]
        assert merged["p95_seconds"] == 0.5  # conservative max
        assert merged["count"] == 15
        assert "buckets" not in merged


@pytest.fixture
def traced_manager():
    with SessionManager(
        max_batch=4,
        max_latency_s=0.01,
        workers=2,
        trace_sample_rate=1.0,
    ) as manager:
        yield manager


def _feed_session(client, session_id: str, n_steps: int = 12):
    """Create + fully ingest one session; returns the acks."""
    slices, masks = make_session_stream(seed=11, n_steps=n_steps)
    client.create_session(session_id, dict(CONFIG_KWARGS))
    return [
        client.ingest(session_id, slices[t], masks[t])
        for t in range(n_steps)
    ]


def _assert_complete_chains(spans, acks):
    by_seq = {span["seq"]: span for span in spans}
    for ack in acks:
        span = by_seq[ack.seq]
        assert span["trace_id"] == ack.trace_id
        assert span["error"] is None
        stamps = [span["stages"][stage] for stage in TRACE_STAGES]
        assert all(a <= b for a, b in zip(stamps, stamps[1:]))


class TestInProcessTracing:
    def test_every_ack_gets_a_complete_span(self, traced_manager):
        client = InProcessServingClient(traced_manager)
        acks = _feed_session(client, "traced")
        assert all(ack.trace_id for ack in acks)
        traced_manager.drain("traced")
        spans = client.traces(session_id="traced")["traces"]
        _assert_complete_chains(spans, acks)

    def test_explicit_trace_id_round_trips(self, traced_manager):
        client = InProcessServingClient(traced_manager)
        _feed_session(client, "explicit", n_steps=INIT_STEPS)
        slices, masks = make_session_stream(seed=12, n_steps=1)
        ack = client.ingest(
            "explicit", slices[0], masks[0], trace_id="my-trace"
        )
        assert ack.trace_id == "my-trace"
        traced_manager.drain("explicit")
        spans = client.traces(trace_id="my-trace")["traces"]
        assert [s["seq"] for s in spans] == [ack.seq]

    def test_untraced_manager_allocates_no_spans(self):
        with SessionManager(
            max_batch=4, max_latency_s=0.01, workers=2
        ) as manager:
            client = InProcessServingClient(manager)
            _feed_session(client, "dark", n_steps=INIT_STEPS)
            manager.drain("dark")
            assert client.traces() == {
                "traces": [],
                "tracing": {
                    "sample_rate": 0.0,
                    "capacity": 4096,
                    "recorded": 0,
                    "dropped": 0,
                },
            }

    def test_session_stats(self, traced_manager):
        client = InProcessServingClient(traced_manager)
        _feed_session(client, "stats")
        traced_manager.drain("stats")
        stats = client.session_stats("stats")
        assert stats["slices_applied"] == 12
        assert stats["running_nre"] is not None
        assert stats["running_nre"] >= 0.0
        assert 0.0 <= stats["outlier_fraction"] <= 1.0
        assert stats["error_scale"] > 0.0
        assert stats["last_flush_age_seconds"] >= 0.0
        with pytest.raises(SessionNotFoundError):
            client.session_stats("nope")

    def test_prometheus_metrics_text(self, traced_manager):
        client = InProcessServingClient(traced_manager)
        _feed_session(client, "prom", n_steps=INIT_STEPS)
        traced_manager.drain("prom")
        assert check_exposition(client.prometheus_metrics()) == []


class TestProcessPoolTracing:
    def test_chain_survives_pickle_boundary(self):
        with SessionManager(
            max_batch=4,
            max_latency_s=0.01,
            workers=2,
            worker_kind="process",
            trace_sample_rate=1.0,
        ) as manager:
            client = InProcessServingClient(manager)
            acks = _feed_session(client, "pickled")
            manager.drain("pickled")
            spans = client.traces(session_id="pickled")["traces"]
        _assert_complete_chains(spans, acks)
        # Dynamic-phase flushes crossed the process boundary as
        # checkpoint bytes; their trace ids rode the FlushRequest.
        assert any(s["transport"] == "state" for s in spans)


class TestGatewayObservability:
    @pytest.fixture
    def live(self):
        manager = SessionManager(
            max_batch=4,
            max_latency_s=0.01,
            workers=2,
            trace_sample_rate=1.0,
        )
        server = serve(manager, port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        client = HTTPServingClient(f"http://127.0.0.1:{server.port}")
        try:
            yield client, manager
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            manager.close()

    def test_trace_header_propagates_over_http(self, live):
        client, manager = live
        acks = _feed_session(client, "http-traced")
        assert all(ack.trace_id for ack in acks)
        manager.drain("http-traced")
        spans = client.traces(session_id="http-traced")["traces"]
        _assert_complete_chains(spans, acks)
        ack = client.ingest(
            "http-traced",
            np.zeros((5, 4)),
            np.ones((5, 4), dtype=bool),
            trace_id="curl-abc",
        )
        assert ack.trace_id == "curl-abc"

    def test_stats_endpoint_and_listing(self, live):
        client, manager = live
        _feed_session(client, "http-stats")
        manager.drain("http-stats")
        stats = client.session_stats("http-stats")
        assert stats["slices_applied"] == 12
        assert stats["status"] == "ready"
        with pytest.raises(SessionNotFoundError):
            client.session_stats("missing")
        listing = client._request("GET", "/sessions")
        assert "http-stats" in listing["stats"]

    def test_prometheus_endpoint(self, live):
        client, manager = live
        _feed_session(client, "http-prom", n_steps=INIT_STEPS)
        manager.drain("http-prom")
        text = client.prometheus_metrics()
        assert check_exposition(text) == []
        assert "repro_http_requests_total" in text

    def test_http_counters_track_errors(self, live):
        client, manager = live
        with pytest.raises(SessionNotFoundError):
            client.session_info("ghost")
        snapshot = manager.metrics.snapshot()
        assert snapshot["http_requests"] >= 1
        assert snapshot["http_errors_4xx"] >= 1

    def test_operational_gauges_in_snapshot(self, live):
        client, manager = live
        _feed_session(client, "gauges", n_steps=INIT_STEPS)
        manager.drain("gauges")
        snapshot = client.metrics()
        assert snapshot["resident_sessions"] == 1
        assert snapshot["evicted_sessions"] == 0
        assert snapshot["pending_slices"] == 0


class TestRouterObservability:
    @pytest.fixture
    def cluster(self):
        with start_local_cluster(
            2,
            max_batch=4,
            max_latency_s=0.01,
            workers=2,
            trace_sample_rate=1.0,
        ) as cluster:
            yield cluster

    def test_trace_survives_router_hop(self, cluster):
        client = HTTPServingClient(cluster.url)
        acks = _feed_session(client, "routed")
        assert all(ack.trace_id for ack in acks)
        for manager in cluster.managers:
            manager.drain()
        merged = client.traces(session_id="routed")
        spans = merged["traces"]
        _assert_complete_chains(spans, acks)
        # The merged view names the shard that recorded each span.
        assert all(s["shard"] in cluster.shard_urls for s in spans)

    def test_explicit_id_through_router(self, cluster):
        client = HTTPServingClient(cluster.url)
        _feed_session(client, "hop", n_steps=INIT_STEPS)
        slices, masks = make_session_stream(seed=13, n_steps=1)
        ack = client.ingest(
            "hop", slices[0], masks[0], trace_id="router-hop-1"
        )
        assert ack.trace_id == "router-hop-1"
        for manager in cluster.managers:
            manager.drain()
        spans = client.traces(trace_id="router-hop-1")["traces"]
        assert [s["seq"] for s in spans] == [ack.seq]

    def test_fleet_prometheus_endpoint(self, cluster):
        client = HTTPServingClient(cluster.url)
        _feed_session(client, "fleet-prom", n_steps=INIT_STEPS)
        for manager in cluster.managers:
            manager.drain()
        text = client.prometheus_metrics()
        assert check_exposition(text) == []
        assert "repro_ingest_latency_seconds_bucket" in text
        assert "repro_router_http_requests_total" in text

    def test_merged_session_stats(self, cluster):
        client = HTTPServingClient(cluster.url)
        _feed_session(client, "fleet-stats")
        for manager in cluster.managers:
            manager.drain()
        listing = client._request("GET", "/sessions")
        entry = listing["stats"]["fleet-stats"]
        assert entry["slices_applied"] == 12
        assert entry["shard"] in cluster.shard_urls
