"""Structured tensor products: Khatri-Rao, Hadamard, outer, Kruskal.

The Kruskal operator ``[[U^(1), ..., U^(N)]]`` (paper Eq. 2) reconstructs a
tensor from CP factor matrices; :func:`kruskal_to_tensor` implements it for
arbitrary order together with optional per-component weights, which is how
SOFIA evaluates one-step-ahead subtensor predictions
``[[{U^(n)}; u_hat]]`` (paper Eq. 20).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ShapeError
from repro.tensor.validation import as_float, check_factor_matrices

__all__ = [
    "hadamard_all",
    "khatri_rao",
    "kruskal_to_tensor",
    "normalize_columns",
    "outer",
]


def khatri_rao(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Column-wise Khatri-Rao product of ``matrices`` (paper Eq. 1).

    The product is taken left-to-right, so the row index of the **last**
    matrix varies fastest — matching this package's C-order unfolding.

    Parameters
    ----------
    matrices:
        Two or more matrices sharing a column count ``R``.

    Returns
    -------
    numpy.ndarray
        Matrix of shape ``(prod(rows), R)``.
    """
    mats = check_factor_matrices(matrices)
    if len(mats) == 1:
        return mats[0].copy()
    rank = mats[0].shape[1]
    result = mats[0]
    for mat in mats[1:]:
        # (I, 1, R) * (1, J, R) -> (I, J, R) -> (I*J, R)
        result = (result[:, None, :] * mat[None, :, :]).reshape(-1, rank)
    return result


def hadamard_all(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Element-wise product of a sequence of same-shaped matrices."""
    mats = [np.asarray(m, dtype=np.float64) for m in matrices]
    if not mats:
        raise ShapeError("need at least one matrix")
    result = mats[0].copy()
    for mat in mats[1:]:
        if mat.shape != result.shape:
            raise ShapeError(
                f"Hadamard product requires equal shapes; "
                f"got {result.shape} vs {mat.shape}"
            )
        result *= mat
    return result


def outer(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Outer product of N vectors, yielding a rank-1 N-way tensor."""
    vecs = [np.asarray(v, dtype=np.float64).reshape(-1) for v in vectors]
    if not vecs:
        raise ShapeError("need at least one vector")
    result = vecs[0]
    for v in vecs[1:]:
        result = np.multiply.outer(result, v)
    return result


def kruskal_to_tensor(
    factors: Sequence[np.ndarray],
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Evaluate the Kruskal operator ``[[factors]]`` (paper Eq. 2).

    Parameters
    ----------
    factors:
        CP factor matrices ``U^(n)`` of shapes ``(I_n, R)``.
    weights:
        Optional length-``R`` component weights.  SOFIA reconstructs
        subtensors by passing the current temporal row vector here.

    Returns
    -------
    numpy.ndarray
        Dense tensor of shape ``(I_1, ..., I_N)``.
    """
    mats = check_factor_matrices(factors)
    shape = tuple(m.shape[0] for m in mats)
    lead = mats[0]
    if weights is not None:
        # Follow the factors' dtype so float32 models reconstruct in
        # float32; non-float weights promote to float64 as before.
        w = as_float(weights).reshape(-1)
        if w.shape[0] != lead.shape[1]:
            raise ShapeError(
                f"weights length {w.shape[0]} does not match rank "
                f"{lead.shape[1]}"
            )
        lead = lead * w[None, :]
    if len(mats) == 1:
        return lead.sum(axis=1)
    rest = khatri_rao(mats[1:])
    return (lead @ rest.T).reshape(shape)


def normalize_columns(
    matrix: np.ndarray, *, epsilon: float = 1e-12
) -> tuple[np.ndarray, np.ndarray]:
    """Normalize matrix columns to unit 2-norm.

    Returns the normalized matrix and the vector of original column norms.
    Columns with norms below ``epsilon`` are left untouched (their reported
    norm is 1.0) to avoid dividing by zero; SOFIA's ALS uses this to push
    the scale of non-temporal factors into the temporal factor
    (Algorithm 2, lines 7-9).
    """
    mat = as_float(matrix)
    if mat.ndim != 2:
        raise ShapeError(f"expected a matrix, got ndim={mat.ndim}")
    norms = np.linalg.norm(mat, axis=0)
    safe = np.where(norms > epsilon, norms, 1.0)
    return mat / safe[None, :], safe
