"""Tensor stream abstraction: a sequence of (subtensor, mask) slices.

A :class:`TensorStream` wraps a dense tensor whose **last** mode is time,
plus an observation mask, and exposes the slicing conventions every
experiment needs: the start-up window consumed by initialization and the
live remainder consumed step by step.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ShapeError
from repro.tensor.validation import check_mask

__all__ = ["TensorStream"]


@dataclass(frozen=True)
class TensorStream:
    """A finite tensor stream with time along the last mode.

    Attributes
    ----------
    data:
        Dense array of shape ``(I_1, ..., I_{N-1}, T)``.
    mask:
        Boolean observation indicator of the same shape (True = observed).
    period:
        Seasonal period ``m`` of the temporal mode.
    """

    data: np.ndarray = field(repr=False)
    mask: np.ndarray = field(repr=False)
    period: int

    def __post_init__(self) -> None:
        data = np.asarray(self.data, dtype=np.float64)
        if data.ndim < 2:
            raise ShapeError("a tensor stream needs at least 2 modes")
        mask = check_mask(self.mask, data.shape)
        if self.period < 1:
            raise ShapeError(f"period must be >= 1, got {self.period}")
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "mask", mask)

    @classmethod
    def fully_observed(
        cls, data: np.ndarray, period: int
    ) -> "TensorStream":
        """Wrap a clean tensor with an all-True mask."""
        arr = np.asarray(data, dtype=np.float64)
        return cls(data=arr, mask=np.ones(arr.shape, dtype=bool), period=period)

    @property
    def n_steps(self) -> int:
        """Stream length ``T``."""
        return int(self.data.shape[-1])

    @property
    def subtensor_shape(self) -> tuple[int, ...]:
        """Shape of each incoming slice ``(I_1, ..., I_{N-1})``."""
        return tuple(self.data.shape[:-1])

    @property
    def entries_per_step(self) -> int:
        """Total entries per subtensor (observed or not)."""
        return int(np.prod(self.subtensor_shape))

    def subtensor(self, t: int) -> np.ndarray:
        """The slice ``Y_t`` (0-indexed)."""
        return self.data[..., t]

    def mask_at(self, t: int) -> np.ndarray:
        """The indicator ``Ω_t`` (0-indexed)."""
        return self.mask[..., t]

    def startup(self, n: int) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """First ``n`` (subtensor, mask) pairs for initialization."""
        if not 0 < n <= self.n_steps:
            raise ShapeError(
                f"startup window {n} out of range for stream of length "
                f"{self.n_steps}"
            )
        subtensors = [self.data[..., t] for t in range(n)]
        masks = [self.mask[..., t] for t in range(n)]
        return subtensors, masks

    def iter_from(self, start: int) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(t, Y_t, Ω_t)`` from ``start`` to the end."""
        if not 0 <= start <= self.n_steps:
            raise ShapeError(f"start {start} out of range")
        for t in range(start, self.n_steps):
            yield t, self.data[..., t], self.mask[..., t]

    def slice_steps(self, start: int, stop: int) -> "TensorStream":
        """Sub-stream covering time steps ``[start, stop)``."""
        if not 0 <= start < stop <= self.n_steps:
            raise ShapeError(
                f"invalid step range [{start}, {stop}) for length "
                f"{self.n_steps}"
            )
        return TensorStream(
            data=self.data[..., start:stop],
            mask=self.mask[..., start:stop],
            period=self.period,
        )
