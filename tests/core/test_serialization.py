"""Unit tests for SOFIA model checkpointing."""

import json

import numpy as np
import pytest

from repro.core import Sofia, SofiaConfig
from repro.core import serialization
from repro.core.serialization import (
    dumps_sofia,
    load_sofia,
    loads_sofia,
    save_sofia,
)
from repro.exceptions import CheckpointError, NotFittedError

from tests.core.conftest import corrupt_tensor, make_seasonal_stream


def _rewrite_archive(src, dst, **replacements):
    """Copy an npz archive, overriding the given fields."""
    with np.load(src) as archive:
        arrays = {name: archive[name] for name in archive.files}
    arrays.update(replacements)
    np.savez_compressed(dst, **arrays)


def _config_bytes(payload: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(payload).encode("utf-8"), dtype=np.uint8)


@pytest.fixture(scope="module")
def fitted_sofia():
    tensor, _, _ = make_seasonal_stream(
        dims=(8, 6), rank=2, period=6, n_steps=30, seed=3
    )
    corrupted, mask, _ = corrupt_tensor(tensor, 20, 5, 2)
    config = SofiaConfig(
        rank=2, period=6, lambda1=0.1, lambda2=0.1,
        max_outer_iters=100, tol=1e-6,
    )
    sofia = Sofia(config)
    ti = config.init_steps
    sofia.initialize(
        [corrupted[..., t] for t in range(ti)],
        [mask[..., t] for t in range(ti)],
    )
    for t in range(ti, 24):
        sofia.step(corrupted[..., t], mask[..., t])
    return sofia, tensor, corrupted, mask


class TestRoundtrip:
    def test_state_preserved(self, fitted_sofia, tmp_path):
        sofia, _, _, _ = fitted_sofia
        path = tmp_path / "model.npz"
        save_sofia(sofia, path)
        restored = load_sofia(path)
        assert restored.config == sofia.config
        assert restored.state.t == sofia.state.t
        for a, b in zip(
            restored.state.non_temporal, sofia.state.non_temporal
        ):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(restored.state.sigma, sofia.state.sigma)
        np.testing.assert_array_equal(
            restored.state.temporal_buffer, sofia.state.temporal_buffer
        )
        np.testing.assert_array_equal(
            restored.state.hw.level, sofia.state.hw.level
        )

    def test_restored_model_continues_identically(self, fitted_sofia, tmp_path):
        import copy

        sofia, tensor, corrupted, mask = fitted_sofia
        original = copy.deepcopy(sofia)
        path = tmp_path / "model.npz"
        save_sofia(sofia, path)
        restored = load_sofia(path)
        for t in range(24, 30):
            a = original.step(corrupted[..., t], mask[..., t])
            b = restored.step(corrupted[..., t], mask[..., t])
            np.testing.assert_allclose(a.completed, b.completed)
            np.testing.assert_allclose(a.outliers, b.outliers)

    def test_forecast_identical(self, fitted_sofia, tmp_path):
        sofia, _, _, _ = fitted_sofia
        path = tmp_path / "model.npz"
        save_sofia(sofia, path)
        restored = load_sofia(path)
        np.testing.assert_allclose(restored.forecast(6), sofia.forecast(6))


class TestBytesRoundtrip:
    """dumps/loads: the process worker's handoff medium."""

    def test_bytes_round_trip_bit_identical(self, fitted_sofia):
        sofia, _, _, _ = fitted_sofia
        restored = loads_sofia(dumps_sofia(sofia))
        assert restored.config == sofia.config
        assert restored.state.t == sofia.state.t
        for a, b in zip(
            restored.state.non_temporal, sofia.state.non_temporal
        ):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(
            restored.state.temporal_buffer, sofia.state.temporal_buffer
        )
        np.testing.assert_array_equal(
            restored.state.sigma, sofia.state.sigma
        )

    def test_corrupt_bytes_fail_loudly(self, fitted_sofia):
        sofia, _, _, _ = fitted_sofia
        data = dumps_sofia(sofia)
        with pytest.raises(CheckpointError):
            loads_sofia(data[: len(data) // 2])

    def test_bytes_and_file_are_the_same_format(
        self, fitted_sofia, tmp_path
    ):
        sofia, _, _, _ = fitted_sofia
        path = tmp_path / "as_bytes.npz"
        path.write_bytes(dumps_sofia(sofia))
        restored = load_sofia(path)  # file loader reads the bytes form
        assert restored.config == sofia.config
        assert restored.state.t == sofia.state.t

    def test_steps_continue_identically_after_bytes_trip(
        self, fitted_sofia
    ):
        import copy

        sofia, _, corrupted, mask = fitted_sofia
        original = copy.deepcopy(sofia)
        restored = loads_sofia(dumps_sofia(sofia))
        for t in range(24, 30):
            a = original.step(corrupted[..., t], mask[..., t])
            b = restored.step(corrupted[..., t], mask[..., t])
            np.testing.assert_array_equal(a.completed, b.completed)


class TestConfigSurface:
    def test_post_pr4_fields_round_trip(self, fitted_sofia, tmp_path):
        # The three fields the version-2 bump exists for: they must
        # survive the round-trip explicitly, not by defaulting.
        sofia, _, _, _ = fitted_sofia
        config = sofia.config.with_updates(
            dtype="float32", density_threshold=0.25, batch_size=4
        )
        tweaked = Sofia.from_state(config, sofia.state)
        path = tmp_path / "model.npz"
        save_sofia(tweaked, path)
        restored = load_sofia(path)
        assert restored.config.dtype == "float32"
        assert restored.config.density_threshold == 0.25
        assert restored.config.batch_size == 4
        assert restored.config == config

    def test_archive_config_carries_every_field(self, fitted_sofia, tmp_path):
        import dataclasses

        sofia, _, _, _ = fitted_sofia
        path = tmp_path / "model.npz"
        save_sofia(sofia, path)
        with np.load(path) as archive:
            payload = json.loads(
                bytes(archive["config_json"].tobytes()).decode("utf-8")
            )
        expected = {f.name for f in dataclasses.fields(SofiaConfig)}
        assert set(payload) == expected


class TestErrors:
    def test_unfitted_rejected(self, tmp_path):
        sofia = Sofia(SofiaConfig(rank=2, period=4))
        with pytest.raises(NotFittedError):
            save_sofia(sofia, tmp_path / "x.npz")

    def test_version_mismatch_fails_loudly(self, fitted_sofia, tmp_path):
        sofia, _, _, _ = fitted_sofia
        path = tmp_path / "model.npz"
        save_sofia(sofia, path)
        stale = tmp_path / "stale.npz"
        _rewrite_archive(path, stale, format_version=np.asarray(1))
        with pytest.raises(CheckpointError, match="format version 1"):
            load_sofia(stale)

    def test_missing_config_field_fails_loudly(self, fitted_sofia, tmp_path):
        sofia, _, _, _ = fitted_sofia
        path = tmp_path / "model.npz"
        save_sofia(sofia, path)
        with np.load(path) as archive:
            payload = json.loads(
                bytes(archive["config_json"].tobytes()).decode("utf-8")
            )
        payload.pop("dtype")
        truncated = tmp_path / "truncated.npz"
        _rewrite_archive(path, truncated, config_json=_config_bytes(payload))
        with pytest.raises(CheckpointError, match="missing fields: \\['dtype'\\]"):
            load_sofia(truncated)

    def test_unexpected_config_field_fails_loudly(
        self, fitted_sofia, tmp_path
    ):
        sofia, _, _, _ = fitted_sofia
        path = tmp_path / "model.npz"
        save_sofia(sofia, path)
        with np.load(path) as archive:
            payload = json.loads(
                bytes(archive["config_json"].tobytes()).decode("utf-8")
            )
        payload["from_the_future"] = 1
        widened = tmp_path / "widened.npz"
        _rewrite_archive(path, widened, config_json=_config_bytes(payload))
        with pytest.raises(
            CheckpointError, match="unexpected fields: \\['from_the_future'\\]"
        ):
            load_sofia(widened)

    def test_non_checkpoint_file_fails_loudly(self, tmp_path):
        path = tmp_path / "not-a-checkpoint.npz"
        path.write_bytes(b"definitely not a zip archive")
        with pytest.raises(CheckpointError, match="cannot read"):
            load_sofia(path)

    def test_archive_without_version_field_fails_loudly(self, tmp_path):
        path = tmp_path / "versionless.npz"
        np.savez_compressed(path, some_array=np.zeros(3))
        with pytest.raises(CheckpointError, match="format_version"):
            load_sofia(path)

    def test_format_version_is_2(self):
        assert serialization._FORMAT_VERSION == 2
