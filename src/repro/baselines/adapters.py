"""Adapter exposing SOFIA through the baseline runner interface."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.base import Capabilities, StreamingForecaster
from repro.core import Sofia, SofiaConfig

__all__ = ["SofiaImputer"]


class SofiaImputer(StreamingForecaster):
    """SOFIA wrapped as a :class:`StreamingForecaster` for the runner.

    The wrapped :class:`repro.core.Sofia` instance is exposed as
    :attr:`sofia` for inspection (factors, error scales, outliers).
    """

    name = "SOFIA"
    capabilities = Capabilities(
        name="SOFIA",
        imputation=True,
        forecasting=True,
        robust_missing=True,
        robust_outliers=True,
        online=True,
        seasonality_aware=True,
        trend_aware=True,
    )

    def __init__(self, config: SofiaConfig):
        self.config = config
        self.sofia = Sofia(config)

    def initialize(
        self,
        subtensors: Sequence[np.ndarray],
        masks: Sequence[np.ndarray],
    ) -> None:
        self.sofia.initialize(list(subtensors), list(masks))

    def step(self, subtensor: np.ndarray, mask: np.ndarray) -> np.ndarray:
        return self.sofia.step(subtensor, mask).completed

    def step_batch(
        self,
        subtensors: Sequence[np.ndarray] | np.ndarray,
        masks: Sequence[np.ndarray] | np.ndarray,
    ) -> np.ndarray:
        """Batched fast path: one fused dynamic update per mini-batch."""
        steps = self.sofia.step_batch(subtensors, masks)
        return np.stack([s.completed for s in steps], axis=0)

    def forecast(self, horizon: int) -> np.ndarray:
        return self.sofia.forecast(horizon)
