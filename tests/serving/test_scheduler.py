"""Unit tests for the micro-batching scheduler (no SOFIA involved)."""

import threading
import time

import numpy as np
import pytest

from repro.serving.scheduler import MicroBatchScheduler, PendingSlice


def make_item(seq: int) -> PendingSlice:
    return PendingSlice(
        seq=seq,
        subtensor=np.asarray([seq], dtype=float),
        mask=np.asarray([True]),
        arrived_at=time.monotonic(),
    )


class Recorder:
    """Flush target that records (session, [seqs]) per batch."""

    def __init__(self, delay: float = 0.0):
        self.lock = threading.Lock()
        self.batches: list[tuple[str, list[int]]] = []
        self.delay = delay
        self.concurrent_per_session: dict[str, int] = {}
        self.max_concurrent_per_session = 0

    def __call__(self, session_id, items):
        with self.lock:
            n = self.concurrent_per_session.get(session_id, 0) + 1
            self.concurrent_per_session[session_id] = n
            self.max_concurrent_per_session = max(
                self.max_concurrent_per_session, n
            )
        if self.delay:
            time.sleep(self.delay)
        with self.lock:
            self.batches.append((session_id, [item.seq for item in items]))
            self.concurrent_per_session[session_id] -= 1

    def seqs(self, session_id) -> list[int]:
        with self.lock:
            return [
                seq
                for sid, seqs in self.batches
                for seq in seqs
                if sid == session_id
            ]

    def batch_sizes(self, session_id) -> list[int]:
        with self.lock:
            return [
                len(seqs) for sid, seqs in self.batches if sid == session_id
            ]


class TestFlushTriggers:
    def test_full_batch_flushes_without_deadline(self):
        recorder = Recorder()
        with MicroBatchScheduler(
            recorder, max_batch=4, max_latency_s=60.0, workers=1
        ) as scheduler:
            for seq in range(4):
                scheduler.submit("s", make_item(seq))
            deadline = time.monotonic() + 5
            while not recorder.seqs("s") and time.monotonic() < deadline:
                time.sleep(0.005)
            assert recorder.seqs("s") == [0, 1, 2, 3]

    def test_partial_batch_flushes_at_latency_deadline(self):
        recorder = Recorder()
        with MicroBatchScheduler(
            recorder, max_batch=100, max_latency_s=0.05, workers=1
        ) as scheduler:
            scheduler.submit("s", make_item(0))
            scheduler.submit("s", make_item(1))
            deadline = time.monotonic() + 5
            while not recorder.seqs("s") and time.monotonic() < deadline:
                time.sleep(0.005)
            assert recorder.seqs("s") == [0, 1]

    def test_partial_batch_does_not_flush_before_deadline(self):
        recorder = Recorder()
        with MicroBatchScheduler(
            recorder, max_batch=100, max_latency_s=60.0, workers=1
        ) as scheduler:
            scheduler.submit("s", make_item(0))
            time.sleep(0.1)
            assert recorder.seqs("s") == []
            scheduler.drain("s")
            assert recorder.seqs("s") == [0]

    def test_oversized_backlog_splits_into_max_batch_chunks(self):
        recorder = Recorder()
        with MicroBatchScheduler(
            recorder, max_batch=4, max_latency_s=60.0, workers=2
        ) as scheduler:
            for seq in range(10):
                scheduler.submit("s", make_item(seq))
            scheduler.drain("s")
        assert recorder.seqs("s") == list(range(10))
        assert recorder.batch_sizes("s") == [4, 4, 2]


class TestOrderingAndIsolation:
    def test_session_order_preserved_across_many_batches(self):
        recorder = Recorder(delay=0.001)
        with MicroBatchScheduler(
            recorder, max_batch=3, max_latency_s=0.01, workers=4
        ) as scheduler:
            for seq in range(50):
                scheduler.submit("s", make_item(seq))
            scheduler.drain("s")
        assert recorder.seqs("s") == list(range(50))

    def test_at_most_one_flush_in_flight_per_session(self):
        recorder = Recorder(delay=0.02)
        with MicroBatchScheduler(
            recorder, max_batch=2, max_latency_s=0.001, workers=4
        ) as scheduler:
            for seq in range(20):
                scheduler.submit("s", make_item(seq))
            scheduler.drain("s")
        assert recorder.max_concurrent_per_session == 1
        assert recorder.seqs("s") == list(range(20))

    def test_sessions_flush_independently(self):
        recorder = Recorder()
        with MicroBatchScheduler(
            recorder, max_batch=4, max_latency_s=60.0, workers=2
        ) as scheduler:
            for seq in range(4):
                scheduler.submit("a", make_item(seq))
            for seq in range(3):
                scheduler.submit("b", make_item(seq))
            scheduler.drain("a")
            # b never reached max_batch and its deadline is far out.
            assert recorder.seqs("a") == [0, 1, 2, 3]
            assert recorder.seqs("b") == []
            scheduler.drain("b")
            assert recorder.seqs("b") == [0, 1, 2]


class TestLifecycle:
    def test_concurrent_drains_of_one_session_both_complete(self):
        # Drain markers are counted: the first drain to finish must not
        # clear the flush-immediately trigger while a second drainer of
        # the same session is still waiting on later slices.
        recorder = Recorder(delay=0.01)
        with MicroBatchScheduler(
            recorder, max_batch=100, max_latency_s=60.0, workers=2
        ) as scheduler:
            for seq in range(4):
                scheduler.submit("s", make_item(seq))
            threads = [
                threading.Thread(target=scheduler.drain, args=("s", 10))
                for _ in range(3)
            ]
            for thread in threads:
                thread.start()
            scheduler.submit("s", make_item(4))
            for thread in threads:
                thread.join(timeout=15)
            assert not any(thread.is_alive() for thread in threads)
        assert recorder.seqs("s") == list(range(5))

    def test_drain_all_applies_everything(self):
        recorder = Recorder()
        with MicroBatchScheduler(
            recorder, max_batch=8, max_latency_s=60.0, workers=2
        ) as scheduler:
            for sid in ("a", "b", "c"):
                for seq in range(5):
                    scheduler.submit(sid, make_item(seq))
            scheduler.drain_all()
            for sid in ("a", "b", "c"):
                assert recorder.seqs(sid) == list(range(5))

    def test_close_drains_buffered_work(self):
        recorder = Recorder()
        scheduler = MicroBatchScheduler(
            recorder, max_batch=8, max_latency_s=60.0, workers=1
        )
        for seq in range(3):
            scheduler.submit("s", make_item(seq))
        scheduler.close()
        assert recorder.seqs("s") == [0, 1, 2]

    def test_submit_after_close_raises(self):
        scheduler = MicroBatchScheduler(
            Recorder(), max_batch=2, max_latency_s=0.01, workers=1
        )
        scheduler.close()
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.submit("s", make_item(0))

    def test_forget_drops_buffered_slices(self):
        recorder = Recorder()
        with MicroBatchScheduler(
            recorder, max_batch=100, max_latency_s=60.0, workers=1
        ) as scheduler:
            for seq in range(3):
                scheduler.submit("s", make_item(seq))
            assert scheduler.forget("s") == 3
            scheduler.drain("s")
            assert recorder.seqs("s") == []

    def test_flush_exception_does_not_kill_worker(self):
        failures = []

        def flaky(session_id, items):
            if session_id == "bad":
                failures.append(session_id)
                raise RuntimeError("boom")

        with MicroBatchScheduler(
            flaky, max_batch=1, max_latency_s=60.0, workers=1
        ) as scheduler:
            scheduler.submit("bad", make_item(0))
            scheduler.drain("bad")
            # The same single worker must still serve other sessions.
            scheduler.submit("good", make_item(1))
            scheduler.drain("good")
        assert failures == ["bad"]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MicroBatchScheduler(Recorder(), max_batch=0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(Recorder(), max_latency_s=0.0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(Recorder(), workers=0)

    def test_pending_count_tracks_buffered(self):
        recorder = Recorder()
        with MicroBatchScheduler(
            recorder, max_batch=100, max_latency_s=60.0, workers=1
        ) as scheduler:
            assert scheduler.pending_count("s") == 0
            for seq in range(3):
                scheduler.submit("s", make_item(seq))
            assert scheduler.pending_count("s") == 3
            scheduler.drain("s")
            assert scheduler.pending_count("s") == 0
