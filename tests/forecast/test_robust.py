"""Unit tests for robust statistics and Gelper robust HW (paper §III-D)."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.forecast import (
    DEFAULT_CK,
    DEFAULT_K,
    HoltWintersParams,
    RobustHoltWinters,
    biweight_rho,
    clean_value,
    huber_psi,
    initial_state,
    update_scale_gelper,
)


class TestHuberPsi:
    def test_identity_inside(self):
        assert huber_psi(1.5) == pytest.approx(1.5)
        assert huber_psi(-1.5) == pytest.approx(-1.5)

    def test_clipped_outside(self):
        assert huber_psi(10.0) == pytest.approx(DEFAULT_K)
        assert huber_psi(-10.0) == pytest.approx(-DEFAULT_K)

    def test_boundary(self):
        assert huber_psi(DEFAULT_K) == pytest.approx(DEFAULT_K)

    def test_custom_k(self):
        assert huber_psi(5.0, k=3.0) == pytest.approx(3.0)

    def test_array_input(self):
        out = huber_psi(np.array([-5.0, 0.0, 5.0]))
        np.testing.assert_allclose(out, [-2.0, 0.0, 2.0])

    def test_scalar_returns_float(self):
        assert isinstance(huber_psi(0.5), float)

    def test_odd_function(self):
        x = np.linspace(-5, 5, 21)
        np.testing.assert_allclose(huber_psi(x), -huber_psi(-x))


class TestBiweightRho:
    def test_zero_at_zero(self):
        assert biweight_rho(0.0) == pytest.approx(0.0)

    def test_saturates_at_ck(self):
        assert biweight_rho(10.0) == pytest.approx(DEFAULT_CK)
        assert biweight_rho(DEFAULT_K) == pytest.approx(DEFAULT_CK)

    def test_even_function(self):
        x = np.linspace(-3, 3, 13)
        np.testing.assert_allclose(biweight_rho(x), biweight_rho(-x))

    def test_monotone_on_positive_axis(self):
        x = np.linspace(0, 2.5, 50)
        rho = biweight_rho(x)
        assert np.all(np.diff(rho) >= -1e-12)

    def test_bounded(self):
        x = np.linspace(-100, 100, 100)
        assert np.all(biweight_rho(x) <= DEFAULT_CK + 1e-12)

    def test_expected_value_near_unbiased(self):
        # E[rho(Z)] for Z~N(0,1) should be close to 1 with ck=2.52, which
        # is why Gelper et al. chose that constant.
        rng = np.random.default_rng(0)
        z = rng.normal(size=200_000)
        assert np.mean(biweight_rho(z)) == pytest.approx(1.0, abs=0.02)


class TestCleanValue:
    def test_inlier_unchanged(self):
        assert clean_value(10.5, 10.0, 1.0) == pytest.approx(10.5)

    def test_outlier_clipped_high(self):
        # y=100, yhat=10, sigma=1 -> cleaned = 10 + 2*1
        assert clean_value(100.0, 10.0, 1.0) == pytest.approx(12.0)

    def test_outlier_clipped_low(self):
        assert clean_value(-100.0, 10.0, 1.0) == pytest.approx(8.0)

    def test_scales_with_sigma(self):
        assert clean_value(100.0, 10.0, 5.0) == pytest.approx(20.0)

    def test_array(self):
        out = clean_value(np.array([100.0, 10.5]), np.array([10.0, 10.0]), 1.0)
        np.testing.assert_allclose(out, [12.0, 10.5])


class TestUpdateScale:
    def test_zero_residual_shrinks_scale(self):
        new = update_scale_gelper(10.0, 10.0, 2.0, phi=0.5)
        # rho(0)=0 -> sigma^2 *= (1-phi)
        assert new == pytest.approx(2.0 * np.sqrt(0.5))

    def test_huge_residual_bounded_growth(self):
        new = update_scale_gelper(1e6, 0.0, 1.0, phi=0.5)
        # rho saturates at ck: sigma^2 = 0.5*2.52 + 0.5
        assert new == pytest.approx(np.sqrt(0.5 * DEFAULT_CK + 0.5))

    def test_phi_zero_keeps_scale(self):
        assert update_scale_gelper(99.0, 0.0, 3.0, phi=0.0) == pytest.approx(3.0)

    def test_invalid_phi(self):
        with pytest.raises(ConfigError):
            update_scale_gelper(1.0, 0.0, 1.0, phi=1.5)

    def test_scale_converges_to_fixed_point(self):
        # With constant absolute residual c, sigma converges to the value
        # where rho(c/sigma) == 1, i.e. sigma* = c / x1 with x1 ~= 0.788
        # solving 2.52*(1-(1-(x/2)^2)^3) = 1.  So sigma* ~= 1.269 * c.
        sigma = 5.0
        for _ in range(2000):
            sigma = update_scale_gelper(1.0, 0.0, sigma, phi=0.1)
        assert sigma == pytest.approx(1.269, abs=0.02)


class TestRobustHoltWinters:
    @pytest.fixture
    def clean_series(self):
        t = np.arange(60)
        return 10.0 + 0.05 * t + 2.0 * np.sin(2 * np.pi * t / 6)

    def test_outliers_are_cleaned(self, clean_series):
        corrupted = clean_series.copy()
        corrupted[30] += 50.0
        state = initial_state(clean_series[:12], 6)
        rhw = RobustHoltWinters(
            params=HoltWintersParams(0.3, 0.05, 0.2),
            state=state,
            sigma=1.0,
            phi=0.1,
        )
        cleaned = rhw.run(corrupted)
        assert abs(cleaned[30] - clean_series[30]) < 10.0
        assert abs(cleaned[30] - corrupted[30]) > 40.0

    def test_forecast_resists_outliers(self, clean_series):
        corrupted = clean_series.copy()
        rng = np.random.default_rng(1)
        idx = rng.choice(60, size=6, replace=False)
        corrupted[idx] += 40.0
        state = initial_state(clean_series[:12], 6)

        def run(series):
            rhw = RobustHoltWinters(
                params=HoltWintersParams(0.3, 0.05, 0.2),
                state=state,
                sigma=1.0,
                phi=0.1,
            )
            rhw.run(series)
            return rhw.forecast(6)

        fc_clean = run(clean_series)
        fc_corrupt = run(corrupted)
        assert np.max(np.abs(fc_clean - fc_corrupt)) < 5.0

    def test_invalid_sigma(self, clean_series):
        state = initial_state(clean_series[:12], 6)
        with pytest.raises(ConfigError):
            RobustHoltWinters(
                params=HoltWintersParams(0.3, 0.05, 0.2),
                state=state,
                sigma=0.0,
            )

    def test_step_returns_forecast_and_cleaned(self, clean_series):
        state = initial_state(clean_series[:12], 6)
        rhw = RobustHoltWinters(
            params=HoltWintersParams(0.3, 0.05, 0.2), state=state, sigma=1.0
        )
        forecast, cleaned = rhw.step(1e9)
        assert cleaned == pytest.approx(forecast + rhw.k * rhw.sigma)
