"""Unit tests for smoothness operators (paper Eq. 10, 17-18)."""

import numpy as np
import pytest

from repro.core import (
    difference_matrix,
    neighbor_count,
    neighbor_sum,
    smoothness_penalty,
)
from repro.exceptions import ConfigError, ShapeError


class TestDifferenceMatrix:
    def test_shape(self):
        assert difference_matrix(10, 1).shape == (9, 10)
        assert difference_matrix(10, 3).shape == (7, 10)

    def test_structure(self):
        mat = difference_matrix(4, 2)
        expected = np.array(
            [[1.0, 0.0, -1.0, 0.0], [0.0, 1.0, 0.0, -1.0]]
        )
        np.testing.assert_array_equal(mat, expected)

    def test_lag_at_least_length(self):
        assert difference_matrix(3, 3).shape == (0, 3)
        assert difference_matrix(3, 5).shape == (0, 3)

    def test_bad_args(self):
        with pytest.raises(ConfigError):
            difference_matrix(0, 1)
        with pytest.raises(ConfigError):
            difference_matrix(5, 0)

    def test_constant_vector_in_null_space(self):
        mat = difference_matrix(8, 2)
        np.testing.assert_allclose(mat @ np.ones(8), 0.0)


class TestSmoothnessPenalty:
    def test_matches_matrix_form(self):
        rng = np.random.default_rng(0)
        u = rng.normal(size=(12, 3))
        for lag in (1, 3, 5):
            l_mat = difference_matrix(12, lag)
            expected = np.linalg.norm(l_mat @ u) ** 2
            assert smoothness_penalty(u, lag) == pytest.approx(expected)

    def test_constant_rows_zero(self):
        u = np.ones((10, 2)) * 5.0
        assert smoothness_penalty(u, 1) == 0.0
        assert smoothness_penalty(u, 4) == 0.0

    def test_perfectly_periodic_zero_seasonal_penalty(self):
        # A period-m signal has zero lag-m penalty but nonzero lag-1.
        t = np.arange(20)
        u = np.sin(2 * np.pi * t / 5)[:, None]
        assert smoothness_penalty(u, 5) == pytest.approx(0.0, abs=1e-12)
        assert smoothness_penalty(u, 1) > 0.1

    def test_lag_exceeds_length(self):
        assert smoothness_penalty(np.ones((3, 2)), 10) == 0.0

    def test_rejects_vector(self):
        with pytest.raises(ShapeError):
            smoothness_penalty(np.ones(5), 1)

    def test_known_value(self):
        u = np.array([[0.0], [1.0], [3.0]])
        # (0-1)^2 + (1-3)^2 = 5
        assert smoothness_penalty(u, 1) == pytest.approx(5.0)


class TestNeighborHelpers:
    def test_count_interior(self):
        assert neighbor_count(5, 10, 1) == 2

    def test_count_boundaries(self):
        assert neighbor_count(0, 10, 1) == 1
        assert neighbor_count(9, 10, 1) == 1

    def test_count_seasonal_lag(self):
        # length 10, lag 4: index 2 has only a forward neighbor (6).
        assert neighbor_count(2, 10, 4) == 1
        assert neighbor_count(5, 10, 4) == 2
        assert neighbor_count(8, 10, 4) == 1

    def test_count_lag_too_large(self):
        assert neighbor_count(3, 5, 7) == 0

    def test_count_out_of_range(self):
        with pytest.raises(ShapeError):
            neighbor_count(10, 10, 1)

    def test_sum_interior(self):
        u = np.arange(12, dtype=float).reshape(6, 2)
        np.testing.assert_allclose(neighbor_sum(u, 2, 1), u[1] + u[3])

    def test_sum_boundary(self):
        u = np.arange(12, dtype=float).reshape(6, 2)
        np.testing.assert_allclose(neighbor_sum(u, 0, 1), u[1])
        np.testing.assert_allclose(neighbor_sum(u, 5, 1), u[4])

    def test_sum_no_neighbors(self):
        u = np.ones((3, 2))
        np.testing.assert_allclose(neighbor_sum(u, 1, 5), 0.0)

    def test_paper_eq17_case_structure(self):
        """The general neighbor form reduces to Eq. 17's five cases when
        I_N >= 2m: check the diagonal multiplicities."""
        length, m = 20, 5
        lam1, lam2 = 0.3, 0.7

        def diag_coefficient(i):
            return lam1 * neighbor_count(i, length, 1) + lam2 * neighbor_count(
                i, length, m
            )

        # iN = 1 (paper, 1-indexed) -> index 0: lambda1 + lambda2
        assert diag_coefficient(0) == pytest.approx(lam1 + lam2)
        # 1 < iN <= m -> indices 1..4: 2*lambda1 + lambda2
        for i in range(1, m):
            assert diag_coefficient(i) == pytest.approx(2 * lam1 + lam2)
        # m < iN <= IN - m -> indices 5..14: 2*(lambda1 + lambda2)
        for i in range(m, length - m):
            assert diag_coefficient(i) == pytest.approx(2 * (lam1 + lam2))
        # IN - m < iN <= IN - 1 -> indices 15..18: 2*lambda1 + lambda2
        for i in range(length - m, length - 1):
            assert diag_coefficient(i) == pytest.approx(2 * lam1 + lam2)
        # iN = IN -> index 19: lambda1 + lambda2
        assert diag_coefficient(length - 1) == pytest.approx(lam1 + lam2)
