"""Sensor forecasting: predicting environmental readings a day ahead.

The Intel-Lab scenario from the paper's Fig. 6: a lab streams
(position, sensor, time) readings that are partially missing and
occasionally corrupted.  SOFIA consumes the stream online and forecasts
the next day; SMF and CPHW forecast the same horizon from the fully
observed stream (they cannot handle missing entries), yet SOFIA stays
ahead.

Run with::

    python examples/sensor_forecasting.py
"""


from repro.baselines import Cphw, Smf, SofiaImputer
from repro.core import SofiaConfig
from repro.datasets import load_dataset
from repro.experiments import format_table
from repro.streams import (
    CorruptionSpec,
    TensorStream,
    corrupt,
    run_forecasting,
)


def main() -> None:
    ds = load_dataset("intel_lab", n_positions=18, period=24, n_seasons=9, seed=0)
    print(f"dataset: {ds.info.title} stand-in, shape {ds.shape}, m={ds.period}")

    truth = TensorStream.fully_observed(ds.data, period=ds.period)
    rank, startup, horizon = 4, 3 * ds.period, ds.period

    rows = []
    # SOFIA at increasing missing rates, always with 20% outliers at 5x.
    for missing in (0, 30, 50, 70):
        setting = CorruptionSpec(missing, 20, 5)
        corrupted = corrupt(ds.data, setting, seed=1)
        observed = TensorStream(
            data=corrupted.observed, mask=corrupted.mask, period=ds.period
        )
        sofia = SofiaImputer(
            SofiaConfig(rank=rank, period=ds.period, lambda1=0.1, lambda2=0.1,
                        max_outer_iters=300, tol=1e-6)
        )
        result = run_forecasting(
            sofia, observed, truth, startup_steps=startup, horizon=horizon
        )
        rows.append([f"SOFIA {setting.label}", result.afe])

    # Competitors see the fully observed (but still outlier-laden) stream.
    setting = CorruptionSpec(0, 20, 5)
    corrupted = corrupt(ds.data, setting, seed=1)
    observed = TensorStream(
        data=corrupted.observed, mask=corrupted.mask, period=ds.period
    )
    for algo in (Smf(rank, ds.period, seed=0), Cphw(rank, ds.period, seed=0)):
        result = run_forecasting(
            algo, observed, truth, startup_steps=startup, horizon=horizon
        )
        rows.append([f"{algo.name} {setting.label}", result.afe])

    print()
    print(
        format_table(
            ["Algorithm (X, Y, Z)", "AFE"],
            rows,
            title=f"One-day-ahead forecasting on {ds.info.title} "
            f"(horizon {horizon} steps)",
        )
    )
    sofia_best = rows[0][1]
    rival_best = min(rows[-2][1], rows[-1][1])
    print(
        f"\nSOFIA improvement over best competitor: "
        f"{100 * (1 - sofia_best / rival_best):.0f}%"
    )


if __name__ == "__main__":
    main()
