"""Declarative building blocks for named stream scenarios.

A :class:`Scenario` bundles everything needed to stress SOFIA one way:
a :class:`GeneratorSpec` describing the clean synthetic stream (with
optional mid-stream regime or seasonality changes), a
:class:`~repro.streams.corruption.CorruptionSchedule` layering random
missingness, outliers, and structured blackout windows on top, an
arrival process shaping the live replay traffic, and a
:class:`QualityEnvelope` stating the accuracy the run must stay inside.
Scenario modules declare one ``SCENARIO`` constant each and the
registry in :mod:`repro.scenarios` makes them discoverable by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.datasets.synthetic import seasonal_stream
from repro.exceptions import ConfigError
from repro.scenarios.arrival import ArrivalProcess, ConstantArrival
from repro.streams.corruption import CorruptionSchedule

__all__ = [
    "GeneratorSpec",
    "QualityEnvelope",
    "Scenario",
    "rescale_schedule",
    "scenario_from_module",
]


@dataclass(frozen=True)
class GeneratorSpec:
    """Recipe for the clean stream a scenario corrupts.

    The base stream is :func:`~repro.datasets.synthetic.seasonal_stream`
    (low-rank, sinusoidal seasonal temporal factors).  Two optional
    mid-stream events splice in a second independently drawn stream:

    - ``regime_shift_at``: from that step on, the data comes from a
      fresh draw of the non-temporal factors scaled by
      ``regime_scale`` — an abrupt level/structure change.
    - ``period_change_at``: from that step on, the temporal factors
      oscillate with ``new_period`` instead of ``period`` while the
      model keeps assuming ``period`` — a seasonality change.

    At most one of the two may be set.
    """

    dims: tuple[int, ...]
    rank: int
    period: int
    n_steps: int
    trend: float = 0.0
    noise: float = 0.02
    regime_shift_at: int | None = None
    regime_scale: float = 1.0
    period_change_at: int | None = None
    new_period: int | None = None

    def __post_init__(self) -> None:
        if self.regime_shift_at is not None and self.period_change_at is not None:
            raise ConfigError(
                "set at most one of regime_shift_at / period_change_at"
            )
        for name in ("regime_shift_at", "period_change_at"):
            at = getattr(self, name)
            if at is not None and not 0 < at < self.n_steps:
                raise ConfigError(
                    f"{name} must be inside (0, n_steps), got {at}"
                )
        if self.period_change_at is not None and self.new_period is None:
            raise ConfigError("period_change_at requires new_period")

    @property
    def changepoint(self) -> int | None:
        """The splice step, whichever event defines it (None if none)."""
        if self.regime_shift_at is not None:
            return self.regime_shift_at
        return self.period_change_at

    def build(self, *, seed: int = 0) -> np.ndarray:
        """Generate the clean data tensor (time on the last mode)."""
        base = seasonal_stream(
            self.dims,
            self.rank,
            self.period,
            self.n_steps,
            trend=self.trend,
            noise=self.noise,
            seed=seed,
        )
        changepoint = self.changepoint
        if changepoint is None:
            return base.data
        tail_steps = self.n_steps - changepoint
        second = seasonal_stream(
            self.dims,
            self.rank,
            self.new_period if self.period_change_at is not None else self.period,
            tail_steps,
            trend=self.trend,
            noise=self.noise,
            seed=seed + 1,
        )
        tail = second.data
        if self.regime_shift_at is not None:
            tail = tail * self.regime_scale
        return np.concatenate([base.data[..., :changepoint], tail], axis=-1)

    def tiny(self) -> GeneratorSpec:
        """A shrunken spec for quick CI runs; changepoints rescale."""
        n_steps = min(self.n_steps, 8 * self.period)
        ratio = n_steps / self.n_steps

        def rescale(at: int | None) -> int | None:
            if at is None:
                return None
            # Keep the event strictly inside the shrunken stream.
            return min(max(int(round(at * ratio)), 1), n_steps - 1)

        return replace(
            self,
            dims=tuple(min(d, 6) for d in self.dims),
            n_steps=n_steps,
            regime_shift_at=rescale(self.regime_shift_at),
            period_change_at=rescale(self.period_change_at),
        )


def rescale_schedule(
    schedule: CorruptionSchedule, old_n: int, new_n: int
) -> CorruptionSchedule:
    """Map a corruption schedule onto a stream of a different length.

    Phase boundaries and blackout window extents scale proportionally
    (rounded, kept non-empty), so a tiny scenario run still exercises
    every phase and window of the full-size definition.
    """
    if new_n == old_n:
        return schedule
    ratio = new_n / old_n

    def scale(step: int) -> int:
        return min(int(round(step * ratio)), new_n)

    phases = []
    for phase in schedule.phases:
        start = scale(phase.start)
        stop = None if phase.stop is None else max(scale(phase.stop), start + 1)
        phases.append(replace(phase, start=start, stop=stop))
    windows = []
    for window in schedule.windows:
        start = min(scale(window.start), new_n - 1)
        stop = max(scale(window.stop), start + 1)
        windows.append(replace(window, start=start, stop=stop))
    return CorruptionSchedule(phases=tuple(phases), windows=tuple(windows))


@dataclass(frozen=True)
class QualityEnvelope:
    """Accuracy bounds a scenario run is expected to stay inside.

    Any bound left ``None`` is not checked.  ``max_final_nre`` reads
    the mean NRE over the last quarter of the stream — what matters
    for a scenario is whether the model *recovers* after the stress,
    not whether it wobbles during it.
    """

    max_rae: float | None = None
    max_final_nre: float | None = None
    max_afe: float | None = None

    def check(
        self,
        *,
        rae: float | None = None,
        final_nre: float | None = None,
        afe: float | None = None,
    ) -> tuple[str, ...]:
        """Return human-readable violations (empty means all inside)."""
        violations: list[str] = []
        for label, value, bound in (
            ("rae", rae, self.max_rae),
            ("final_nre", final_nre, self.max_final_nre),
            ("afe", afe, self.max_afe),
        ):
            if bound is None or value is None:
                continue
            if not np.isfinite(value) or value > bound:
                violations.append(
                    f"{label}={value:.4f} exceeds bound {bound:.4f}"
                )
        return tuple(violations)


@dataclass(frozen=True)
class Scenario:
    """One named stress scenario, runnable offline or as live replay.

    ``description`` is the scenario module's docstring and feeds the
    generated ``docs/scenarios.md`` catalog; ``summary`` is its first
    line.  ``n_sessions`` is how many concurrent serving sessions the
    replay harness drives.  ``serving`` holds keyword overrides for
    the harness's self-hosted
    :class:`~repro.serving.manager.SessionManager` (e.g. a
    ``max_resident`` below ``n_sessions`` makes the replay churn the
    spill/rehydrate path); it is advisory — ignored when replaying
    against an external URL.
    """

    name: str
    summary: str
    description: str
    generator: GeneratorSpec
    schedule: CorruptionSchedule
    envelope: QualityEnvelope
    arrival: ArrivalProcess = field(default_factory=ConstantArrival)
    n_sessions: int = 2
    serving: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ConfigError(f"scenario name must be a slug, got {self.name!r}")
        if self.n_sessions < 1:
            raise ConfigError("n_sessions must be >= 1")
        if not isinstance(self.serving, dict):
            raise ConfigError("serving must be a dict of manager kwargs")

    def sized(
        self, *, tiny: bool = False
    ) -> tuple[GeneratorSpec, CorruptionSchedule]:
        """Generator spec and corruption schedule at full or tiny scale.

        In tiny mode the schedule's phases and windows are rescaled to
        the shrunken stream length so every stress feature survives.
        """
        if not tiny:
            return self.generator, self.schedule
        generator = self.generator.tiny()
        return generator, rescale_schedule(
            self.schedule, self.generator.n_steps, generator.n_steps
        )


def _module_doc(doc: str | None) -> tuple[str, str]:
    """Split a scenario module docstring into (summary, full text)."""
    text = (doc or "").strip()
    if not text:
        raise ConfigError("scenario modules must have a docstring")
    summary = text.splitlines()[0].strip()
    return summary, text


def scenario_from_module(
    doc: str | None,
    *,
    name: str,
    generator: GeneratorSpec,
    schedule: CorruptionSchedule,
    envelope: QualityEnvelope,
    arrival: ArrivalProcess | None = None,
    n_sessions: int = 2,
    serving: dict | None = None,
) -> Scenario:
    """Build a Scenario whose prose comes from the module docstring."""
    summary, description = _module_doc(doc)
    kwargs = {} if arrival is None else {"arrival": arrival}
    if serving is not None:
        kwargs["serving"] = serving
    return Scenario(
        name=name,
        summary=summary,
        description=description,
        generator=generator,
        schedule=schedule,
        envelope=envelope,
        n_sessions=n_sessions,
        **kwargs,
    )
