"""Behavioural tests for the streaming imputation baselines.

These tests pin down the *relative* behaviours the paper's Fig. 3-4
depend on: every baseline tracks clean/missing-only streams reasonably,
and element-wise outliers hurt the non-robust ones.
"""

import numpy as np
import pytest

from repro.baselines import Brst, Mast, Olstec, OnlineSGD, OrMstc
from repro.baselines.or_mstc import group_soft_threshold
from repro.exceptions import ShapeError
from repro.streams import run_imputation

ALL_IMPUTERS = [
    lambda: OnlineSGD(3, seed=0),
    lambda: Olstec(3, seed=0),
    lambda: Mast(3, seed=0),
    lambda: OrMstc(3, seed=0),
    lambda: Brst(6, seed=0),
]
IMPUTER_IDS = ["OnlineSGD", "OLSTEC", "MAST", "OR-MSTC", "BRST"]


class TestCommonBehaviour:
    @pytest.mark.parametrize("make", ALL_IMPUTERS, ids=IMPUTER_IDS)
    def test_tracks_missing_only_stream(self, make, mild_corruption):
        observed, truth = mild_corruption
        result = run_imputation(make(), observed, truth, startup_steps=30)
        # after warm-up every streaming method should track a clean
        # seasonal stream reasonably well
        assert np.mean(result.nre_series[-20:]) < 0.5

    @pytest.mark.parametrize("make", ALL_IMPUTERS, ids=IMPUTER_IDS)
    def test_step_returns_subtensor_shape(self, make, mild_corruption):
        observed, _ = mild_corruption
        algo = make()
        algo.initialize(*observed.startup(12))
        out = algo.step(observed.subtensor(12), observed.mask_at(12))
        assert out.shape == observed.subtensor_shape

    @pytest.mark.parametrize("make", ALL_IMPUTERS, ids=IMPUTER_IDS)
    def test_capabilities_declared(self, make):
        algo = make()
        caps = algo.capabilities
        assert caps.imputation
        assert caps.online
        assert not caps.seasonality_aware  # none of the imputation
        # baselines exploit seasonality (Table I)

    @pytest.mark.parametrize("make", ALL_IMPUTERS, ids=IMPUTER_IDS)
    def test_bad_rank_rejected(self, make):
        cls = type(make())
        with pytest.raises(ShapeError):
            cls(0)


class TestOutlierSensitivity:
    """Element-wise outliers must hurt the non-robust baselines — the
    Fig. 3 mechanism that separates SOFIA from the field."""

    @pytest.mark.parametrize(
        "make",
        [lambda: OnlineSGD(3, seed=0), lambda: Mast(3, seed=0)],
        ids=["OnlineSGD", "MAST"],
    )
    def test_outliers_degrade_accuracy(
        self, make, mild_corruption, outlier_corruption
    ):
        observed_clean, truth = mild_corruption
        observed_noisy, _ = outlier_corruption
        clean = run_imputation(make(), observed_clean, truth, startup_steps=30)
        noisy = run_imputation(make(), observed_noisy, truth, startup_steps=30)
        assert noisy.rae > 1.5 * clean.rae


class TestOlstec:
    def test_requires_3way(self):
        algo = Olstec(2, seed=0)
        with pytest.raises(ShapeError):
            algo.step(np.ones((2, 2, 2)), np.ones((2, 2, 2), dtype=bool))

    def test_beta_validation(self):
        with pytest.raises(ShapeError):
            Olstec(2, beta=0.0)

    def test_adapts_after_subspace_change(self, mild_corruption):
        observed, truth = mild_corruption
        algo = Olstec(3, seed=0)
        algo.initialize(*observed.startup(40))
        # RLS with forgetting keeps adapting: error on later steps of the
        # same stream should not blow up
        errs = []
        for t, y, m in observed.iter_from(40):
            out = algo.step(y, m)
            from repro.tensor import relative_error

            errs.append(relative_error(out, truth.subtensor(t)))
        assert np.mean(errs[-10:]) <= np.mean(errs[:10]) + 0.2


class TestOrMstc:
    def test_group_soft_threshold_zeroes_small_fibers(self):
        values = np.ones((4, 5)) * 0.1
        out = group_soft_threshold(values, threshold=1.0, axis=1)
        np.testing.assert_array_equal(out, 0.0)

    def test_group_soft_threshold_shrinks_large_fibers(self):
        values = np.zeros((3, 4))
        values[1] = 10.0  # fiber norm 20
        out = group_soft_threshold(values, threshold=1.0, axis=1)
        assert np.all(out[1] > 9.0)
        np.testing.assert_array_equal(out[0], 0.0)

    def test_catches_slab_outliers(self, mild_corruption):
        """A whole corrupted fiber (its designed outlier model) is
        captured in last_outliers."""
        observed, truth = mild_corruption
        algo = OrMstc(3, outlier_weight=2.0, seed=0)
        algo.initialize(*observed.startup(40))
        y = observed.subtensor(40).copy()
        y[4, :] += 20.0  # slab outlier on mode-0 row -> mode-1 fibers
        algo.step(y, np.ones(y.shape, dtype=bool))
        assert np.abs(algo.last_outliers[4, :]).mean() > 1.0

    def test_negative_outlier_weight_rejected(self):
        with pytest.raises(ShapeError):
            OrMstc(2, outlier_weight=-1.0)


class TestBrst:
    def test_rank_determination_prunes_noise_components(self, mild_corruption):
        observed, _ = mild_corruption
        algo = Brst(8, ard_threshold=1e-2, seed=0)
        algo.initialize(*observed.startup(60))
        # ground truth rank is 3: ARD should keep few components
        assert algo.estimated_rank <= 8

    def test_estimated_rank_reported(self):
        algo = Brst(4, seed=0)
        assert algo.estimated_rank == 4  # before any pruning
