"""Unit tests for the vectorized HW state (paper Eq. 19, 26)."""

import numpy as np
import pytest

from repro.exceptions import ConfigError, ShapeError
from repro.forecast import (
    HoltWintersParams,
    HoltWintersState,
    VectorHoltWinters,
    fit_holt_winters,
    hw_forecast,
    hw_update,
)


def make_state(rank=2, period=3):
    return VectorHoltWinters(
        level=np.arange(1.0, rank + 1),
        trend=np.full(rank, 0.5),
        seasonal=np.zeros((period, rank)),
        alpha=np.full(rank, 0.5),
        beta=np.full(rank, 0.3),
        gamma=np.full(rank, 0.2),
    )


class TestConstruction:
    def test_rank_and_period(self):
        state = make_state(rank=3, period=4)
        assert state.rank == 3
        assert state.period == 4

    def test_bad_seasonal_shape(self):
        with pytest.raises(ShapeError):
            VectorHoltWinters(
                level=np.zeros(2),
                trend=np.zeros(2),
                seasonal=np.zeros((3, 5)),
                alpha=np.zeros(2),
                beta=np.zeros(2),
                gamma=np.zeros(2),
            )

    def test_bad_alpha_range(self):
        with pytest.raises(ConfigError):
            VectorHoltWinters(
                level=np.zeros(1),
                trend=np.zeros(1),
                seasonal=np.zeros((2, 1)),
                alpha=np.array([1.5]),
                beta=np.zeros(1),
                gamma=np.zeros(1),
            )

    def test_length_mismatch(self):
        with pytest.raises(ShapeError):
            VectorHoltWinters(
                level=np.zeros(2),
                trend=np.zeros(3),
                seasonal=np.zeros((2, 2)),
                alpha=np.zeros(2),
                beta=np.zeros(2),
                gamma=np.zeros(2),
            )


class TestConsistencyWithScalar:
    """The vector recursion must agree component-wise with the scalar one."""

    def test_update_matches_scalar(self):
        rng = np.random.default_rng(0)
        period, rank = 4, 3
        scalar_states = [
            HoltWintersState(
                level=rng.normal(),
                trend=rng.normal(),
                seasonal=rng.normal(size=period),
            )
            for _ in range(rank)
        ]
        params = [HoltWintersParams(*rng.uniform(0, 1, 3)) for _ in range(rank)]
        vector = VectorHoltWinters(
            level=np.array([s.level for s in scalar_states]),
            trend=np.array([s.trend for s in scalar_states]),
            seasonal=np.stack([s.seasonal for s in scalar_states], axis=1),
            alpha=np.array([p.alpha for p in params]),
            beta=np.array([p.beta for p in params]),
            gamma=np.array([p.gamma for p in params]),
        )
        values = rng.normal(size=(6, rank))
        for v in values:
            vector.update(v)
            scalar_states = [
                hw_update(s, float(val), p)
                for s, val, p in zip(scalar_states, v, params)
            ]
        np.testing.assert_allclose(
            vector.level, [s.level for s in scalar_states]
        )
        np.testing.assert_allclose(
            vector.trend, [s.trend for s in scalar_states]
        )
        np.testing.assert_allclose(
            vector.seasonal, np.stack([s.seasonal for s in scalar_states], axis=1)
        )

    def test_forecast_matches_scalar(self):
        rng = np.random.default_rng(1)
        period, rank, horizon = 3, 2, 7
        scalar_states = [
            HoltWintersState(
                level=rng.normal(), trend=rng.normal(),
                seasonal=rng.normal(size=period),
            )
            for _ in range(rank)
        ]
        vector = VectorHoltWinters(
            level=np.array([s.level for s in scalar_states]),
            trend=np.array([s.trend for s in scalar_states]),
            seasonal=np.stack([s.seasonal for s in scalar_states], axis=1),
            alpha=np.zeros(rank),
            beta=np.zeros(rank),
            gamma=np.zeros(rank),
        )
        fc = vector.forecast(horizon)
        for r, s in enumerate(scalar_states):
            np.testing.assert_allclose(fc[:, r], hw_forecast(s, horizon))


class TestForecast:
    def test_one_step_equals_forecast_row(self):
        state = make_state()
        np.testing.assert_allclose(
            state.forecast_one_step(), state.forecast(1)[0]
        )

    def test_bad_horizon(self):
        with pytest.raises(ConfigError):
            make_state().forecast(0)

    def test_update_requires_rank_vector(self):
        with pytest.raises(ShapeError):
            make_state(rank=2).update(np.zeros(3))


class TestFromFits:
    def test_stacks_columns(self):
        t = np.arange(48, dtype=float)
        y1 = 1.0 + 0.1 * t + np.sin(2 * np.pi * t / 6)
        y2 = 5.0 - 0.05 * t + np.cos(2 * np.pi * t / 6)
        fits = [fit_holt_winters(y, 6) for y in (y1, y2)]
        vector = VectorHoltWinters.from_fits(fits)
        assert vector.rank == 2
        assert vector.period == 6
        fc = vector.forecast(6)
        np.testing.assert_allclose(fc[:, 0], fits[0].forecast(6))
        np.testing.assert_allclose(fc[:, 1], fits[1].forecast(6))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            VectorHoltWinters.from_fits([])

    def test_mixed_periods_rejected(self):
        t = np.arange(48, dtype=float)
        y = 1.0 + np.sin(2 * np.pi * t / 6)
        fits = [fit_holt_winters(y, 6), fit_holt_winters(y, 8)]
        with pytest.raises(ShapeError):
            VectorHoltWinters.from_fits(fits)


class TestUpdateMany:
    def test_matches_repeated_update(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=(7, 2))
        one_by_one = make_state()
        for row in values:
            one_by_one.update(row)
        batched = make_state()
        batched.update_many(values)
        np.testing.assert_array_equal(batched.level, one_by_one.level)
        np.testing.assert_array_equal(batched.trend, one_by_one.trend)
        np.testing.assert_array_equal(
            batched.seasonal, one_by_one.seasonal
        )

    def test_wrong_rank_rejected(self):
        state = make_state()
        with pytest.raises(ShapeError):
            state.update_many(np.zeros((3, 5)))

    def test_one_dim_rejected(self):
        state = make_state()
        with pytest.raises(ShapeError):
            state.update_many(np.zeros(2))


class TestCopy:
    def test_copy_is_independent(self):
        state = make_state()
        clone = state.copy()
        clone.update(np.array([1.0, 2.0]))
        np.testing.assert_allclose(state.level, [1.0, 2.0])
        assert not np.allclose(clone.level, state.level)
