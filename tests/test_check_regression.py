"""Unit tests for the CI benchmark-regression gate."""

import importlib.util
import json
import pathlib

import pytest

_MODULE_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_regression.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location(
        "check_regression", _MODULE_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _report(**timings):
    return {
        "benchmark": "kernels_scalar_vs_batched",
        "results": [
            {
                "case": name,
                "scalar_seconds": scalar,
                "batched_seconds": batched,
                "speedup": scalar / batched,
            }
            for name, (scalar, batched) in timings.items()
        ],
    }


def test_identical_reports_pass(gate):
    report = _report(als=(1.0, 0.1), rls=(0.5, 0.05))
    _, failures = gate.compare_reports(report, report, threshold=1.5)
    assert failures == []


def test_faster_run_passes(gate):
    baseline = _report(als=(1.0, 0.1))
    fresh = _report(als=(0.2, 0.01))
    _, failures = gate.compare_reports(baseline, fresh, threshold=1.5)
    assert failures == []


def test_slowdown_beyond_threshold_fails(gate):
    # Batched seconds regress 1.6x while the speedup ratio stays within
    # its own 1.5x headroom, so exactly the absolute gate fires.
    baseline = _report(als=(1.0, 0.1))
    fresh = _report(als=(1.44, 0.16))
    lines, failures = gate.compare_reports(baseline, fresh, threshold=1.5)
    assert len(failures) == 1
    assert "als.batched_seconds" in failures[0]
    assert "REGRESSION" in failures[0]


def test_slowdown_within_threshold_passes(gate):
    baseline = _report(als=(1.0, 0.1))
    fresh = _report(als=(1.4, 0.14))
    _, failures = gate.compare_reports(baseline, fresh, threshold=1.5)
    assert failures == []


def test_speedup_shrink_fails_even_with_matching_absolute_budget(gate):
    # A machine-independent signal: same scalar time, but the batched
    # path de-vectorized relative to it (speedup 10x -> 2x) while still
    # under the absolute threshold against a slower baseline machine.
    baseline = _report(als=(1.0, 0.1))       # speedup 10x
    fresh = _report(als=(0.28, 0.14))        # speedup 2x, both times fast
    _, failures = gate.compare_reports(baseline, fresh, threshold=1.5)
    assert len(failures) == 1
    assert "speedup" in failures[0]


def test_reports_without_speedup_field_still_compare(gate):
    baseline = _report(als=(1.0, 0.1))
    fresh = _report(als=(1.0, 0.1))
    for report in (baseline, fresh):
        for entry in report["results"]:
            del entry["speedup"]
    _, failures = gate.compare_reports(baseline, fresh, threshold=1.5)
    assert failures == []


def test_missing_case_fails(gate):
    baseline = _report(als=(1.0, 0.1), rls=(0.5, 0.05))
    fresh = _report(als=(1.0, 0.1))
    _, failures = gate.compare_reports(baseline, fresh, threshold=1.5)
    assert any("missing" in f for f in failures)


def test_extra_fresh_cases_are_ignored(gate):
    baseline = _report(als=(1.0, 0.1))
    fresh = _report(als=(1.0, 0.1), extra=(9.0, 9.0))
    _, failures = gate.compare_reports(baseline, fresh, threshold=1.5)
    assert failures == []


def test_main_exit_codes(gate, tmp_path):
    baseline_path = tmp_path / "baseline.json"
    fresh_path = tmp_path / "fresh.json"
    baseline_path.write_text(json.dumps(_report(als=(1.0, 0.1))))
    fresh_path.write_text(json.dumps(_report(als=(1.0, 0.1))))
    assert (
        gate.main(
            ["--baseline", str(baseline_path), "--fresh", str(fresh_path)]
        )
        == 0
    )
    fresh_path.write_text(json.dumps(_report(als=(5.0, 0.1))))
    assert (
        gate.main(
            ["--baseline", str(baseline_path), "--fresh", str(fresh_path)]
        )
        == 1
    )


def test_committed_baseline_is_valid(gate):
    baseline_path = (
        _MODULE_PATH.parent / "baseline" / "BENCH_kernels.json"
    )
    baseline = json.loads(baseline_path.read_text())
    _, failures = gate.compare_reports(baseline, baseline, threshold=1.5)
    assert failures == []
    assert {e["case"] for e in baseline["results"]} == {
        "sofia_als_sweep",
        "dynamic_steps",
        "olstec_rls_steps",
    }
