"""Argument validation helpers shared across the tensor subpackage.

These helpers centralize the error messages raised for malformed tensor
arguments so that every public function fails loudly and consistently.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ShapeError

__all__ = [
    "as_float",
    "as_tensor",
    "check_factor_matrices",
    "check_mask",
    "check_mode",
    "check_rank",
    "check_same_shape",
]


def as_float(array) -> np.ndarray:
    """Preserve float32/float64 dtypes; promote anything else to float64.

    The single home of the seam-wide dtype rule (the multi-argument
    promotion form lives in :func:`repro.tensor.kernels.result_dtype`):
    a float32 model stays float32, integers/bools/float16 promote to
    float64.  Shared by the tensor validators, the robust ψ/ρ
    primitives, and the Eq. 21-22 outlier split so the policy cannot
    drift between them.
    """
    arr = np.asarray(array)
    if arr.dtype in (np.dtype(np.float32), np.dtype(np.float64)):
        return arr
    return arr.astype(np.float64)


def as_tensor(data, *, min_ndim: int = 1, name: str = "tensor") -> np.ndarray:
    """Convert ``data`` to a float ndarray and validate its dimensionality.

    Parameters
    ----------
    data:
        Array-like input.
    min_ndim:
        Minimum number of modes required.
    name:
        Name used in error messages.

    Returns
    -------
    numpy.ndarray
        A float view/copy of ``data``: float32/float64 pass through
        (matching the kernel seam's dtype policy); anything else
        promotes to float64.
    """
    arr = as_float(data)
    if arr.ndim < min_ndim:
        raise ShapeError(
            f"{name} must have at least {min_ndim} mode(s), got {arr.ndim}"
        )
    if arr.size == 0:
        raise ShapeError(f"{name} must be non-empty")
    return arr


def check_mode(mode: int, ndim: int) -> int:
    """Validate a mode index against a tensor order, supporting negatives."""
    if not isinstance(mode, (int, np.integer)):
        raise ShapeError(f"mode must be an integer, got {type(mode).__name__}")
    if mode < 0:
        mode += ndim
    if not 0 <= mode < ndim:
        raise ShapeError(f"mode {mode} out of range for a {ndim}-way tensor")
    return int(mode)


def check_rank(rank: int) -> int:
    """Validate a CP rank."""
    if not isinstance(rank, (int, np.integer)) or rank < 1:
        raise ShapeError(f"rank must be a positive integer, got {rank!r}")
    return int(rank)


def check_same_shape(a: np.ndarray, b: np.ndarray, *, names=("a", "b")) -> None:
    """Raise :class:`ShapeError` unless ``a`` and ``b`` share a shape."""
    if a.shape != b.shape:
        raise ShapeError(
            f"{names[0]} and {names[1]} must share a shape; "
            f"got {a.shape} vs {b.shape}"
        )


def check_mask(mask, shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Validate an observation mask and return it as a boolean array.

    A mask marks observed entries with truthy values (the paper's indicator
    tensor ``Ω``, Eq. 3).
    """
    arr = np.asarray(mask)
    if arr.dtype != np.bool_:
        uniques = np.unique(arr)
        if not np.all(np.isin(uniques, (0, 1))):
            raise ShapeError("mask entries must be boolean or in {0, 1}")
        arr = arr.astype(bool)
    if shape is not None and arr.shape != tuple(shape):
        raise ShapeError(f"mask shape {arr.shape} does not match data {shape}")
    return arr


def check_factor_matrices(
    factors: Sequence[np.ndarray],
    *,
    shape: tuple[int, ...] | None = None,
) -> list[np.ndarray]:
    """Validate a list of CP factor matrices.

    All matrices must be 2-D with a common number of columns (the rank).
    When ``shape`` is given, row counts must match the tensor's mode lengths.
    """
    if len(factors) == 0:
        raise ShapeError("factor list must be non-empty")
    # Preserve float32/float64 (a float32 model keeps float32 factors);
    # anything else promotes to float64 as before.
    mats = [as_float(f) for f in factors]
    for i, mat in enumerate(mats):
        if mat.ndim != 2:
            raise ShapeError(f"factor {i} must be 2-D, got ndim={mat.ndim}")
    rank = mats[0].shape[1]
    for i, mat in enumerate(mats):
        if mat.shape[1] != rank:
            raise ShapeError(
                f"factor {i} has {mat.shape[1]} columns, expected rank {rank}"
            )
    if shape is not None:
        if len(shape) != len(mats):
            raise ShapeError(
                f"{len(mats)} factors cannot represent a {len(shape)}-way tensor"
            )
        for i, (mat, dim) in enumerate(zip(mats, shape)):
            if mat.shape[0] != dim:
                raise ShapeError(
                    f"factor {i} has {mat.shape[0]} rows, expected {dim}"
                )
    return mats
