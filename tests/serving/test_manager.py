"""End-to-end tests for the session manager.

The headline test pins the acceptance criterion of the serving PR: an
eviction-capped run (resident limit far below the session count)
produces **bit-identical** trajectories to an uncapped run, because the
checkpoint spill/rehydrate round-trip is exact.
"""

import numpy as np
import pytest

from repro.core import Sofia
from repro.core.serialization import load_sofia
from repro.exceptions import (
    ConfigError,
    SessionError,
    SessionExistsError,
    SessionNotFoundError,
    ShapeError,
)
from repro.serving import SessionManager

from tests.serving.conftest import make_config, make_session_stream

#: Deterministic scheduler settings: with the latency deadline pushed
#: out, batch boundaries are a pure function of the submission order.
DETERMINISTIC = dict(max_batch=4, max_latency_s=60.0, workers=2)


def run_fleet(n_sessions: int, n_steps: int, **manager_kwargs):
    """Ingest round-robin over a fleet; returns per-session outputs."""
    config = make_config()
    streams = {
        f"s{i}": make_session_stream(seed=10 + i, n_steps=n_steps)
        for i in range(n_sessions)
    }
    outputs = {}
    with SessionManager(**manager_kwargs) as manager:
        for sid in streams:
            manager.create_session(sid, config)
        for t in range(n_steps):
            for sid, (slices, masks) in streams.items():
                manager.ingest(sid, slices[t], masks[t])
        manager.drain()
        for sid in streams:
            outputs[sid] = {
                "results": manager.results(sid),
                "forecast": manager.forecast(sid, 4),
                "info": manager.session_info(sid),
            }
        metrics = manager.metrics.snapshot()
    return outputs, metrics


class TestEvictionDeterminism:
    def test_capped_run_is_bit_identical_to_uncapped(self):
        # 6 sessions, at most 2 resident: two thirds of the fleet lives
        # on disk at any time, forcing many spill/rehydrate cycles.
        uncapped, _ = run_fleet(6, 20, **DETERMINISTIC)
        capped, metrics = run_fleet(
            6, 20, max_resident=2, **DETERMINISTIC
        )
        assert metrics["evictions"] > 0
        assert metrics["rehydrations"] > 0
        for sid in uncapped:
            a, b = uncapped[sid], capped[sid]
            assert [seq for seq, _ in a["results"]] == [
                seq for seq, _ in b["results"]
            ]
            for (_, completed_a), (_, completed_b) in zip(
                a["results"], b["results"]
            ):
                np.testing.assert_array_equal(completed_a, completed_b)
            np.testing.assert_array_equal(a["forecast"], b["forecast"])


class TestWarmupAndStreaming:
    def test_session_warms_up_then_streams(self):
        config = make_config()
        slices, masks = make_session_stream(seed=3, n_steps=20)
        with SessionManager(**DETERMINISTIC) as manager:
            manager.create_session("s", config)
            assert manager.session_info("s")["status"] == "warming"
            for t in range(20):
                seq = manager.ingest("s", slices[t], masks[t])
                assert seq == t
            manager.drain("s")
            info = manager.session_info("s")
            assert info["status"] in ("ready", "evicted")
            assert info["consumed"] == 20
            results = manager.results("s")
            # Every slice has a result: warmup 0..7, dynamic 8..19.
            assert [seq for seq, _ in results] == list(range(20))

    def test_trajectory_matches_plain_sofia(self):
        # The serving path (warmup buffering + micro-batch flushes)
        # must reproduce exactly what a hand-driven Sofia computes with
        # the same batch boundaries.
        config = make_config()
        slices, masks = make_session_stream(seed=4, n_steps=16)
        with SessionManager(**DETERMINISTIC) as manager:
            manager.create_session("s", config)
            for t in range(16):
                manager.ingest("s", slices[t], masks[t])
            manager.drain("s")
            served = manager.results("s")
            served_forecast = manager.forecast("s", 3)

        sofia = Sofia(config)
        init_steps = config.init_steps  # 8
        completed = sofia.initialize(
            slices[:init_steps], masks[:init_steps]
        )
        expected = list(completed)
        # Ingestion fed the scheduler 16 slices; after the 8-slice
        # warmup the dynamic slices flush in max_batch=4 chunks aligned
        # the same way: [8..11], [12..15].
        for start in (8, 12):
            steps = sofia.step_batch(
                np.stack(slices[start:start + 4]),
                np.stack(masks[start:start + 4]),
            )
            expected.extend(step.completed for step in steps)
        assert len(served) == 16
        for (seq, got), want in zip(served, expected):
            np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(served_forecast, sofia.forecast(3))

    def test_results_window_is_bounded(self):
        config = make_config()
        slices, masks = make_session_stream(seed=5, n_steps=24)
        with SessionManager(
            keep_results=5, **DETERMINISTIC
        ) as manager:
            manager.create_session("s", config)
            for t in range(24):
                manager.ingest("s", slices[t], masks[t])
            manager.drain("s")
            results = manager.results("s")
            assert [seq for seq, _ in results] == list(range(19, 24))
            # since_seq filters within the window.
            assert [
                seq for seq, _ in manager.results("s", since_seq=22)
            ] == [22, 23]

    def test_impute_keeps_observed_entries(self, checkpoint):
        slices, masks = make_session_stream(seed=6, n_steps=2)
        with SessionManager(**DETERMINISTIC) as manager:
            manager.create_session("s", checkpoint=checkpoint)
            imputed = manager.impute("s", slices[0], masks[0])
            np.testing.assert_array_equal(
                imputed[masks[0]], slices[0][masks[0]]
            )
            # Missing entries are filled with something finite.
            assert np.isfinite(imputed).all()

    def test_warm_start_from_checkpoint_is_ready(self, checkpoint):
        with SessionManager(**DETERMINISTIC) as manager:
            info = manager.create_session("s", checkpoint=checkpoint)
            assert info["status"] == "ready"
            assert info["warmup_needed"] == 0

    def test_close_session_checkpoint_continues_identically(
        self, checkpoint, tmp_path
    ):
        slices, masks = make_session_stream(seed=7, n_steps=12)
        with SessionManager(**DETERMINISTIC) as manager:
            manager.create_session("s", checkpoint=checkpoint)
            for t in range(8):
                manager.ingest("s", slices[t], masks[t])
            saved = manager.close_session(
                "s", checkpoint_path=tmp_path / "final.npz"
            )
            assert saved is not None
            assert "s" not in manager.list_sessions()

        # A model restored from the final checkpoint continues exactly
        # like an unserved model fed the same slices.
        reference = load_sofia(checkpoint)
        for start in (0, 4):
            reference.step_batch(
                np.stack(slices[start:start + 4]),
                np.stack(masks[start:start + 4]),
            )
        restored = load_sofia(saved)
        a = reference.step(slices[8], masks[8])
        b = restored.step(slices[8], masks[8])
        np.testing.assert_array_equal(a.completed, b.completed)


class TestPerSessionBackends:
    def test_sessions_pinned_to_different_backends_agree(self, checkpoint):
        slices, masks = make_session_stream(seed=8, n_steps=8)
        with SessionManager(**DETERMINISTIC) as manager:
            manager.create_session(
                "fast", checkpoint=checkpoint, kernel_backend="batched"
            )
            manager.create_session(
                "slow", checkpoint=checkpoint, kernel_backend="reference"
            )
            for t in range(8):
                manager.ingest("fast", slices[t], masks[t])
                manager.ingest("slow", slices[t], masks[t])
            manager.drain()
            fast = manager.results("fast")
            slow = manager.results("slow")
        for (_, a), (_, b) in zip(fast, slow):
            np.testing.assert_allclose(a, b, atol=1e-8, rtol=1e-8)

    def test_unknown_backend_rejected_at_create(self, checkpoint):
        with SessionManager(**DETERMINISTIC) as manager:
            with pytest.raises(ConfigError, match="unknown kernel backend"):
                manager.create_session(
                    "s", checkpoint=checkpoint, kernel_backend="nope"
                )


class TestValidationAndFailure:
    def test_duplicate_session_rejected(self):
        with SessionManager(**DETERMINISTIC) as manager:
            manager.create_session("s", make_config())
            with pytest.raises(SessionExistsError):
                manager.create_session("s", make_config())

    def test_unknown_session_rejected(self):
        with SessionManager(**DETERMINISTIC) as manager:
            with pytest.raises(SessionNotFoundError):
                manager.ingest("ghost", np.zeros((5, 4)))
            with pytest.raises(SessionNotFoundError):
                manager.forecast("ghost", 2)

    def test_config_and_checkpoint_are_exclusive(self, checkpoint):
        with SessionManager(**DETERMINISTIC) as manager:
            with pytest.raises(ConfigError, match="exactly one"):
                manager.create_session(
                    "s", make_config(), checkpoint=checkpoint
                )
            with pytest.raises(ConfigError, match="exactly one"):
                manager.create_session("s")

    def test_bad_config_dict_rejected(self):
        with SessionManager(**DETERMINISTIC) as manager:
            with pytest.raises(ConfigError):
                manager.create_session("s", {"rank": 0, "period": 4})
            with pytest.raises(ConfigError, match="invalid session config"):
                manager.create_session(
                    "s", {"rank": 2, "period": 4, "warp_drive": True}
                )

    def test_inconsistent_slice_shape_rejected_synchronously(self):
        with SessionManager(**DETERMINISTIC) as manager:
            manager.create_session("s", make_config())
            manager.ingest("s", np.zeros((5, 4)))
            with pytest.raises(ShapeError, match="expects slices of shape"):
                manager.ingest("s", np.zeros((3, 3)))

    def test_sync_ops_on_warming_session_raise(self):
        with SessionManager(**DETERMINISTIC) as manager:
            manager.create_session("s", make_config())
            with pytest.raises(SessionError, match="warming up"):
                manager.forecast("s", 2)

    def test_impute_on_warming_session_has_no_side_effect(self):
        # A rejected impute must not leave its slice in the warmup
        # buffer — otherwise a natural client retry after warmup would
        # have fed the slice into the initialization window twice.
        config = make_config()
        slices, masks = make_session_stream(seed=13, n_steps=4)
        with SessionManager(**DETERMINISTIC) as manager:
            manager.create_session("s", config)
            for t in range(3):
                manager.ingest("s", slices[t], masks[t])
            with pytest.raises(SessionError, match="warming up"):
                manager.impute("s", slices[3], masks[3])
            manager.drain("s")
            info = manager.session_info("s")
            assert info["warmup_ingested"] == 3
            # The next ingest gets the next sequence number: the
            # rejected impute never consumed one.
            assert manager.ingest("s", slices[3], masks[3]) == 3

    def test_flush_failure_marks_session_failed(self, checkpoint, monkeypatch):
        slices, masks = make_session_stream(seed=9, n_steps=4)
        with SessionManager(**DETERMINISTIC) as manager:
            manager.create_session("s", checkpoint=checkpoint)

            def explode(self, *args, **kwargs):
                raise RuntimeError("kaboom")

            monkeypatch.setattr(Sofia, "step_batch", explode)
            for t in range(4):
                manager.ingest("s", slices[t], masks[t])
            manager.drain("s")
            assert manager.metrics.snapshot()["flush_failures"] == 1
            info = manager.session_info("s")
            assert "kaboom" in info["failure"]
            with pytest.raises(SessionError, match="kaboom"):
                manager.ingest("s", slices[0], masks[0])
            with pytest.raises(SessionError, match="kaboom"):
                manager.forecast("s", 2)
