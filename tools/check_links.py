"""Check that relative links and path references in the docs resolve.

Scans markdown files (``docs/`` and the top-level ``README.md`` by
default) for two kinds of references:

* markdown links ``[text](target)`` — external schemes (http, https,
  mailto) are skipped, ``#anchors`` are stripped, and the remaining
  path must exist relative to the file containing the link;
* backticked repo paths like ``benchmarks/bench_scenarios.py`` or
  ``src/repro/serving/`` — anything that looks like a multi-segment
  path with a known source suffix (or trailing slash) must exist
  relative to the repository root, so prose that names a file keeps
  pace with renames.

Exit status is non-zero if anything dangles.  Run::

    python tools/check_links.py
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK_RE = re.compile(r"`([^`\s]+)`")

#: Backticked tokens must look like repo paths to be checked: at least
#: one slash plus a recognised suffix (or a trailing slash for
#: directories).  Everything else in backticks is code, not a path.
PATH_SUFFIXES = (".py", ".md", ".json", ".yml", ".yaml", ".toml", ".txt")

EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")


def iter_markdown_files(paths: list[pathlib.Path]):
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.suffix == ".md":
            yield path


def check_file(markdown: pathlib.Path) -> list[str]:
    """Dangling references in one file, as report lines."""
    problems = []
    text = markdown.read_text()
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_SCHEMES) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        resolved = (markdown.parent / path).resolve()
        if not resolved.exists():
            problems.append(f"{markdown}: broken link -> {target}")
    for match in BACKTICK_RE.finditer(text):
        token = match.group(1)
        if "/" not in token or token.startswith(EXTERNAL_SCHEMES):
            continue
        if token.startswith("/"):
            continue  # absolute paths are URL routes, not repo files
        is_dir_ref = token.endswith("/")
        if not is_dir_ref and not token.endswith(PATH_SUFFIXES):
            continue
        cleaned = token.rstrip("/:")
        if cleaned.startswith("./"):
            cleaned = cleaned[2:]
        if not (REPO_ROOT / cleaned).exists():
            problems.append(f"{markdown}: path reference -> {token}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when docs contain dangling relative links or "
        "references to repo paths that don't exist."
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files/directories to scan (default: docs/ and README.md)",
    )
    args = parser.parse_args(argv)
    if args.paths:
        roots = [pathlib.Path(p) for p in args.paths]
    else:
        roots = [REPO_ROOT / "docs", REPO_ROOT / "README.md"]

    problems = []
    scanned = 0
    for markdown in iter_markdown_files(roots):
        scanned += 1
        problems.extend(check_file(markdown))
    if problems:
        print(f"{len(problems)} dangling reference(s):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"checked {scanned} markdown file(s): all references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
