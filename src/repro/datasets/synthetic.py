"""Synthetic tensor streams: seasonal low-rank generators.

Provides the generic seasonal generator used by the dataset stand-ins,
the exact Fig. 2 construction (30x30x90, rank 3, sinusoidal temporal
columns), and the Fig. 7 scalability stream.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ShapeError
from repro.tensor import kruskal_to_tensor
from repro.tensor.random import as_generator

__all__ = [
    "SyntheticStream",
    "fig2_tensor",
    "scalability_stream",
    "seasonal_stream",
]


@dataclass(frozen=True)
class SyntheticStream:
    """A generated stream together with its ground-truth factors."""

    data: np.ndarray = field(repr=False)
    temporal: np.ndarray = field(repr=False)
    non_temporal: list[np.ndarray] = field(repr=False)
    period: int

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.data.shape)

    @property
    def rank(self) -> int:
        return int(self.temporal.shape[1])


def seasonal_stream(
    dims: Sequence[int],
    rank: int,
    period: int,
    n_steps: int,
    *,
    amplitude_range: tuple[float, float] = (0.5, 2.0),
    offset_range: tuple[float, float] = (1.0, 2.0),
    trend: float = 0.0,
    noise: float = 0.0,
    nonnegative: bool = True,
    seed: int | np.random.Generator | None = 0,
) -> SyntheticStream:
    """Low-rank stream with sinusoidal seasonal temporal factors.

    Mirrors the paper's Fig. 2 construction: temporal column ``r`` is
    ``a_r sin(2π t / m + b_r) + c_r (+ trend·t)`` and non-temporal factors
    are uniform on [0, 1] (or standard normal with
    ``nonnegative=False``).

    Parameters
    ----------
    dims:
        Non-temporal mode lengths.
    rank, period, n_steps:
        CP rank ``R``, seasonal period ``m``, stream length ``T``.
    amplitude_range, offset_range:
        Ranges for ``a_r`` and ``c_r``.
    trend:
        Per-step linear drift added to every temporal column.
    noise:
        Std of additive Gaussian noise relative to the stream's RMS.
    nonnegative:
        Draw non-temporal factors from U[0, 1) instead of N(0, 1).
    seed:
        Seed or generator.
    """
    if n_steps < 1:
        raise ShapeError(f"n_steps must be >= 1, got {n_steps}")
    rng = as_generator(seed)
    t = np.arange(n_steps)
    amplitude = rng.uniform(*amplitude_range, rank)
    phase = rng.uniform(0, 2 * np.pi, rank)
    offset = rng.uniform(*offset_range, rank)
    temporal = np.stack(
        [
            amplitude[r] * np.sin(2 * np.pi * t / period + phase[r])
            + offset[r]
            + trend * t
            for r in range(rank)
        ],
        axis=1,
    )
    if nonnegative:
        non_temporal = [rng.uniform(0, 1, size=(d, rank)) for d in dims]
    else:
        non_temporal = [rng.normal(size=(d, rank)) for d in dims]
    data = np.stack(
        [
            kruskal_to_tensor(non_temporal, weights=temporal[i])
            for i in range(n_steps)
        ],
        axis=-1,
    )
    if noise > 0:
        rms = float(np.sqrt(np.mean(data**2)))
        data = data + rng.normal(0, noise * max(rms, 1e-12), data.shape)
    return SyntheticStream(
        data=data,
        temporal=temporal,
        non_temporal=non_temporal,
        period=period,
    )


def fig2_tensor(
    *, seed: int | np.random.Generator | None = 0
) -> SyntheticStream:
    """The paper's Fig. 2 synthetic tensor: 30x30x90, rank 3, m = 30.

    Temporal columns are ``a_r sin((2π/m) i + b_r) + c_r`` with
    ``a_r, c_r ~ U[-2, 2]`` and ``b_r ~ U[0, 2π]`` (§VI-B).
    """
    rng = as_generator(seed)
    rank, period, n_steps = 3, 30, 90
    t = np.arange(n_steps)
    a = rng.uniform(-2, 2, rank)
    b = rng.uniform(0, 2 * np.pi, rank)
    c = rng.uniform(-2, 2, rank)
    temporal = np.stack(
        [a[r] * np.sin(2 * np.pi * t / period + b[r]) + c[r] for r in range(rank)],
        axis=1,
    )
    non_temporal = [rng.uniform(0, 1, size=(30, rank)) for _ in range(2)]
    data = np.stack(
        [
            kruskal_to_tensor(non_temporal, weights=temporal[i])
            for i in range(n_steps)
        ],
        axis=-1,
    )
    return SyntheticStream(
        data=data,
        temporal=temporal,
        non_temporal=non_temporal,
        period=period,
    )


def scalability_stream(
    n_rows: int,
    n_cols: int,
    n_steps: int,
    *,
    period: int = 10,
    rank: int = 5,
    seed: int | np.random.Generator | None = 0,
) -> SyntheticStream:
    """Matrix stream for the Fig. 7 scalability sweep.

    The paper uses 500x500 subtensors for 5000 steps with ``m = 10`` and
    samples subsets of the first mode to vary the entries per step; this
    generator produces the same structure at a configurable size.
    """
    return seasonal_stream(
        dims=(n_rows, n_cols),
        rank=rank,
        period=period,
        n_steps=n_steps,
        seed=seed,
    )
