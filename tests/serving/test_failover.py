"""Tests for the self-healing shard fleet: probing, rebalance, failover.

The unit tier covers the weighted ring, tolerant metric aggregation,
and the router's GET-only retry policy (driven through the chaos
proxy, so the failures happen on the wire).  The integration tier
kills real shard HTTP servers and asserts the recovery invariants:
failover rehydrates sessions bit-identically up to the last flush,
acked-but-unflushed slices surface as an honest ``degraded`` count, a
shard dying mid-migration leaves the source authoritative, and a
prober flap below the failure threshold triggers nothing.  The final
test is the chaos gate CI runs: a two-shard replay with one shard
killed mid-run must finish with zero lost sessions and zero send
errors.
"""

import threading
import time
from collections import Counter
from contextlib import contextmanager

import numpy as np
import pytest

from repro.exceptions import ConfigError, SessionError
from repro.scenarios.replay import run_replay
from repro.serving import HTTPServingClient, SessionManager
from repro.serving.gateway import serve
from repro.serving.shard import (
    HashRing,
    aggregate_snapshots,
    serve_router,
    start_local_cluster,
)
from tests.serving.conftest import CONFIG_KWARGS, make_session_stream
from tests.serving.faults import start_chaos_proxy


@contextmanager
def _gateway(**manager_kwargs):
    manager = SessionManager(**manager_kwargs)
    server = serve(manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{server.server_address[0]}:{server.port}"
    finally:
        server.shutdown()
        server.server_close()
        manager.close()
        thread.join(timeout=5)


@contextmanager
def _router(urls, **kwargs):
    router = serve_router(urls, **kwargs)
    thread = threading.Thread(target=router.serve_forever, daemon=True)
    thread.start()
    try:
        yield router
    finally:
        router.shutdown()
        router.server_close()
        thread.join(timeout=5)


def _wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _placement(cluster, session_id):
    for shard in cluster.shard_urls:
        if session_id in HTTPServingClient(shard).list_sessions():
            return shard
    raise AssertionError(f"{session_id} not found on any shard")


def _ingest_all(client, session_id, slices, masks):
    for values, mask in zip(slices, masks):
        client.ingest(session_id, values, mask)


def _flushed(url):
    return HTTPServingClient(url).metrics()["slices_flushed"]


class TestWeightedRing:
    def test_unit_weights_reproduce_the_unweighted_ring(self):
        shards = ["http://a:1", "http://b:2", "http://c:3"]
        plain = HashRing(shards)
        weighted = HashRing(shards, weights={url: 1.0 for url in shards})
        for i in range(400):
            sid = f"session-{i}"
            assert plain.shard_for(sid) == weighted.shard_for(sid)

    def test_heavier_shard_attracts_more_sessions(self):
        shards = ["http://a:1", "http://b:2", "http://c:3"]
        ring = HashRing(shards, weights={"http://a:1": 3.0})
        counts = Counter(
            ring.shard_for(f"session-{i}") for i in range(1200)
        )
        assert counts["http://a:1"] > counts["http://b:2"]
        assert counts["http://a:1"] > counts["http://c:3"]
        # Capacity 3 of 5 total: well over a third of the keyspace.
        assert counts["http://a:1"] > 1200 // 3

    def test_weights_surface_in_topology(self):
        ring = HashRing(
            ["http://a:1", "http://b:2"], weights={"http://b:2": 2.5}
        )
        assert ring.weights == {"http://a:1": 1.0, "http://b:2": 2.5}

    def test_weight_validation(self):
        with pytest.raises(ConfigError):
            HashRing(["http://a:1"], weights={"http://a:1": 0.0})
        with pytest.raises(ConfigError):
            HashRing(["http://a:1"], weights={"http://a:1": -2.0})
        with pytest.raises(ConfigError):
            HashRing(["http://a:1"], weights={"http://nope:9": 1.0})


class TestAggregateTolerance:
    def test_unreachable_shard_skipped_not_fatal(self):
        merged = aggregate_snapshots(
            {
                "http://a:1": {
                    "slices_ingested": 10,
                    "slices_flushed": 10,
                },
                "http://b:2": None,
            }
        )
        assert merged["slices_ingested"] == 10
        assert merged["unreachable_shards"] == ["http://b:2"]
        assert set(merged["shards"]) == {"http://a:1", "http://b:2"}

    def test_all_reachable_lists_nothing(self):
        merged = aggregate_snapshots(
            {"http://a:1": {"slices_ingested": 1}}
        )
        assert merged["unreachable_shards"] == []


class TestRouterRetries:
    def test_get_retry_rides_out_a_dropped_connection(self):
        with _gateway(max_batch=1, max_latency_s=10.0) as upstream:
            proxy = start_chaos_proxy(upstream)
            try:
                with _router([proxy.url], retries=2) as router:
                    client = HTTPServingClient(router.url)
                    client.create_session("retry-s", dict(CONFIG_KWARGS))
                    rule = proxy.blackhole(
                        r"/sessions/retry-s$", times=1, method="GET"
                    )
                    info = client.session_info("retry-s")
                    assert info["session_id"] == "retry-s"
                    assert rule.hits == 1
                    assert (
                        router.router_metrics()["retried_requests"] >= 1
                    )
            finally:
                proxy.close()

    def test_non_get_is_never_retried(self):
        # An ingest that died mid-flight may still have been applied:
        # the router must fail it upward instead of re-sending.
        slices, masks = make_session_stream(seed=51, n_steps=2)
        with _gateway(max_batch=1, max_latency_s=10.0) as upstream:
            proxy = start_chaos_proxy(upstream)
            try:
                with _router([proxy.url], retries=2) as router:
                    client = HTTPServingClient(router.url)
                    client.create_session("no-retry", dict(CONFIG_KWARGS))
                    rule = proxy.blackhole(
                        r"/sessions/no-retry/slices$",
                        times=1,
                        method="POST",
                    )
                    with pytest.raises(SessionError) as excinfo:
                        client.ingest("no-retry", slices[0], masks[0])
                    assert excinfo.value.http_status == 502
                    assert rule.hits == 1  # one attempt, no retry
                    retried = router.router_metrics()["retried_requests"]
                    # The failed POST contributed no retries.
                    client.ingest("no-retry", slices[1], masks[1])
                    assert (
                        router.router_metrics()["retried_requests"]
                        == retried
                    )
            finally:
                proxy.close()


class TestProberAndPlacement:
    def test_probe_once_populates_health(self):
        with start_local_cluster(
            2, max_batch=1, max_latency_s=10.0
        ) as cluster:
            sweep = cluster.router.probe_once()
            assert sorted(sweep["alive"]) == sorted(cluster.shard_urls)
            assert sweep["dead"] == []
            assert sweep["failover"] == {}
            health = cluster.router.describe()["health"]
            for url in cluster.shard_urls:
                assert health[url]["alive"] is True
                assert health[url]["probes"] == 1
                assert health[url]["consecutive_failures"] == 0

    def test_flap_below_threshold_triggers_nothing(self):
        # Two failed sweeps against a threshold of three, then the
        # shard answers again: no failover, no overrides, no storm.
        with _gateway(max_batch=1, max_latency_s=10.0) as up_a:
            with _gateway(max_batch=1, max_latency_s=10.0) as up_b:
                proxy_a = start_chaos_proxy(up_a)
                proxy_b = start_chaos_proxy(up_b)
                try:
                    with _router(
                        [proxy_a.url, proxy_b.url], probe_failures=3
                    ) as router:
                        proxy_a.blackhole(r"/metrics$", times=2)
                        for expected_failures in (1, 2):
                            sweep = router.probe_once()
                            assert sweep["dead"] == []
                            assert sweep["failover"] == {}
                            health = router.describe()["health"]
                            assert (
                                health[proxy_a.url][
                                    "consecutive_failures"
                                ]
                                == expected_failures
                            )
                        # The flap ends; the streak resets to zero.
                        sweep = router.probe_once()
                        assert sweep["dead"] == []
                        health = router.describe()["health"]
                        assert (
                            health[proxy_a.url]["consecutive_failures"]
                            == 0
                        )
                        metrics = router.router_metrics()
                        assert metrics["failovers"] == 0
                        assert metrics["migrations"] == 0
                        assert metrics["placement_overrides"] == 0
                finally:
                    proxy_a.close()
                    proxy_b.close()

    def test_new_sessions_land_on_least_loaded_shard(self):
        with start_local_cluster(
            2, max_batch=1, max_latency_s=10.0
        ) as cluster:
            router = cluster.router
            # Before any probe the ring decides, load-unaware.
            assert router.place_new("pre-probe") == router.ring.shard_for(
                "pre-probe"
            )
            router.probe_once()
            loaded, spare = cluster.shard_urls
            with router._state_lock:
                router._health[loaded].resident_sessions = 5
            sid = next(
                f"lb-{i}"
                for i in range(200)
                if router.ring.shard_for(f"lb-{i}") == loaded
            )
            assert router.place_new(sid) == spare
            assert router.router_metrics()["load_placements"] == 1
            # With the spare marked dead, only live shards are
            # eligible — even for sessions the ring owes to the spare.
            with router._state_lock:
                router._health[spare].alive = False
            spare_owned = next(
                f"ld-{i}"
                for i in range(200)
                if router.ring.shard_for(f"ld-{i}") == spare
            )
            assert router.place_new(spare_owned) == loaded


class TestJoinDrain:
    def test_join_rebalances_and_drain_empties(self):
        slices, masks = make_session_stream(seed=52, n_steps=10)
        with start_local_cluster(
            2, max_batch=1, max_latency_s=10.0
        ) as cluster:
            client = HTTPServingClient(cluster.url)
            session_ids = [f"jd-{i}" for i in range(5)]
            for sid in session_ids:
                client.create_session(sid, dict(CONFIG_KWARGS))
                _ingest_all(client, sid, slices, masks)
            assert _wait_until(
                lambda: sum(
                    _flushed(url) for url in cluster.shard_urls
                )
                == 50
            )
            with _gateway(max_batch=1, max_latency_s=10.0) as extra:
                old_ring = HashRing(list(cluster.shard_urls))
                new_ring = HashRing([*cluster.shard_urls, extra])
                expected_moves = sorted(
                    sid
                    for sid in session_ids
                    if old_ring.shard_for(sid) != new_ring.shard_for(sid)
                )
                outcome = client.join_shard(extra)
                assert outcome["joined"] is True
                assert outcome["failed"] == {}
                assert sorted(outcome["moved"]) == expected_moves
                assert set(outcome["shards"]) == {
                    *cluster.shard_urls,
                    extra,
                }
                listing = HTTPServingClient(extra).list_sessions()
                assert sorted(listing) == expected_moves
                assert sorted(client.list_sessions()) == session_ids
                for sid in session_ids:
                    assert client.forecast(sid, 2).forecast.shape[0] == 2
                assert client.shards()["rebalances"] == 1

                # Drain it back out: the extra shard ends empty and
                # every session is reachable through the router again.
                outcome = client.drain_shard(extra)
                assert outcome["drained"] is True
                assert sorted(outcome["moved"]) == expected_moves
                assert HTTPServingClient(extra).list_sessions() == []
                assert tuple(client.shards()["shards"]) == (
                    cluster.shard_urls
                )
                assert sorted(client.list_sessions()) == session_ids
            for sid in session_ids:
                client.close_session(sid)

    def test_join_existing_shard_is_a_noop(self):
        with start_local_cluster(
            2, max_batch=1, max_latency_s=10.0
        ) as cluster:
            client = HTTPServingClient(cluster.url)
            outcome = client.join_shard(cluster.shard_urls[0])
            assert outcome["joined"] is False

    def test_join_and_drain_validation(self):
        with start_local_cluster(
            1, max_batch=1, max_latency_s=10.0
        ) as cluster:
            client = HTTPServingClient(cluster.url)
            with pytest.raises(ConfigError):
                client.join_shard("ftp://not-http")
            with pytest.raises(ConfigError):
                client.join_shard("http://x:1", weight=-1.0)
            with pytest.raises(ConfigError):
                client.drain_shard("http://never-joined:9")
            # Draining the last shard would leave nowhere to serve.
            with pytest.raises(ConfigError):
                client.drain_shard(cluster.shard_urls[0])

    def test_durable_cluster_refuses_manager_checkpoint_dir(self):
        # checkpoint_dir= would send every shard's checkpoints to one
        # flat dir the router's failover never searches — sessions
        # would silently become unrecoverable on shard death.
        with pytest.raises(ConfigError, match="checkpoint_root"):
            start_local_cluster(2, durable=True, checkpoint_dir="/tmp/x")


class TestFailover:
    def test_dead_shard_sessions_rehome_bit_identical(self):
        slices, masks = make_session_stream(seed=53, n_steps=12)
        with start_local_cluster(
            2,
            durable=True,
            probe_failures=2,
            max_batch=1,
            max_latency_s=10.0,
        ) as cluster:
            client = HTTPServingClient(cluster.url)
            session_ids = [f"fo-{i}" for i in range(4)]
            for sid in session_ids:
                client.create_session(sid, dict(CONFIG_KWARGS))
                _ingest_all(client, sid, slices, masks)
            root = cluster.checkpoint_root
            assert _wait_until(
                lambda: sum(
                    _flushed(url) for url in cluster.shard_urls
                )
                == 48
                and all(
                    list(root.glob(f"*/{sid}.npz"))
                    for sid in session_ids
                )
            )
            before = {
                sid: client.forecast(sid, 3).forecast
                for sid in session_ids
            }
            homes = {sid: _placement(cluster, sid) for sid in session_ids}
            victim = next(iter(sorted(set(homes.values()))))
            victims = sorted(
                sid for sid, home in homes.items() if home == victim
            )
            cluster.kill_shard(cluster.shard_urls.index(victim))

            cluster.router.probe_once()
            sweep = cluster.router.probe_once()
            assert sweep["dead"] == [victim]
            outcome = sweep["failover"][victim]
            assert outcome["rehomed"] == victims
            assert outcome["lost"] == {}

            # Nothing lost, nothing degraded: every session is still
            # served and forecasts match the pre-kill state bit-for-bit
            # (the checkpoint held the last flush, which was
            # everything).
            assert sorted(client.list_sessions()) == session_ids
            for sid in session_ids:
                info = client.session_info(sid)
                assert info["status"] == "ready"
                assert info["degraded"] == 0
                np.testing.assert_array_equal(
                    client.forecast(sid, 3).forecast, before[sid]
                )
            metrics = cluster.router.router_metrics()
            assert metrics["failovers"] == 1
            assert metrics["failed_over_sessions"] == len(victims)
            assert metrics["lost_sessions"] == 0
            assert metrics["dead_shards"] == [victim]

            # The stream continues through the router transparently.
            more, more_masks = make_session_stream(seed=54, n_steps=2)
            for sid in victims:
                _ingest_all(client, sid, more, more_masks)

    def test_degraded_accounting_matches_unflushed_slices(self):
        slices, masks = make_session_stream(seed=55, n_steps=18)
        with start_local_cluster(
            2,
            durable=True,
            probe_failures=1,
            max_batch=4,
            max_latency_s=30.0,
        ) as cluster:
            client = HTTPServingClient(cluster.url)
            client.create_session("deg-0", dict(CONFIG_KWARGS))
            # Sixteen slices = four full batches: all flushed and
            # checkpointed.  max_latency_s is far past the test's
            # horizon, so the two extra slices stay buffered — acked
            # by the shard, never applied.
            _ingest_all(client, "deg-0", slices[:16], masks[:16])
            home = _placement(cluster, "deg-0")
            root = cluster.checkpoint_root
            assert _wait_until(
                lambda: _flushed(home) == 16
                and bool(list(root.glob("*/deg-0.npz")))
            )
            _ingest_all(client, "deg-0", slices[16:], masks[16:])
            cluster.kill_shard(cluster.shard_urls.index(home))

            sweep = cluster.router.probe_once()
            assert sweep["dead"] == [home]
            assert sweep["failover"][home]["rehomed"] == ["deg-0"]

            info = client.session_info("deg-0")
            assert info["status"] == "degraded"
            assert info["degraded"] == 2  # exactly the unflushed tail
            assert cluster.router.router_metrics()[
                "degraded_sessions"
            ] == 1
            snapshot = client.metrics()
            assert snapshot["degraded_imports"] == 1
            # The mark is permanent: it survives an export of the
            # re-homed session (and therefore any later migration).
            exported = client.export_session("deg-0")
            assert exported["degraded"] == 2

    def test_shard_death_mid_migration_leaves_source_authoritative(self):
        slices, masks = make_session_stream(seed=56, n_steps=10)
        with start_local_cluster(
            2, max_batch=1, max_latency_s=10.0
        ) as cluster:
            client = HTTPServingClient(cluster.url)
            client.create_session("mid-mig", dict(CONFIG_KWARGS))
            _ingest_all(client, "mid-mig", slices, masks)
            source = _placement(cluster, "mid-mig")
            target = next(
                url for url in cluster.shard_urls if url != source
            )
            assert _wait_until(lambda: _flushed(source) == 10)
            cluster.kill_shard(cluster.shard_urls.index(target))

            with pytest.raises(SessionError, match="unreachable"):
                client.migrate_session("mid-mig", target)

            # The move never happened: no override, no migration
            # counted, and the source still serves the session.
            topology = client.shards()
            assert topology["overrides"] == {}
            assert topology["migrations"] == 0
            assert (
                "mid-mig"
                in HTTPServingClient(source).list_sessions()
            )
            more, more_masks = make_session_stream(seed=57, n_steps=2)
            _ingest_all(client, "mid-mig", more, more_masks)
            assert client.forecast("mid-mig", 2).forecast.shape[0] == 2

    def test_failover_without_checkpoints_reports_lost(self):
        # No durable tier: the dead shard's sessions cannot be
        # rebuilt, and the router must say so instead of pretending.
        slices, masks = make_session_stream(seed=58, n_steps=10)
        with start_local_cluster(
            2, probe_failures=1, max_batch=1, max_latency_s=10.0
        ) as cluster:
            client = HTTPServingClient(cluster.url)
            client.create_session("doomed", dict(CONFIG_KWARGS))
            _ingest_all(client, "doomed", slices, masks)
            home = _placement(cluster, "doomed")
            cluster.kill_shard(cluster.shard_urls.index(home))

            sweep = cluster.router.probe_once()
            outcome = sweep["failover"][home]
            assert outcome["rehomed"] == []
            assert "doomed" in outcome["lost"]
            metrics = cluster.router.router_metrics()
            assert metrics["lost_sessions"] == 1
            assert (
                "doomed" in cluster.router.describe()["lost_sessions"]
            )


class TestChaosReplayGate:
    """The CI chaos gate: kill one of two shards mid-replay.

    The replay drives the ``session_churn`` scenario through a durable
    two-shard cluster with the prober live.  A watcher thread waits
    until every session has a durable checkpoint, then hard-kills a
    shard that owns sessions.  The run must finish with zero send
    errors (the senders' retry window rides out the failover), every
    killed session re-homed, and none lost.
    """

    def test_shard_death_mid_replay_loses_no_sessions(self):
        with start_local_cluster(
            2,
            durable=True,
            probe_interval=0.2,
            probe_timeout=0.5,
            probe_failures=2,
            max_batch=1,
            max_latency_s=10.0,
        ) as cluster:
            root = cluster.checkpoint_root
            n_sessions = 6
            killed: dict = {}

            def killer():
                ok = _wait_until(
                    lambda: len(
                        {p.stem for p in root.glob("*/*.npz")}
                    )
                    >= n_sessions,
                    timeout=60.0,
                )
                if not ok:  # pragma: no cover - surfaced by asserts
                    killed["error"] = "checkpoints never appeared"
                    return
                per_shard = {
                    url: HTTPServingClient(url).list_sessions()
                    for url in cluster.shard_urls
                }
                victim = max(per_shard, key=lambda u: len(per_shard[u]))
                killed["victim"] = victim
                killed["sessions"] = sorted(per_shard[victim])
                cluster.kill_shard(cluster.shard_urls.index(victim))

            thread = threading.Thread(target=killer, daemon=True)
            thread.start()
            report = run_replay(
                "session_churn",
                url=cluster.url,
                rate=80.0,
                slices=40,
                tiny=True,
                connect_retry_s=30.0,
            )
            thread.join(timeout=60)
            assert "error" not in killed
            assert killed["sessions"], "victim shard owned no sessions"

            assert report.n_sessions == n_sessions
            assert report.send_errors == 0
            assert report.session_errors == {}
            assert report.stalled_sessions == ()
            assert report.drained
            # The outage was absorbed by in-place retries, visibly.
            assert report.retried_sends > 0

            router_stats = report.server_metrics["router"]
            assert router_stats["failovers"] == 1
            assert router_stats["lost_sessions"] == 0
            assert router_stats["failed_over_sessions"] == len(
                killed["sessions"]
            )
            assert router_stats["dead_shards"] == [killed["victim"]]
            assert (
                report.server_metrics["unreachable_shards"]
                == [killed["victim"]]
            )
