"""Micro-batching scheduler: buffer per-session slices, flush in bulk.

Incoming slices are cheap to *accept* (append to a per-session buffer
under a condition variable) and expensive to *apply* (a SOFIA dynamic
step).  The scheduler decouples the two: a pool of dispatch threads
flushes a session's buffered slices through one fused
``Sofia.step_batch`` call when either

* the buffer reaches ``max_batch`` slices (throughput trigger — this
  is where the PR-2 mini-batch amortization pays: one kernel dispatch
  per operation for the whole batch), or
* the oldest buffered slice has waited ``max_latency_s`` seconds
  (latency trigger — a trickling session is not starved just because
  it never fills a batch).

Cross-session fusion
--------------------
When a dispatch thread finds a due session, it also collects every
*other* currently-due session with the same fusion key (the runner's
``fusion_key`` — the manager keys initialized sessions by
``(subtensor shape, rank, dtype, kernel backend)``) into one fused
group, up to ``max_fused`` sessions.  The whole group is handed to the
runner as a single job list, so one dispatch — one worker wakeup, one
process round-trip on a process pool — amortizes across tenants
instead of costing once per session.  Grouping never changes *what* a
session computes: each member contributes exactly the batch it would
have flushed alone (oldest ``max_batch`` slices), so per-session
trajectories are bit-identical with fusion on or off.  Sessions whose
key is ``None`` (warming sessions, unkeyed runners) always flush
alone.

Ordering and determinism
------------------------
Slices of one session are always applied in arrival order: at most one
flush per session is in flight (``_inflight``), a flush takes the
buffer's oldest ``max_batch`` slices, and newer arrivals stay buffered
until the in-flight flush completes.  Different sessions flush
concurrently on the dispatch threads.  With the latency trigger
disabled (``max_latency_s`` large) the batch boundaries are a pure
function of the submission sequence — every ``max_batch`` slices,
remainder on drain — which is what makes serving runs reproducible
enough to pin bit-identical eviction tests on.

Clocks
------
All timing runs on one injectable monotonic ``clock`` (defaults to
:func:`time.monotonic`; wall clocks like ``time.time`` drift under NTP
adjustment and would break the latency deadline).  Arrival stamps must
come from the same clock — producers call :meth:`MicroBatchScheduler.
now` when building a :class:`PendingSlice`.  Tests freeze the clock by
injecting a fake and calling :meth:`MicroBatchScheduler.kick` after
advancing it, so deadline behaviour is pinned without real sleeps.

The runner is supplied by the session manager and must not raise (the
manager records per-session failures itself); a defensive try/finally
still guarantees the scheduler's bookkeeping survives a misbehaving
runner.  A plain ``flush(session_id, items)`` callable is accepted too
and wrapped into an unfused runner.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from collections.abc import Callable, Hashable
from dataclasses import dataclass, field
from typing import Any, Protocol

__all__ = ["FlushRunner", "MicroBatchScheduler", "PendingSlice"]


@dataclass(frozen=True)
class PendingSlice:
    """One buffered slice: sequence number, data, mask, arrival time.

    ``arrived_at`` must be a reading of the owning scheduler's clock
    (:meth:`MicroBatchScheduler.now`) — mixing clocks would skew the
    latency deadline.

    ``trace_id``/``accepted_at`` carry the slice's trace context when
    it is sampled for lifecycle tracing: ``accepted_at`` is the
    ingest-entry stamp (same clock), ``arrived_at`` doubles as the
    enqueue stamp.  Untraced slices leave both at their defaults —
    tracing off adds no per-slice state here.
    """

    seq: int
    subtensor: Any
    mask: Any
    arrived_at: float = field(compare=False)
    trace_id: str | None = field(default=None, compare=False)
    accepted_at: float | None = field(default=None, compare=False)


class FlushRunner(Protocol):
    """What the scheduler dispatches to (the manager, in production)."""

    def run(self, jobs: list[tuple[str, list[PendingSlice]]]) -> None:
        """Apply a fused group; one (session, batch) pair per member."""
        ...

    def fusion_key(self, session_id: str) -> Hashable | None:
        """Sessions sharing a non-``None`` key may flush as one group."""
        ...


class _CallableRunner:
    """Adapter: a bare ``flush(sid, items)`` callable, never fused."""

    def __init__(
        self, flush: Callable[[str, list[PendingSlice]], None]
    ) -> None:
        self._flush = flush

    def run(self, jobs: list[tuple[str, list[PendingSlice]]]) -> None:
        for session_id, items in jobs:
            self._flush(session_id, items)

    def fusion_key(self, session_id: str) -> Hashable | None:
        return None


class MicroBatchScheduler:
    """Per-session micro-batch buffers + fusing dispatch threads."""

    def __init__(
        self,
        runner: FlushRunner | Callable[[str, list[PendingSlice]], None],
        *,
        max_batch: int = 16,
        max_latency_s: float = 0.05,
        workers: int = 2,
        fuse: bool = True,
        max_fused: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_latency_s <= 0:
            raise ValueError(
                f"max_latency_s must be positive, got {max_latency_s}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_fused < 1:
            raise ValueError(f"max_fused must be >= 1, got {max_fused}")
        if callable(runner) and not hasattr(runner, "run"):
            runner = _CallableRunner(runner)
        self._runner: FlushRunner = runner
        self.max_batch = max_batch
        self.max_latency_s = max_latency_s
        self.fuse = fuse
        self.max_fused = max_fused
        self._clock = clock
        self._cv = threading.Condition()
        self._buffers: dict[str, deque[PendingSlice]] = {}
        #: Sessions with a flush in flight -> number of slices in it.
        self._inflight: dict[str, int] = {}
        #: Drain markers are *counted*, not set-membership: two threads
        #: draining the same session (or "*") concurrently must not
        #: clear each other's flush-immediately trigger when the first
        #: one finishes.
        self._draining: Counter[str] = Counter()
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-flush-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def now(self) -> float:
        """A reading of the scheduler's clock, for arrival stamps."""
        return self._clock()

    def submit(self, session_id: str, item: PendingSlice) -> None:
        """Buffer one slice; wakes a worker if the session became due."""
        with self._cv:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._buffers.setdefault(session_id, deque()).append(item)
            self._cv.notify_all()

    def kick(self) -> None:
        """Wake the dispatch threads to re-evaluate deadlines.

        Needed only when the injected clock advances without a submit
        (frozen-clock tests); real time wakes the workers by itself.
        """
        with self._cv:
            self._cv.notify_all()

    def pending_count(self, session_id: str) -> int:
        """Slices buffered or in-flight for this session."""
        with self._cv:
            buffered = len(self._buffers.get(session_id, ()))
            return buffered + self._inflight.get(session_id, 0)

    def total_pending(self) -> int:
        """Slices buffered or in-flight across every session.

        The ``pending_slices`` gauge: acked work not yet applied to
        any model.
        """
        with self._cv:
            buffered = sum(len(b) for b in self._buffers.values())
            return buffered + sum(self._inflight.values())

    def drain(self, session_id: str, timeout: float | None = None) -> None:
        """Block until every buffered slice of this session is applied.

        Marks the session due immediately (partial batches flush
        without waiting out the latency deadline).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            self._draining[session_id] += 1
            self._cv.notify_all()
            try:
                while (
                    self._buffers.get(session_id)
                    or session_id in self._inflight
                ):
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TimeoutError(
                                f"drain of session {session_id!r} timed out"
                            )
                    self._cv.wait(remaining)
            finally:
                self._draining[session_id] -= 1
                if self._draining[session_id] <= 0:
                    del self._draining[session_id]

    def drain_all(self, timeout: float | None = None) -> None:
        """Block until every session's buffer is applied."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            self._draining["*"] += 1
            self._cv.notify_all()
            try:
                while self._inflight or any(self._buffers.values()):
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TimeoutError("drain_all timed out")
                    self._cv.wait(remaining)
            finally:
                self._draining["*"] -= 1
                if self._draining["*"] <= 0:
                    del self._draining["*"]

    def forget(self, session_id: str) -> int:
        """Drop a session's buffered slices (for close); returns count."""
        with self._cv:
            dropped = len(self._buffers.pop(session_id, ()))
            self._cv.notify_all()
            return dropped

    def close(self, *, drain: bool = True) -> None:
        """Stop the workers, optionally applying all buffered work first."""
        if drain:
            self.drain_all()
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "MicroBatchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _due_locked(self, session_id: str, now: float) -> bool:
        buffer = self._buffers.get(session_id)
        if not buffer or session_id in self._inflight:
            return False
        return (
            len(buffer) >= self.max_batch
            or self._closed
            or session_id in self._draining
            or "*" in self._draining
            or now - buffer[0].arrived_at >= self.max_latency_s
        )

    def _take_batch_locked(self, session_id: str) -> list[PendingSlice]:
        """Pop the oldest ``max_batch`` slices and mark them in flight."""
        buffer = self._buffers[session_id]
        batch = [
            buffer.popleft()
            for _ in range(min(self.max_batch, len(buffer)))
        ]
        if not buffer:
            del self._buffers[session_id]
        self._inflight[session_id] = len(batch)
        return batch

    def _pop_due_group_locked(
        self, now: float
    ) -> list[tuple[str, list[PendingSlice]]]:
        """The next fused group of due sessions (empty when none due).

        The first due session anchors the group; when fusion is on and
        its key is not ``None``, every other currently-due session
        with the same key joins, up to ``max_fused`` members.  Each
        member contributes exactly the batch it would have flushed
        alone.
        """
        anchor = next(
            (
                session_id
                for session_id in self._buffers
                if self._due_locked(session_id, now)
            ),
            None,
        )
        if anchor is None:
            return []
        key = self._runner.fusion_key(anchor) if self.fuse else None
        peers: list[str] = []
        if key is not None:
            for session_id in self._buffers:
                if len(peers) >= self.max_fused - 1:
                    break
                if (
                    session_id != anchor
                    and self._due_locked(session_id, now)
                    and self._runner.fusion_key(session_id) == key
                ):
                    peers.append(session_id)
        return [
            (session_id, self._take_batch_locked(session_id))
            for session_id in (anchor, *peers)
        ]

    def _next_deadline_locked(self, now: float) -> float | None:
        """Seconds until the earliest latency deadline, if any."""
        wait = None
        for session_id, buffer in self._buffers.items():
            if not buffer or session_id in self._inflight:
                continue
            due_in = buffer[0].arrived_at + self.max_latency_s - now
            if wait is None or due_in < wait:
                wait = due_in
        if wait is None:
            return None
        return max(wait, 0.0)

    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                jobs: list[tuple[str, list[PendingSlice]]] = []
                while not jobs:
                    now = self._clock()
                    jobs = self._pop_due_group_locked(now)
                    if jobs:
                        break
                    if self._closed:
                        return
                    self._cv.wait(self._next_deadline_locked(now))
            try:
                self._runner.run(jobs)
            except Exception:  # noqa: BLE001 - workers must survive
                # The manager's runner records per-session failures
                # itself; a raise reaching this loop is a bug there,
                # and must not take the shared dispatch thread down
                # with it (other sessions still need flushing).
                pass
            finally:
                with self._cv:
                    for session_id, _ in jobs:
                        self._inflight.pop(session_id, None)
                    self._cv.notify_all()
