"""Vanilla ALS for incomplete tensors ([43], the Fig. 2 baseline).

Plain masked alternating least squares without smoothness or outlier
handling — exactly what :func:`repro.core.als.sofia_als` degenerates to
with the smoothness terms disabled.  Exposed both as a batch function and
as the initialization engine for the batch baselines (CPHW).
"""

from __future__ import annotations

import numpy as np

from repro.core.als import AlsResult, sofia_als
from repro.core.config import SofiaConfig
from repro.tensor import random_factors

__all__ = ["vanilla_als"]


def vanilla_als(
    tensor: np.ndarray,
    mask: np.ndarray,
    rank: int,
    *,
    max_iters: int = 200,
    tol: float = 1e-6,
    seed: int | None = 0,
    init_scale: float = 0.1,
) -> AlsResult:
    """Factorize an incomplete tensor with plain masked ALS.

    Parameters
    ----------
    tensor, mask:
        Data (time last, by convention) and observation indicator.
    rank:
        CP rank.
    max_iters, tol:
        ALS sweep cap and fitness-change tolerance.
    seed, init_scale:
        Random initialization control.

    Returns
    -------
    repro.core.als.AlsResult
    """
    config = SofiaConfig(
        rank=rank,
        period=1,
        lambda1=0.0,
        lambda2=0.0,
        max_als_iters=max_iters,
        tol=tol,
        seed=seed,
    )
    init = random_factors(tensor.shape, rank, seed=seed, scale=init_scale)
    return sofia_als(
        tensor,
        mask,
        np.zeros_like(np.asarray(tensor, dtype=np.float64)),
        init,
        config,
        smooth=False,
    )
