"""SOFIA dynamic updates: one online step per subtensor (paper Alg. 3).

Each step: forecast the temporal vector with Holt-Winters (Eq. 19),
predict the incoming subtensor (Eq. 20), split off outliers with the
Huber pre-cleaning rule (Eq. 21), advance the per-entry error scales
(Eq. 22), take one gradient step on the non-temporal factors (Eq. 24) and
the temporal vector (Eq. 25), and finally advance the HW components
(Eq. 26).  Work per step is ``O(|Ω_t| N R)`` in observed-entry count
(Lemma 2); this implementation uses dense masked arithmetic, so its cost
is linear in the subtensor size, which coincides with the bound for the
fully observed streams of the scalability experiment (Fig. 7).

The gradient contractions and Lipschitz bounds route through
:mod:`repro.tensor.kernels`: the MTTKRP kernel contracts the residual
against the factors directly (no materialized Khatri-Rao product) and
the trace bound ``trace(KᵀK)`` comes from per-column norm products.

Sparse routing
--------------
When the incoming mask is observed below ``config.density_threshold``
(5% by default), both :func:`dynamic_step` and
:func:`dynamic_step_batch` switch to a per-observed-entry execution
path: the Eq. 21-22 robust split runs only at the observed coordinates
(:func:`repro.core.outliers.robust_step_at` /
:func:`~repro.core.outliers.robust_step_batch_at`) and the Eq. 24-25
gradient contractions gather factor rows per entry
(:func:`repro.tensor.kernels.mttkrp_observed`) — ``O(|Ω_t| N R)``, the
bound of Lemma 2, instead of work linear in the subtensor volume.  The
arithmetic at observed entries is unchanged, so the two paths produce
the same trajectory to floating-point round-off; only the dense
per-step *outputs* (prediction, completion, the scattered outlier
tensor) remain volume-sized.

The routing defers to the active kernel backend via its
``keeps_dense_steps`` capability flag: the pure-dense ``"batched"``
and scalar ``"reference"`` backends (and, by default, any third-party
backend) are never bypassed, so pinning one (``set_backend``,
``REPRO_KERNEL_BACKEND``) exercises exactly that execution path end to
end, as the CI backend matrix relies on.  Under ``"auto"`` (the
default) and ``"sparse"``, which opt out of the flag, the density
threshold decides.

Device residency
----------------
Backends with host↔device converters (the ``"xp"`` backend on a
non-NumPy array module) get their transfers routed at the *step
boundary*: the factor matrices move to the device once per
:func:`dynamic_step` / :func:`dynamic_step_batch` call via
:func:`repro.tensor.kernels.to_device` and every kernel call of the
step reuses the resident copies; only the kernel *results* that feed
host-side logic (the robust split, the ``O(R)`` temporal recurrences,
the returned :class:`~repro.core.model.SofiaStep` arrays) come back
through :func:`repro.tensor.kernels.from_device`.  For backends
without converters both hooks are the identity, so the CPU paths are
untouched (and bit-identical to before).

Dtype: both entry points follow ``state.dtype`` (the factors' dtype),
so a model initialized under ``SofiaConfig(dtype="float32")`` runs its
whole dynamic phase in float32.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import SofiaConfig
from repro.core.model import SofiaModelState, SofiaStep
from repro.core.outliers import (
    robust_step,
    robust_step_at,
    robust_step_batch,
    robust_step_batch_at,
)
from repro.exceptions import ShapeError
from repro.tensor import kernels, kruskal_to_tensor
from repro.tensor.validation import check_mask

__all__ = [
    "dynamic_step",
    "dynamic_step_batch",
    "factor_gradient_step",
    "temporal_gradient_step",
]

def _takes_sparse_path(mask: np.ndarray, config: SofiaConfig) -> bool:
    """Whether this step's tensor-sized work runs per observed entry.

    Backends that declare ``keeps_dense_steps`` (the pure dense/scalar
    paths, and any third-party backend that wants its kernels to see
    all the work) are never bypassed.
    """
    if kernels.active_backend().keeps_dense_steps:
        return False
    return np.count_nonzero(mask) < config.density_threshold * mask.size


def factor_gradient_step(
    residual: np.ndarray,
    factors: Sequence[np.ndarray],
    temporal_forecast: np.ndarray,
    mu: float,
    *,
    normalize: bool = True,
    coords: tuple[np.ndarray, ...] | None = None,
    device_factors: Sequence | None = None,
) -> list[np.ndarray]:
    """Gradient update of all non-temporal factors (Eq. 24).

    ``U^(n)_t = U^(n)_{t-1} + 2μ_n R_(n) (⊙_{l≠n} U^(l)_{t-1}) diag(û)``.
    All gradients are evaluated at the *previous* factors, so the updates
    are computed first and applied together.

    With ``normalize=True`` (the default, ``step_normalization =
    "lipschitz"``) the step size is ``μ / trace(KᵀK)`` where
    ``K = (⊙_{l≠n} U^(l)) diag(û)`` — a trace upper bound on the Lipschitz
    constant of the data term's gradient, making the update stable for
    any ``μ < 1`` regardless of the data's scale.

    With ``coords`` given (the sparse path), ``residual`` is the 1-D
    vector of residual values at those observed coordinates and the
    contractions run per entry instead of over the dense subtensor.

    ``device_factors`` (device-resident copies of ``factors``, built
    once per step by the caller under a backend with device converters)
    are used for the kernel contractions; the returned factors are
    always host arrays built from ``factors``.
    """
    n_modes = len(factors)
    mats = factors if device_factors is None else device_factors
    updated = []
    for mode in range(n_modes):
        if coords is None:
            gradient = kernels.from_device(
                kernels.mttkrp(
                    residual, mats, mode, weights=temporal_forecast
                )
            )
        else:
            gradient = kernels.mttkrp_observed(
                coords, residual, factors, mode, weights=temporal_forecast
            )
        step = mu
        if normalize:
            others = [factors[l] for l in range(n_modes) if l != mode]
            lipschitz = float(
                np.sum(
                    kernels.kruskal_column_sq_norms(
                        others, weights=temporal_forecast
                    )
                )
            )
            step = mu / max(lipschitz, 1e-12)
        updated.append(factors[mode] + 2.0 * step * gradient)
    return updated


def temporal_gradient_step(
    residual: np.ndarray,
    factors: Sequence[np.ndarray],
    temporal_forecast: np.ndarray,
    previous_vector: np.ndarray,
    season_vector: np.ndarray,
    config: SofiaConfig,
    *,
    coords: tuple[np.ndarray, ...] | None = None,
    device_factors: Sequence | None = None,
) -> np.ndarray:
    """Gradient update of the temporal vector ``u_t`` (Eq. 25).

    Starts from the HW forecast ``û_{t|t-1}`` and descends the local cost,
    pulling toward the data term plus the lag-1 / lag-m smoothness
    anchors.  Under ``step_normalization = "lipschitz"`` the step is
    scaled by ``trace(KᵀK) + λ1 + λ2`` with ``K = ⊙_n U^(n)``.  With
    ``coords``, ``residual`` holds the values at those observed
    coordinates (the sparse path).
    """
    if coords is None:
        mats = factors if device_factors is None else device_factors
        data_term = kernels.from_device(kernels.mttkrp(residual, mats, None))
    else:
        data_term = kernels.mttkrp_observed(coords, residual, factors, None)
    step = config.mu
    if config.step_normalization == "lipschitz":
        lipschitz = (
            float(np.sum(kernels.kruskal_column_sq_norms(factors)))
            + config.lambda1
            + config.lambda2
        )
        step = config.mu / max(lipschitz, 1e-12)
    return temporal_forecast + 2.0 * step * (
        data_term
        + config.lambda1 * previous_vector
        + config.lambda2 * season_vector
        - (config.lambda1 + config.lambda2) * temporal_forecast
    )


def dynamic_step(
    state: SofiaModelState,
    subtensor: np.ndarray,
    mask: np.ndarray,
    config: SofiaConfig,
) -> SofiaStep:
    """Process one incoming subtensor (the body of Alg. 3).

    Mutates ``state`` in place (factors, HW components, error scales,
    temporal ring buffer, step counter) and returns the per-step outputs.
    """
    dtype = state.dtype
    y = np.asarray(subtensor, dtype=dtype)
    m = check_mask(mask, state.subtensor_shape)
    if y.shape != state.subtensor_shape:
        raise ValueError(
            f"subtensor shape {y.shape} does not match model "
            f"{state.subtensor_shape}"
        )
    resident = kernels.active_backend().to_device is not None
    device_factors = (
        [kernels.to_device(f) for f in state.non_temporal]
        if resident
        else None
    )

    # (1) Forecast the temporal vector and the subtensor (Eq. 19-20).
    u_forecast = state.hw.forecast_one_step().astype(dtype, copy=False)
    if resident:
        prediction = kernels.from_device(
            kernels.kruskal_reconstruct_rows(
                device_factors, u_forecast[None, :]
            )[0]
        )
    else:
        prediction = kruskal_to_tensor(state.non_temporal, weights=u_forecast)

    # (2) Estimate outliers against the forecast (Eq. 21), then advance the
    #     error scale (Eq. 22) in one fused pass over the shared residual —
    #     outliers are judged against the *previous* scale, which is
    #     SOFIA's robustness tweak.  Below the density threshold the
    #     split runs only at the observed coordinates and ``residual``
    #     becomes the 1-D vector of values there (the sparse path).
    if _takes_sparse_path(m, config):
        coords = np.nonzero(m)
        observed_values = y[coords]
        predicted_values = prediction[coords]
        outlier_values, state.sigma = robust_step_at(
            coords,
            observed_values,
            predicted_values,
            state.sigma,
            k=config.huber_k,
            phi=config.phi,
            ck=config.biweight_c,
        )
        outliers = np.zeros_like(y)
        outliers[coords] = outlier_values
        residual = observed_values - outlier_values - predicted_values
    else:
        coords = None
        outliers, state.sigma = robust_step(
            y,
            prediction,
            state.sigma,
            m,
            k=config.huber_k,
            phi=config.phi,
            ck=config.biweight_c,
        )
        residual = np.where(m, y - outliers - prediction, 0.0)

    # (3) Gradient steps on the factors (Eq. 24) and the temporal vector
    #     (Eq. 25), both evaluated at the previous factors.  Under a
    #     device backend the residual moves to the device once and the
    #     contractions reuse the resident factor copies.
    if resident and coords is None:
        residual = kernels.to_device(residual)
    new_factors = factor_gradient_step(
        residual,
        state.non_temporal,
        u_forecast,
        config.mu,
        normalize=config.step_normalization == "lipschitz",
        coords=coords,
        device_factors=device_factors,
    )
    u_new = temporal_gradient_step(
        residual,
        state.non_temporal,
        u_forecast,
        state.previous_vector,
        state.season_vector,
        config,
        coords=coords,
        device_factors=device_factors,
    )
    state.non_temporal = new_factors

    # (4) Advance the Holt-Winters components (Eq. 26) and bookkeeping.
    state.hw.update(u_new)
    state.push_temporal(u_new)
    state.t += 1

    if resident:
        completed = kernels.from_device(
            kernels.kruskal_reconstruct_rows(
                [kernels.to_device(f) for f in new_factors], u_new[None, :]
            )[0]
        )
    else:
        completed = kruskal_to_tensor(state.non_temporal, weights=u_new)
    return SofiaStep(
        completed=completed,
        outliers=outliers,
        prediction=prediction,
        temporal_forecast=u_forecast,
        temporal_vector=u_new,
    )


def dynamic_step_batch(
    state: SofiaModelState,
    subtensors: np.ndarray,
    masks: np.ndarray,
    config: SofiaConfig,
) -> list[SofiaStep]:
    """Process ``B`` incoming subtensors as one mini-batch (Alg. 3, batched).

    The expensive tensor-sized work of ``B`` consecutive dynamic steps is
    fused into one kernel call each: the Eq. 20 predictions and the final
    completions run as one :func:`repro.tensor.kernels.kruskal_reconstruct_rows`
    call per batch, and the Eq. 24-25 gradient contractions run as one
    :func:`repro.tensor.kernels.mttkrp` call per mode over the residual
    stack (the batch axis contracts against the forecast-weight matrix,
    which is exactly the sum of the per-step gradients).  Only ``O(R)``
    recurrences (Holt-Winters, ring buffer) and the element-wise robust
    scale scan stay sequential in ``B``.

    Below ``config.density_threshold`` observed fraction the robust
    split and the gradient contractions run per observed entry (see the
    module docstring) — on large sparse batches this skips the dense
    element-wise robust pass over the stacked batch entirely.

    Semantics relative to the sequential :func:`dynamic_step` trajectory:

    * ``B = 1`` delegates to :func:`dynamic_step` and is bit-identical.
    * ``B > 1`` freezes the factor matrices at the batch boundary and
      forecasts the temporal vectors ``B`` steps ahead with Eq. 28 (the
      same multi-step forecast the paper uses beyond the stream), so it
      is a mini-batch gradient step: within-batch factor drift of the
      sequential trajectory — ``O(B μ)`` per batch — is applied once at
      the end instead of incrementally.  The parity suite pins the
      resulting trajectory deviation.

    Mutates ``state`` in place and returns one :class:`SofiaStep` per
    subtensor, oldest first.
    """
    dtype = state.dtype
    ys = np.asarray(subtensors, dtype=dtype)
    if ys.ndim < 2 or ys.shape[1:] != state.subtensor_shape:
        raise ShapeError(
            f"mini-batch shape {ys.shape} does not match (B, "
            f"{', '.join(str(s) for s in state.subtensor_shape)})"
        )
    n_batch = ys.shape[0]
    if n_batch == 0:
        raise ShapeError("mini-batch must contain at least one subtensor")
    ms = check_mask(masks, ys.shape)
    if n_batch == 1:
        return [dynamic_step(state, ys[0], ms[0], config)]

    factors = state.non_temporal
    n_modes = len(factors)
    rank = state.rank

    # (1) Forecast the temporal vectors for the whole batch (Eq. 28) and
    #     all B subtensor predictions in one batched Kruskal call.  The
    #     to_device/from_device hooks are the identity on CPU backends;
    #     under a device backend the factor matrices move to the device
    #     here, once, and stay resident for every kernel call of the
    #     batch.
    u_forecasts = state.hw.forecast(n_batch).astype(dtype, copy=False)
    dev_factors = [kernels.to_device(f) for f in factors]
    dev_forecasts = kernels.to_device(u_forecasts)
    predictions = kernels.from_device(
        kernels.kruskal_reconstruct_rows(dev_factors, dev_forecasts)
    )

    # (2) Outlier split and error-scale advance (Eq. 21-22) for the whole
    #     batch, with the scale frozen at the batch boundary (see
    #     :func:`robust_step_batch`).  Below the density threshold the
    #     split runs only at the observed coordinates — the dense
    #     element-wise ψ/ρ pass over the stacked batch, which dominates
    #     very large sparse batches, is skipped entirely — and the
    #     gradient contractions gather per entry.
    if _takes_sparse_path(ms, config):
        batch_coords = np.nonzero(ms)
        observed_values = ys[batch_coords]
        predicted_values = predictions[batch_coords]
        outlier_values, state.sigma = robust_step_batch_at(
            batch_coords,
            observed_values,
            predicted_values,
            state.sigma,
            k=config.huber_k,
            phi=config.phi,
            ck=config.biweight_c,
        )
        outliers = np.zeros_like(ys)
        outliers[batch_coords] = outlier_values
        residual_values = observed_values - outlier_values - predicted_values
        # Batch index last, matching the time-last dense stacking below.
        coords = batch_coords[1:] + (batch_coords[0],)
        kernel_factors = list(factors)
        batch_weights = u_forecasts

        def contract(mats, mode):
            dim = n_batch if mode == n_modes else None
            return kernels.mttkrp_observed(
                coords, residual_values, mats, mode, dim=dim
            )
    else:
        outliers, state.sigma = robust_step_batch(
            ys,
            predictions,
            state.sigma,
            ms,
            k=config.huber_k,
            phi=config.phi,
            ck=config.biweight_c,
        )
        residuals = np.where(ms, ys - outliers - predictions, 0.0)
        stacked = kernels.to_device(np.moveaxis(residuals, 0, -1))
        kernel_factors = list(dev_factors)
        batch_weights = dev_forecasts

        def contract(mats, mode):
            return kernels.mttkrp(stacked, mats, mode)

    # (3) Mini-batch gradient steps (Eq. 24-25) at the frozen factors.
    #     Stacking the residuals time-last and contracting the batch axis
    #     against the forecast-weight matrix turns the summed per-step
    #     MTTKRPs into one kernel call per mode.  Under the Lipschitz
    #     normalization the summed data term of the batch has trace bound
    #     ``Σ_b trace(K_bᵀK_b)``, so one step of ``μ / Σ_b L_b`` is the
    #     batch analogue of the per-step ``μ / L_b`` — stable for any
    #     ``μ < 1`` regardless of the batch size (a naive sum of the B
    #     individually normalized steps overshoots by up to B and
    #     diverges).
    normalize = config.step_normalization == "lipschitz"
    col_sq = [np.einsum("ir,ir->r", f, f) for f in factors]
    w_sq = u_forecasts * u_forecasts
    new_factors = []
    for mode in range(n_modes):
        prod_others = np.ones(rank)
        for other in range(n_modes):
            if other != mode:
                prod_others = prod_others * col_sq[other]
        step = config.mu
        if normalize:
            step = config.mu / max(float(np.sum(w_sq @ prod_others)), 1e-12)
        gradient = kernels.from_device(
            contract(kernel_factors + [batch_weights], mode)
        )
        new_factors.append(factors[mode] + 2.0 * step * gradient)

    # Contracting every *non-batch* axis leaves the (B, R) data terms of
    # Eq. 25; the batch-axis slot of the matrix list is never read.
    data_terms = kernels.from_device(contract(kernel_factors + [None], n_modes))
    step_u = config.mu
    if normalize:
        prod_all = np.ones(rank)
        for sq in col_sq:
            prod_all = prod_all * sq
        step_u = config.mu / max(
            float(np.sum(prod_all)) + config.lambda1 + config.lambda2, 1e-12
        )

    # (4) Temporal vectors, ring buffer, and HW advances — O(R) per step.
    period = state.temporal_buffer.shape[0]
    history = np.vstack(
        [state.temporal_buffer, np.zeros((n_batch, rank), dtype=dtype)]
    )
    lam_sum = config.lambda1 + config.lambda2
    for b in range(n_batch):
        u_f = u_forecasts[b]
        history[period + b] = u_f + 2.0 * step_u * (
            data_terms[b]
            + config.lambda1 * history[period + b - 1]
            + config.lambda2 * history[b]
            - lam_sum * u_f
        )
    u_news = history[period:]
    state.non_temporal = new_factors
    state.hw.update_many(u_news)
    state.temporal_buffer = history[-period:].copy()
    state.t += n_batch

    completed = kernels.from_device(
        kernels.kruskal_reconstruct_rows(
            [kernels.to_device(f) for f in new_factors],
            kernels.to_device(u_news),
        )
    )
    return [
        SofiaStep(
            completed=completed[b],
            outliers=outliers[b],
            prediction=predictions[b],
            temporal_forecast=u_forecasts[b],
            temporal_vector=u_news[b].copy(),
        )
        for b in range(n_batch)
    ]
