"""Helpers for incomplete tensors: masked norms, errors, and imputation.

An observation mask is the paper's indicator tensor ``Ω`` (Eq. 3): truthy
entries are observed, falsy entries are missing.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.validation import check_mask, check_same_shape

__all__ = [
    "apply_mask",
    "impute",
    "masked_frobenius_norm",
    "masked_relative_error",
    "observed_fraction",
]


def apply_mask(tensor: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Return ``Ω ⊛ X``: a copy of ``tensor`` with missing entries zeroed."""
    arr = np.asarray(tensor, dtype=np.float64)
    m = check_mask(mask, arr.shape)
    return np.where(m, arr, 0.0)


def masked_frobenius_norm(tensor: np.ndarray, mask: np.ndarray) -> float:
    """Frobenius norm over the observed entries only."""
    arr = np.asarray(tensor, dtype=np.float64)
    m = check_mask(mask, arr.shape)
    return float(np.linalg.norm(arr[m]))


def masked_relative_error(
    estimate: np.ndarray, truth: np.ndarray, mask: np.ndarray
) -> float:
    """``||Ω ⊛ (estimate - truth)||_F / ||Ω ⊛ truth||_F``.

    Defined as the masked residual norm itself when the masked truth is
    identically zero.
    """
    est = np.asarray(estimate, dtype=np.float64)
    tru = np.asarray(truth, dtype=np.float64)
    check_same_shape(est, tru, names=("estimate", "truth"))
    m = check_mask(mask, est.shape)
    denom = float(np.linalg.norm(tru[m]))
    num = float(np.linalg.norm((est - tru)[m]))
    if denom == 0.0:
        return num
    return num / denom


def observed_fraction(mask: np.ndarray) -> float:
    """Fraction of observed entries in a mask."""
    m = check_mask(mask)
    return float(np.count_nonzero(m)) / m.size


def impute(observed: np.ndarray, mask: np.ndarray, estimate: np.ndarray) -> np.ndarray:
    """Fill the missing entries of ``observed`` with values from ``estimate``.

    Observed entries are kept verbatim; this is how a completed tensor is
    assembled from data plus a low-rank reconstruction.
    """
    obs = np.asarray(observed, dtype=np.float64)
    est = np.asarray(estimate, dtype=np.float64)
    check_same_shape(obs, est, names=("observed", "estimate"))
    m = check_mask(mask, obs.shape)
    return np.where(m, obs, est)
