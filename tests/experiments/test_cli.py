"""Unit tests for the experiment CLI (`python -m repro.experiments`)."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_table1(self, capsys):
        output = main(["table1"])
        assert "SOFIA" in output
        assert "Table I" in output
        assert "SOFIA" in capsys.readouterr().out

    def test_table3(self):
        output = main(["table3"])
        assert "77x77x2016" in output

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_fig2_small_budget(self):
        output = main(["fig2", "--iters", "30"])
        assert "SOFIA_ALS" in output
        assert "vanilla" in output

    def test_kernel_backend_flag(self):
        from repro.tensor import kernels

        previous = kernels.active_backend().name
        try:
            output = main(
                ["fig2", "--iters", "10", "--kernel-backend", "sparse"]
            )
            assert "SOFIA_ALS" in output
            assert kernels.active_backend().name == "sparse"
        finally:
            kernels.set_backend(previous)

    def test_unknown_kernel_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--kernel-backend", "bogus"])

    def test_ablation_listed(self):
        # only check the command is wired; the heavy run is covered by
        # the driver tests and benches
        from repro.experiments.__main__ import _COMMANDS

        assert set(_COMMANDS) == {
            "table1", "table3", "fig2", "fig4", "fig6", "fig7", "ablation",
            "scenario",
        }
