"""Dense tensor primitives: matricization, folding, vectorization, norms.

Conventions
-----------
This package uses the *C-order* (row-major) unfolding convention: the
mode-``n`` unfolding of ``X`` places mode ``n`` along the rows and flattens
the remaining modes in their original order with the **last** remaining
index varying fastest.  Under this convention the CP identity reads::

    unfold(X, n) == factors[n] @ khatri_rao(others_in_increasing_order).T

which is verified by the test-suite.  (The paper states the equivalent
identity under the Fortran-order convention; only the column ordering of
the unfolded matrix differs.)
"""

from __future__ import annotations

import numpy as np

from repro.tensor.validation import as_tensor, check_mode

__all__ = [
    "fold",
    "frobenius_norm",
    "mode_lengths_product",
    "relative_error",
    "unfold",
    "vec",
]


def unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Return the mode-``mode`` unfolding (matricization) of ``tensor``.

    Parameters
    ----------
    tensor:
        An N-way array.
    mode:
        The mode placed along the rows (negative indices allowed).

    Returns
    -------
    numpy.ndarray
        Matrix of shape ``(I_mode, prod(other mode lengths))``.
    """
    arr = as_tensor(tensor, name="tensor")
    mode = check_mode(mode, arr.ndim)
    return np.moveaxis(arr, mode, 0).reshape(arr.shape[mode], -1)


def fold(matrix: np.ndarray, mode: int, shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`unfold`: rebuild the tensor of ``shape``.

    Parameters
    ----------
    matrix:
        A mode-``mode`` unfolded matrix.
    mode:
        The mode that was placed along the rows.
    shape:
        Shape of the original tensor.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    shape = tuple(int(s) for s in shape)
    mode = check_mode(mode, len(shape))
    moved_shape = (shape[mode],) + shape[:mode] + shape[mode + 1:]
    if arr.size != int(np.prod(moved_shape)):
        raise ValueError(
            f"cannot fold matrix of size {arr.size} into shape {shape}"
        )
    return np.moveaxis(arr.reshape(moved_shape), 0, mode)


def vec(tensor: np.ndarray) -> np.ndarray:
    """Vectorize ``tensor`` in C order (last index fastest)."""
    return np.asarray(tensor, dtype=np.float64).reshape(-1)


def frobenius_norm(tensor: np.ndarray) -> float:
    """Frobenius norm ``||X||_F`` of an arbitrary-order tensor."""
    return float(np.linalg.norm(np.asarray(tensor, dtype=np.float64).ravel()))


def relative_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Normalized residual error ``||estimate - truth||_F / ||truth||_F``.

    This is the paper's NRE metric for a single reconstruction.  When
    ``truth`` is identically zero the error is defined as the norm of
    ``estimate`` (0.0 for a perfect all-zero estimate).
    """
    est = np.asarray(estimate, dtype=np.float64)
    tru = np.asarray(truth, dtype=np.float64)
    if est.shape != tru.shape:
        raise ValueError(
            f"estimate shape {est.shape} does not match truth {tru.shape}"
        )
    denom = float(np.linalg.norm(tru.ravel()))
    num = float(np.linalg.norm((est - tru).ravel()))
    if denom == 0.0:
        return num
    return num / denom


def mode_lengths_product(shape: tuple[int, ...], skip: int | None = None) -> int:
    """Product of mode lengths, optionally skipping one mode."""
    total = 1
    for i, dim in enumerate(shape):
        if i == skip:
            continue
        total *= int(dim)
    return total
