"""Datasets: synthetic stand-ins for the paper's four real-world streams
plus fully synthetic generators for Fig. 2 and Fig. 7.

Importing this package registers all four stand-ins, so::

    from repro.datasets import load_dataset, list_datasets
    ds = load_dataset("chicago_taxi")
"""

from repro.datasets.base import (
    Dataset,
    DatasetInfo,
    dataset_info,
    list_datasets,
    load_dataset,
    register_dataset,
)
from repro.datasets.chicago_taxi import CHICAGO_TAXI_INFO, generate_chicago_taxi
from repro.datasets.intel_lab import INTEL_LAB_INFO, generate_intel_lab
from repro.datasets.network_traffic import (
    NETWORK_TRAFFIC_INFO,
    generate_network_traffic,
)
from repro.datasets.nyc_taxi import NYC_TAXI_INFO, generate_nyc_taxi
from repro.datasets.synthetic import (
    SyntheticStream,
    fig2_tensor,
    scalability_stream,
    seasonal_stream,
)

__all__ = [
    "CHICAGO_TAXI_INFO",
    "Dataset",
    "DatasetInfo",
    "INTEL_LAB_INFO",
    "NETWORK_TRAFFIC_INFO",
    "NYC_TAXI_INFO",
    "SyntheticStream",
    "dataset_info",
    "fig2_tensor",
    "generate_chicago_taxi",
    "generate_intel_lab",
    "generate_network_traffic",
    "generate_nyc_taxi",
    "list_datasets",
    "load_dataset",
    "register_dataset",
    "scalability_stream",
    "seasonal_stream",
]
