"""Batched linear-algebra kernels shared by SOFIA's hot paths.

The seed implementation spent most of its time in Python-level loops:
one ``np.linalg.solve`` per factor row (Theorem 1), a sequential scalar
sweep over every temporal row (Theorem 2, Eq. 17-18), ``np.add.at``
scatter-adds for the normal-equation pieces (Eq. 14-15), and a
per-observed-entry recursive-least-squares loop in OLSTEC.  This module
replaces each of those with a batched formulation:

* :func:`solve_rows` stacks all ``(I_mode, R, R)`` ridge systems and
  calls a single batched ``np.linalg.solve`` (with a vectorized
  pseudo-inverse fallback for singular batches and an all-zero-row
  passthrough that keeps the caller's fallback rows).
* :func:`accumulate_normal_equations` accumulates ``B_i``/``c_i`` with
  dense BLAS contraction chains (batched) or per-column histogram
  reductions over the observed entries (sparse) instead of the
  buffered, element-at-a-time ``np.add.at``.
* :func:`temporal_sweep` runs the Theorem-2 row sweep in four batched
  color classes chosen so that no two rows of a class are lag-1 or
  lag-``m`` neighbors; updating a class jointly is therefore *exactly*
  a Gauss-Seidel sweep under the color ordering (see below).
* :func:`mttkrp` contracts a dense residual against all-but-one factor
  matrix with one ``einsum`` instead of materializing a Khatri-Rao
  product.
* :func:`rls_update_rows` replays OLSTEC's per-entry RLS recursions in
  batched rounds: entries of different factor rows are independent, so
  round ``j`` updates the ``j``-th observed entry of every row at once
  while preserving the per-row ordering bit for bit.
* :func:`kruskal_reconstruct_rows` evaluates ``B`` Kruskal
  reconstructions ``[[factors; w_b]]`` in one BLAS matmul against the
  shared Khatri-Rao matrix — the mini-batch streaming engine uses it to
  predict and complete a whole window of incoming subtensors per call.

Backend seam
------------
Every dispatched kernel is looked up on the *active backend*, a
:class:`KernelBackend` record registered in this module.  Five backends
ship today:

* ``"batched"`` — the dense-contraction path: BLAS tensordot chains,
  batched solves, dense scatter.  Work is ``O(prod(dims) R^2)`` per
  accumulation/reconstruction regardless of how many entries are
  actually observed.
* ``"sparse"`` — per-entry gather/segment work over observed
  coordinates only (``O(nnz R^2)``), with no dense intermediate of the
  subtensor shape.  The accumulation is the per-column ``np.bincount``
  histogram path, MTTKRP gathers factor rows at the tensor's nonzero
  coordinates, and reconstruction evaluates ``[[factors; w_b]]`` only
  at caller-supplied coordinates.  This is the right path for the
  <5%-observed real-world streams of the paper's Sec. VI.
* ``"auto"`` — the default: dispatches each call to ``"sparse"`` or
  ``"batched"`` by comparing the observed fraction against
  ``AUTO_DENSITY_THRESHOLD`` (5%, where the dense BLAS constants beat
  the scatter-gather constants on the benchmark sweep).
* ``"xp"`` — the dense contraction strategy written once against the
  Python Array API standard, so the identical kernel code runs on
  NumPy, torch (CPU or CUDA), or CuPy arrays.  The array library is
  selected by :mod:`repro.tensor.device` (``set_array_module``, the
  ``REPRO_ARRAY_MODULE`` environment variable); host NumPy inputs are
  converted at the kernel boundary and host outputs come back as NumPy
  arrays, while device-native inputs stay resident on the device (the
  dynamic phase uses this to keep factors on-device across a whole
  mini-batch).  Beyond the standard, this backend relies on
  integer-array gather *and* scatter-assignment indexing, which NumPy,
  torch, and CuPy all provide.
* ``"reference"`` — the seed's scalar semantics, used by the parity
  tests and the scalar-vs-batched benchmarks.

The active backend defaults to ``"auto"`` and can be overridden with
:func:`set_backend`, the :func:`use_backend` context manager, or the
``REPRO_KERNEL_BACKEND`` environment variable (read once at import, so
CI can run whole suites under one backend).

Dtype policy
------------
Kernels no longer hard-cast to ``float64``: every kernel computes in
:func:`result_dtype` of its floating inputs — float32 in, float32 out;
mixed or non-float inputs promote to float64 — so a float32 SOFIA run
(``SofiaConfig(dtype="float32")``) stays float32 through the whole
seam.  A backend can pin the policy instead via its
:attr:`KernelBackend.dtype` field (e.g. a GPU backend that always
computes in float32); ``None`` (every shipped backend) means "follow
the inputs".  The relative ridge of the row solves is dtype-aware
(:func:`_ridge_for`): ``1e-10`` in float64 and ``~1e-4`` in float32,
where ``1e-10`` would vanish against machine epsilon and leave
singular systems singular.

Authoring a new backend
-----------------------
A new execution path (GPU, distributed, ...) registers one
:class:`KernelBackend` record — nothing else in the code base has to
change::

    from repro.tensor import kernels

    kernels.register_backend(kernels.KernelBackend(
        name="my-backend",
        solve_rows=...,                   # (lhs, rhs, fallback) -> (n, R)
        accumulate_normal_equations=...,  # (coords, values, factors, mode)
                                          #   -> ((I_mode, R, R), (I_mode, R))
        temporal_sweep=...,               # (B, c, temporal, *, lambda1,
                                          #   lambda2, period) -> (I_N, R)
        mttkrp=...,                       # (tensor, factors, mode, weights)
        rls_update_rows=...,              # in-place RLS rounds
        kruskal_reconstruct_rows=...,     # (factors, weight_rows, coords)
    ))

Contract highlights: ``solve_rows`` must keep ``fallback`` rows where
both sides are zero; ``temporal_sweep`` must realize a valid
Gauss-Seidel ordering of Eq. 17-18 (any ordering — the conformance
suite checks the zero-coupling case exactly and the coupled case at the
shared fixed point); ``kruskal_reconstruct_rows`` must honor the
optional ``coords`` gather form; ``mttkrp`` must accept ``mode=None``
(contract everything) and a ``None`` placeholder in the skipped
``mode`` slot of ``factors``.  Partial backends can borrow the shipped
implementations for kernels they do not specialize (the sparse backend
reuses the batched ``solve_rows``/``temporal_sweep``/``rls_update_rows``,
which already run over per-row systems or observed entries only).  The
``keeps_dense_steps`` flag (default ``True``) guarantees the dynamic
phase never bypasses the backend's kernels with its own CPU per-entry
fast path — leave it set unless that path is your execution strategy.
Three more optional fields shape the seam-wide policies:

* ``dtype`` — pin every kernel of this backend to one computation
  dtype (``"float32"``/``"float64"``); ``None`` follows the inputs
  (see *Dtype policy* above).
* ``to_device`` / ``from_device`` — host↔device boundary converters.
  When set (the ``"xp"`` backend maps them to
  :func:`repro.tensor.device.to_device` / ``from_device``), the dynamic
  phase moves the factor matrices to the device once per
  step/mini-batch and back once at the end, so consecutive kernel
  calls reuse the resident copies instead of re-uploading per call.
  ``None`` (every CPU backend) keeps all arrays host-side with zero
  overhead.

Every registered backend is automatically exercised against
``"reference"`` by ``tests/tensor/backend_conformance.py`` — register
it before the suite runs and the parity checks (now swept over both
float64 and float32 with per-dtype tolerances) come for free.

Multicolor Gauss-Seidel ordering
--------------------------------
The temporal rows couple only at lags 1 and ``m`` (Eq. 17-18).  Color
row ``i`` with ``(i mod 2, floor(i / m) mod 2)``: lag-1 neighbors always
differ in the first bit and lag-``m`` neighbors always differ in the
second (``floor((i + m) / m) = floor(i / m) + 1``), so rows sharing a
color never couple.  Solving a whole color class in one batched call is
then identical to solving its rows one by one, i.e. the blocked sweep is
an exact Gauss-Seidel sweep in the ordering "color 0 rows, then color 1,
..." — same fixed point as the seed's sequential sweep, reached through
a different (but equally valid) row ordering.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Callable, Sequence
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.exceptions import ConfigError, ShapeError
from repro.tensor import device as _device
from repro.tensor.dense import unfold
from repro.tensor.products import khatri_rao, kruskal_to_tensor

__all__ = [
    "AUTO_DENSITY_THRESHOLD",
    "BACKEND_ENV_VAR",
    "KernelBackend",
    "accumulate_normal_equations",
    "active_backend",
    "available_backends",
    "from_device",
    "kruskal_column_sq_norms",
    "kruskal_reconstruct_rows",
    "lag_neighbor_counts",
    "lag_neighbor_sums",
    "masked_soft_threshold",
    "mttkrp",
    "mttkrp_observed",
    "observed_factor_products",
    "register_backend",
    "result_dtype",
    "rls_update_rows",
    "scatter_normal_equations",
    "segment_sum",
    "set_backend",
    "soft_threshold",
    "solve_rows",
    "temporal_sweep",
    "to_device",
    "use_backend",
]

#: Observed entries are processed in chunks of this many to bound the
#: size of the per-chunk outer-product workspace.
_CHUNK = 1 << 16
#: Relative ridge added to every row system before solving (Theorem 1-2
#: systems are positive semi-definite; the ridge makes them definite).
_RIDGE = 1e-10


def _ridge_for(dtype: Any) -> float:
    """Relative ridge coefficient for the row solves at ``dtype``.

    The float64 ridge (``1e-10``) is far below float32 machine epsilon
    (``~1.2e-7``): added to an O(1) system in float32 it would vanish
    and leave a singular system singular.  Lower-precision dtypes get
    ``1000 eps`` instead (``~1.2e-4`` in float32) — big enough to make
    rank-deficient systems solvable, small enough to stay inside the
    float32 conformance tolerances.
    """
    dt = np.dtype(dtype)
    if dt == np.dtype(np.float64):
        return _RIDGE
    return float(np.finfo(dt).eps) * 1e3


def _dtype_of(array: Any) -> np.dtype:
    """NumPy dtype of an array-like, device arrays included."""
    dtype = getattr(array, "dtype", None)
    if dtype is None:
        return np.asarray(array).dtype
    try:
        return np.dtype(dtype)
    except TypeError:
        pass
    try:
        # torch dtypes stringify as "torch.float32".
        return np.dtype(str(dtype).rsplit(".", 1)[-1])
    except TypeError:
        # Device-only dtypes with no NumPy equivalent (e.g. torch's
        # bfloat16): the seam policy promotes them to float64 like any
        # other non-float32/float64 input.
        return np.dtype(np.float64)


def result_dtype(*arrays: Any) -> np.dtype:
    """The seam-wide computation dtype for one kernel call.

    When the active backend pins a dtype (:attr:`KernelBackend.dtype`),
    that wins.  Otherwise the kernels follow their inputs: the NumPy
    promotion of all floating inputs, clamped to float32/float64
    (anything else — integer, bool, or float16 inputs, or no floating
    input at all — computes in float64, preserving the seed semantics
    for non-float callers).  ``None`` entries are ignored so optional
    arguments can be passed straight through.
    """
    pinned = active_backend().dtype
    if pinned is not None:
        return np.dtype(pinned)
    floats = [
        dt
        for dt in (_dtype_of(a) for a in arrays if a is not None)
        if dt.kind == "f"
    ]
    if not floats:
        return np.dtype(np.float64)
    common = np.result_type(*floats)
    if common in (np.dtype(np.float32), np.dtype(np.float64)):
        return common
    return np.dtype(np.float64)


# ---------------------------------------------------------------------------
# Backend-independent building blocks
# ---------------------------------------------------------------------------


def segment_sum(
    segments: np.ndarray, data: np.ndarray, num_segments: int
) -> np.ndarray:
    """Sum rows of ``data`` into ``num_segments`` bins given by ``segments``.

    A drop-in replacement for ``np.add.at(out, segments, data)`` built on
    a stable argsort plus ``np.add.reduceat`` over the sorted segment
    boundaries, which runs in vectorized C instead of one buffered ufunc
    call per element.

    Parameters
    ----------
    segments:
        Integer bin index per row of ``data``, each in
        ``[0, num_segments)``.
    data:
        Array whose leading axis aligns with ``segments``.
    num_segments:
        Number of output bins.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(num_segments, *data.shape[1:])``.
    """
    segments = np.asarray(segments)
    data = np.asarray(data, dtype=result_dtype(data))
    if segments.shape[0] != data.shape[0]:
        raise ShapeError(
            f"segments length {segments.shape[0]} does not match data rows "
            f"{data.shape[0]}"
        )
    out = np.zeros((num_segments,) + data.shape[1:], dtype=data.dtype)
    if segments.size == 0:
        return out
    order = np.argsort(segments, kind="stable")
    sorted_segments = segments[order]
    flat = np.ascontiguousarray(data[order]).reshape(segments.size, -1)
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_segments[1:] != sorted_segments[:-1]))
    )
    sums = np.add.reduceat(flat, starts, axis=0)
    out.reshape(num_segments, -1)[sorted_segments[starts]] = sums
    return out


def scatter_normal_equations(
    rows: np.ndarray,
    design: np.ndarray,
    targets: np.ndarray,
    dim: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Scatter design rows into per-row normal equations (Eq. 14-15).

    For every observed entry with factor-row index ``rows[k]``, design
    row ``x_k`` and target ``y_k``, accumulates ``x_k x_kᵀ`` into
    ``B[rows[k]]`` and ``y_k x_k`` into ``c[rows[k]]`` using one segment
    reduction for both pieces.

    Returns
    -------
    (B, c):
        Arrays of shapes ``(dim, R, R)`` and ``(dim, R)``.
    """
    design = np.asarray(design, dtype=result_dtype(design, targets))
    n, rank = design.shape
    payload = np.empty((n, rank * rank + rank), dtype=design.dtype)
    payload[:, : rank * rank] = (
        design[:, :, None] * design[:, None, :]
    ).reshape(n, -1)
    payload[:, rank * rank:] = targets[:, None] * design
    summed = segment_sum(rows, payload, dim)
    return (
        summed[:, : rank * rank].reshape(dim, rank, rank),
        summed[:, rank * rank:],
    )


def observed_factor_products(
    coords: tuple[np.ndarray, ...],
    factors: Sequence[np.ndarray | None],
    *,
    skip_mode: int | None = None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Row-wise Hadamard product of factor rows at observed coordinates.

    The design row of an observed entry ``(i_1, ..., i_N)`` is
    ``⊛_{l ≠ skip_mode} U^(l)[i_l]`` (optionally times ``weights``) — the
    building block of both the Theorem-1 normal equations and the
    temporal-weight least squares every streaming baseline shares.  The
    ``skip_mode`` entry of ``factors`` is never read and may be ``None``.
    """
    rank = next(f.shape[1] for f in factors if f is not None)
    dtype = result_dtype(weights, *factors)
    nnz = coords[0].size
    prod = np.ones((nnz, rank), dtype=dtype)
    if weights is not None:
        prod *= np.asarray(weights, dtype=dtype)[None, :]
    for axis, factor in enumerate(factors):
        if axis == skip_mode:
            continue
        prod *= factor[coords[axis], :]
    return prod


def kruskal_column_sq_norms(
    factors: Sequence[np.ndarray],
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Per-column squared norms of ``khatri_rao(factors) * weights``.

    Khatri-Rao columns are Kronecker products, so
    ``||kr[:, r]||² = Π_l ||U^(l)[:, r]||²`` — which gives
    ``trace(KᵀK) = Σ_r Π_l ||U^(l)[:, r]||² w_r²`` without materializing
    ``K``.  Used for the Lipschitz step normalization of the dynamic
    updates (Eq. 24-25).
    """
    dtype = result_dtype(weights, *factors)
    if factors:
        col_sq = np.ones(factors[0].shape[1], dtype=dtype)
        for factor in factors:
            col_sq = col_sq * np.einsum("ir,ir->r", factor, factor)
    elif weights is not None:
        col_sq = np.ones(np.asarray(weights).shape[0], dtype=dtype)
    else:
        raise ShapeError("need at least one factor or a weight vector")
    if weights is not None:
        w = np.asarray(weights, dtype=dtype)
        col_sq = col_sq * w * w
    return col_sq.astype(dtype, copy=False)


def lag_neighbor_counts(length: int, lag: int) -> np.ndarray:
    """Number of in-range lag-``lag`` neighbors for every row at once.

    Vectorized form of :func:`repro.core.smoothness.neighbor_count`: the
    diagonal coefficient multiplicity of the temporal row update
    (Eq. 17-18).
    """
    if length < 1:
        raise ConfigError(f"length must be >= 1, got {length}")
    if lag < 1:
        raise ConfigError(f"lag must be >= 1, got {lag}")
    idx = np.arange(length)
    return (idx >= lag).astype(np.float64) + (idx < length - lag)


def lag_neighbor_sums(
    matrix: np.ndarray,
    lag: int,
    rows: np.ndarray | None = None,
) -> np.ndarray:
    """Sum of the existing lag-``lag`` neighbor rows for ``rows`` at once.

    Vectorized form of :func:`repro.core.smoothness.neighbor_sum` (the
    right-hand-side smoothness term of Eq. 17).
    """
    u = np.asarray(matrix, dtype=result_dtype(matrix))
    length = u.shape[0]
    if rows is None:
        rows = np.arange(length)
    total = np.zeros((rows.shape[0], u.shape[1]), dtype=u.dtype)
    left = rows - lag
    has_left = left >= 0
    total[has_left] += u[left[has_left]]
    right = rows + lag
    has_right = right < length
    total[has_right] += u[right[has_right]]
    return total


def soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Element-wise soft-thresholding ``sign(x) max(|x| - λ, 0)`` (Eq. 12)."""
    arr = np.asarray(values, dtype=result_dtype(values))
    return np.sign(arr) * np.maximum(np.abs(arr) - threshold, 0.0)


def masked_soft_threshold(
    observed: np.ndarray,
    predicted: np.ndarray,
    mask: np.ndarray,
    threshold: float,
) -> np.ndarray:
    """Soft-threshold the masked residual ``Ω ⊛ (Y - X̂)`` in one pass.

    The initialization loop (Alg. 1 line 8) refreshes its outlier tensor
    with exactly this expression once per outer iteration over the full
    start-up tensor, so fusing the mask and the shrinkage avoids two
    full-size temporaries per call.
    """
    residual = np.subtract(observed, predicted)
    np.multiply(residual, mask, out=residual)
    return soft_threshold(residual, threshold)


# ---------------------------------------------------------------------------
# Batched kernels (the default backend)
# ---------------------------------------------------------------------------


def _batched_solve_rows(
    lhs: np.ndarray,
    rhs: np.ndarray,
    fallback: np.ndarray | None = None,
) -> np.ndarray:
    """Solve all row systems with one batched (ridged) ``np.linalg.solve``.

    Rows whose system is numerically singular even after the ridge are
    handled by a vectorized pseudo-inverse fallback; rows whose ``lhs``
    *and* ``rhs`` are entirely zero (no observations and no smoothness
    coupling) keep their ``fallback`` value.
    """
    dtype = result_dtype(lhs, rhs, fallback)
    lhs = np.asarray(lhs, dtype=dtype)
    rhs = np.asarray(rhs, dtype=dtype)
    n, rank = rhs.shape
    if n == 0:
        return rhs.copy()
    scale = np.einsum("nii->n", lhs) / rank
    ridged = lhs + (_ridge_for(dtype) * (1.0 + scale))[:, None, None] * np.eye(
        rank, dtype=dtype
    )
    try:
        solution = np.linalg.solve(ridged, rhs[:, :, None])[:, :, 0]
    except np.linalg.LinAlgError:
        # At least one matrix in the batch is exactly singular: fall back
        # to the batched minimum-norm least-squares solution for all rows.
        solution = np.matmul(np.linalg.pinv(ridged), rhs[:, :, None])[:, :, 0]
    if fallback is not None:
        inactive = ~(lhs.any(axis=(1, 2)) | rhs.any(axis=1))
        if inactive.any():
            solution[inactive] = np.asarray(fallback, dtype=dtype)[inactive]
    return solution


def _dense_mttkrp_chain(
    tensor: np.ndarray,
    mats: Sequence[np.ndarray | None],
    mode: int | None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """MTTKRP as a chain of tensordot / broadcast-multiply-sum contractions.

    Contracts every mode except ``mode`` against the matching matrix in
    ``mats`` (whose entry at ``mode`` is ignored), tying all contractions
    to one shared trailing column index.  Equivalent to
    ``unfold(tensor, mode) @ (khatri_rao(others) * weights)`` but without
    materializing the Khatri-Rao matrix and without per-call einsum-path
    overhead (the first contraction is a BLAS ``tensordot``).
    """
    ndim = tensor.ndim
    dtype = result_dtype(
        tensor, weights, *[m for m in mats if m is not None]
    )
    others = [axis for axis in range(ndim) if axis != mode]
    out = np.asarray(tensor, dtype=dtype)
    appended = False
    # Descending order keeps every remaining mode at its original axis.
    for axis in sorted(others, reverse=True):
        mat = np.asarray(mats[axis], dtype=dtype)
        if not appended:
            if weights is not None:
                mat = mat * np.asarray(weights, dtype=dtype)[None, :]
            out = np.tensordot(out, mat, axes=([axis], [0]))
            appended = True
        else:
            broadcast = [1] * out.ndim
            broadcast[axis] = mat.shape[0]
            broadcast[-1] = mat.shape[1]
            out = (out * mat.reshape(broadcast)).sum(axis=axis)
    return out


#: Observed fraction above which the dense contraction paths beat the
#: per-entry sparse paths (dense work is O(prod(dims) R^2) at BLAS
#: speed; sparse work is O(nnz R^2) with scatter-gather constants).
#: The ``"auto"`` backend dispatches each call across this threshold.
AUTO_DENSITY_THRESHOLD = 0.05


def _batched_accumulate_normal_equations(
    coords: tuple[np.ndarray, ...],
    values: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Dense-contraction accumulation of ``B_i``/``c_i`` (Eq. 14-15).

    Scatters the observed values and the indicator back to dense arrays,
    then computes ``c`` as one MTTKRP of the masked values and ``B`` as
    one MTTKRP of the indicator against the *pair* matrices
    ``U^(l) ⊙row U^(l)`` of shape ``(I_l, R²)`` — both run as BLAS-backed
    tensordot chains.  Work is ``O(prod(dims) R²)`` regardless of how
    many entries are observed; the sparse backend covers the low-density
    regime.
    """
    rank = factors[0].shape[1]
    dim = factors[mode].shape[0]
    dtype = result_dtype(values, *factors)
    if values.size == 0:
        return (
            np.zeros((dim, rank, rank), dtype=dtype),
            np.zeros((dim, rank), dtype=dtype),
        )
    shape = tuple(f.shape[0] for f in factors)
    dense_values = np.zeros(shape, dtype=dtype)
    dense_values[coords] = values
    indicator = np.zeros(shape, dtype=dtype)
    indicator[coords] = 1.0
    big_c = _dense_mttkrp_chain(dense_values, factors, mode)
    pairs = [
        (f[:, :, None] * f[:, None, :]).reshape(f.shape[0], rank * rank)
        for f in factors
    ]
    big_b = _dense_mttkrp_chain(indicator, pairs, mode).reshape(
        shape[mode], rank, rank
    )
    return big_b, big_c


def _batched_temporal_sweep(
    big_b: np.ndarray,
    big_c: np.ndarray,
    temporal: np.ndarray,
    *,
    lambda1: float,
    lambda2: float,
    period: int,
) -> np.ndarray:
    """Theorem-2 temporal sweep in four batched Gauss-Seidel color classes.

    Rows are colored ``(i mod 2, floor(i / m) mod 2)`` so no two rows of
    one class are lag-1 or lag-``m`` neighbors (module docstring); each
    class is then one batched ridge solve that reads the freshest values
    of the previously updated classes — preserving the within-sweep
    neighbor coupling of Eq. 17-18.
    """
    dtype = result_dtype(big_b, big_c, temporal)
    big_b = np.asarray(big_b, dtype=dtype)
    big_c = np.asarray(big_c, dtype=dtype)
    out = np.asarray(temporal, dtype=dtype).copy()
    length, rank = out.shape
    diag = np.asarray(
        lambda1 * lag_neighbor_counts(length, 1)
        + lambda2 * lag_neighbor_counts(length, period),
        dtype=dtype,
    )
    eye = np.eye(rank, dtype=dtype)
    idx = np.arange(length)
    colors = (idx & 1) + 2 * ((idx // period) & 1)
    for color in range(4):
        rows = np.flatnonzero(colors == color)
        if rows.size == 0:
            continue
        lhs = big_b[rows] + diag[rows, None, None] * eye
        rhs = (
            big_c[rows]
            + lambda1 * lag_neighbor_sums(out, 1, rows)
            + lambda2 * lag_neighbor_sums(out, period, rows)
        )
        out[rows] = _batched_solve_rows(lhs, rhs, fallback=out[rows])
    return out


def _batched_mttkrp(
    tensor: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int | None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Dense MTTKRP ``unfold(X, mode) · (⊙_{l≠mode} U^(l)) diag(w)``.

    Runs as a chain of pairwise contractions (the first one a BLAS
    ``tensordot``) instead of materializing the Khatri-Rao matrix.
    ``mode=None`` contracts *every* mode, leaving only the rank index —
    the ``(⊙_n U^(n))ᵀ vec(R)`` term of Eq. 25.
    """
    dtype = result_dtype(
        tensor, weights, *[f for f in factors if f is not None]
    )
    tensor = np.asarray(tensor, dtype=dtype)
    if tensor.ndim == 1 and mode is not None:
        # Single-mode tensor: the empty Khatri-Rao product is all-ones.
        rank = next(f.shape[1] for f in factors if f is not None)
        row = (
            np.asarray(weights, dtype=dtype)[None, :]
            if weights is not None
            else np.ones((1, rank), dtype=dtype)
        )
        return tensor[:, None] * row
    return _dense_mttkrp_chain(tensor, factors, mode, weights)


def _batched_rls_update_rows(
    factor: np.ndarray,
    cov: np.ndarray,
    rows: np.ndarray,
    regressors: np.ndarray,
    targets: np.ndarray,
    beta: float,
) -> None:
    """Replay per-row RLS recursions in batched rounds (OLSTEC hot loop).

    Entries hitting *different* factor rows are independent, so round
    ``j`` applies the rank-1 RLS update for the ``j``-th observed entry
    of every row simultaneously; a stable sort keeps the original
    within-row entry order, making the result identical to the scalar
    per-entry loop.  Mutates ``factor`` and ``cov`` in place.
    """
    rows = np.asarray(rows)
    if rows.size == 0:
        return
    dtype = result_dtype(factor, cov, regressors, targets)
    order = np.argsort(rows, kind="stable")
    rows_sorted = rows[order]
    x_sorted = np.asarray(regressors, dtype=dtype)[order]
    t_sorted = np.asarray(targets, dtype=dtype)[order]
    is_start = np.concatenate(([True], rows_sorted[1:] != rows_sorted[:-1]))
    starts = np.flatnonzero(is_start)
    group = np.cumsum(is_start) - 1
    position = np.arange(rows_sorted.size) - starts[group]
    for round_index in range(int(position.max()) + 1):
        sel = position == round_index
        r = rows_sorted[sel]
        x = x_sorted[sel]
        p = cov[r]
        px = np.einsum("kij,kj->ki", p, x)
        gain = px / (beta + np.einsum("kj,kj->k", x, px))[:, None]
        error = t_sorted[sel] - np.einsum("kj,kj->k", factor[r], x)
        factor[r] += gain * error[:, None]
        cov[r] = (p - gain[:, :, None] * px[:, None, :]) / beta


def _batched_kruskal_reconstruct_rows(
    factors: Sequence[np.ndarray],
    weight_rows: np.ndarray,
    coords: tuple[np.ndarray, ...] | None = None,
) -> np.ndarray:
    """All ``B`` reconstructions ``[[factors; w_b]]`` in one fused pass.

    Two equivalent strategies, picked by shape: when the batch is small
    relative to the last mode, a broadcast chain grows
    ``(B, I_1, ..., I_l, R)`` one mode at a time and finishes with a
    single BLAS matmul against the last factor (no ``prod(I) x R``
    Khatri-Rao temporary); otherwise the shared Khatri-Rao matrix is
    materialized once and the whole mini-batch is one
    ``W @ khatri_rao(factors)ᵀ`` matmul.  With ``coords``, the dense
    stack is still built and then gathered — this is the dense backend;
    the sparse backend evaluates only the requested entries.
    """
    dtype = result_dtype(weight_rows, *factors)
    weight_rows = np.asarray(weight_rows, dtype=dtype)
    if weight_rows.ndim != 2:
        raise ShapeError(
            f"weight rows must be 2-D (batch, rank), got {weight_rows.shape}"
        )
    mats = [np.asarray(f, dtype=dtype) for f in factors]
    shape = tuple(f.shape[0] for f in mats)
    n_batch = weight_rows.shape[0]
    if len(mats) == 1:
        dense = weight_rows @ mats[0].T
    elif n_batch < mats[-1].shape[0]:
        out = weight_rows
        for mat in mats[:-1]:
            out = out[..., None, :] * mat
        flat = out.reshape(-1, out.shape[-1])
        dense = (flat @ mats[-1].T).reshape((n_batch,) + shape)
    else:
        kr = khatri_rao(mats)
        dense = (weight_rows @ kr.T).reshape((n_batch,) + shape)
    if coords is None:
        return dense
    return dense[coords]


# ---------------------------------------------------------------------------
# Sparse kernels (per-entry gather/segment work over observed coordinates)
# ---------------------------------------------------------------------------


def mttkrp_observed(
    coords: tuple[np.ndarray, ...],
    values: np.ndarray,
    factors: Sequence[np.ndarray | None],
    mode: int | None,
    dim: int | None = None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """MTTKRP of a sparse tensor given directly by coordinates and values.

    The backend-independent building block of the sparse execution path:
    for observed entries ``(coords, values)`` it gathers the matching
    factor rows, multiplies them per entry, and segment-sums into the
    rows of ``mode`` — ``O(nnz N R)`` with no dense intermediate.  With
    ``mode=None`` every axis is contracted, leaving the length-``R``
    vector of Eq. 25.  The entry of ``factors`` at ``mode`` is never
    read (it may be ``None``); ``dim`` overrides the output row count
    when it cannot be taken from ``factors[mode]``.
    """
    values = np.asarray(
        values,
        dtype=result_dtype(
            values, weights, *[f for f in factors if f is not None]
        ),
    )
    if mode is None:
        prod = observed_factor_products(coords, factors, weights=weights)
        return values @ prod
    design = observed_factor_products(
        coords, factors, skip_mode=mode, weights=weights
    )
    if dim is None:
        dim = factors[mode].shape[0]
    return segment_sum(coords[mode], values[:, None] * design, dim)


def _sparse_accumulate_normal_equations(
    coords: tuple[np.ndarray, ...],
    values: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-entry accumulation via symmetric per-column ``np.bincount``.

    ``O(nnz R²)`` work and ``O(nnz R)`` memory: only the upper triangle
    of each ``B_i`` is reduced (the outer products are symmetric), one
    histogram per ``(r, s)`` component; chunking bounds the per-column
    workspace.  Beats one shared argsort-plus-``reduceat`` payload
    reduction at streaming ranks (one histogram pass per component is
    cheaper than sorting and materializing the ``(nnz, R² + R)``
    payload).
    """
    rank = factors[0].shape[1]
    dim = factors[mode].shape[0]
    dtype = result_dtype(values, *factors)
    # np.bincount accumulates in float64 regardless of the weight dtype;
    # the extra precision is free, so only the outputs are cast.
    big_b = np.zeros((dim, rank, rank))
    big_c = np.zeros((dim, rank))
    nnz = values.size
    chunk_size = 1 << 20
    for start in range(0, nnz, chunk_size):
        stop = min(start + chunk_size, nnz)
        chunk = tuple(c[start:stop] for c in coords)
        design = observed_factor_products(chunk, factors, skip_mode=mode)
        rows = chunk[mode]
        chunk_values = values[start:stop]
        for r in range(rank):
            big_c[:, r] += np.bincount(
                rows, weights=chunk_values * design[:, r], minlength=dim
            )
            for s in range(r, rank):
                col = np.bincount(
                    rows, weights=design[:, r] * design[:, s], minlength=dim
                )
                big_b[:, r, s] += col
                if s != r:
                    big_b[:, s, r] += col
    return big_b.astype(dtype, copy=False), big_c.astype(dtype, copy=False)


def _sparse_mttkrp(
    tensor: np.ndarray,
    factors: Sequence[np.ndarray | None],
    mode: int | None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """MTTKRP that touches only the nonzero entries of ``tensor``.

    The dynamic-phase residuals are masked to zero off the observed
    entries, so gathering at ``np.nonzero(tensor)`` and segment-summing
    reproduces the dense contraction exactly while doing ``O(nnz N R)``
    work instead of ``O(prod(dims) R)``.
    """
    dtype = result_dtype(
        tensor, weights, *[f for f in factors if f is not None]
    )
    tensor = np.asarray(tensor, dtype=dtype)
    if tensor.ndim == 1 and mode is not None:
        # Single-mode tensor: the empty Khatri-Rao product is all-ones.
        rank = next(f.shape[1] for f in factors if f is not None)
        row = (
            np.asarray(weights, dtype=dtype)[None, :]
            if weights is not None
            else np.ones((1, rank), dtype=dtype)
        )
        return tensor[:, None] * row
    coords = np.nonzero(tensor)
    dim = None if mode is None else tensor.shape[mode]
    return mttkrp_observed(
        coords, tensor[coords], factors, mode, dim=dim, weights=weights
    )


def _sparse_kruskal_reconstruct_rows(
    factors: Sequence[np.ndarray],
    weight_rows: np.ndarray,
    coords: tuple[np.ndarray, ...] | None = None,
) -> np.ndarray:
    """Evaluate ``[[factors; w_b]]`` only at the requested coordinates.

    With ``coords = (batch_idx, i_1, ..., i_N)`` the result is the 1-D
    array of entry values — ``O(nnz N R)`` gather-multiply work with no
    ``(B, I_1, ..., I_N)`` intermediate.  Without ``coords`` a dense
    stack is requested, which has no sparsity to exploit, so the dense
    batched strategy is reused.
    """
    dtype = result_dtype(weight_rows, *factors)
    weight_rows = np.asarray(weight_rows, dtype=dtype)
    if weight_rows.ndim != 2:
        raise ShapeError(
            f"weight rows must be 2-D (batch, rank), got {weight_rows.shape}"
        )
    if coords is None:
        return _batched_kruskal_reconstruct_rows(factors, weight_rows)
    prod = weight_rows[coords[0]]
    for axis, factor in enumerate(factors):
        prod = prod * np.asarray(factor, dtype=dtype)[coords[axis + 1]]
    return prod.sum(axis=1)


# ---------------------------------------------------------------------------
# Auto kernels (density-aware dispatch between sparse and batched)
# ---------------------------------------------------------------------------


def _auto_accumulate_normal_equations(
    coords: tuple[np.ndarray, ...],
    values: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Route accumulation by observed fraction (Eq. 14-15)."""
    total = 1.0
    for f in factors:
        total *= f.shape[0]
    if values.size < AUTO_DENSITY_THRESHOLD * total:
        return _sparse_accumulate_normal_equations(
            coords, values, factors, mode
        )
    return _batched_accumulate_normal_equations(coords, values, factors, mode)


def _auto_mttkrp(
    tensor: np.ndarray,
    factors: Sequence[np.ndarray | None],
    mode: int | None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Route MTTKRP by the tensor's nonzero fraction.

    The cheap ``count_nonzero`` probe runs first so the dense route
    never materializes coordinate arrays; the sparse route then
    extracts the coordinates once and contracts directly (no second
    scan inside :func:`_sparse_mttkrp`).
    """
    tensor = np.asarray(tensor)
    if tensor.ndim <= 1 or (
        np.count_nonzero(tensor) >= AUTO_DENSITY_THRESHOLD * tensor.size
    ):
        return _batched_mttkrp(tensor, factors, mode, weights)
    coords = np.nonzero(tensor)
    dim = None if mode is None else tensor.shape[mode]
    return mttkrp_observed(
        coords, tensor[coords], factors, mode, dim=dim, weights=weights
    )


def _auto_kruskal_reconstruct_rows(
    factors: Sequence[np.ndarray],
    weight_rows: np.ndarray,
    coords: tuple[np.ndarray, ...] | None = None,
) -> np.ndarray:
    """Gather-only when few entries are requested; dense stack otherwise."""
    if coords is None:
        return _batched_kruskal_reconstruct_rows(factors, weight_rows)
    total = np.asarray(weight_rows).shape[0] * 1.0
    for f in factors:
        total *= f.shape[0]
    if coords[0].size < AUTO_DENSITY_THRESHOLD * total:
        return _sparse_kruskal_reconstruct_rows(factors, weight_rows, coords)
    return _batched_kruskal_reconstruct_rows(factors, weight_rows, coords)


# ---------------------------------------------------------------------------
# Reference kernels (the seed's scalar semantics)
# ---------------------------------------------------------------------------


def _reference_solve_one(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    rank = rhs.shape[0]
    scale = float(np.trace(lhs)) / rank
    ridged = lhs + (_ridge_for(lhs.dtype) * (1.0 + scale)) * np.eye(
        rank, dtype=lhs.dtype
    )
    try:
        return np.linalg.solve(ridged, rhs)
    except np.linalg.LinAlgError:
        return np.linalg.lstsq(ridged, rhs, rcond=None)[0]


def _reference_solve_rows(
    lhs: np.ndarray,
    rhs: np.ndarray,
    fallback: np.ndarray | None = None,
) -> np.ndarray:
    """One Python-level ridge solve per row (the seed's ``_solve_rows``)."""
    dtype = result_dtype(lhs, rhs, fallback)
    lhs = np.asarray(lhs, dtype=dtype)
    rhs = np.asarray(rhs, dtype=dtype)
    out = (
        np.asarray(fallback, dtype=dtype).copy()
        if fallback is not None
        else np.zeros_like(rhs)
    )
    for i in range(rhs.shape[0]):
        if fallback is not None and not lhs[i].any() and not rhs[i].any():
            continue
        out[i] = _reference_solve_one(lhs[i], rhs[i])
    return out


def _reference_accumulate_normal_equations(
    coords: tuple[np.ndarray, ...],
    values: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Chunked ``np.add.at`` accumulation (the seed's implementation)."""
    rank = factors[0].shape[1]
    dim = factors[mode].shape[0]
    dtype = result_dtype(values, *factors)
    big_b = np.zeros((dim, rank, rank), dtype=dtype)
    big_c = np.zeros((dim, rank), dtype=dtype)
    nnz = values.size
    for start in range(0, nnz, _CHUNK):
        stop = min(start + _CHUNK, nnz)
        chunk = tuple(c[start:stop] for c in coords)
        prod = observed_factor_products(chunk, factors, skip_mode=mode)
        np.add.at(big_b, chunk[mode], prod[:, :, None] * prod[:, None, :])
        np.add.at(big_c, chunk[mode], values[start:stop, None] * prod)
    return big_b, big_c


def _reference_temporal_sweep(
    big_b: np.ndarray,
    big_c: np.ndarray,
    temporal: np.ndarray,
    *,
    lambda1: float,
    lambda2: float,
    period: int,
) -> np.ndarray:
    """Sequential scalar Gauss-Seidel sweep (the seed's row ordering)."""
    dtype = result_dtype(big_b, big_c, temporal)
    big_b = np.asarray(big_b, dtype=dtype)
    big_c = np.asarray(big_c, dtype=dtype)
    out = np.asarray(temporal, dtype=dtype).copy()
    length, rank = out.shape
    eye = np.eye(rank, dtype=dtype)
    counts1 = lag_neighbor_counts(length, 1)
    counts2 = lag_neighbor_counts(length, period)
    for i in range(length):
        lhs = big_b[i] + (
            lambda1 * float(counts1[i]) + lambda2 * float(counts2[i])
        ) * eye
        rhs = (
            big_c[i]
            + lambda1 * lag_neighbor_sums(out, 1, np.array([i]))[0]
            + lambda2 * lag_neighbor_sums(out, period, np.array([i]))[0]
        )
        if not lhs.any() and not rhs.any():
            continue
        out[i] = _reference_solve_one(lhs, rhs)
    return out


def _reference_mttkrp(
    tensor: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int | None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Materialized Khatri-Rao MTTKRP (the seed's formulation)."""
    dtype = result_dtype(
        tensor, weights, *[f for f in factors if f is not None]
    )
    tensor = np.asarray(tensor, dtype=dtype)
    if mode is None:
        kr = khatri_rao(list(factors)) if len(factors) > 1 else np.asarray(
            factors[0], dtype=dtype
        )
        if weights is not None:
            kr = kr * np.asarray(weights, dtype=dtype)[None, :]
        return tensor.reshape(-1) @ np.asarray(kr, dtype=dtype)
    others = [factors[axis] for axis in range(tensor.ndim) if axis != mode]
    if not others:
        rank = next(f.shape[1] for f in factors if f is not None)
        row = (
            np.asarray(weights, dtype=dtype)[None, :]
            if weights is not None
            else np.ones((1, rank), dtype=dtype)
        )
        return tensor[:, None] * row
    kr = np.asarray(khatri_rao(others), dtype=dtype)
    if weights is not None:
        kr = kr * np.asarray(weights, dtype=dtype)[None, :]
    return unfold(tensor, mode) @ kr


def _reference_kruskal_reconstruct_rows(
    factors: Sequence[np.ndarray],
    weight_rows: np.ndarray,
    coords: tuple[np.ndarray, ...] | None = None,
) -> np.ndarray:
    """One Kruskal evaluation per weight row (the per-step semantics)."""
    dtype = result_dtype(weight_rows, *factors)
    weight_rows = np.asarray(weight_rows, dtype=dtype)
    if weight_rows.ndim != 2:
        raise ShapeError(
            f"weight rows must be 2-D (batch, rank), got {weight_rows.shape}"
        )
    shape = tuple(f.shape[0] for f in factors)
    out = np.empty((weight_rows.shape[0],) + shape, dtype=dtype)
    for b in range(weight_rows.shape[0]):
        out[b] = kruskal_to_tensor(factors, weights=weight_rows[b])
    if coords is None:
        return out
    return out[coords]


def _reference_rls_update_rows(
    factor: np.ndarray,
    cov: np.ndarray,
    rows: np.ndarray,
    regressors: np.ndarray,
    targets: np.ndarray,
    beta: float,
) -> None:
    """One scalar RLS update per observed entry (the seed's OLSTEC loop)."""
    for row, x, target in zip(rows, regressors, targets):
        p = cov[row]
        px = p @ x
        gain = px / (beta + float(x @ px))
        error = target - float(factor[row] @ x)
        factor[row] += gain * error
        cov[row] = (p - np.outer(gain, px)) / beta


# ---------------------------------------------------------------------------
# Array-API ("xp") kernels — one implementation for NumPy/torch/CuPy
# ---------------------------------------------------------------------------
#
# These six kernels are written once against the Python Array API
# standard plus integer-array gather/scatter indexing (which NumPy,
# torch, and CuPy all support) and execute on whatever array module
# repro.tensor.device selects.  Host (NumPy) inputs are moved to the
# device at the kernel boundary and the outputs come back as NumPy
# arrays; if any input is already device-native the outputs stay on the
# device, which is how the dynamic phase keeps factors resident across
# a whole mini-batch.


def _xp_is_host(array: Any) -> bool:
    """Whether an input lives on the host (outputs follow the inputs)."""
    if array is None or isinstance(
        array, (bool, int, float, np.ndarray, np.generic)
    ):
        return True
    if isinstance(array, (list, tuple)):
        return all(_xp_is_host(item) for item in array)
    return False


def _xp_maybe_host(result: Any, host_out: bool):
    """Convert a kernel result back to NumPy when the inputs were host."""
    return _device.from_device(result) if host_out else result


def _xp_solve_core(xp: Any, lhs: Any, rhs: Any, fallback: Any, dtype) -> Any:
    """Device-level ridged batched solve shared by the xp kernels.

    Mirrors :func:`_batched_solve_rows`: relative ridge, a pinv fallback
    when the batched solve reports a singular system, and pass-through
    of ``fallback`` rows whose ``lhs`` *and* ``rhs`` are entirely zero
    (kept functional via ``xp.where`` so immutable-array libraries are
    not ruled out).
    """
    n, rank = int(rhs.shape[0]), int(rhs.shape[1])
    idx = xp.arange(rank)
    scale = xp.sum(lhs[:, idx, idx], axis=-1) / rank
    eye = xp.eye(rank, dtype=lhs.dtype)
    ridged = lhs + (_ridge_for(dtype) * (1.0 + scale))[:, None, None] * eye
    try:
        solution = xp.linalg.solve(ridged, rhs[:, :, None])[:, :, 0]
    except Exception:
        # The library-specific "singular batch" exception types differ
        # (numpy LinAlgError, torch's RuntimeError subclass); all mean
        # the same thing here: use the minimum-norm pseudo-inverse.
        solution = xp.matmul(xp.linalg.pinv(ridged), rhs[:, :, None])[:, :, 0]
    if fallback is not None:
        flat = xp.reshape(lhs, (n, -1))
        inactive = ~(xp.any(flat != 0, axis=1) | xp.any(rhs != 0, axis=1))
        solution = xp.where(inactive[:, None], fallback, solution)
    return solution


def _xp_solve_rows(
    lhs: Any,
    rhs: Any,
    fallback: Any | None = None,
) -> Any:
    """Batched ridge solve on the active array module."""
    xp = _device.get_array_module()
    dtype = result_dtype(lhs, rhs, fallback)
    host_out = _xp_is_host(lhs) and _xp_is_host(rhs) and _xp_is_host(fallback)
    lhs_x = _device.to_device(lhs, dtype=dtype)
    rhs_x = _device.to_device(rhs, dtype=dtype)
    if int(rhs_x.shape[0]) == 0:
        return _xp_maybe_host(xp.asarray(rhs_x, copy=True), host_out)
    fb = None if fallback is None else _device.to_device(fallback, dtype=dtype)
    return _xp_maybe_host(
        _xp_solve_core(xp, lhs_x, rhs_x, fb, dtype), host_out
    )


def _xp_mttkrp_chain(
    xp: Any,
    tensor: Any,
    mats: Sequence[Any],
    mode: int | None,
    weights: Any | None = None,
) -> Any:
    """Device-level tensordot/broadcast MTTKRP chain (no Khatri-Rao)."""
    ndim = tensor.ndim
    others = [axis for axis in range(ndim) if axis != mode]
    out = tensor
    appended = False
    # Descending order keeps every remaining mode at its original axis.
    for axis in sorted(others, reverse=True):
        mat = mats[axis]
        if not appended:
            if weights is not None:
                mat = mat * weights[None, :]
            out = xp.tensordot(out, mat, axes=((axis,), (0,)))
            appended = True
        else:
            shape = [1] * out.ndim
            shape[axis] = int(mat.shape[0])
            shape[-1] = int(mat.shape[1])
            out = xp.sum(out * xp.reshape(mat, tuple(shape)), axis=axis)
    return out


def _xp_accumulate_normal_equations(
    coords: tuple[np.ndarray, ...],
    values: Any,
    factors: Sequence[Any],
    mode: int,
) -> tuple[Any, Any]:
    """Dense-contraction accumulation (Eq. 14-15) on the array module.

    The same strategy as :func:`_batched_accumulate_normal_equations`:
    scatter the values and the observation indicator to dense device
    arrays, then run both MTTKRP chains on the device.
    """
    xp = _device.get_array_module()
    dtype = result_dtype(values, *factors)
    host_out = _xp_is_host(values) and all(_xp_is_host(f) for f in factors)
    mats = [_device.to_device(f, dtype=dtype) for f in factors]
    rank = int(mats[0].shape[1])
    dim = int(mats[mode].shape[0])
    vals = _device.to_device(values, dtype=dtype)
    if int(vals.shape[0]) == 0:
        return (
            _xp_maybe_host(
                xp.zeros((dim, rank, rank), dtype=mats[0].dtype), host_out
            ),
            _xp_maybe_host(
                xp.zeros((dim, rank), dtype=mats[0].dtype), host_out
            ),
        )
    shape = tuple(int(m.shape[0]) for m in mats)
    idx = tuple(_device.to_device(c) for c in coords)
    dense_values = xp.zeros(shape, dtype=mats[0].dtype)
    dense_values[idx] = vals
    indicator = xp.zeros(shape, dtype=mats[0].dtype)
    indicator[idx] = 1.0
    big_c = _xp_mttkrp_chain(xp, dense_values, mats, mode)
    pairs = [
        xp.reshape(
            m[:, :, None] * m[:, None, :], (int(m.shape[0]), rank * rank)
        )
        for m in mats
    ]
    big_b = xp.reshape(
        _xp_mttkrp_chain(xp, indicator, pairs, mode), (dim, rank, rank)
    )
    return _xp_maybe_host(big_b, host_out), _xp_maybe_host(big_c, host_out)


def _xp_temporal_sweep(
    big_b: Any,
    big_c: Any,
    temporal: Any,
    *,
    lambda1: float,
    lambda2: float,
    period: int,
) -> Any:
    """Four-color batched Gauss-Seidel sweep on the array module.

    The same coloring (and therefore the same valid Gauss-Seidel
    ordering) as :func:`_batched_temporal_sweep`.
    """
    xp = _device.get_array_module()
    dtype = result_dtype(big_b, big_c, temporal)
    host_out = (
        _xp_is_host(big_b) and _xp_is_host(big_c) and _xp_is_host(temporal)
    )
    b_x = _device.to_device(big_b, dtype=dtype)
    c_x = _device.to_device(big_c, dtype=dtype)
    # to_device may be zero-copy; the sweep mutates, so copy explicitly.
    out = xp.asarray(_device.to_device(temporal, dtype=dtype), copy=True)
    length, rank = int(out.shape[0]), int(out.shape[1])
    idx = xp.arange(length)

    def counts(lag: int) -> Any:
        has_left = xp.astype(idx >= lag, b_x.dtype)
        has_right = xp.astype(idx < length - lag, b_x.dtype)
        return has_left + has_right

    diag = lambda1 * counts(1) + lambda2 * counts(period)
    eye = xp.eye(rank, dtype=b_x.dtype)
    zero_row = xp.zeros((1, rank), dtype=b_x.dtype)

    def neighbor_sums(lag: int, rows: Any) -> Any:
        left = rows - lag
        has_left = left >= 0
        li = xp.where(has_left, left, xp.zeros_like(left))
        total = xp.where(has_left[:, None], out[li, :], zero_row)
        right = rows + lag
        has_right = right < length
        ri = xp.where(has_right, right, xp.zeros_like(right))
        return total + xp.where(has_right[:, None], out[ri, :], zero_row)

    colors = (idx % 2) + 2 * ((idx // period) % 2)
    for color in range(4):
        rows = xp.nonzero(colors == color)[0]
        if int(rows.shape[0]) == 0:
            continue
        lhs = b_x[rows, ...] + diag[rows][:, None, None] * eye
        rhs = (
            c_x[rows, ...]
            + lambda1 * neighbor_sums(1, rows)
            + lambda2 * neighbor_sums(period, rows)
        )
        out[rows, ...] = _xp_solve_core(xp, lhs, rhs, out[rows, ...], dtype)
    return _xp_maybe_host(out, host_out)


def _xp_mttkrp(
    tensor: Any,
    factors: Sequence[Any],
    mode: int | None,
    weights: Any | None = None,
) -> Any:
    """Dense MTTKRP on the array module (``mode=None`` contracts all)."""
    xp = _device.get_array_module()
    dtype = result_dtype(
        tensor, weights, *[f for f in factors if f is not None]
    )
    host_out = (
        _xp_is_host(tensor)
        and _xp_is_host(weights)
        and all(_xp_is_host(f) for f in factors)
    )
    t_x = _device.to_device(tensor, dtype=dtype)
    w_x = None if weights is None else _device.to_device(weights, dtype=dtype)
    if t_x.ndim == 1 and mode is not None:
        # Single-mode tensor: the empty Khatri-Rao product is all-ones.
        rank = int(next(f.shape[1] for f in factors if f is not None))
        row = (
            w_x[None, :]
            if w_x is not None
            else xp.ones((1, rank), dtype=t_x.dtype)
        )
        return _xp_maybe_host(t_x[:, None] * row, host_out)
    mats = [
        None if f is None else _device.to_device(f, dtype=dtype)
        for f in factors
    ]
    return _xp_maybe_host(
        _xp_mttkrp_chain(xp, t_x, mats, mode, w_x), host_out
    )


def _xp_kruskal_reconstruct_rows(
    factors: Sequence[Any],
    weight_rows: Any,
    coords: tuple[np.ndarray, ...] | None = None,
) -> Any:
    """Batched Kruskal reconstruction on the array module.

    The same shape-dependent strategy switch as the batched backend
    (broadcast chain for small batches, shared Khatri-Rao matmul
    otherwise); ``coords`` gathers from the dense stack.
    """
    xp = _device.get_array_module()
    dtype = result_dtype(weight_rows, *factors)
    host_out = (
        _xp_is_host(weight_rows)
        and all(_xp_is_host(f) for f in factors)
        and (coords is None or _xp_is_host(coords))
    )
    w_x = _device.to_device(weight_rows, dtype=dtype)
    if w_x.ndim != 2:
        raise ShapeError(
            f"weight rows must be 2-D (batch, rank), got "
            f"{tuple(w_x.shape)}"
        )
    mats = [_device.to_device(f, dtype=dtype) for f in factors]
    shape = tuple(int(m.shape[0]) for m in mats)
    rank = int(w_x.shape[1])
    n_batch = int(w_x.shape[0])
    if len(mats) == 1:
        dense = xp.matmul(w_x, xp.matrix_transpose(mats[0]))
    elif n_batch < shape[-1]:
        out = w_x
        for mat in mats[:-1]:
            out = out[..., None, :] * mat
        flat = xp.reshape(out, (-1, rank))
        dense = xp.reshape(
            xp.matmul(flat, xp.matrix_transpose(mats[-1])),
            (n_batch,) + shape,
        )
    else:
        kr = mats[0]
        for mat in mats[1:]:
            kr = xp.reshape(kr[:, None, :] * mat[None, :, :], (-1, rank))
        dense = xp.reshape(
            xp.matmul(w_x, xp.matrix_transpose(kr)), (n_batch,) + shape
        )
    if coords is None:
        return _xp_maybe_host(dense, host_out)
    idx = tuple(_device.to_device(c) for c in coords)
    return _xp_maybe_host(dense[idx], host_out)


def _xp_rls_update_rows(
    factor: Any,
    cov: Any,
    rows: Any,
    regressors: Any,
    targets: Any,
    beta: float,
) -> None:
    """Round-batched RLS recursions on the array module.

    The round bookkeeping (tiny integer arrays) stays on the host; each
    round's rank-1 updates run on the device.  ``factor`` and ``cov``
    are updated in place at the end, whether they are NumPy arrays or
    device-native tensors.
    """
    xp = _device.get_array_module()
    rows_h = np.asarray(_device.from_device(rows))
    if rows_h.size == 0:
        return
    dtype = result_dtype(factor, cov, regressors, targets)
    f_x = xp.asarray(_device.to_device(factor, dtype=dtype), copy=True)
    p_x = xp.asarray(_device.to_device(cov, dtype=dtype), copy=True)
    order = np.argsort(rows_h, kind="stable")
    rows_sorted = rows_h[order]
    x_all = _device.to_device(
        np.asarray(_device.from_device(regressors))[order], dtype=dtype
    )
    t_all = _device.to_device(
        np.asarray(_device.from_device(targets))[order], dtype=dtype
    )
    is_start = np.concatenate(([True], rows_sorted[1:] != rows_sorted[:-1]))
    starts = np.flatnonzero(is_start)
    group = np.cumsum(is_start) - 1
    position = np.arange(rows_sorted.size) - starts[group]
    for round_index in range(int(position.max()) + 1):
        sel = np.flatnonzero(position == round_index)
        r = _device.to_device(rows_sorted[sel])
        sel_x = _device.to_device(sel)
        x = x_all[sel_x, :]
        p = p_x[r, ...]
        px = xp.matmul(p, x[:, :, None])[:, :, 0]
        gain = px / (beta + xp.sum(x * px, axis=-1))[:, None]
        error = t_all[sel_x] - xp.sum(f_x[r, ...] * x, axis=-1)
        f_x[r, ...] = f_x[r, ...] + gain * error[:, None]
        p_x[r, ...] = (p - gain[:, :, None] * px[:, None, :]) / beta
    if isinstance(factor, np.ndarray):
        factor[...] = _device.from_device(f_x)
        cov[...] = _device.from_device(p_x)
    else:
        factor[...] = f_x
        cov[...] = p_x


# ---------------------------------------------------------------------------
# Backend registry and dispatch
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelBackend:
    """One pluggable set of hot-path kernels.

    New execution paths (GPU, distributed, ...) implement these six
    callables and register themselves; every consumer — core ALS,
    dynamic updates, the mini-batch streaming engine, and the streaming
    baselines — dispatches through the active backend.  See the module
    docstring's authoring guide for the per-kernel contracts.
    """

    name: str
    solve_rows: Callable[..., np.ndarray]
    accumulate_normal_equations: Callable[..., tuple[np.ndarray, np.ndarray]]
    temporal_sweep: Callable[..., np.ndarray]
    mttkrp: Callable[..., np.ndarray]
    rls_update_rows: Callable[..., None]
    kruskal_reconstruct_rows: Callable[..., np.ndarray]
    #: When True (the default), consumers with their own
    #: observed-coordinate fast paths (the dynamic phase's
    #: ``density_threshold`` routing) stay on this backend's dispatched
    #: kernels instead of bypassing them — the safe choice for any
    #: backend whose kernels should see all the work (dense, scalar,
    #: GPU).  The shipped ``sparse``/``auto`` backends opt out: the
    #: per-entry CPU path *is* their execution strategy.
    keeps_dense_steps: bool = True
    #: Pin every kernel of this backend to one computation dtype
    #: (``"float32"``/``"float64"``).  ``None`` (every shipped backend)
    #: follows the inputs — see :func:`result_dtype`.
    dtype: str | None = None
    #: Host↔device boundary converters.  ``None`` (every CPU backend)
    #: means all arrays are host-side and the dynamic phase adds zero
    #: overhead; the ``"xp"`` backend maps these to
    #: :func:`repro.tensor.device.to_device` / ``from_device`` so the
    #: dynamic phase can keep factors device-resident across a whole
    #: step or mini-batch.
    to_device: Callable[..., Any] | None = None
    from_device: Callable[..., Any] | None = None


#: Environment variable that selects the import-time active backend —
#: the hook the CI backend matrix uses to run whole suites under one
#: backend without code changes.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

_BACKENDS: dict[str, KernelBackend] = {}

# Thread-safety of the backend selection: the process-wide default
# (what :func:`set_backend` writes) is guarded by ``_REGISTRY_LOCK``,
# while :func:`use_backend` scopes live in a :class:`ContextVar` stack.
# A context variable is per-thread (and per-asyncio-task), so two
# worker threads — e.g. the serving scheduler flushing different
# sessions — can each run under their own ``use_backend`` without
# racing one another, and a thread spawned outside any scope still
# sees the process default.
_REGISTRY_LOCK = threading.Lock()
_DEFAULT_BACKEND = "auto"
_BACKEND_OVERRIDES: ContextVar[tuple[str, ...]] = ContextVar(
    "repro_kernel_backend_overrides", default=()
)


def register_backend(backend: KernelBackend) -> None:
    """Register (or replace) a kernel backend under ``backend.name``."""
    with _REGISTRY_LOCK:
        _BACKENDS[backend.name] = backend


def available_backends() -> list[str]:
    """Names of all registered backends."""
    return sorted(_BACKENDS)


def _check_registered(name: str) -> None:
    if name not in _BACKENDS:
        raise ConfigError(
            f"unknown kernel backend {name!r}; "
            f"available: {available_backends()}"
        )


def active_backend() -> KernelBackend:
    """The backend all dispatched kernels currently use.

    The innermost :func:`use_backend` scope of the *current thread*
    wins; outside any scope this is the process-wide default set by
    :func:`set_backend` (or the ``REPRO_KERNEL_BACKEND`` environment
    variable at import time).
    """
    overrides = _BACKEND_OVERRIDES.get()
    name = overrides[-1] if overrides else _DEFAULT_BACKEND
    return _BACKENDS[name]


def set_backend(name: str) -> None:
    """Make ``name`` the active backend for all subsequent kernel calls.

    Outside any :func:`use_backend` scope this sets the process-wide
    default seen by every thread (including threads spawned later).
    Inside a scope it rebinds that scope only — the change is local to
    the current thread and is discarded when the scope exits, so a
    worker thread switching backends can never leak its choice into
    another thread's computation.

    Unknown names raise :class:`~repro.exceptions.ConfigError` listing
    :func:`available_backends`, and leave the active backend unchanged.
    """
    global _DEFAULT_BACKEND
    _check_registered(name)
    overrides = _BACKEND_OVERRIDES.get()
    if overrides:
        _BACKEND_OVERRIDES.set(overrides[:-1] + (name,))
        return
    with _REGISTRY_LOCK:
        _DEFAULT_BACKEND = name


@contextmanager
def use_backend(name: str):
    """Context manager: run a block under a different kernel backend.

    The previously active backend is restored on exit even when the
    body raises (or itself switches backends); entering with an unknown
    name raises without changing the active backend.  The scope is
    *context-local* (a :class:`ContextVar`): concurrent threads can
    each hold their own ``use_backend`` without affecting one another
    or the process default — this is what lets the serving scheduler
    run sessions pinned to different backends on a shared worker pool.
    """
    _check_registered(name)
    token = _BACKEND_OVERRIDES.set(_BACKEND_OVERRIDES.get() + (name,))
    try:
        yield _BACKENDS[name]
    finally:
        _BACKEND_OVERRIDES.reset(token)


register_backend(
    KernelBackend(
        name="batched",
        solve_rows=_batched_solve_rows,
        accumulate_normal_equations=_batched_accumulate_normal_equations,
        temporal_sweep=_batched_temporal_sweep,
        mttkrp=_batched_mttkrp,
        rls_update_rows=_batched_rls_update_rows,
        kruskal_reconstruct_rows=_batched_kruskal_reconstruct_rows,
    )
)
# The sparse backend specializes the kernels whose cost scales with the
# subtensor volume; the remaining three already run over per-row systems
# or observed entries only, so the batched implementations are reused.
register_backend(
    KernelBackend(
        name="sparse",
        solve_rows=_batched_solve_rows,
        accumulate_normal_equations=_sparse_accumulate_normal_equations,
        temporal_sweep=_batched_temporal_sweep,
        mttkrp=_sparse_mttkrp,
        rls_update_rows=_batched_rls_update_rows,
        kruskal_reconstruct_rows=_sparse_kruskal_reconstruct_rows,
        keeps_dense_steps=False,
    )
)
register_backend(
    KernelBackend(
        name="auto",
        solve_rows=_batched_solve_rows,
        accumulate_normal_equations=_auto_accumulate_normal_equations,
        temporal_sweep=_batched_temporal_sweep,
        mttkrp=_auto_mttkrp,
        rls_update_rows=_batched_rls_update_rows,
        kruskal_reconstruct_rows=_auto_kruskal_reconstruct_rows,
        keeps_dense_steps=False,
    )
)
# The xp backend runs the dense strategy on the array module selected
# by repro.tensor.device; keeps_dense_steps stays True so its kernels
# see all the dynamic-phase work (the CPU per-entry fast path would
# bypass the device).
register_backend(
    KernelBackend(
        name="xp",
        solve_rows=_xp_solve_rows,
        accumulate_normal_equations=_xp_accumulate_normal_equations,
        temporal_sweep=_xp_temporal_sweep,
        mttkrp=_xp_mttkrp,
        rls_update_rows=_xp_rls_update_rows,
        kruskal_reconstruct_rows=_xp_kruskal_reconstruct_rows,
        to_device=_device.to_device,
        from_device=_device.from_device,
    )
)
register_backend(
    KernelBackend(
        name="reference",
        solve_rows=_reference_solve_rows,
        accumulate_normal_equations=_reference_accumulate_normal_equations,
        temporal_sweep=_reference_temporal_sweep,
        mttkrp=_reference_mttkrp,
        rls_update_rows=_reference_rls_update_rows,
        kruskal_reconstruct_rows=_reference_kruskal_reconstruct_rows,
    )
)

_env_backend = os.environ.get(BACKEND_ENV_VAR, "").strip()
if _env_backend:
    set_backend(_env_backend)


def to_device(array: Any) -> Any:
    """Move a host array onto the active backend's device.

    Identity for backends without device converters (all CPU backends);
    under ``"xp"`` this is :func:`repro.tensor.device.to_device`.  The
    dynamic phase calls this once per step/mini-batch so the factor
    matrices stay resident across consecutive kernel calls.
    """
    convert = active_backend().to_device
    return array if convert is None else convert(array)


def from_device(array: Any) -> Any:
    """Bring a kernel result back to the host (identity for CPU backends)."""
    convert = active_backend().from_device
    return array if convert is None else convert(array)


def solve_rows(
    lhs: np.ndarray,
    rhs: np.ndarray,
    fallback: np.ndarray | None = None,
) -> np.ndarray:
    """Solve the stacked row systems ``lhs[i] x_i = rhs[i]`` (Theorem 1).

    Each system gets a relative ridge before solving.  Rows whose system
    is all-zero keep the matching ``fallback`` row (when given); singular
    systems fall back to a minimum-norm least-squares solution.
    """
    return active_backend().solve_rows(lhs, rhs, fallback)


def accumulate_normal_equations(
    coords: tuple[np.ndarray, ...],
    values: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Accumulate ``B_i`` and ``c_i`` (Eq. 14-15) for every row of ``mode``.

    Parameters
    ----------
    coords:
        Tuple of index arrays (one per mode) of the observed entries.
    values:
        Outlier-corrected observed values ``y*`` aligned with ``coords``.
    factors:
        Current factor matrices.
    mode:
        The mode being updated.

    Returns
    -------
    (B, c):
        ``B`` of shape ``(I_mode, R, R)`` and ``c`` of shape
        ``(I_mode, R)``.
    """
    return active_backend().accumulate_normal_equations(
        coords, values, factors, mode
    )


def temporal_sweep(
    big_b: np.ndarray,
    big_c: np.ndarray,
    temporal: np.ndarray,
    *,
    lambda1: float,
    lambda2: float,
    period: int,
) -> np.ndarray:
    """One Gauss-Seidel sweep of the temporal rows (Theorem 2, Eq. 17-18).

    Returns the updated temporal factor; rows with neither observations
    nor smoothness coupling keep their previous values.
    """
    return active_backend().temporal_sweep(
        big_b,
        big_c,
        temporal,
        lambda1=lambda1,
        lambda2=lambda2,
        period=period,
    )


def mttkrp(
    tensor: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int | None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Matricized-tensor-times-Khatri-Rao-product for a dense tensor.

    With an integer ``mode``, returns the ``(I_mode, R)`` contraction of
    ``tensor`` against all other factor matrices (optionally scaled by
    component ``weights``) — the gradient workhorse of Eq. 24.  With
    ``mode=None``, contracts every mode and returns the length-``R``
    vector of Eq. 25.
    """
    return active_backend().mttkrp(tensor, factors, mode, weights)


def kruskal_reconstruct_rows(
    factors: Sequence[np.ndarray],
    weight_rows: np.ndarray,
    coords: tuple[np.ndarray, ...] | None = None,
) -> np.ndarray:
    """Evaluate ``[[factors; w_b]]`` for every row ``w_b`` of a weight matrix.

    Without ``coords``, returns an array of shape ``(B, I_1, ..., I_N)``
    — the stacked reconstructions the mini-batch streaming engine uses
    for the Eq. 20 predictions and the per-step completions of a whole
    batch at once.  With ``coords`` — a tuple of index arrays
    ``(batch_idx, i_1, ..., i_N)`` into that stack — only the requested
    entries are returned as a 1-D array; the sparse backend computes
    them by per-entry gather (``O(nnz N R)``), dense backends
    reconstruct and gather.
    """
    if coords is not None and len(coords) != len(factors) + 1:
        raise ShapeError(
            f"coords must hold {len(factors) + 1} index arrays "
            f"(batch plus one per mode), got {len(coords)}"
        )
    return active_backend().kruskal_reconstruct_rows(
        factors, weight_rows, coords
    )


def rls_update_rows(
    factor: np.ndarray,
    cov: np.ndarray,
    rows: np.ndarray,
    regressors: np.ndarray,
    targets: np.ndarray,
    beta: float,
) -> None:
    """Apply one RLS update per observed entry, grouped by factor row.

    Mutates ``factor`` and the stacked inverse-covariance matrices
    ``cov`` in place, preserving the per-row entry ordering of the
    scalar recursion.
    """
    active_backend().rls_update_rows(
        factor, cov, rows, regressors, targets, beta
    )
