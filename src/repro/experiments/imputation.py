"""Figs. 3-5 experiment: streaming imputation accuracy and speed.

One driver produces everything the three figures need: per-step NRE
curves (Fig. 3), running average error (Fig. 4), and average running
time per subtensor (Fig. 5), for every (dataset, setting, algorithm)
cell of the paper's grid.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.baselines import Mast, Olstec, OnlineSGD, OrMstc, SofiaImputer
from repro.experiments.settings import (
    DATASET_NAMES,
    ExperimentScale,
    SMALL_SCALE,
    dataset_stream,
    sofia_config_for,
)
from repro.streams import (
    CorruptionSpec,
    ImputationResult,
    TensorStream,
    corrupt,
    run_imputation,
)

__all__ = [
    "GridCell",
    "ImputationGrid",
    "default_imputers",
    "run_imputation_grid",
]

AlgorithmFactory = Callable[[int, int], object]  # (rank, period) -> imputer


def default_imputers() -> dict[str, AlgorithmFactory]:
    """The Fig. 3 lineup: SOFIA plus the four plotted competitors.

    (BRST is omitted from the default lineup exactly as the paper omits
    its curves — §VI-C reports it degenerates; the ablation bench runs it
    separately.)
    """
    return {
        "SOFIA": lambda rank, period: SofiaImputer(
            sofia_config_for_rank(rank, period)
        ),
        "OnlineSGD": lambda rank, period: OnlineSGD(rank, seed=0),
        "OLSTEC": lambda rank, period: Olstec(rank, seed=0),
        "MAST": lambda rank, period: Mast(rank, seed=0),
        "OR-MSTC": lambda rank, period: OrMstc(rank, seed=0),
    }


def sofia_config_for_rank(rank: int, period: int):
    from repro.core import SofiaConfig

    return SofiaConfig(
        rank=rank,
        period=period,
        lambda1=0.1,
        lambda2=0.1,
        max_outer_iters=300,
        tol=1e-6,
    )


@dataclass(frozen=True)
class GridCell:
    """One (dataset, setting, algorithm) cell averaged over seeds."""

    dataset: str
    setting: CorruptionSpec
    algorithm: str
    nre_series: np.ndarray = field(repr=False)
    rae: float
    art_seconds: float


@dataclass(frozen=True)
class ImputationGrid:
    """All cells of one grid run."""

    cells: tuple[GridCell, ...]
    scale_name: str

    def cell(self, dataset: str, setting_label: str, algorithm: str) -> GridCell:
        for c in self.cells:
            if (
                c.dataset == dataset
                and c.setting.label == setting_label
                and c.algorithm == algorithm
            ):
                return c
        raise KeyError((dataset, setting_label, algorithm))

    def winners(self) -> dict[tuple[str, str], str]:
        """Lowest-RAE algorithm per (dataset, setting) — the Fig. 4 story."""
        best: dict[tuple[str, str], GridCell] = {}
        for c in self.cells:
            key = (c.dataset, c.setting.label)
            if key not in best or c.rae < best[key].rae:
                best[key] = c
        return {key: cell.algorithm for key, cell in best.items()}


def run_imputation_grid(
    *,
    scale: ExperimentScale = SMALL_SCALE,
    datasets: Sequence[str] = DATASET_NAMES,
    settings: Sequence[CorruptionSpec] | None = None,
    algorithms: dict[str, AlgorithmFactory] | None = None,
) -> ImputationGrid:
    """Run the Figs. 3-5 grid and collect per-cell results.

    Each cell runs every corruption seed in ``scale.seeds`` and averages
    the metrics (the paper averages five runs).
    """
    settings = tuple(settings if settings is not None else scale.settings)
    algorithms = algorithms if algorithms is not None else default_imputers()
    cells: list[GridCell] = []
    for name in datasets:
        ds = dataset_stream(name, scale)
        truth = TensorStream.fully_observed(ds.data, period=ds.period)
        rank = scale.ranks[name]
        startup = 3 * ds.period
        for setting in settings:
            for algo_name, factory in algorithms.items():
                series_runs, rae_runs, art_runs = [], [], []
                for seed in scale.seeds:
                    corrupted = corrupt(ds.data, setting, seed=seed)
                    observed = TensorStream(
                        data=corrupted.observed,
                        mask=corrupted.mask,
                        period=ds.period,
                    )
                    result: ImputationResult = run_imputation(
                        factory(rank, ds.period),
                        observed,
                        truth,
                        startup_steps=startup,
                        batch_size=scale.batch_size,
                    )
                    series_runs.append(result.nre_series)
                    rae_runs.append(result.rae)
                    art_runs.append(result.art_seconds)
                cells.append(
                    GridCell(
                        dataset=name,
                        setting=setting,
                        algorithm=algo_name,
                        nre_series=np.mean(series_runs, axis=0),
                        rae=float(np.mean(rae_runs)),
                        art_seconds=float(np.mean(art_runs)),
                    )
                )
    return ImputationGrid(cells=tuple(cells), scale_name=scale.name)
