"""Save/load SOFIA model state as ``.npz`` archives.

An initialized :class:`repro.core.Sofia` can be checkpointed mid-stream
and restored later — the archive holds the non-temporal factors, the
temporal ring buffer, the vector Holt-Winters state, the error-scale
tensor, the step counter, and the configuration.  The serving layer's
eviction tier (:mod:`repro.serving.store`) spills cold sessions through
this exact format, so a round-trip must be bit-exact: ``np.savez``
stores the arrays losslessly and the config travels as JSON (Python
float repr round-trips exactly).

Two transports share one format: :func:`save_sofia` /
:func:`load_sofia` write compressed ``.npz`` files on disk (durable
checkpoints, eviction spills), while :func:`dumps_sofia` /
:func:`loads_sofia` round-trip the identical versioned archive through
``bytes`` — uncompressed, because the consumer is the serving layer's
*process worker handoff* (state crosses a pipe once per flush; zlib
latency would dominate the win).  Both loaders run the same
format-version and config-field verification.

Format versioning
-----------------
``_FORMAT_VERSION`` is 2 since the config surface grew ``dtype``,
``density_threshold``, and ``batch_size``: every
:class:`~repro.core.config.SofiaConfig` field is round-tripped
explicitly and verified on load — a checkpoint whose config is missing
a field (or carries an unknown one) raises
:class:`~repro.exceptions.CheckpointError` instead of silently
defaulting, and so does any format-version mismatch.  Version-1
archives predate that config surface and are refused loudly for the
same reason.
"""

from __future__ import annotations

import dataclasses
import io
import json
import zipfile
from pathlib import Path

import numpy as np

from repro.core.config import SofiaConfig
from repro.core.model import SofiaModelState
from repro.core.sofia import Sofia
from repro.exceptions import CheckpointError, NotFittedError
from repro.forecast.vector_hw import VectorHoltWinters

__all__ = ["dumps_sofia", "load_sofia", "loads_sofia", "save_sofia"]

#: Version 2: the config JSON must carry the full post-PR-4 field set
#: (``dtype``, ``density_threshold``, ``batch_size``, ...) and is
#: checked field-by-field on load.
_FORMAT_VERSION = 2


def _config_field_names() -> set[str]:
    return {field.name for field in dataclasses.fields(SofiaConfig)}


def _state_arrays(sofia: Sofia) -> dict[str, np.ndarray]:
    """The full versioned archive contents for one initialized model."""
    if not sofia.is_initialized:
        raise NotFittedError("cannot save an uninitialized SOFIA model")
    state = sofia.state
    arrays: dict[str, np.ndarray] = {
        "temporal_buffer": state.temporal_buffer,
        "sigma": state.sigma,
        "hw_level": state.hw.level,
        "hw_trend": state.hw.trend,
        "hw_seasonal": state.hw.seasonal,
        "hw_alpha": state.hw.alpha,
        "hw_beta": state.hw.beta,
        "hw_gamma": state.hw.gamma,
        "t": np.asarray(state.t),
        "n_factors": np.asarray(len(state.non_temporal)),
        "format_version": np.asarray(_FORMAT_VERSION),
    }
    for i, factor in enumerate(state.non_temporal):
        arrays[f"factor_{i}"] = factor
    config_fields = dataclasses.asdict(sofia.config)
    # The full field set is written explicitly (not just "whatever the
    # dataclass happens to hold") so load_sofia can verify it; a field
    # added to SofiaConfig without a version bump fails the next
    # round-trip test rather than silently defaulting on load.
    assert set(config_fields) == _config_field_names()
    config_json = json.dumps(config_fields)
    arrays["config_json"] = np.frombuffer(
        config_json.encode("utf-8"), dtype=np.uint8
    )
    return arrays


def save_sofia(sofia: Sofia, path: str | Path) -> None:
    """Checkpoint an initialized SOFIA model to ``path`` (npz)."""
    np.savez_compressed(Path(path), **_state_arrays(sofia))


def dumps_sofia(sofia: Sofia) -> bytes:
    """Serialize an initialized model to checkpoint-format ``bytes``.

    Same versioned archive as :func:`save_sofia`, written uncompressed
    into memory — the serving layer's process worker pool ships session
    state across pipes with this (one round-trip per flush, so
    compression latency matters more than size).  Restore with
    :func:`loads_sofia`.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **_state_arrays(sofia))
    return buffer.getvalue()


def _load_config(archive) -> SofiaConfig:
    config_json = bytes(archive["config_json"].tobytes()).decode("utf-8")
    payload = json.loads(config_json)
    expected = _config_field_names()
    saved = set(payload)
    if saved != expected:
        missing = sorted(expected - saved)
        unexpected = sorted(saved - expected)
        raise CheckpointError(
            "checkpoint config does not match this build's SofiaConfig "
            f"(missing fields: {missing}, unexpected fields: "
            f"{unexpected}); refusing to fill the gaps with defaults — "
            "re-save the checkpoint with this version"
        )
    return SofiaConfig(**payload)


def load_sofia(path: str | Path) -> Sofia:
    """Restore a SOFIA model checkpointed by :func:`save_sofia`.

    Raises
    ------
    CheckpointError
        If ``path`` is not a SOFIA checkpoint, its format version does
        not match this build's ``_FORMAT_VERSION``, or its config does
        not carry exactly this build's :class:`SofiaConfig` fields.
        Nothing is ever silently defaulted.
    """
    return _load_archive(Path(path), str(path))


def loads_sofia(data: bytes) -> Sofia:
    """Restore a model serialized by :func:`dumps_sofia`.

    Runs the same format-version and config-field verification as
    :func:`load_sofia`; raises :class:`CheckpointError` on any mismatch.
    """
    return _load_archive(io.BytesIO(data), "<bytes>")


def _load_archive(source, label: str) -> Sofia:
    try:
        archive_ctx = np.load(source)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise CheckpointError(
            f"cannot read {label} as a SOFIA checkpoint: {exc}"
        ) from exc
    with archive_ctx as archive:
        if "format_version" not in archive:
            raise CheckpointError(
                f"{label} has no 'format_version' field — not a SOFIA "
                "checkpoint"
            )
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format version {version} does not match "
                f"this build's version {_FORMAT_VERSION}; version-1 "
                "archives predate the dtype/density_threshold/"
                "batch_size config surface and would load with "
                "silently defaulted fields — re-save the model with "
                "this version instead"
            )
        config = _load_config(archive)
        n_factors = int(archive["n_factors"])
        non_temporal = [archive[f"factor_{i}"] for i in range(n_factors)]
        hw = VectorHoltWinters(
            level=archive["hw_level"],
            trend=archive["hw_trend"],
            seasonal=archive["hw_seasonal"],
            alpha=archive["hw_alpha"],
            beta=archive["hw_beta"],
            gamma=archive["hw_gamma"],
        )
        state = SofiaModelState(
            non_temporal=non_temporal,
            temporal_buffer=archive["temporal_buffer"],
            hw=hw,
            sigma=archive["sigma"],
            t=int(archive["t"]),
        )
    return Sofia.from_state(config, state)
