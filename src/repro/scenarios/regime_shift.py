"""Regime shift: the data-generating process changes abruptly mid-stream.

Halfway through the stream the non-temporal factors are redrawn and
scaled up 1.6x — the kind of break a sensor fleet sees after a
hardware swap or a re-calibration.  The first half teaches the model
one regime; the second half contradicts it.  SOFIA's SGD factor
updates should track the new regime within a few seasons, so the
envelope bounds the *final* NRE (last quarter of the stream) rather
than the transient spike right after the break.  Corruption stays at
the paper's mild (20, 10, 2) setting throughout so the difficulty
comes from the shift, not the noise.
"""

from __future__ import annotations

from repro.scenarios.base import (
    GeneratorSpec,
    QualityEnvelope,
    scenario_from_module,
)
from repro.streams.corruption import (
    CorruptionSchedule,
    CorruptionSpec,
    SchedulePhase,
)

SCENARIO = scenario_from_module(
    __doc__,
    name="regime_shift",
    generator=GeneratorSpec(
        dims=(8, 6),
        rank=3,
        period=10,
        n_steps=200,
        noise=0.02,
        regime_shift_at=100,
        regime_scale=1.6,
    ),
    schedule=CorruptionSchedule(
        phases=(SchedulePhase(0, None, CorruptionSpec(20, 10, 2)),)
    ),
    envelope=QualityEnvelope(max_rae=0.65, max_final_nre=0.80, max_afe=1.00),
    n_sessions=2,
)
