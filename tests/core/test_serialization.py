"""Unit tests for SOFIA model checkpointing."""

import numpy as np
import pytest

from repro.core import Sofia, SofiaConfig
from repro.core.serialization import load_sofia, save_sofia
from repro.exceptions import NotFittedError

from tests.core.conftest import corrupt_tensor, make_seasonal_stream


@pytest.fixture(scope="module")
def fitted_sofia():
    tensor, _, _ = make_seasonal_stream(
        dims=(8, 6), rank=2, period=6, n_steps=30, seed=3
    )
    corrupted, mask, _ = corrupt_tensor(tensor, 20, 5, 2)
    config = SofiaConfig(
        rank=2, period=6, lambda1=0.1, lambda2=0.1,
        max_outer_iters=100, tol=1e-6,
    )
    sofia = Sofia(config)
    ti = config.init_steps
    sofia.initialize(
        [corrupted[..., t] for t in range(ti)],
        [mask[..., t] for t in range(ti)],
    )
    for t in range(ti, 24):
        sofia.step(corrupted[..., t], mask[..., t])
    return sofia, tensor, corrupted, mask


class TestRoundtrip:
    def test_state_preserved(self, fitted_sofia, tmp_path):
        sofia, _, _, _ = fitted_sofia
        path = tmp_path / "model.npz"
        save_sofia(sofia, path)
        restored = load_sofia(path)
        assert restored.config == sofia.config
        assert restored.state.t == sofia.state.t
        for a, b in zip(
            restored.state.non_temporal, sofia.state.non_temporal
        ):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(restored.state.sigma, sofia.state.sigma)
        np.testing.assert_array_equal(
            restored.state.temporal_buffer, sofia.state.temporal_buffer
        )
        np.testing.assert_array_equal(
            restored.state.hw.level, sofia.state.hw.level
        )

    def test_restored_model_continues_identically(self, fitted_sofia, tmp_path):
        import copy

        sofia, tensor, corrupted, mask = fitted_sofia
        original = copy.deepcopy(sofia)
        path = tmp_path / "model.npz"
        save_sofia(sofia, path)
        restored = load_sofia(path)
        for t in range(24, 30):
            a = original.step(corrupted[..., t], mask[..., t])
            b = restored.step(corrupted[..., t], mask[..., t])
            np.testing.assert_allclose(a.completed, b.completed)
            np.testing.assert_allclose(a.outliers, b.outliers)

    def test_forecast_identical(self, fitted_sofia, tmp_path):
        sofia, _, _, _ = fitted_sofia
        path = tmp_path / "model.npz"
        save_sofia(sofia, path)
        restored = load_sofia(path)
        np.testing.assert_allclose(restored.forecast(6), sofia.forecast(6))


class TestErrors:
    def test_unfitted_rejected(self, tmp_path):
        sofia = Sofia(SofiaConfig(rank=2, period=4))
        with pytest.raises(NotFittedError):
            save_sofia(sofia, tmp_path / "x.npz")
