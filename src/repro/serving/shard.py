"""Shard router: consistent-hash session placement across gateways.

One ``repro-serve`` gateway scales with cores; a fleet of them scales
with machines.  This module puts a routing tier in front of N backend
gateways so clients keep one URL while sessions spread across the
fleet:

* :class:`HashRing` — consistent hashing with virtual nodes.  The
  ring is a pure function of the shard URL list (stable
  ``blake2b``-based hashing, never Python's salted ``hash``), so every
  router instance built from the same shard list places every session
  identically, and adding a shard moves only ~1/N of the keyspace.
* :class:`ShardRouterServer` — a stdlib ``ThreadingHTTPServer`` that
  proxies the full ``/v1`` surface: session-scoped requests forward to
  the owning shard with status and body relayed verbatim (the
  structured error envelope survives the hop, so
  :class:`~repro.serving.client.HTTPServingClient` raises the same
  exception types through the router as against a bare gateway);
  ``/v1/sessions`` merges the fleet's listings (with per-session
  stats); ``/v1/metrics`` aggregates per-shard snapshots
  (:func:`aggregate_snapshots`, bucket-level histogram merging) and
  serves the Prometheus text format under ``?format=prometheus``;
  ``/v1/traces`` merges every shard's slice-lifecycle spans; a
  client-supplied ``X-Repro-Trace-Id`` header survives the proxy hop;
  ``/v1/shards`` exposes the topology.
* **Live migration** — ``POST /v1/sessions/<id>/migrate`` with
  ``{"target": <shard-url>}`` drains the session's pending slices and
  exports its state on the source shard (the gateway's ``export``
  endpoint, backed by
  :meth:`~repro.serving.store.CheckpointStore.export_state`), imports
  it on the target (``import`` /
  :meth:`~repro.serving.store.CheckpointStore.import_state`),
  atomically repoints the session's ring entry, and closes the source
  copy.  The handoff medium is the same versioned checkpoint bytes the
  eviction tier spills, so a migrated session's trajectory is
  bit-identical to an unmigrated one (pinned by
  ``tests/serving/test_shard.py``).  A per-session lock serializes
  proxied requests against the migration, so no request ever lands on
  the source mid-handoff.
* :func:`start_local_cluster` — self-host N backend gateways plus a
  router in one process (what the replay harness's ``--shards`` mode
  and the shard bench use).
* **Self-healing** — an optional background prober polls each shard's
  ``GET /v1/metrics``; per-shard liveness and load (resident sessions,
  p95 flush latency) feed load-aware placement of *new* sessions
  (existing placements stay sticky), ``POST /v1/shards/join|drain``
  rebalance the fleet through the migrate path with bounded
  concurrency, and a shard declared dead has its sessions re-homed
  onto survivors from their durable checkpoints (written by
  ``--durable`` managers), with any acked-but-unflushed slices
  surfaced as the session's ``degraded`` count instead of silently
  dropped.  Idempotent GET forwards retry with capped exponential
  backoff before declaring a shard unreachable.

``main`` is the ``repro-serve-router`` console entry point::

    repro-serve-router --shard http://10.0.0.1:8349 \\
        --shard http://10.0.0.2:8349 --port 8350

    repro-serve-router --local-shards 2 --port 8350   # demo/CI cluster
"""

from __future__ import annotations

import argparse
import base64
import bisect
import hashlib
import json
import re
import tempfile
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.exceptions import ConfigError, SessionNotFoundError
from repro.serving.gateway import (
    API_PREFIX,
    PROMETHEUS_CONTENT_TYPE,
    ServingHTTPServer,
    serve,
)
from repro.serving.manager import SessionManager
from repro.serving.observability import (
    TRACE_HEADER,
    percentile_from_buckets,
    render_prometheus,
)
from repro.serving.pool import WORKER_KINDS
from repro.serving.store import checkpoint_meta_path

__all__ = [
    "HashRing",
    "LocalCluster",
    "ShardHealth",
    "ShardRouterServer",
    "aggregate_snapshots",
    "main",
    "serve_router",
    "start_local_cluster",
]

_SESSION_PATH = re.compile(r"^/sessions/(?P<sid>[^/]+)(?:/|$)")

#: Derived metric keys recomputed from the summed counters instead of
#: being summed themselves (a sum of per-shard means is meaningless).
_DERIVED_METRICS = ("mean_batch_size", "mean_fused_sessions")


class HashRing:
    """Consistent-hash ring over shard URLs, with virtual nodes.

    Deterministic given the shard list: placement uses
    :func:`hashlib.blake2b` (Python's builtin ``hash`` is salted per
    process and would scatter sessions differently on every restart).
    Each shard contributes ``replicas`` virtual nodes, which evens out
    the keyspace split; shard list order does not matter.  A shard's
    capacity weight scales its virtual-node count — weight 2.0 owns
    ~2x the keyspace of weight 1.0 — while weight 1.0 for everyone
    reproduces the unweighted ring bit-for-bit.
    """

    def __init__(self, shards, *, replicas: int = 64, weights=None) -> None:
        cleaned = []
        for shard in shards:
            url = str(shard).rstrip("/")
            if not url.startswith(("http://", "https://")):
                raise ConfigError(
                    f"shard must be an http(s) base URL, got {shard!r}"
                )
            if url not in cleaned:
                cleaned.append(url)
        if not cleaned:
            raise ConfigError("a hash ring needs at least one shard")
        if replicas < 1:
            raise ConfigError(
                f"replicas must be >= 1, got {replicas}"
            )
        weight_map: dict[str, float] = {}
        for shard, weight in (weights or {}).items():
            url = str(shard).rstrip("/")
            value = float(weight)
            if value <= 0:
                raise ConfigError(
                    f"shard weight must be > 0, got {shard}={weight!r}"
                )
            weight_map[url] = value
        unknown = sorted(set(weight_map) - set(cleaned))
        if unknown:
            raise ConfigError(
                f"weights name shards not in the ring: {unknown}"
            )
        self._shards = tuple(cleaned)
        self._replicas = replicas
        self._weights = {
            url: weight_map.get(url, 1.0) for url in cleaned
        }
        points = sorted(
            (self._hash(f"{shard}#{replica}"), shard)
            for shard in self._shards
            for replica in range(
                max(1, round(replicas * self._weights[shard]))
            )
        )
        self._points = points
        self._keys = [key for key, _ in points]

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(
            key.encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    @property
    def shards(self) -> tuple[str, ...]:
        return self._shards

    @property
    def replicas(self) -> int:
        return self._replicas

    @property
    def weights(self) -> dict[str, float]:
        return dict(self._weights)

    def shard_for(self, session_id: str) -> str:
        """The shard owning ``session_id`` (first point clockwise)."""
        index = bisect.bisect_right(
            self._keys, self._hash(str(session_id))
        ) % len(self._keys)
        return self._points[index][1]


def _merge_buckets(summaries: list[dict]) -> dict | None:
    """Elementwise-sum per-shard histogram buckets, if possible.

    Requires every summary to expose buckets on *identical* bounds
    (they do when all shards run the same build — the bounds are a
    pure function of the histogram constants).  Returns ``None`` when
    any shard lacks buckets or disagrees on bounds; the caller then
    falls back to the conservative percentile merge.
    """
    buckets = [s.get("buckets") for s in summaries]
    if not buckets or any(
        not isinstance(b, dict) or "bounds" not in b or "counts" not in b
        for b in buckets
    ):
        return None
    bounds = list(buckets[0]["bounds"])
    if any(list(b["bounds"]) != bounds for b in buckets[1:]):
        return None
    counts = [0] * (len(bounds) + 1)
    for b in buckets:
        if len(b["counts"]) != len(counts):
            return None
        for i, c in enumerate(b["counts"]):
            counts[i] += int(c)
    return {"bounds": bounds, "counts": counts}


def aggregate_snapshots(per_shard: dict[str, dict]) -> dict:
    """Fold per-shard ``/v1/metrics`` snapshots into one fleet view.

    Plain numeric counters sum; the derived means are recomputed from
    the summed counters; each ``*_latency`` summary merges with exact
    ``count``/``mean_seconds``/``max_seconds``.  When every shard
    exposes its raw histogram buckets (all on the same bounds — one
    code base, one formula), the per-bucket counts sum elementwise and
    the merged percentiles are *recomputed from the merged buckets* —
    exactly the values one histogram over the union of all shards'
    samples would report.  Shards without bucket data (pre-bucket
    builds) fall back to the old conservative merge: the max
    percentile across shards, an upper bound, which is the safe
    direction for SLO gating.  The raw per-shard snapshots ride along
    under ``"shards"``.

    A shard whose snapshot is missing (``None`` or any non-dict — an
    unreachable or mid-crash shard) is skipped rather than raising;
    its URL is reported under ``"unreachable_shards"`` so a fleet
    view during failover stays a fleet view instead of a 500.
    """
    merged: dict = {}
    snapshots = {
        shard: snapshot
        for shard, snapshot in per_shard.items()
        if isinstance(snapshot, dict)
    }
    latency_keys: set[str] = set()
    for snapshot in snapshots.values():
        for key, value in snapshot.items():
            if isinstance(value, dict):
                if key.endswith("_latency"):
                    latency_keys.add(key)
                continue
            if key in _DERIVED_METRICS:
                continue
            if isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
    batches = merged.get("batches_flushed", 0)
    merged["mean_batch_size"] = (
        merged.get("slices_flushed", 0) / batches if batches else 0.0
    )
    dispatches = merged.get("dispatches", 0)
    dispatched_flushes = (
        dispatches
        - merged.get("fused_dispatches", 0)
        + merged.get("fused_sessions_flushed", 0)
    )
    merged["mean_fused_sessions"] = (
        dispatched_flushes / dispatches if dispatches else 0.0
    )
    for key in sorted(latency_keys):
        summaries = [
            snapshot[key]
            for snapshot in snapshots.values()
            if isinstance(snapshot.get(key), dict)
        ]
        count = sum(s.get("count", 0) for s in summaries)
        total = sum(
            s.get(
                "total_seconds",
                s.get("mean_seconds", 0.0) * s.get("count", 0),
            )
            for s in summaries
        )
        max_seconds = max(
            (s.get("max_seconds", 0.0) for s in summaries),
            default=0.0,
        )
        merged[key] = {
            "count": count,
            "mean_seconds": total / count if count else 0.0,
            "max_seconds": max_seconds,
            "total_seconds": total,
        }
        merged_buckets = _merge_buckets(summaries)
        if merged_buckets is not None:
            bounds = merged_buckets["bounds"]
            counts = merged_buckets["counts"]
            merged[key]["buckets"] = merged_buckets
            merged[key].update(
                {
                    quantile: percentile_from_buckets(
                        bounds, counts, q, max_seconds
                    )
                    for quantile, q in (
                        ("p50_seconds", 0.50),
                        ("p95_seconds", 0.95),
                        ("p99_seconds", 0.99),
                    )
                }
            )
        else:
            # Old shards without bucket data: conservative fallback,
            # the max percentile across shards.
            merged[key].update(
                {
                    quantile: max(
                        (s.get(quantile, 0.0) for s in summaries),
                        default=0.0,
                    )
                    for quantile in (
                        "p50_seconds",
                        "p95_seconds",
                        "p99_seconds",
                    )
                }
            )
    merged["unreachable_shards"] = sorted(
        set(per_shard) - set(snapshots)
    )
    merged["shards"] = dict(per_shard)
    return merged


class _ShardReply(Exception):
    """An upstream (or router-made) response to relay as-is."""

    def __init__(self, status: int, body: bytes) -> None:
        super().__init__(f"HTTP {status}")
        self.status = status
        self.body = body


def _error_body(
    error_type: str, message: str, session_id: str | None
) -> bytes:
    return json.dumps(
        {
            "error": {
                "type": error_type,
                "message": message,
                "session": session_id,
            }
        }
    ).encode("utf-8")


def _parse_json_body(body: bytes, session_id: str | None) -> dict:
    """Decode a request body as a JSON object or raise a 400 reply."""
    try:
        payload = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _ShardReply(
            400,
            _error_body(
                "ValueError",
                f"request body is not valid JSON: {exc}",
                session_id,
            ),
        ) from None
    if not isinstance(payload, dict):
        raise _ShardReply(
            400,
            _error_body(
                "ValueError",
                "request body must be a JSON object",
                session_id,
            ),
        )
    return payload


@dataclass
class ShardHealth:
    """The prober's last-known view of one shard.

    ``probes == 0`` means the shard has never been probed — the
    router then has no load signal and placement falls back to the
    pure ring.  ``sessions`` is the shard's last successfully fetched
    session listing; on failover it seeds the set of sessions to
    re-home (unioned with the router's own ingest bookkeeping).
    ``placed_since_probe`` is an optimistic load boost: each new
    session placed on the shard counts until the next successful
    probe refreshes ``resident_sessions``, so a burst of creates
    between probes still spreads across the fleet.
    """

    url: str
    alive: bool = True
    probes: int = 0
    consecutive_failures: int = 0
    last_error: str | None = None
    resident_sessions: int = 0
    flush_p95_seconds: float = 0.0
    sessions: tuple[str, ...] = ()
    placed_since_probe: int = 0

    def load(self) -> int:
        """The placement load signal (known + optimistic sessions)."""
        return self.resident_sessions + self.placed_since_probe

    def as_dict(self) -> dict:
        return {
            "url": self.url,
            "alive": self.alive,
            "probes": self.probes,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
            "resident_sessions": self.resident_sessions,
            "flush_p95_seconds": self.flush_p95_seconds,
            "sessions": list(self.sessions),
        }


class _RouterHandler(BaseHTTPRequestHandler):
    """Routes one request; placement state lives on the server."""

    server: "ShardRouterServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
    ) -> None:
        self.server.observe_http(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        self._send(status, json.dumps(payload).encode("utf-8"))

    def _send_text(
        self, text: str, status: int = 200, content_type: str = "text/plain"
    ) -> None:
        self._send(status, text.encode("utf-8"), content_type)

    def _send_redirect(self, location: str) -> None:
        body = json.dumps({"location": location}).encode("utf-8")
        self.server.observe_http(308)
        self.send_response(308)
        self.send_header("Location", location)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        path, _, query = self.path.partition("?")
        if path != API_PREFIX and not path.startswith(API_PREFIX + "/"):
            target = API_PREFIX + path + (f"?{query}" if query else "")
            self._send_redirect(target)
            return
        path = path[len(API_PREFIX):]
        try:
            self._route(method, path, query)
        except _ShardReply as reply:
            self._send(reply.status, reply.body)
        except Exception as exc:  # noqa: BLE001 - HTTP boundary
            match = _SESSION_PATH.match(path)
            status = 400 if isinstance(exc, ConfigError) else 500
            self._send(
                status,
                _error_body(
                    type(exc).__name__,
                    str(exc),
                    match.group("sid") if match else None,
                ),
            )

    def _route(self, method: str, path: str, query: str) -> None:
        router = self.server
        body = self._read_body()
        if method == "GET" and path == "/healthz":
            self._send_json(router.fleet_health())
            return
        if method == "GET" and path == "/metrics":
            params = urllib.parse.parse_qs(query)
            if params.get("format", [""])[0] == "prometheus":
                self._send_text(
                    render_prometheus(router.fleet_metrics()),
                    content_type=PROMETHEUS_CONTENT_TYPE,
                )
            else:
                self._send_json(router.fleet_metrics())
            return
        if method == "GET" and path == "/traces":
            self._send_json(router.merged_traces(query))
            return
        if method == "GET" and path == "/shards":
            self._send_json(router.describe())
            return
        if method == "POST" and path in ("/shards/join", "/shards/drain"):
            payload = _parse_json_body(body, None)
            url = str(payload.get("url") or payload.get("shard") or "")
            if path.endswith("/join"):
                result = router.join_shard(
                    url, weight=float(payload.get("weight") or 1.0)
                )
            else:
                result = router.drain_shard(url)
            self._send_json(result)
            return
        if path == "/sessions":
            if method == "GET":
                self._send_json(router.merged_session_listing())
                return
            if method == "POST":
                session_id = router.session_id_of(body)
                with router.session_lock(session_id):
                    shard = router.place_new(session_id)
                    status, payload = router.forward(
                        shard, method, path, body=body, query=query
                    )
                    if status < 400:
                        router.note_session_created(session_id, shard)
                self._send(status, payload)
                return
        match = _SESSION_PATH.match(path)
        if match:
            session_id = match.group("sid")
            if path.endswith("/migrate") and method == "POST":
                self._send_json(
                    router.migrate(session_id, body)
                )
                return
            # A client-supplied trace id survives the router hop, so
            # one id names the slice's whole lifecycle fleet-wide.
            trace_id = self.headers.get(TRACE_HEADER)
            headers = {TRACE_HEADER: trace_id} if trace_id else None
            with router.session_lock(session_id):
                shard = router.placement(session_id)
                status, payload = router.forward(
                    shard,
                    method,
                    path,
                    body=body,
                    query=query,
                    headers=headers,
                )
                if method == "DELETE" and status < 400:
                    router.forget_placement(session_id)
                elif method == "POST" and status < 400:
                    if path.endswith("/import"):
                        router.note_session_created(session_id, shard)
                    if path.endswith(("/slices", "/import")):
                        router.note_ingest(session_id, payload)
            self._send(status, payload)
            return
        self._send(
            404,
            _error_body(
                "SessionNotFoundError",
                f"no route {method} {API_PREFIX}{path}",
                None,
            ),
        )

    # BaseHTTPRequestHandler hooks
    def do_GET(self):  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self):  # noqa: N802
        self._dispatch("DELETE")


class ShardRouterServer(ThreadingHTTPServer):
    """Consistent-hash routing front for N ``repro-serve`` gateways."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        shards,
        *,
        replicas: int = 64,
        weights=None,
        proxy_timeout: float = 30.0,
        probe_interval: float | None = None,
        probe_timeout: float = 1.0,
        probe_failures: int = 3,
        retries: int = 2,
        retry_backoff_s: float = 0.05,
        checkpoint_dir: str | Path | None = None,
        migrate_concurrency: int = 4,
        verbose: bool = False,
    ) -> None:
        if probe_interval is not None and probe_interval <= 0:
            raise ConfigError(
                f"probe_interval must be > 0, got {probe_interval}"
            )
        if probe_failures < 1:
            raise ConfigError(
                f"probe_failures must be >= 1, got {probe_failures}"
            )
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        if migrate_concurrency < 1:
            raise ConfigError(
                f"migrate_concurrency must be >= 1, got "
                f"{migrate_concurrency}"
            )
        super().__init__(address, _RouterHandler)
        self.ring = HashRing(shards, replicas=replicas, weights=weights)
        self.proxy_timeout = proxy_timeout
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.probe_failures = probe_failures
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.migrate_concurrency = migrate_concurrency
        self.verbose = verbose
        self._state_lock = threading.Lock()
        #: Migrated sessions: id -> the shard now owning them.  The
        #: ring is swapped only by join/drain; this overlay is what
        #: "repointing the ring entry" mutates, atomically under the
        #: state lock.
        self._overrides: dict[str, str] = {}
        self._session_locks: dict[str, threading.Lock] = {}
        #: Acked stream position per session as seen by the router
        #: (seq+1 of the last 202'd slice).  Failover compares this
        #: against the checkpoint meta's applied watermark to compute
        #: the degraded count even when the meta itself is stale.
        self._ingested: dict[str, int] = {}
        self._health: dict[str, ShardHealth] = {
            url: ShardHealth(url) for url in self.ring.shards
        }
        self._migrations = 0
        self._proxied = 0
        self._retried = 0
        self._http_requests = 0
        self._http_errors_4xx = 0
        self._http_errors_5xx = 0
        self._load_placements = 0
        self._rebalances = 0
        self._failovers = 0
        self._failed_over = 0
        self._degraded_rehomed = 0
        #: Sessions failover could not re-home: id -> reason.  Never
        #: silently dropped; surfaced in describe() and metrics.
        self._lost: dict[str, str] = {}
        self._probe_stop = threading.Event()
        self._probe_thread: threading.Thread | None = None
        if probe_interval is not None:
            self._probe_thread = threading.Thread(
                target=self._probe_loop,
                name="shard-prober",
                daemon=True,
            )
            self._probe_thread.start()

    def server_close(self) -> None:
        self._probe_stop.set()
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=5)
            self._probe_thread = None
        super().server_close()

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    # ------------------------------------------------------------------
    # Health probing
    # ------------------------------------------------------------------
    def _probe_loop(self) -> None:
        while not self._probe_stop.wait(self.probe_interval):
            try:
                self.probe_once()
            except Exception:  # noqa: BLE001 - prober must survive
                pass

    def _probe_fetch(self, shard: str, path: str) -> dict:
        """One single-attempt GET with the probe timeout (no retries)."""
        request = urllib.request.Request(
            shard + API_PREFIX + path,
            headers={"Accept": "application/json"},
        )
        with urllib.request.urlopen(
            request, timeout=self.probe_timeout
        ) as response:
            return json.loads(response.read().decode("utf-8"))

    def probe_once(self) -> dict:
        """One probe sweep over the ring (the loop's body, callable
        directly for deterministic tests).

        A shard that fails ``probe_failures`` consecutive sweeps is
        declared dead exactly once — the alive->dead transition
        triggers :meth:`_failover`; further failed probes on an
        already-dead shard only keep its counters current.  A shard
        answering again is marked alive immediately (its failure
        streak resets on any success, so a flap below the threshold
        never triggers anything), but recovery never pulls sessions
        back — re-homed placements stay where failover put them.
        """
        newly_dead: list[str] = []
        for shard in self.ring.shards:
            try:
                snapshot = self._probe_fetch(shard, "/metrics")
                listing = self._probe_fetch(shard, "/sessions")
            except Exception as exc:  # noqa: BLE001 - any failure counts
                with self._state_lock:
                    health = self._health.get(shard)
                    if health is None:
                        continue
                    health.probes += 1
                    health.consecutive_failures += 1
                    health.last_error = f"{type(exc).__name__}: {exc}"
                    if (
                        health.alive
                        and health.consecutive_failures
                        >= self.probe_failures
                    ):
                        health.alive = False
                        newly_dead.append(shard)
                continue
            flush = snapshot.get("flush_latency") or {}
            sessions = tuple(
                str(sid) for sid in listing.get("sessions", ())
            )
            with self._state_lock:
                health = self._health.get(shard)
                if health is None:
                    continue
                health.probes += 1
                health.consecutive_failures = 0
                health.alive = True
                health.last_error = None
                health.resident_sessions = len(sessions)
                health.flush_p95_seconds = float(
                    flush.get("p95_seconds") or 0.0
                )
                health.sessions = sessions
                health.placed_since_probe = 0
        failover = {
            shard: self._failover(shard) for shard in newly_dead
        }
        with self._state_lock:
            alive = sorted(
                url for url, h in self._health.items() if h.alive
            )
            dead = sorted(
                url for url, h in self._health.items() if not h.alive
            )
        return {"alive": alive, "dead": dead, "failover": failover}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def placement(self, session_id: str) -> str:
        """The shard serving ``session_id`` (override, else the ring)."""
        with self._state_lock:
            override = self._overrides.get(session_id)
        return override or self.ring.shard_for(session_id)

    def place_new(self, session_id: str) -> str:
        """Pick the shard for a ``POST /sessions`` create.

        Existing placements stay sticky (an override or an already
        ingested session routes to its current home — a duplicate
        create must land where the live session is so the gateway's
        conflict answer is authoritative).  When every ring shard has
        been probed at least once, a *new* session lands on the
        least-loaded live shard, preferring the ring owner on ties;
        otherwise (prober off or still warming) the pure ring
        placement of PR 8 applies unchanged.
        """
        owner = self.ring.shard_for(session_id)
        with self._state_lock:
            override = self._overrides.get(session_id)
            if override is not None:
                return override
            if session_id in self._ingested:
                return owner
            healths = [
                self._health.get(url) for url in self.ring.shards
            ]
            if any(h is None or h.probes == 0 for h in healths):
                return owner
            live = [h for h in healths if h.alive]
            if not live:
                return owner
            best = min(
                live,
                key=lambda h: (h.load(), h.url != owner, h.url),
            )
            best.placed_since_probe += 1
            if best.url != owner:
                self._load_placements += 1
            return best.url

    def note_session_created(self, session_id: str, shard: str) -> None:
        """Record a successful create/import landing on ``shard``."""
        with self._state_lock:
            self._ingested.setdefault(session_id, 0)
            if shard != self.ring.shard_for(session_id):
                self._overrides[session_id] = shard

    def note_ingest(self, session_id: str, payload: bytes) -> None:
        """Advance the acked stream position from a forwarded reply."""
        try:
            reply = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return
        if not isinstance(reply, dict):
            return
        acked = None
        if isinstance(reply.get("seq"), int):
            acked = reply["seq"] + 1
        elif isinstance(reply.get("next_seq"), int):
            acked = reply["next_seq"]
        if acked is None:
            return
        with self._state_lock:
            if acked > self._ingested.get(session_id, 0):
                self._ingested[session_id] = acked

    def forget_placement(self, session_id: str) -> None:
        """Drop a closed session's override, lock, and ingest count."""
        with self._state_lock:
            self._overrides.pop(session_id, None)
            self._session_locks.pop(session_id, None)
            self._ingested.pop(session_id, None)

    def session_lock(self, session_id: str) -> threading.Lock:
        """Per-session serialization (requests vs live migration)."""
        with self._state_lock:
            lock = self._session_locks.get(session_id)
            if lock is None:
                lock = self._session_locks[session_id] = threading.Lock()
            return lock

    @staticmethod
    def session_id_of(body: bytes) -> str:
        """The session id named by a ``POST /sessions`` body."""
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _ShardReply(
                400,
                _error_body(
                    "ValueError",
                    f"request body is not valid JSON: {exc}",
                    None,
                ),
            ) from None
        if not isinstance(payload, dict) or "session_id" not in payload:
            raise _ShardReply(
                400,
                _error_body(
                    "ValueError", "body needs a 'session_id'", None
                ),
            )
        return str(payload["session_id"])

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def forward(
        self,
        shard: str,
        method: str,
        path: str,
        *,
        body: bytes = b"",
        query: str = "",
        headers: dict | None = None,
    ) -> tuple[int, bytes]:
        """One request to one shard; (status, body) relayed verbatim.

        Upstream error envelopes pass through untouched — the typed
        client re-raises the same exception types it would against the
        shard directly.  An unreachable shard becomes a 502 with the
        standard envelope — but idempotent GETs first retry up to
        ``retries`` times with capped exponential backoff, riding out
        the sub-second window where a shard restarts or failover is
        repointing placements.  Non-GET methods never retry (an
        ingest that timed out may still have been applied).
        """
        url = shard + API_PREFIX + path + (f"?{query}" if query else "")
        with self._state_lock:
            self._proxied += 1
        attempts = 1 + (self.retries if method == "GET" else 0)
        last_exc: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(
                    min(self.retry_backoff_s * 2 ** (attempt - 1), 1.0)
                )
                with self._state_lock:
                    self._retried += 1
            request_headers = {
                "Accept": "application/json",
                "Content-Type": "application/json",
            }
            if headers:
                request_headers.update(headers)
            request = urllib.request.Request(
                url,
                data=body if body else None,
                method=method,
                headers=request_headers,
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.proxy_timeout
                ) as response:
                    return response.status, response.read()
            except urllib.error.HTTPError as exc:
                data = exc.read()
                exc.close()
                return exc.code, data
            except (urllib.error.URLError, OSError) as exc:
                last_exc = exc
        match = _SESSION_PATH.match(path)
        return 502, _error_body(
            "SessionError",
            f"shard {shard} unreachable: {last_exc}",
            match.group("sid") if match else None,
        )

    def _forward_ok(
        self, shard: str, method: str, path: str, *, body: bytes = b""
    ) -> dict:
        """Forward and parse, raising :class:`_ShardReply` on >= 400."""
        status, payload = self.forward(shard, method, path, body=body)
        if status >= 400:
            raise _ShardReply(status, payload)
        return json.loads(payload.decode("utf-8"))

    # ------------------------------------------------------------------
    # Fleet views
    # ------------------------------------------------------------------
    def fleet_health(self) -> dict:
        """Aggregate ``/healthz``: ok only when every shard answers."""
        per_shard: dict[str, dict] = {}
        healthy = True
        sessions = 0
        for shard in self.ring.shards:
            status, payload = self.forward(shard, "GET", "/healthz")
            try:
                health = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                health = {"status": "error"}
            ok = status == 200 and health.get("status") == "ok"
            healthy = healthy and ok
            sessions += int(health.get("sessions") or 0)
            per_shard[shard] = health
        return {
            "status": "ok" if healthy else "degraded",
            "sessions": sessions,
            "shards": per_shard,
        }

    def fleet_metrics(self) -> dict:
        """Aggregate ``/metrics`` across the fleet (plus the raw views).

        An unreachable shard contributes ``None`` to the per-shard
        views and its URL to ``unreachable_shards`` instead of
        failing the whole aggregation — the fleet view must stay up
        precisely when a shard is down.
        """
        per_shard: dict[str, dict | None] = {}
        for shard in self.ring.shards:
            status, payload = self.forward(shard, "GET", "/metrics")
            snapshot = None
            if status < 400:
                try:
                    snapshot = json.loads(payload.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    snapshot = None
            per_shard[shard] = snapshot
        merged = aggregate_snapshots(per_shard)
        merged["router"] = self.router_metrics()
        return merged

    def observe_http(self, status: int) -> None:
        """Count one router HTTP response (and its error class)."""
        with self._state_lock:
            self._http_requests += 1
            if 400 <= status < 500:
                self._http_errors_4xx += 1
            elif status >= 500:
                self._http_errors_5xx += 1

    def router_metrics(self) -> dict:
        """The router's own counters (the ``"router"`` metrics block)."""
        with self._state_lock:
            return {
                "shards": len(self.ring.shards),
                "migrations": self._migrations,
                "proxied_requests": self._proxied,
                "http_requests": self._http_requests,
                "http_errors_4xx": self._http_errors_4xx,
                "http_errors_5xx": self._http_errors_5xx,
                "placement_overrides": len(self._overrides),
                "retried_requests": self._retried,
                "load_placements": self._load_placements,
                "rebalances": self._rebalances,
                "failovers": self._failovers,
                "failed_over_sessions": self._failed_over,
                "degraded_sessions": self._degraded_rehomed,
                "lost_sessions": len(self._lost),
                "dead_shards": sorted(
                    url
                    for url, health in self._health.items()
                    if not health.alive
                ),
            }

    def merged_sessions(self) -> list[str]:
        """The union of every reachable shard's listing, sorted."""
        return self.merged_session_listing()["sessions"]

    def merged_session_listing(self) -> dict:
        """Fleet ``GET /v1/sessions``: merged ids plus per-session stats.

        Session ids are unique across the fleet (the router places each
        session on exactly one shard), so the per-shard ``stats`` maps
        union without collisions; a stale duplicate left by a mid-flight
        migration resolves last-shard-wins, which is harmless for a
        monitoring read.
        """
        ids: set[str] = set()
        stats: dict[str, dict] = {}
        for shard in self.ring.shards:
            status, payload = self.forward(shard, "GET", "/sessions")
            if status >= 400:
                continue
            try:
                listing = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue
            ids.update(listing.get("sessions", ()))
            for sid, entry in (listing.get("stats") or {}).items():
                stats[sid] = dict(entry, shard=shard)
        return {"sessions": sorted(ids), "stats": stats}

    def merged_traces(self, query: str = "") -> dict:
        """Fleet ``GET /v1/traces``: every shard's spans, one list.

        The original query string (session/trace filters, limit) is
        forwarded verbatim so each shard filters locally; spans are
        annotated with their shard URL and ordered oldest-first across
        the fleet.  Tracing stats are summed.
        """
        spans: list[dict] = []
        tracing = {"recorded": 0, "dropped": 0}
        for shard in self.ring.shards:
            status, payload = self.forward(
                shard, "GET", "/traces", query=query
            )
            if status >= 400:
                continue
            try:
                listing = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue
            for span in listing.get("traces", ()):
                spans.append(dict(span, shard=shard))
            for key in tracing:
                tracing[key] += int(
                    (listing.get("tracing") or {}).get(key) or 0
                )
        # Shard clocks are independent monotonic clocks, so cross-shard
        # ordering by timestamp is approximate — good enough for a
        # monitoring read, meaningless for causality across shards.
        spans.sort(
            key=lambda span: (span.get("stages") or {}).get("accepted")
            or 0.0
        )
        return {"traces": spans, "tracing": tracing}

    def describe(self) -> dict:
        """The ``GET /v1/shards`` topology + health snapshot."""
        with self._state_lock:
            overrides = dict(self._overrides)
            migrations = self._migrations
            health = {
                url: h.as_dict() for url, h in self._health.items()
            }
            lost = dict(self._lost)
            failovers = self._failovers
            rebalances = self._rebalances
        return {
            "shards": list(self.ring.shards),
            "replicas": self.ring.replicas,
            "weights": self.ring.weights,
            "overrides": overrides,
            "migrations": migrations,
            "health": health,
            "probe": {
                "interval_s": self.probe_interval,
                "timeout_s": self.probe_timeout,
                "failure_threshold": self.probe_failures,
            },
            "failovers": failovers,
            "rebalances": rebalances,
            "lost_sessions": lost,
        }

    # ------------------------------------------------------------------
    # Live migration
    # ------------------------------------------------------------------
    def migrate(self, session_id: str, body: bytes) -> dict:
        """Move a live session to the shard named in the request body.

        Under the session's lock (no request can land mid-handoff):
        export on the source (which drains pending slices), import on
        the target, atomically repoint the placement override, close
        the source copy.  A failed import leaves the session exactly
        where it was; the upstream error envelope is relayed.
        """
        payload = _parse_json_body(body, session_id)
        target = str(payload.get("target") or "").rstrip("/")
        if target not in self.ring.shards:
            raise _ShardReply(
                400,
                _error_body(
                    "ConfigError",
                    f"migration target must be one of {self.ring.shards},"
                    f" got {target!r}",
                    session_id,
                ),
            )
        return self._migrate_to(session_id, target)

    def _migrate_to(self, session_id: str, target: str) -> dict:
        """One export->import->repoint handoff (see :meth:`migrate`)."""
        with self.session_lock(session_id):
            source = self.placement(session_id)
            if source == target:
                return {
                    "session_id": session_id,
                    "from": source,
                    "to": target,
                    "migrated": False,
                }
            exported = self._forward_ok(
                source, "POST", f"/sessions/{session_id}/export"
            )
            handoff = {
                key: exported[key]
                for key in (
                    "state",
                    "next_seq",
                    "consumed",
                    "kernel_backend",
                    "degraded",
                )
                if exported.get(key) is not None
            }
            self._forward_ok(
                target,
                "POST",
                f"/sessions/{session_id}/import",
                body=json.dumps(handoff).encode("utf-8"),
            )
            with self._state_lock:
                # An override equal to the ring owner is redundant —
                # normalize it away so the overlay only holds true
                # deviations (keeps join/drain diffs minimal).
                if target == self.ring.shard_for(session_id):
                    self._overrides.pop(session_id, None)
                else:
                    self._overrides[session_id] = target
                self._migrations += 1
            # Best-effort close of the drained source copy; the
            # placement already points at the target, so a failure
            # here only leaks an idle model on the source.
            close_status, _ = self.forward(
                source, "DELETE", f"/sessions/{session_id}"
            )
        return {
            "session_id": session_id,
            "from": source,
            "to": target,
            "migrated": True,
            "source_closed": close_status < 400,
        }

    # ------------------------------------------------------------------
    # Rebalancing (join / drain)
    # ------------------------------------------------------------------
    def _migrate_many(
        self, moves: dict[str, str]
    ) -> tuple[list[str], dict[str, str]]:
        """Run ``sid -> target`` migrations with bounded concurrency.

        Each migration holds its session's lock; a failure leaves
        that session on its source (abort-safe) and is reported, not
        raised — the sweep always completes.
        """
        moved: list[str] = []
        failed: dict[str, str] = {}
        if not moves:
            return moved, failed
        workers = max(1, min(self.migrate_concurrency, len(moves)))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {
                sid: pool.submit(self._migrate_to, sid, target)
                for sid, target in sorted(moves.items())
            }
        for sid, future in futures.items():
            try:
                future.result()
                moved.append(sid)
            except _ShardReply as reply:
                failed[sid] = reply.body.decode("utf-8", "replace")
            except Exception as exc:  # noqa: BLE001 - keep sweeping
                failed[sid] = f"{type(exc).__name__}: {exc}"
        return moved, failed

    def _drop_redundant_overrides(self) -> None:
        with self._state_lock:
            for sid in list(self._overrides):
                if self._overrides[sid] == self.ring.shard_for(sid):
                    del self._overrides[sid]

    def join_shard(self, url: str, *, weight: float = 1.0) -> dict:
        """Add a shard to the ring and rebalance onto it.

        Every live session is first pinned at its current placement
        (an explicit override), then the ring is swapped to include
        the newcomer, then sessions whose new ring owner differs from
        their pin are migrated with bounded concurrency.  A failed
        migration leaves its session pinned on the source; overrides
        that end up equal to the new ring owner are dropped.
        """
        url = str(url).rstrip("/")
        if not url.startswith(("http://", "https://")):
            raise ConfigError(
                f"shard must be an http(s) base URL, got {url!r}"
            )
        weight = float(weight)
        if weight <= 0:
            raise ConfigError(
                f"shard weight must be > 0, got {weight}"
            )
        if url in self.ring.shards:
            return {
                "joined": False,
                "shard": url,
                "moved": [],
                "failed": {},
                "shards": list(self.ring.shards),
            }
        sessions = set(self.merged_sessions())
        with self._state_lock:
            old_ring = self.ring
            sessions.update(self._ingested)
            sessions.update(self._overrides)
            for sid in sessions:
                self._overrides.setdefault(
                    sid, old_ring.shard_for(sid)
                )
            weights = old_ring.weights
            weights[url] = weight
            self.ring = HashRing(
                (*old_ring.shards, url),
                replicas=old_ring.replicas,
                weights=weights,
            )
            self._health.setdefault(url, ShardHealth(url))
            self._rebalances += 1
            pinned = dict(self._overrides)
        moves = {
            sid: self.ring.shard_for(sid)
            for sid, source in pinned.items()
            if self.ring.shard_for(sid) != source
        }
        moved, failed = self._migrate_many(moves)
        self._drop_redundant_overrides()
        return {
            "joined": True,
            "shard": url,
            "weight": weight,
            "moved": moved,
            "failed": failed,
            "shards": list(self.ring.shards),
        }

    def drain_shard(self, url: str) -> dict:
        """Migrate everything off a shard, then remove it from the ring.

        The shard leaves the ring only after *every* resident session
        migrated cleanly; any failure aborts the removal, leaving the
        shard in the ring still serving the sessions that could not
        move (reported under ``"failed"``).
        """
        url = str(url).rstrip("/")
        if url not in self.ring.shards:
            raise ConfigError(
                f"cannot drain {url!r}: not in ring {self.ring.shards}"
            )
        if len(self.ring.shards) < 2:
            raise ConfigError("cannot drain the last shard in the ring")
        old_ring = self.ring
        new_ring = HashRing(
            tuple(u for u in old_ring.shards if u != url),
            replicas=old_ring.replicas,
            weights={
                u: w for u, w in old_ring.weights.items() if u != url
            },
        )
        victims: set[str] = set()
        status, payload = self.forward(url, "GET", "/sessions")
        if status < 400:
            try:
                listing = json.loads(payload.decode("utf-8"))
                victims.update(listing.get("sessions", ()))
            except (UnicodeDecodeError, json.JSONDecodeError):
                pass
        with self._state_lock:
            victims.update(
                sid
                for sid, target in self._overrides.items()
                if target == url
            )
            victims.update(
                sid
                for sid in self._ingested
                if self._overrides.get(sid, old_ring.shard_for(sid))
                == url
            )
        moves = {sid: new_ring.shard_for(sid) for sid in sorted(victims)}
        moved, failed = self._migrate_many(moves)
        if failed:
            return {
                "drained": False,
                "shard": url,
                "moved": moved,
                "failed": failed,
                "shards": list(self.ring.shards),
            }
        with self._state_lock:
            self.ring = new_ring
            self._health.pop(url, None)
            self._rebalances += 1
        self._drop_redundant_overrides()
        return {
            "drained": True,
            "shard": url,
            "moved": moved,
            "failed": {},
            "shards": list(self.ring.shards),
        }

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def _failover(self, shard: str) -> dict:
        """Re-home a dead shard's sessions from durable checkpoints.

        The candidate set unions the shard's last probed listing with
        the router's own bookkeeping (overrides and acked sessions
        placed there).  Each session is re-homed under its lock, so
        in-flight requests serialize against the re-point; a session
        whose placement already moved (a racing migrate) is skipped.
        Failures are recorded per session in ``lost_sessions`` —
        reported, never silent — and leave the placement untouched.
        """
        with self._state_lock:
            self._failovers += 1
            health = self._health.get(shard)
            known = set(health.sessions) if health is not None else set()
            known.update(
                sid
                for sid, target in self._overrides.items()
                if target == shard
            )
            known.update(
                sid
                for sid in self._ingested
                if self._overrides.get(sid, self.ring.shard_for(sid))
                == shard
            )
        rehomed: list[str] = []
        lost: dict[str, str] = {}
        for sid in sorted(known):
            with self.session_lock(sid):
                if self.placement(sid) != shard:
                    continue
                try:
                    self._rehome_from_checkpoint(sid, shard)
                except Exception as exc:  # noqa: BLE001 - record all
                    reason = f"{type(exc).__name__}: {exc}"
                    with self._state_lock:
                        self._lost[sid] = reason
                    lost[sid] = reason
                    continue
            rehomed.append(sid)
        return {"shard": shard, "rehomed": rehomed, "lost": lost}

    def _find_checkpoint(self, session_id: str) -> Path | None:
        """Newest ``<sid>.npz`` in the checkpoint tree (1 level deep).

        A local cluster gives each shard's manager its own subdir
        under one root, so the dead shard's file is found without the
        router knowing which subdir belonged to whom; mtime breaks
        ties toward the most recently persisted copy.
        """
        root = self.checkpoint_dir
        if root is None:
            return None
        name = f"{session_id}.npz"
        candidates = [
            path
            for path in (root / name, *sorted(root.glob(f"*/{name}")))
            if path.is_file()
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda path: path.stat().st_mtime)

    def _least_loaded_survivor(self, dead_shard: str) -> str:
        with self._state_lock:
            candidates = [
                self._health[url]
                for url in self.ring.shards
                if url != dead_shard
                and url in self._health
                and self._health[url].alive
            ]
            if not candidates:
                raise ConfigError(
                    "no live shard left to fail sessions over onto"
                )
            best = min(
                candidates, key=lambda h: (h.load(), h.url)
            )
            best.placed_since_probe += 1
            return best.url

    def _rehome_from_checkpoint(
        self, session_id: str, dead_shard: str
    ) -> str:
        """Rebuild one session on a survivor from its checkpoint.

        The checkpoint holds the last *committed* state; the meta
        sidecar (written by ``--durable`` managers) carries the
        stream position it corresponds to.  The session resumes at
        ``max(router-acked, meta.next_seq)`` so upstream seq numbers
        stay monotonic, and every acked slice past the checkpoint's
        applied watermark counts into ``degraded`` — the data-loss
        window is surfaced in the session's status, never hidden.
        """
        if self.checkpoint_dir is None:
            raise ConfigError(
                "failover needs --checkpoint-dir pointing at the "
                "shards' durable checkpoint tree"
            )
        checkpoint = self._find_checkpoint(session_id)
        if checkpoint is None:
            raise SessionNotFoundError(
                f"no durable checkpoint for session {session_id!r} "
                f"under {self.checkpoint_dir}"
            )
        meta: dict = {}
        meta_path = checkpoint_meta_path(checkpoint)
        if meta_path.is_file():
            try:
                meta = json.loads(
                    meta_path.read_text(encoding="utf-8")
                )
            except (json.JSONDecodeError, OSError):
                meta = {}
        if not isinstance(meta, dict):
            meta = {}
        with self._state_lock:
            routed = int(self._ingested.get(session_id, 0))
        acked = max(routed, int(meta.get("next_seq") or 0))
        applied = int(meta.get("applied_seq") or 0)
        degraded = max(0, acked - applied) + int(
            meta.get("degraded") or 0
        )
        target = self._least_loaded_survivor(dead_shard)
        handoff: dict = {
            "state": base64.b64encode(
                checkpoint.read_bytes()
            ).decode("ascii"),
            "next_seq": acked,
            "degraded": degraded,
        }
        if meta.get("consumed") is not None:
            handoff["consumed"] = int(meta["consumed"])
        if meta.get("kernel_backend"):
            handoff["kernel_backend"] = meta["kernel_backend"]
        self._forward_ok(
            target,
            "POST",
            f"/sessions/{session_id}/import",
            body=json.dumps(handoff).encode("utf-8"),
        )
        with self._state_lock:
            if target == self.ring.shard_for(session_id):
                self._overrides.pop(session_id, None)
            else:
                self._overrides[session_id] = target
            self._ingested[session_id] = acked
            self._failed_over += 1
            if degraded:
                self._degraded_rehomed += 1
        return target


def serve_router(
    shards,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    replicas: int = 64,
    weights=None,
    proxy_timeout: float = 30.0,
    probe_interval: float | None = None,
    probe_timeout: float = 1.0,
    probe_failures: int = 3,
    retries: int = 2,
    checkpoint_dir: str | Path | None = None,
    migrate_concurrency: int = 4,
    verbose: bool = False,
) -> ShardRouterServer:
    """Bind a router (``port=0`` picks a free port); caller runs it."""
    return ShardRouterServer(
        (host, port),
        shards,
        replicas=replicas,
        weights=weights,
        proxy_timeout=proxy_timeout,
        probe_interval=probe_interval,
        probe_timeout=probe_timeout,
        probe_failures=probe_failures,
        retries=retries,
        checkpoint_dir=checkpoint_dir,
        migrate_concurrency=migrate_concurrency,
        verbose=verbose,
    )


@dataclass
class LocalCluster:
    """A self-hosted router + N backend gateways, one ``close()``."""

    router: ShardRouterServer
    backends: tuple[ServingHTTPServer, ...]
    managers: tuple[SessionManager, ...]
    threads: tuple[threading.Thread, ...]
    #: Shared durable-checkpoint root, when the cluster runs durable
    #: (one ``shard-<i>`` subdir per backend; the router's failover
    #: scans the whole tree).
    checkpoint_root: Path | None = None
    _tmpdir: tempfile.TemporaryDirectory | None = None
    _killed: set = field(default_factory=set)

    @property
    def url(self) -> str:
        return self.router.url

    @property
    def shard_urls(self) -> tuple[str, ...]:
        return self.router.ring.shards

    def kill_shard(self, index: int) -> None:
        """Hard-stop one backend's HTTP server (fault injection).

        Every request to the shard fails with connection-refused from
        this moment — what a crashed process looks like from the
        router.  The backend's manager is left running (its durable
        checkpoints stay on disk for failover; ``close()`` still
        shuts it down cleanly) and is intentionally *not* closed
        here: closing would drain pending slices and hide the
        degraded window a real crash produces.
        """
        if index in self._killed:
            return
        self._killed.add(index)
        server = self.backends[index]
        server.shutdown()
        server.server_close()

    def close(self) -> None:
        """Stop the router, then every backend, then the managers."""
        live = (
            backend
            for index, backend in enumerate(self.backends)
            if index not in self._killed
        )
        for server in (self.router, *live):
            server.shutdown()
            server.server_close()
        for thread in self.threads:
            thread.join(timeout=10)
        for manager in self.managers:
            manager.close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_local_cluster(
    n_shards: int,
    *,
    host: str = "127.0.0.1",
    replicas: int = 64,
    shard_weights=None,
    probe_interval: float | None = None,
    probe_timeout: float = 1.0,
    probe_failures: int = 3,
    retries: int = 2,
    durable: bool = False,
    checkpoint_root: str | Path | None = None,
    verbose: bool = False,
    **manager_kwargs,
) -> LocalCluster:
    """Spin up N in-process gateways behind one router, all started.

    ``manager_kwargs`` go to each backend's
    :class:`~repro.serving.manager.SessionManager` verbatim.  Callers
    own the result and must :meth:`LocalCluster.close` it (it is a
    context manager).

    ``durable=True`` gives every backend its own ``shard-<i>`` subdir
    under ``checkpoint_root`` (an owned temp dir when not given) with
    post-commit checkpointing on, and points the router's failover at
    the root — the full self-healing loop in one process when a
    ``probe_interval`` is set.  ``shard_weights`` is one capacity
    weight per shard index.
    """
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    if shard_weights is not None and len(shard_weights) != n_shards:
        raise ConfigError(
            f"shard_weights needs {n_shards} entries, "
            f"got {len(shard_weights)}"
        )
    if durable and "checkpoint_dir" in manager_kwargs:
        # A caller-supplied manager checkpoint_dir would make every
        # shard persist into one flat dir the router's failover never
        # searches — sessions silently become unrecoverable.
        raise ConfigError(
            "durable clusters take checkpoint_root=, not "
            "checkpoint_dir=: shards persist under "
            "<root>/shard-<i> and failover searches that root"
        )
    tmpdir: tempfile.TemporaryDirectory | None = None
    root = (
        Path(checkpoint_root) if checkpoint_root is not None else None
    )
    if durable and root is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        root = Path(tmpdir.name)
    managers: list[SessionManager] = []
    backends: list[ServingHTTPServer] = []
    threads: list[threading.Thread] = []
    try:
        for index in range(n_shards):
            kwargs = dict(manager_kwargs)
            if root is not None:
                kwargs.setdefault(
                    "checkpoint_dir", root / f"shard-{index}"
                )
                kwargs.setdefault("durable", durable)
            manager = SessionManager(**kwargs)
            managers.append(manager)
            server = serve(manager, host, 0, verbose=verbose)
            backends.append(server)
        urls = [
            f"http://{server.server_address[0]}:{server.port}"
            for server in backends
        ]
        weights = None
        if shard_weights is not None:
            weights = {
                url: float(weight)
                for url, weight in zip(urls, shard_weights)
            }
        router = serve_router(
            urls,
            host,
            0,
            replicas=replicas,
            weights=weights,
            probe_interval=probe_interval,
            probe_timeout=probe_timeout,
            probe_failures=probe_failures,
            retries=retries,
            checkpoint_dir=root,
            verbose=verbose,
        )
    except BaseException:
        for server in backends:
            server.server_close()
        for manager in managers:
            manager.close()
        if tmpdir is not None:
            tmpdir.cleanup()
        raise
    for server in (*backends, router):
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        threads.append(thread)
    return LocalCluster(
        router=router,
        backends=tuple(backends),
        managers=tuple(managers),
        threads=tuple(threads),
        checkpoint_root=root,
        _tmpdir=tmpdir,
    )


def main(argv: list[str] | None = None) -> int:
    """``repro-serve-router``: route sessions across a gateway fleet."""
    parser = argparse.ArgumentParser(
        prog="repro-serve-router",
        description="Consistent-hash shard router in front of N "
        "repro-serve gateways, with live session migration.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8350)
    parser.add_argument(
        "--shard",
        action="append",
        default=None,
        metavar="URL",
        help="backend gateway base URL (repeat per shard)",
    )
    parser.add_argument(
        "--local-shards",
        type=int,
        default=None,
        dest="local_shards",
        help="instead of --shard, self-host this many backend "
        "gateways in-process (demo/CI clusters)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=64,
        help="virtual nodes per shard on the hash ring (default 64)",
    )
    parser.add_argument(
        "--shard-weight",
        action="append",
        default=None,
        dest="shard_weight",
        metavar="KEY=W",
        help="capacity weight for one shard (repeat; URL=W with "
        "--shard, INDEX=W with --local-shards; default 1.0 each)",
    )
    parser.add_argument(
        "--proxy-timeout",
        type=float,
        default=30.0,
        dest="proxy_timeout",
        help="per-forwarded-request timeout in seconds (default 30)",
    )
    parser.add_argument(
        "--probe-interval",
        type=float,
        default=None,
        dest="probe_interval",
        help="seconds between health probes of each shard "
        "(default: prober off)",
    )
    parser.add_argument(
        "--probe-timeout",
        type=float,
        default=1.0,
        dest="probe_timeout",
        help="per-probe-request timeout in seconds (default 1)",
    )
    parser.add_argument(
        "--probe-failures",
        type=int,
        default=3,
        dest="probe_failures",
        help="consecutive failed probes before a shard is declared "
        "dead and its sessions failed over (default 3)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts for idempotent GET forwards before "
        "declaring a shard unreachable (default 2)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        dest="checkpoint_dir",
        help="root of the shards' durable checkpoint tree; failover "
        "re-homes dead shards' sessions from here",
    )
    parser.add_argument(
        "--durable",
        action="store_true",
        help="run --local-shards backends with post-commit durable "
        "checkpointing (under --checkpoint-dir or a temp dir)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="micro-batch flush size of --local-shards backends",
    )
    parser.add_argument(
        "--max-latency-ms",
        type=float,
        default=50.0,
        help="flush deadline of --local-shards backends (default 50)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="flush worker lanes per --local-shards backend",
    )
    parser.add_argument(
        "--worker-kind",
        choices=WORKER_KINDS,
        default="thread",
        help="worker tier of --local-shards backends (default thread)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    if (args.shard is None) == (args.local_shards is None):
        parser.error(
            "give exactly one of --shard (repeatable) or --local-shards"
        )
    raw_weights: list[tuple[str, float]] = []
    for entry in args.shard_weight or ():
        key, sep, value = entry.partition("=")
        try:
            if not sep:
                raise ValueError(entry)
            raw_weights.append((key.strip(), float(value)))
        except ValueError:
            parser.error(
                f"--shard-weight needs KEY=WEIGHT, got {entry!r}"
            )

    cluster: LocalCluster | None = None
    checkpoint_dir = args.checkpoint_dir
    if args.local_shards is not None:
        shard_weights = None
        if raw_weights:
            by_index = {}
            for key, weight in raw_weights:
                try:
                    by_index[int(key)] = weight
                except ValueError:
                    parser.error(
                        "--shard-weight keys must be shard indexes "
                        f"with --local-shards, got {key!r}"
                    )
            if by_index and max(by_index) >= args.local_shards:
                parser.error(
                    f"--shard-weight index {max(by_index)} out of "
                    f"range for --local-shards {args.local_shards}"
                )
            shard_weights = [
                by_index.get(index, 1.0)
                for index in range(args.local_shards)
            ]
        cluster = start_local_cluster(
            args.local_shards,
            host=args.host,
            replicas=args.replicas,
            shard_weights=shard_weights,
            durable=args.durable,
            checkpoint_root=args.checkpoint_dir,
            verbose=args.verbose,
            max_batch=args.max_batch,
            max_latency_s=args.max_latency_ms / 1000.0,
            workers=args.workers,
            worker_kind=args.worker_kind,
        )
        shards = cluster.shard_urls
        weights = None
        if shard_weights is not None:
            weights = dict(zip(shards, shard_weights))
        checkpoint_dir = cluster.checkpoint_root
    else:
        shards = args.shard
        weights = (
            {key: weight for key, weight in raw_weights}
            if raw_weights
            else None
        )
    router = serve_router(
        shards,
        args.host,
        args.port,
        replicas=args.replicas,
        weights=weights,
        proxy_timeout=args.proxy_timeout,
        probe_interval=args.probe_interval,
        probe_timeout=args.probe_timeout,
        probe_failures=args.probe_failures,
        retries=args.retries,
        checkpoint_dir=checkpoint_dir,
        verbose=args.verbose,
    )
    print(
        f"repro-serve-router listening on http://{args.host}:"
        f"{router.port}{API_PREFIX} fronting {len(router.ring.shards)} "
        f"shard(s): {', '.join(router.ring.shards)}"
    )
    try:
        router.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        router.shutdown()
        router.server_close()
        if cluster is not None:
            cluster.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
