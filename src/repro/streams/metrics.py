"""Evaluation metrics from the paper (§VI-A).

* NRE  — normalized residual error of one reconstruction,
* RAE  — running average of NREs over the stream,
* AFE  — average forecasting error over a horizon,
* ART  — average running time per processed subtensor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ShapeError
from repro.tensor.dense import relative_error

__all__ = [
    "RunningAverage",
    "average_forecast_error",
    "normalized_residual_error",
]


def normalized_residual_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """NRE: ``||X̂_t - X_t||_F / ||X_t||_F``."""
    return relative_error(estimate, truth)


def average_forecast_error(
    forecasts: np.ndarray, truths: np.ndarray
) -> float:
    """AFE: mean NRE of ``h``-step-ahead forecasts over the horizon.

    Parameters
    ----------
    forecasts, truths:
        Arrays of shape ``(horizon, *subtensor_shape)``.
    """
    fc = np.asarray(forecasts, dtype=np.float64)
    tr = np.asarray(truths, dtype=np.float64)
    if fc.shape != tr.shape:
        raise ShapeError(
            f"forecasts shape {fc.shape} does not match truths {tr.shape}"
        )
    if fc.shape[0] == 0:
        raise ShapeError("need at least one forecast step")
    return float(
        np.mean([relative_error(fc[h], tr[h]) for h in range(fc.shape[0])])
    )


@dataclass
class RunningAverage:
    """Streaming mean accumulator (used for both RAE and ART).

    ``add`` one value per time step; ``mean`` is the running average, and
    ``values`` keeps the full series for per-step plots (paper Fig. 3).
    """

    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ShapeError("no values accumulated")
        return float(np.mean(self.values))

    def series(self) -> np.ndarray:
        """All accumulated values as an array."""
        return np.asarray(self.values, dtype=np.float64)
