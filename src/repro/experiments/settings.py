"""Experiment-wide settings: dataset scales, ranks, corruption grid.

The paper's full grid (Table III shapes x 4 settings x 6 algorithms x 5
repeats) takes hours; these presets shrink the datasets while keeping
their seasonal structure, mode semantics, and the full experiment grid.
Every driver accepts an explicit :class:`ExperimentScale`, so full-size
runs are one argument away.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core import SofiaConfig
from repro.datasets import Dataset, load_dataset
from repro.streams import PAPER_SETTINGS, CorruptionSpec

__all__ = [
    "DATASET_NAMES",
    "ExperimentScale",
    "SMALL_SCALE",
    "TINY_SCALE",
    "dataset_stream",
    "sofia_config_for",
]

DATASET_NAMES = ("intel_lab", "network_traffic", "chicago_taxi", "nyc_taxi")


@dataclass(frozen=True)
class ExperimentScale:
    """Size preset for the experiment grid.

    Attributes
    ----------
    name:
        Preset label used in reports.
    dataset_kwargs:
        Per-dataset generator keyword arguments.
    ranks:
        Per-dataset CP rank (the paper's values by default, reduced for
        the tiny preset).
    settings:
        Corruption settings grid.
    seeds:
        Corruption seeds (the paper averages 5 runs; presets use fewer).
    batch_size:
        Mini-batch size for the dynamic phase (``1`` reproduces the
        paper's strictly sequential protocol; larger values exercise the
        mini-batch streaming engine).
    """

    name: str
    dataset_kwargs: dict[str, dict] = field(repr=False)
    ranks: dict[str, int] = field(repr=False)
    settings: tuple[CorruptionSpec, ...] = PAPER_SETTINGS
    seeds: tuple[int, ...] = (0,)
    batch_size: int = 1

    def with_batch_size(self, batch_size: int) -> "ExperimentScale":
        """Copy of this preset running the dynamic phase at ``batch_size``."""
        return replace(self, batch_size=batch_size)


SMALL_SCALE = ExperimentScale(
    name="small",
    dataset_kwargs={
        "intel_lab": dict(n_positions=18, period=24, n_seasons=9),
        "network_traffic": dict(n_routers=12, period=24, n_seasons=9),
        "chicago_taxi": dict(n_zones=15, period=24, n_seasons=9),
        "nyc_taxi": dict(n_zones=20, n_weeks=16),
    },
    ranks={
        "intel_lab": 4,
        "network_traffic": 5,
        "chicago_taxi": 10,
        "nyc_taxi": 5,
    },
)

TINY_SCALE = ExperimentScale(
    name="tiny",
    dataset_kwargs={
        "intel_lab": dict(n_positions=10, period=12, n_seasons=8),
        "network_traffic": dict(n_routers=8, period=12, n_seasons=8),
        "chicago_taxi": dict(n_zones=10, period=12, n_seasons=8),
        "nyc_taxi": dict(n_zones=10, n_weeks=12),
    },
    ranks={
        "intel_lab": 3,
        "network_traffic": 3,
        "chicago_taxi": 4,
        "nyc_taxi": 3,
    },
    settings=(CorruptionSpec(20, 10, 2), CorruptionSpec(70, 20, 5)),
)


def dataset_stream(name: str, scale: ExperimentScale, *, seed: int = 0) -> Dataset:
    """Generate a dataset at the given scale."""
    return load_dataset(name, seed=seed, **scale.dataset_kwargs[name])


def sofia_config_for(
    name: str, scale: ExperimentScale, period: int
) -> SofiaConfig:
    """SOFIA configuration for one dataset at one scale.

    Uses the paper's defaults except the smoothness weights, which are
    raised to 0.1 — the level the Fig. 2 recovery analysis identified as
    appropriate for these value scales (see DESIGN.md).  The preset's
    ``batch_size`` is threaded through so :meth:`repro.core.Sofia.run`
    chunks the dynamic phase consistently with the runner.
    """
    return SofiaConfig(
        rank=scale.ranks[name],
        period=period,
        lambda1=0.1,
        lambda2=0.1,
        max_outer_iters=300,
        tol=1e-6,
        batch_size=scale.batch_size,
    )
