"""Chicago Taxi stand-in (paper: 77 x 77 x 2016, m = 168, hourly).

The paper builds a (pickup area, dropoff area, hour) trip-count tensor
from the Chicago open taxi data and applies ``log2(x + 1)``.  This
generator reproduces that structure: zone popularity factors with a few
hot spots (the Loop, airports), an hour-of-week demand profile with rush
hours and a weekend shape, Poisson trip counts, and the same log
transform.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, DatasetInfo, register_dataset
from repro.tensor.random import as_generator

__all__ = ["CHICAGO_TAXI_INFO", "generate_chicago_taxi", "hour_of_week_profile"]

CHICAGO_TAXI_INFO = DatasetInfo(
    name="chicago_taxi",
    title="Chicago Taxi",
    paper_shape=(77, 77, 2016),
    period=168,
    granularity="hourly",
    rank=10,
    modes=("pickup area", "dropoff area", "time"),
)


def hour_of_week_profile(period: int, n_steps: int, *, weekend: bool = True):
    """Demand multiplier per time step: rush-hour humps, night lull.

    ``period`` steps make one day; when ``weekend`` is set, every 6th and
    7th day is damped and shifted later, giving a weekly super-pattern.
    """
    t = np.arange(n_steps)
    day_fraction = (t % period) / period
    morning = np.exp(-0.5 * ((day_fraction - 0.33) / 0.07) ** 2)
    evening = np.exp(-0.5 * ((day_fraction - 0.75) / 0.09) ** 2)
    night = 0.15
    profile = night + morning + 1.3 * evening
    if weekend:
        day_index = (t // period) % 7
        is_weekend = (day_index == 5) | (day_index == 6)
        late = np.exp(-0.5 * ((day_fraction - 0.9) / 0.1) ** 2)
        profile = np.where(is_weekend, 0.6 * (night + 1.2 * late), profile)
    return profile


@register_dataset(CHICAGO_TAXI_INFO)
def generate_chicago_taxi(
    *,
    n_zones: int = 15,
    period: int = 24,
    n_seasons: int = 9,
    mean_trips: float = 30.0,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """Generate the Chicago-style (pickup, dropoff, hour) stream.

    Parameters
    ----------
    n_zones:
        Community areas per side (77 in the paper).
    period:
        Steps per day (24 in the paper; the weekly pattern then gives an
        effective period of 168 — the scaled default keeps the daily
        period only, which is what the model's ``m`` should be set to).
    n_seasons:
        Number of days in the stream.
    mean_trips:
        Average trips on the busiest OD pair at peak hour.
    seed:
        Seed or generator.
    """
    rng = as_generator(seed)
    n_steps = period * n_seasons

    # Zipf-like zone popularity: a few dominant zones.
    popularity = 1.0 / np.arange(1, n_zones + 1) ** 0.8
    popularity = rng.permutation(popularity)
    attraction = rng.permutation(1.0 / np.arange(1, n_zones + 1) ** 0.8)
    od_intensity = np.outer(popularity, attraction)
    od_intensity /= od_intensity.max()

    profile = hour_of_week_profile(period, n_steps, weekend=False)
    rates = mean_trips * od_intensity[:, :, None] * profile[None, None, :]
    counts = rng.poisson(rates).astype(np.float64)
    data = np.log2(counts + 1.0)
    return Dataset(info=CHICAGO_TAXI_INFO, data=data, period=period)
