"""Structured missingness: the failure modes the paper's intro motivates.

The evaluation corrupts entries uniformly at random, but the paper's
motivating failures are structured: a *network disconnection* blacks out
a sensor (a whole fiber) for a contiguous stretch of time, and a *system
error* drops an entire time step.  These generators produce such masks
so robustness can be probed beyond uniform missingness (used by tests
and the ablation bench).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError
from repro.tensor.random import as_generator

__all__ = ["blackout_mask", "dropped_steps_mask"]


def blackout_mask(
    shape: tuple[int, ...],
    *,
    n_blackouts: int,
    duration: int,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Mask with contiguous per-fiber blackouts (time on the last mode).

    Each blackout picks one non-temporal position uniformly and hides it
    for ``duration`` consecutive steps — a disconnected sensor or link.

    Returns a boolean mask (True = observed).
    """
    if len(shape) < 2:
        raise ConfigError("need at least one non-temporal mode plus time")
    if n_blackouts < 0 or duration < 1:
        raise ConfigError("n_blackouts must be >= 0 and duration >= 1")
    rng = as_generator(seed)
    mask = np.ones(shape, dtype=bool)
    n_steps = shape[-1]
    spatial_shape = shape[:-1]
    for _ in range(n_blackouts):
        position = tuple(rng.integers(0, d) for d in spatial_shape)
        start = int(rng.integers(0, max(n_steps - duration + 1, 1)))
        mask[position + (slice(start, start + duration),)] = False
    return mask


def dropped_steps_mask(
    shape: tuple[int, ...],
    *,
    drop_fraction: float,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Mask that hides entire time steps (system errors losing a batch).

    ``drop_fraction`` of the time steps are fully unobserved.
    """
    if not 0.0 <= drop_fraction < 1.0:
        raise ConfigError(
            f"drop_fraction must be in [0, 1), got {drop_fraction}"
        )
    rng = as_generator(seed)
    mask = np.ones(shape, dtype=bool)
    n_steps = shape[-1]
    n_drop = int(round(drop_fraction * n_steps))
    if n_drop:
        dropped = rng.choice(n_steps, size=n_drop, replace=False)
        mask[..., dropped] = False
    return mask
