"""Unit tests for SofiaConfig validation and derived quantities."""

import pytest

from repro.core import SofiaConfig
from repro.exceptions import ConfigError


class TestDefaults:
    def test_paper_defaults(self):
        cfg = SofiaConfig(rank=5, period=24)
        assert cfg.lambda1 == pytest.approx(1e-3)
        assert cfg.lambda2 == pytest.approx(1e-3)
        assert cfg.lambda3 == pytest.approx(10.0)
        assert cfg.mu == pytest.approx(0.1)
        assert cfg.phi == pytest.approx(0.01)
        assert cfg.huber_k == pytest.approx(2.0)
        assert cfg.biweight_c == pytest.approx(2.52)
        assert cfg.lambda3_decay == pytest.approx(0.85)
        assert cfg.init_seasons == 3
        assert cfg.density_threshold == pytest.approx(0.05)

    def test_init_steps(self):
        assert SofiaConfig(rank=2, period=7).init_steps == 21

    def test_lambda3_floor(self):
        assert SofiaConfig(rank=2, period=7).lambda3_floor == pytest.approx(0.1)

    def test_initial_sigma(self):
        cfg = SofiaConfig(rank=2, period=7, lambda3=50.0)
        assert cfg.initial_sigma == pytest.approx(0.5)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rank": 0},
            {"rank": 3, "period": 0},
            {"rank": 3, "period": 5, "lambda1": -1.0},
            {"rank": 3, "period": 5, "lambda2": -0.1},
            {"rank": 3, "period": 5, "lambda3": -5.0},
            {"rank": 3, "period": 5, "mu": 0.0},
            {"rank": 3, "period": 5, "phi": 1.5},
            {"rank": 3, "period": 5, "huber_k": 0.0},
            {"rank": 3, "period": 5, "biweight_c": -1.0},
            {"rank": 3, "period": 5, "init_seasons": 1},
            {"rank": 3, "period": 5, "lambda3_decay": 0.0},
            {"rank": 3, "period": 5, "lambda3_decay": 1.1},
            {"rank": 3, "period": 5, "tol": 0.0},
            {"rank": 3, "period": 5, "max_outer_iters": 0},
            {"rank": 3, "period": 5, "max_als_iters": 0},
            {"rank": 3, "period": 5, "step_normalization": "bogus"},
            {"rank": 3, "period": 5, "density_threshold": -0.1},
            {"rank": 3, "period": 5, "density_threshold": 1.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        kwargs.setdefault("period", 5)
        with pytest.raises(ConfigError):
            SofiaConfig(**kwargs)

    def test_with_updates(self):
        cfg = SofiaConfig(rank=3, period=5)
        new = cfg.with_updates(mu=0.01)
        assert new.mu == pytest.approx(0.01)
        assert cfg.mu == pytest.approx(0.1)
        assert new.rank == 3

    def test_with_updates_validates(self):
        cfg = SofiaConfig(rank=3, period=5)
        with pytest.raises(ConfigError):
            cfg.with_updates(mu=-1.0)

    def test_frozen(self):
        cfg = SofiaConfig(rank=3, period=5)
        with pytest.raises(Exception):
            cfg.rank = 4
