"""Drive the cross-backend conformance harness over every backend.

The case matrix lives in :mod:`tests.tensor.backend_conformance`; this
file only parameterizes it over :func:`kernels.available_backends` and
the dtype axis, so registering a new backend automatically subjects it
to the whole suite in both float64 and float32.
"""

import numpy as np
import pytest

from repro.tensor import kernels
from tests.tensor.backend_conformance import (
    DTYPES,
    backends_under_test,
    iter_conformance_cases,
)

_CASES = iter_conformance_cases()


@pytest.mark.parametrize("backend", backends_under_test())
@pytest.mark.parametrize("dtype", DTYPES, ids=[np.dtype(d).name for d in DTYPES])
@pytest.mark.parametrize(
    "kernel,case_id,check",
    _CASES,
    ids=[f"{kernel}-{case_id}" for kernel, case_id, _ in _CASES],
)
def test_backend_matches_reference(backend, dtype, kernel, case_id, check):
    check(backend, dtype)


def test_all_shipped_backends_enrolled():
    assert {"auto", "batched", "sparse", "xp"} <= set(backends_under_test())
    assert "reference" not in backends_under_test()


def test_dtype_axis_covers_both_precisions():
    assert {np.dtype(d) for d in DTYPES} == {
        np.dtype(np.float64),
        np.dtype(np.float32),
    }


def test_every_kernel_covered():
    covered = {kernel for kernel, _, _ in _CASES}
    assert covered == {
        "solve_rows",
        "accumulate_normal_equations",
        "temporal_sweep",
        "mttkrp",
        "kruskal_reconstruct_rows",
        "rls_update_rows",
    }


def test_newly_registered_backend_is_picked_up():
    """The harness enrolls third-party backends with no new test code."""
    clone = kernels._BACKENDS["batched"]
    probe = kernels.KernelBackend(
        name="conformance-probe",
        solve_rows=clone.solve_rows,
        accumulate_normal_equations=clone.accumulate_normal_equations,
        temporal_sweep=clone.temporal_sweep,
        mttkrp=clone.mttkrp,
        rls_update_rows=clone.rls_update_rows,
        kruskal_reconstruct_rows=clone.kruskal_reconstruct_rows,
    )
    kernels.register_backend(probe)
    try:
        assert "conformance-probe" in backends_under_test()
        kernel, case_id, check = iter_conformance_cases()[0]
        for dtype in DTYPES:
            check("conformance-probe", dtype)
    finally:
        kernels._BACKENDS.pop("conformance-probe")


def test_density_sweep_straddles_auto_threshold():
    from tests.tensor.backend_conformance import DENSITIES

    assert any(d < kernels.AUTO_DENSITY_THRESHOLD for d in DENSITIES if d)
    assert kernels.AUTO_DENSITY_THRESHOLD in DENSITIES
    assert any(d > kernels.AUTO_DENSITY_THRESHOLD for d in DENSITIES)
    assert 0.0 in DENSITIES and 1.0 in DENSITIES


def test_harness_cases_detect_a_broken_backend():
    """A backend whose accumulation drops entries must fail the suite."""

    def broken_accumulate(coords, values, factors, mode):
        big_b, big_c = kernels._BACKENDS[
            "batched"
        ].accumulate_normal_equations(coords, values, factors, mode)
        return big_b, np.zeros_like(big_c)

    clone = kernels._BACKENDS["batched"]
    kernels.register_backend(
        kernels.KernelBackend(
            name="broken-probe",
            solve_rows=clone.solve_rows,
            accumulate_normal_equations=broken_accumulate,
            temporal_sweep=clone.temporal_sweep,
            mttkrp=clone.mttkrp,
            rls_update_rows=clone.rls_update_rows,
            kruskal_reconstruct_rows=clone.kruskal_reconstruct_rows,
        )
    )
    try:
        checks = [
            check
            for kernel, case_id, check in iter_conformance_cases()
            if kernel == "accumulate_normal_equations"
            and "density_0.5" in case_id
        ]
        assert checks
        with pytest.raises(AssertionError):
            for check in checks:
                check("broken-probe", np.float64)
    finally:
        kernels._BACKENDS.pop("broken-probe")


def test_dtype_axis_detects_a_float64_upcasting_backend():
    """A backend that silently upcasts float32 inputs must fail.

    This is the latent-bug class the dtype axis exists for: a kernel
    sprinkled with ``np.asarray(..., dtype=np.float64)`` passes every
    float64-only parity test and only the float32 sweep exposes it.
    """

    def upcasting_mttkrp(tensor, factors, mode, weights=None):
        return kernels._BACKENDS["batched"].mttkrp(
            np.asarray(tensor, dtype=np.float64),
            [None if f is None else np.asarray(f, dtype=np.float64)
             for f in factors],
            mode,
            weights,
        )

    clone = kernels._BACKENDS["batched"]
    kernels.register_backend(
        kernels.KernelBackend(
            name="upcast-probe",
            solve_rows=clone.solve_rows,
            accumulate_normal_equations=clone.accumulate_normal_equations,
            temporal_sweep=clone.temporal_sweep,
            mttkrp=upcasting_mttkrp,
            rls_update_rows=clone.rls_update_rows,
            kruskal_reconstruct_rows=clone.kruskal_reconstruct_rows,
        )
    )
    try:
        checks = [
            check
            for kernel, case_id, check in iter_conformance_cases()
            if kernel == "mttkrp" and "density_0.5" in case_id
        ]
        assert checks
        for check in checks:  # float64 runs stay green...
            check("upcast-probe", np.float64)
        with pytest.raises(AssertionError, match="preserve"):
            for check in checks:  # ...only the float32 axis trips
                check("upcast-probe", np.float32)
    finally:
        kernels._BACKENDS.pop("upcast-probe")


def test_backend_pinned_dtype_wins_over_inputs():
    """`KernelBackend.dtype` pins the whole seam to one dtype."""
    clone = kernels._BACKENDS["batched"]
    kernels.register_backend(
        kernels.KernelBackend(
            name="pinned-f32-probe",
            solve_rows=clone.solve_rows,
            accumulate_normal_equations=clone.accumulate_normal_equations,
            temporal_sweep=clone.temporal_sweep,
            mttkrp=clone.mttkrp,
            rls_update_rows=clone.rls_update_rows,
            kruskal_reconstruct_rows=clone.kruskal_reconstruct_rows,
            dtype="float32",
        )
    )
    try:
        rng = np.random.default_rng(3)
        tensor = rng.normal(size=(4, 5, 6))
        factors = [rng.normal(size=(s, 2)) for s in (4, 5, 6)]
        with kernels.use_backend("pinned-f32-probe"):
            out = kernels.mttkrp(tensor, factors, 0)
        assert out.dtype == np.float32
        with kernels.use_backend("batched"):
            expected = kernels.mttkrp(tensor, factors, 0)
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-4)
    finally:
        kernels._BACKENDS.pop("pinned-f32-probe")
