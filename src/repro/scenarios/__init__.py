"""Named stream scenarios: a registry of reproducible stress tests.

Each scenario is a small declarative module bundling a synthetic
stream recipe, a corruption schedule (random missingness, outliers,
structured blackout windows), an arrival process for live traffic
replay, and an expected-quality envelope.  The registry here makes
them discoverable by name:

    >>> from repro.scenarios import available_scenarios, get_scenario
    >>> available_scenarios()  # doctest: +ELLIPSIS
    ('blackout_windows', 'bursty_arrival', ...)
    >>> get_scenario("regime_shift").summary  # doctest: +ELLIPSIS
    'Regime shift: ...'

Every scenario runs two ways: offline accuracy-under-stress via
``repro-experiments scenario --name <n>`` (see
:mod:`repro.scenarios.offline`) and live open-loop replay against a
serving gateway via ``repro-serve-replay`` (see
:mod:`repro.scenarios.replay`).  ``docs/scenarios.md`` is generated
from the scenario module docstrings by ``tools/gen_scenario_docs.py``.
"""

from __future__ import annotations

from repro.scenarios import (
    blackout_windows,
    bursty_arrival,
    cold_start_flood,
    heavy_tail_outburst,
    regime_shift,
    seasonality_change,
    session_churn,
)
from repro.scenarios.arrival import (
    ArrivalProcess,
    BurstyArrival,
    ConstantArrival,
    RampArrival,
)
from repro.scenarios.base import (
    GeneratorSpec,
    QualityEnvelope,
    Scenario,
)

__all__ = [
    "ArrivalProcess",
    "BurstyArrival",
    "ConstantArrival",
    "GeneratorSpec",
    "QualityEnvelope",
    "RampArrival",
    "Scenario",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
]

_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (name collisions are an error)."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def available_scenarios() -> tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name; KeyError lists what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(available_scenarios())}"
        ) from None


for _module in (
    blackout_windows,
    bursty_arrival,
    cold_start_flood,
    heavy_tail_outburst,
    regime_shift,
    seasonality_change,
    session_churn,
):
    register_scenario(_module.SCENARIO)
del _module
