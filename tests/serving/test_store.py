"""Unit tests for the LRU checkpoint-backed eviction tier."""

import numpy as np
import pytest

from repro.core.serialization import load_sofia
from repro.exceptions import SessionNotFoundError
from repro.serving.metrics import ServingMetrics
from repro.serving.store import CheckpointStore


@pytest.fixture
def fitted(checkpoint):
    """A factory of independent fitted models (same checkpoint)."""

    def make():
        return load_sofia(checkpoint)

    return make


class TestResidency:
    def test_unbounded_store_never_spills(self, fitted, tmp_path):
        store = CheckpointStore(tmp_path)
        for i in range(5):
            store.put(f"s{i}", fitted())
        assert store.resident_count() == 5
        assert store.spilled_count() == 0

    def test_cap_spills_lru_session(self, fitted, tmp_path):
        store = CheckpointStore(tmp_path, max_resident=2)
        store.put("a", fitted())
        store.put("b", fitted())
        store.put("c", fitted())
        assert store.resident_count() == 2
        assert store.spilled_count() == 1
        assert not store.is_resident("a")  # oldest went first
        assert store.checkpoint_path("a").exists()
        assert "a" in store

    def test_checkout_rehydrates_and_reenforces_cap(self, fitted, tmp_path):
        metrics = ServingMetrics()
        store = CheckpointStore(tmp_path, max_resident=2, metrics=metrics)
        for sid in ("a", "b", "c"):
            store.put(sid, fitted())
        assert not store.is_resident("a")
        sofia = store.checkout("a")
        try:
            assert sofia.is_initialized
            assert store.is_resident("a")
            # The cap still holds: someone colder was spilled instead.
            assert store.resident_count() == 2
        finally:
            store.checkin("a")
        snapshot = metrics.snapshot()
        assert snapshot["rehydrations"] == 1
        assert snapshot["evictions"] == 2

    def test_rehydrated_state_is_bit_identical(self, fitted, tmp_path):
        store = CheckpointStore(tmp_path, max_resident=1)
        original = fitted()
        reference_state = {
            "factors": [f.copy() for f in original.state.non_temporal],
            "buffer": original.state.temporal_buffer.copy(),
            "sigma": original.state.sigma.copy(),
            "t": original.state.t,
        }
        store.put("a", original)
        store.put("b", fitted())  # evicts "a"
        assert not store.is_resident("a")
        sofia = store.checkout("a")
        try:
            for got, expected in zip(
                sofia.state.non_temporal, reference_state["factors"]
            ):
                np.testing.assert_array_equal(got, expected)
            np.testing.assert_array_equal(
                sofia.state.temporal_buffer, reference_state["buffer"]
            )
            np.testing.assert_array_equal(
                sofia.state.sigma, reference_state["sigma"]
            )
            assert sofia.state.t == reference_state["t"]
        finally:
            store.checkin("a")

    def test_lru_order_follows_checkouts(self, fitted, tmp_path):
        store = CheckpointStore(tmp_path, max_resident=2)
        store.put("a", fitted())
        store.put("b", fitted())
        # Touch "a" so "b" becomes the LRU victim.
        store.checkout("a")
        store.checkin("a")
        store.put("c", fitted())
        assert store.is_resident("a")
        assert not store.is_resident("b")


class TestPinning:
    def test_checked_out_sessions_are_never_evicted(self, fitted, tmp_path):
        store = CheckpointStore(tmp_path, max_resident=1)
        store.put("a", fitted())
        sofia = store.checkout("a")
        try:
            # "a" is pinned: adding "b" must evict "b"-vs-"a" choosing
            # neither to break the pin — "b" itself is the only
            # unpinned candidate.
            store.put("b", fitted())
            assert store.is_resident("a")
            assert not store.is_resident("b")
            assert sofia.is_initialized
        finally:
            store.checkin("a")

    def test_unbalanced_checkin_raises(self, fitted, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("a", fitted())
        with pytest.raises(RuntimeError, match="without matching checkout"):
            store.checkin("a")

    def test_all_pinned_over_cap_evicts_nobody(self, fitted, tmp_path):
        # When every resident session is checked out, the cap has no
        # legal victim: enforcement must back off (residency runs over
        # the cap transiently) instead of spilling a pinned model or
        # spinning forever.
        metrics = ServingMetrics()
        store = CheckpointStore(tmp_path, max_resident=1, metrics=metrics)
        try:
            for sid in ("a", "b", "c"):
                store.put(sid, fitted())
                # Each checkout pins; once pinned, enforcement finds
                # no unpinned victim and must leave all three alone.
                store.checkout(sid)
            # Three pinned sessions against a cap of one: all resident.
            assert store.resident_count() == 3
            assert store.spilled_count() == 0
        finally:
            for sid in ("a", "b", "c"):
                store.checkin(sid)
        # Unpinning re-arms the cap at the next check-in.
        assert store.resident_count() == 1
        assert store.spilled_count() == 2


class TestLifecycle:
    def test_checkout_unknown_session_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(SessionNotFoundError):
            store.checkout("ghost")

    def test_remove_deletes_spilled_checkpoint(self, fitted, tmp_path):
        store = CheckpointStore(tmp_path, max_resident=1)
        store.put("a", fitted())
        store.put("b", fitted())
        path = store.checkpoint_path("a")
        assert path.exists()
        store.remove("a")
        assert not path.exists()
        assert "a" not in store

    def test_save_to_writes_loadable_checkpoint(self, fitted, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("a", fitted())
        target = tmp_path / "explicit.npz"
        store.save_to("a", target)
        assert target.exists()
        assert load_sofia(target).is_initialized

    def test_rejects_bad_cap(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, max_resident=0)


class TestStateHandoff:
    def test_export_import_round_trip_is_bit_identical(
        self, fitted, tmp_path
    ):
        # The migration handoff medium: export on one store, import on
        # another, and the adopted model is the same model — every
        # array bit-for-bit, not approximately.
        source = CheckpointStore(tmp_path / "src")
        target = CheckpointStore(tmp_path / "dst")
        original = fitted()
        source.put("mover", original)
        data = source.export_state("mover")
        assert isinstance(data, bytes)
        target.import_state("mover", data)
        adopted = target.checkout("mover")
        try:
            for got, expected in zip(
                adopted.state.non_temporal, original.state.non_temporal
            ):
                np.testing.assert_array_equal(got, expected)
            np.testing.assert_array_equal(
                adopted.state.temporal_buffer,
                original.state.temporal_buffer,
            )
            np.testing.assert_array_equal(
                adopted.state.sigma, original.state.sigma
            )
            assert adopted.state.t == original.state.t
        finally:
            target.checkin("mover")
        # And a re-export of the adopted model reproduces the same
        # bytes: the archive format is canonical, so N hops degrade
        # nothing.
        assert target.export_state("mover") == data

    def test_import_over_checked_out_session_refused(
        self, fitted, tmp_path
    ):
        store = CheckpointStore(tmp_path)
        store.put("busy", fitted())
        data = store.export_state("busy")
        store.checkout("busy")
        try:
            with pytest.raises(RuntimeError, match="checked out"):
                store.import_state("busy", data)
        finally:
            store.checkin("busy")
        store.import_state("busy", data)  # fine once unpinned
