"""Serve several tensor streams concurrently from one runtime.

Four synthetic sensor streams (different seasonal patterns, 25% missing
entries) are served by a single :class:`repro.serving.SessionManager`
capped at **two resident models**: as slices arrive round-robin, the
micro-batching scheduler fuses them into ``step_batch`` flushes —
grouping same-shaped sessions into shared dispatches — while cold
sessions spill to disk checkpoints and rehydrate transparently.  This
is the same code path the ``repro-serve`` HTTP gateway runs behind;
swap ``worker_kind="process"`` below to execute flushes on a
GIL-escaping multiprocessing pool with bit-identical results.

Run with::

    python examples/multi_stream_serving.py
"""

import numpy as np

from repro.datasets import seasonal_stream
from repro.serving import InProcessServingClient, SessionManager
from repro.tensor import relative_error


def main() -> None:
    period = 6
    dims = (6, 5)
    n_steps = 36
    config = {
        "rank": 2,
        "period": period,
        "init_seasons": 2,      # 12 warmup slices per session
        "lambda1": 0.1,
        "lambda2": 0.1,
        "max_outer_iters": 50,
        "tol": 1e-5,
    }

    # 1. Four independent ground-truth streams + observation masks.
    session_ids = [f"sensor-{i}" for i in range(4)]
    truths, masks = {}, {}
    for i, sid in enumerate(session_ids):
        stream = seasonal_stream(
            dims=dims, rank=2, period=period, n_steps=n_steps, seed=30 + i
        )
        rng = np.random.default_rng(100 + i)
        truths[sid] = stream.data
        masks[sid] = rng.random(stream.shape) > 0.25

    # 2. One runtime, two resident models for four sessions: half the
    #    fleet always lives as on-disk checkpoints.
    manager = SessionManager(
        max_resident=2,
        max_batch=4,
        max_latency_s=60.0,
        workers=2,
        worker_kind="thread",  # or "process" to escape the GIL
    )
    client = InProcessServingClient(manager)
    with manager:
        for sid in session_ids:
            client.create_session(sid, config)

        # 3. Slices arrive round-robin across sessions (warmup slices
        #    initialize each model in the background workers).
        for t in range(n_steps):
            for sid in session_ids:
                client.ingest(
                    sid, truths[sid][..., t], masks[sid][..., t]
                )
        manager.drain()

        # 4. Score each session's recent completions against its truth.
        print(f"serving {len(session_ids)} sessions, 2 resident:")
        for sid in session_ids:
            errors = [
                relative_error(r.completed, truths[sid][..., r.seq])
                for r in client.results(sid, since=24)
            ]
            info = client.session_info(sid)
            print(
                f"  {sid}: status={info['status']:>7}  "
                f"consumed={info['consumed']}  "
                f"recent NRE={np.mean(errors):.4f}"
            )

        # 5. Forecast one season ahead for every session.
        for sid in session_ids:
            result = client.forecast(sid, period)
            print(f"  {sid}: forecast shape {result.forecast.shape}")

        # 6. The eviction tier did real work while we streamed.
        metrics = client.metrics()
        print(
            f"micro-batching: {metrics['slices_flushed']} slices in "
            f"{metrics['batches_flushed']} flushes "
            f"(mean batch {metrics['mean_batch_size']:.1f}, "
            f"{metrics['mean_fused_sessions']:.1f} sessions/dispatch)"
        )
        print(
            f"eviction tier: {metrics['evictions']} evictions, "
            f"{metrics['rehydrations']} rehydrations"
        )


if __name__ == "__main__":
    main()
