"""Unit tests for the TensorStream abstraction."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.streams import TensorStream


@pytest.fixture
def stream():
    rng = np.random.default_rng(0)
    data = rng.normal(size=(4, 5, 12))
    mask = rng.random((4, 5, 12)) > 0.3
    return TensorStream(data=data, mask=mask, period=4)


class TestConstruction:
    def test_properties(self, stream):
        assert stream.n_steps == 12
        assert stream.subtensor_shape == (4, 5)
        assert stream.entries_per_step == 20

    def test_fully_observed(self):
        s = TensorStream.fully_observed(np.zeros((3, 8)), period=2)
        assert s.mask.all()
        assert s.n_steps == 8

    def test_1d_rejected(self):
        with pytest.raises(ShapeError):
            TensorStream(
                data=np.zeros(5), mask=np.ones(5, dtype=bool), period=1
            )

    def test_mask_shape_mismatch(self):
        with pytest.raises(ShapeError):
            TensorStream(
                data=np.zeros((3, 4)),
                mask=np.ones((4, 3), dtype=bool),
                period=1,
            )

    def test_bad_period(self):
        with pytest.raises(ShapeError):
            TensorStream(
                data=np.zeros((3, 4)),
                mask=np.ones((3, 4), dtype=bool),
                period=0,
            )


class TestSlicing:
    def test_subtensor(self, stream):
        np.testing.assert_array_equal(stream.subtensor(3), stream.data[..., 3])

    def test_mask_at(self, stream):
        np.testing.assert_array_equal(stream.mask_at(3), stream.mask[..., 3])

    def test_startup(self, stream):
        subtensors, masks = stream.startup(5)
        assert len(subtensors) == 5
        assert len(masks) == 5
        np.testing.assert_array_equal(subtensors[2], stream.data[..., 2])

    def test_startup_out_of_range(self, stream):
        with pytest.raises(ShapeError):
            stream.startup(0)
        with pytest.raises(ShapeError):
            stream.startup(13)

    def test_iter_from(self, stream):
        steps = list(stream.iter_from(9))
        assert [t for t, _, _ in steps] == [9, 10, 11]
        np.testing.assert_array_equal(steps[0][1], stream.data[..., 9])

    def test_iter_from_end_is_empty(self, stream):
        assert list(stream.iter_from(12)) == []

    def test_slice_steps(self, stream):
        sub = stream.slice_steps(2, 7)
        assert sub.n_steps == 5
        np.testing.assert_array_equal(sub.data, stream.data[..., 2:7])
        assert sub.period == stream.period

    def test_slice_steps_invalid(self, stream):
        with pytest.raises(ShapeError):
            stream.slice_steps(5, 5)
        with pytest.raises(ShapeError):
            stream.slice_steps(0, 13)
