"""N-way generality: SOFIA on 4-way streams (3 non-temporal modes).

The paper's formulation is for arbitrary N; the experiments use 3-way
streams.  These tests pin the implementation to the general case, e.g. a
(position, sensor, metric, time) stream.
"""

import numpy as np
import pytest

from repro.core import Sofia, SofiaConfig
from repro.datasets import seasonal_stream
from repro.streams import CorruptionSpec, corrupt
from repro.tensor import relative_error


@pytest.fixture(scope="module")
def four_way_case():
    stream = seasonal_stream(
        (6, 5, 4), rank=2, period=8, n_steps=48,
        amplitude_range=(0.4, 0.8), offset_range=(1.5, 2.5), seed=3,
    )
    corrupted = corrupt(stream.data, CorruptionSpec(30, 10, 3), seed=4)
    return stream, corrupted


@pytest.fixture(scope="module")
def fitted(four_way_case):
    stream, corrupted = four_way_case
    config = SofiaConfig(
        rank=2, period=8, lambda1=0.1, lambda2=0.1,
        max_outer_iters=200, tol=1e-6,
    )
    sofia = Sofia(config)
    ti = config.init_steps
    sofia.initialize(
        [corrupted.observed[..., t] for t in range(ti)],
        [corrupted.mask[..., t] for t in range(ti)],
    )
    return sofia, config


class TestFourWay:
    def test_initialization_recovers(self, four_way_case, fitted):
        stream, _ = four_way_case
        sofia, config = fitted
        completed = sofia.initialization.completed
        err = relative_error(completed, stream.data[..., :config.init_steps])
        assert err < 0.15

    def test_dynamic_phase_tracks(self, four_way_case, fitted):
        import copy

        stream, corrupted = four_way_case
        sofia, config = fitted
        live = copy.deepcopy(sofia)
        errors = []
        for t in range(config.init_steps, 48):
            step = live.step(
                corrupted.observed[..., t], corrupted.mask[..., t]
            )
            assert step.completed.shape == (6, 5, 4)
            errors.append(relative_error(step.completed, stream.data[..., t]))
        assert np.mean(errors) < 0.2

    def test_forecast_shape(self, fitted):
        import copy

        sofia, _ = fitted
        fc = copy.deepcopy(sofia).forecast(5)
        assert fc.shape == (5, 6, 5, 4)

    def test_outlier_subtensor_shape(self, four_way_case, fitted):
        import copy

        stream, corrupted = four_way_case
        sofia, config = fitted
        live = copy.deepcopy(sofia)
        t = config.init_steps
        y = corrupted.observed[..., t].copy()
        y[1, 2, 3] += 100.0
        step = live.step(y, corrupted.mask[..., t])
        assert step.outliers.shape == (6, 5, 4)
        if corrupted.mask[1, 2, 3, t]:
            assert abs(step.outliers[1, 2, 3]) > 50.0

    def test_state_dimensions(self, fitted):
        sofia, _ = fitted
        assert [f.shape[0] for f in sofia.state.non_temporal] == [6, 5, 4]
        assert sofia.state.sigma.shape == (6, 5, 4)
