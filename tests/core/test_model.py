"""Unit tests for SofiaModelState bookkeeping."""

import numpy as np
import pytest

from repro.core.model import SofiaModelState
from repro.exceptions import ShapeError
from repro.forecast.vector_hw import VectorHoltWinters


def make_hw(rank=2, period=3):
    return VectorHoltWinters(
        level=np.zeros(rank),
        trend=np.zeros(rank),
        seasonal=np.zeros((period, rank)),
        alpha=np.full(rank, 0.5),
        beta=np.full(rank, 0.5),
        gamma=np.full(rank, 0.5),
    )


def make_state(rank=2, period=3, dims=(4, 5)):
    return SofiaModelState(
        non_temporal=[np.ones((d, rank)) for d in dims],
        temporal_buffer=np.arange(period * rank, dtype=float).reshape(
            period, rank
        ),
        hw=make_hw(rank, period),
        sigma=np.ones(dims),
        t=9,
    )


class TestConstruction:
    def test_properties(self):
        state = make_state()
        assert state.rank == 2
        assert state.subtensor_shape == (4, 5)

    def test_empty_factors_rejected(self):
        with pytest.raises(ShapeError):
            SofiaModelState(
                non_temporal=[],
                temporal_buffer=np.zeros((3, 2)),
                hw=make_hw(),
                sigma=np.ones((4, 5)),
                t=0,
            )

    def test_buffer_rank_mismatch(self):
        with pytest.raises(ShapeError):
            SofiaModelState(
                non_temporal=[np.ones((4, 2))],
                temporal_buffer=np.zeros((3, 3)),
                hw=make_hw(),
                sigma=np.ones((4,)),
                t=0,
            )

    def test_sigma_shape_mismatch(self):
        with pytest.raises(ShapeError):
            SofiaModelState(
                non_temporal=[np.ones((4, 2)), np.ones((5, 2))],
                temporal_buffer=np.zeros((3, 2)),
                hw=make_hw(),
                sigma=np.ones((4, 4)),
                t=0,
            )


class TestRingBuffer:
    def test_previous_and_season_vectors(self):
        state = make_state(period=3)
        np.testing.assert_array_equal(
            state.season_vector, state.temporal_buffer[0]
        )
        np.testing.assert_array_equal(
            state.previous_vector, state.temporal_buffer[-1]
        )

    def test_push_rolls(self):
        state = make_state(period=3)
        old_second = state.temporal_buffer[1].copy()
        new = np.array([100.0, 200.0])
        state.push_temporal(new)
        np.testing.assert_array_equal(state.temporal_buffer[-1], new)
        np.testing.assert_array_equal(state.temporal_buffer[0], old_second)
        assert state.temporal_buffer.shape == (3, 2)

    def test_push_wrong_length(self):
        state = make_state()
        with pytest.raises(ShapeError):
            state.push_temporal(np.ones(3))

    def test_m_pushes_cycle_buffer(self):
        state = make_state(period=3)
        vectors = [np.full(2, float(i)) for i in range(3)]
        for v in vectors:
            state.push_temporal(v)
        np.testing.assert_array_equal(state.temporal_buffer, np.stack(vectors))
