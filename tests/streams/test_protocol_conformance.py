"""Runtime protocol conformance of every registered algorithm.

The runner drives algorithms through :class:`StreamingImputerProtocol`
(and forecasters through :class:`StreamingForecasterProtocol`); these
tests pin the contract with ``isinstance`` runtime checks — including the
mini-batch ``step_batch`` member every conforming algorithm must now
carry — and exercise the default sequential ``step_batch`` fallback
against per-step stepping.
"""

import numpy as np
import pytest

from repro.baselines import (
    Brst,
    Cphw,
    Mast,
    Olstec,
    OnlineSGD,
    OrMstc,
    Smf,
    SofiaImputer,
    StreamingImputer,
)
from repro.core import SofiaConfig
from repro.streams import (
    StreamingForecasterProtocol,
    StreamingImputerProtocol,
)

RANK = 3
PERIOD = 6

IMPUTER_FACTORIES = {
    "SOFIA": lambda: SofiaImputer(
        SofiaConfig(rank=RANK, period=PERIOD, init_seasons=2)
    ),
    "OnlineSGD": lambda: OnlineSGD(RANK, seed=0),
    "OLSTEC": lambda: Olstec(RANK, seed=0),
    "MAST": lambda: Mast(RANK, seed=0),
    "OR-MSTC": lambda: OrMstc(RANK, seed=0),
    "BRST": lambda: Brst(RANK, seed=0),
    "SMF": lambda: Smf(RANK, PERIOD, seed=0),
    "CPHW": lambda: Cphw(RANK, PERIOD, seed=0),
}

FORECASTER_NAMES = ("SOFIA", "SMF", "CPHW")


@pytest.mark.parametrize("name", sorted(IMPUTER_FACTORIES))
def test_every_algorithm_satisfies_imputer_protocol(name):
    algo = IMPUTER_FACTORIES[name]()
    assert isinstance(algo, StreamingImputerProtocol)
    # The protocol's members must all be present and callable.
    for member in ("initialize", "step", "step_batch"):
        assert callable(getattr(algo, member))
    assert isinstance(algo.name, str) and algo.name


@pytest.mark.parametrize("name", sorted(FORECASTER_NAMES))
def test_forecasters_satisfy_forecaster_protocol(name):
    algo = IMPUTER_FACTORIES[name]()
    assert isinstance(algo, StreamingForecasterProtocol)
    assert callable(algo.forecast)


@pytest.mark.parametrize(
    "name", [n for n in sorted(IMPUTER_FACTORIES) if n != "SOFIA"]
)
def test_default_step_batch_matches_sequential_steps(name):
    """The base-class fallback must replay ``step`` exactly."""
    rng = np.random.default_rng(0)
    data = rng.normal(size=(5, 4, 3 * PERIOD)) + 2.0
    mask = rng.random(data.shape) > 0.2
    startup = 2 * PERIOD

    seq = IMPUTER_FACTORIES[name]()
    bat = IMPUTER_FACTORIES[name]()
    for algo in (seq, bat):
        algo.initialize(
            [data[..., t] for t in range(startup)],
            [mask[..., t] for t in range(startup)],
        )
    expected = np.stack(
        [
            seq.step(data[..., t], mask[..., t])
            for t in range(startup, startup + 4)
        ],
        axis=0,
    )
    got = bat.step_batch(
        np.moveaxis(data[..., startup:startup + 4], -1, 0),
        np.moveaxis(mask[..., startup:startup + 4], -1, 0),
    )
    np.testing.assert_array_equal(got, expected)


def test_default_step_batch_validates_lengths():
    algo = OnlineSGD(RANK, seed=0)
    from repro.exceptions import ShapeError

    with pytest.raises(ShapeError, match="vs"):
        algo.step_batch(
            np.zeros((2, 4, 4)), np.ones((3, 4, 4), dtype=bool)
        )
    with pytest.raises(ShapeError, match="at least one"):
        algo.step_batch(np.zeros((0, 4, 4)), np.zeros((0, 4, 4), dtype=bool))


def test_abstract_base_provides_the_default():
    assert callable(StreamingImputer.step_batch)
