"""Tests for the open-loop replay harness against a live gateway."""

import json
import threading

import pytest

from repro.scenarios.replay import (
    format_replay_report,
    main as replay_main,
    run_replay,
)
from repro.serving import SessionManager
from repro.serving.gateway import serve


@pytest.fixture
def gateway():
    manager = SessionManager(max_batch=8, max_latency_s=0.02)
    server = serve(manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        manager.close()
        thread.join(timeout=5)


class TestRunReplay:
    def test_replay_against_existing_gateway(self, gateway):
        report = run_replay(
            "cold_start_flood",
            url=gateway,
            rate=400.0,
            slices=20,
            tiny=True,
        )
        assert report.drained
        assert report.send_errors == 0
        assert report.slices_per_session == 20
        assert report.n_sessions == 6
        snapshot = report.server_metrics
        assert (
            snapshot["slices_ingested"]
            == report.n_sessions * report.slices_per_session
        )
        assert report.ingest_latency["count"] > 0
        assert report.client_rtt["count"] == snapshot["slices_ingested"]

    def test_self_hosted_replay(self):
        report = run_replay(
            "bursty_arrival", rate=400.0, slices=16, tiny=True
        )
        assert report.drained
        assert report.send_errors == 0
        assert report.url.startswith("http://")

    def test_as_dict_has_gateable_latency_keys(self, gateway):
        report = run_replay(
            "regime_shift", url=gateway, rate=400.0, slices=12, tiny=True
        )
        payload = report.as_dict()
        for key in (
            "ingest_p50_seconds",
            "ingest_p95_seconds",
            "ingest_p99_seconds",
            "rtt_p95_seconds",
        ):
            assert isinstance(payload[key], float)
        assert payload["ingest_p99_seconds"] >= payload["ingest_p50_seconds"]

    def test_format_report(self, gateway):
        report = run_replay(
            "blackout_windows", url=gateway, rate=400.0, slices=10, tiny=True
        )
        text = format_replay_report(report)
        assert "blackout_windows" in text
        assert "p95" in text


class TestReplayCli:
    def test_list(self, capsys):
        assert replay_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "regime_shift" in out

    def test_json_output(self, capsys):
        code = replay_main(
            [
                "--scenario",
                "cold_start_flood",
                "--tiny",
                "--slices",
                "10",
                "--rate",
                "400",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "cold_start_flood"
        assert payload["drained"] is True
