"""End-to-end observability: slice tracing, Prometheus, quality stats.

Three concerns live here, all fed from state the serving runtime
already computes — nothing in this module touches the numerical hot
path:

* **Slice-lifecycle tracing.**  A trace id is minted (or accepted via
  the ``X-Repro-Trace-Id`` header) when a slice is ingested and rides
  the slice through every stage: gateway accept, scheduler enqueue,
  pool dispatch (crossing the process boundary inside the pickled
  ``FlushRequest``), worker execution, and manager commit.  Completed
  :class:`SliceSpan` records land in a bounded ring
  (:class:`TraceBuffer`) queryable at ``GET /v1/traces``, so a p99
  slice can be decomposed into queue wait vs IPC vs kernel time.
  Sampling is off by default: with ``sample_rate == 0`` and no
  explicit trace id, :meth:`TraceBuffer.sample` is a single float
  compare and no per-span state is allocated anywhere.

* **Prometheus text exposition.**  :func:`render_prometheus` turns a
  :meth:`ServingMetrics.snapshot` dict (single gateway or the router's
  fleet-merged view) into the Prometheus text format — ``_total``
  counters, gauges, and cumulative ``_bucket`` histogram lines derived
  from :class:`LatencyHistogram`'s existing bounds.

* **Per-session quality telemetry.**  :class:`SessionQuality`
  accumulates the cheap per-slice aggregates the worker computes from
  values SOFIA's dynamic phase already produced (one-step-ahead
  forecast residuals, outlier indicators, the running error scale
  Sigma-hat) into a sliding window, snapshotted at
  ``GET /v1/sessions/<id>/stats``.
"""

from __future__ import annotations

import math
import os
import threading
from collections import deque
from dataclasses import dataclass

__all__ = [
    "TRACE_HEADER",
    "TRACE_STAGES",
    "SliceSpan",
    "TraceBuffer",
    "SessionQuality",
    "SliceQuality",
    "mint_trace_id",
    "percentile_from_buckets",
    "render_prometheus",
]

#: HTTP header that carries a caller-supplied trace id through the
#: router and gateway.  An explicit id is always traced, regardless of
#: the sample rate.
TRACE_HEADER = "X-Repro-Trace-Id"

#: Lifecycle stages of one traced slice, in order.  A complete span
#: has a monotone non-decreasing timestamp for each.
TRACE_STAGES = (
    "accepted",
    "enqueued",
    "dispatched",
    "executed",
    "committed",
)


def mint_trace_id() -> str:
    """A fresh 16-hex-char trace id (no external dependencies)."""
    return os.urandom(8).hex()


@dataclass
class SliceSpan:
    """Stage timings of one traced slice, all on one monotonic clock.

    Timestamps are seconds on the owning manager's scheduler clock
    (``time.monotonic`` in production), so they are comparable *within*
    a span but not across processes.  ``execute_seconds`` is the
    worker's own measurement of this session's flush; on a process
    pool the gap ``(executed - dispatched) - execute_seconds`` is the
    IPC + fused-group overhead, which is exactly the queue-wait vs IPC
    vs kernel decomposition traces exist to answer.
    """

    trace_id: str
    session_id: str
    seq: int
    accepted: float
    enqueued: float
    dispatched: float
    executed: float
    committed: float
    execute_seconds: float = 0.0
    transport: str = "model"
    error: str | None = None

    def timestamps(self) -> list[float]:
        """Stage timestamps in :data:`TRACE_STAGES` order."""
        return [
            self.accepted,
            self.enqueued,
            self.dispatched,
            self.executed,
            self.committed,
        ]

    def is_monotone(self) -> bool:
        """True when every stage timestamp is >= its predecessor."""
        stamps = self.timestamps()
        return all(a <= b for a, b in zip(stamps, stamps[1:]))

    def as_dict(self) -> dict:
        """JSON-ready form (the ``/v1/traces`` and JSONL shape)."""
        return {
            "trace_id": self.trace_id,
            "session_id": self.session_id,
            "seq": self.seq,
            "stages": {
                stage: stamp
                for stage, stamp in zip(TRACE_STAGES, self.timestamps())
            },
            "queue_seconds": max(self.dispatched - self.enqueued, 0.0),
            "execute_seconds": self.execute_seconds,
            "overhead_seconds": max(
                (self.executed - self.dispatched) - self.execute_seconds,
                0.0,
            ),
            "total_seconds": max(self.committed - self.accepted, 0.0),
            "transport": self.transport,
            "error": self.error,
        }


class TraceBuffer:
    """Bounded ring of completed spans plus the sampling decision.

    ``sample`` is the only call on the ingest hot path.  With sampling
    off and no explicit id it touches no lock and allocates nothing —
    tracing disabled costs one attribute read and one compare per
    slice.
    """

    def __init__(
        self,
        *,
        sample_rate: float = 0.0,
        capacity: int = 4096,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sample_rate = float(sample_rate)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._spans: deque[SliceSpan] = deque(maxlen=self.capacity)
        self._dropped = 0
        # Cheap deterministic-free sampler state: a counter compared
        # against the rate, so rate 1.0 traces everything and rate 0.25
        # traces one slice in four without importing ``random`` on the
        # hot path.
        self._accumulator = 0.0

    def sample(self, explicit: str | None = None) -> str | None:
        """The trace id for a new slice, or None (slice untraced).

        An ``explicit`` caller-supplied id always wins.  Otherwise the
        sample-rate accumulator decides; at rate 0.0 this is the
        no-listener fast path: one compare, no allocation.
        """
        if explicit:
            return explicit
        if self.sample_rate <= 0.0:
            return None
        with self._lock:
            self._accumulator += self.sample_rate
            if self._accumulator >= 1.0:
                self._accumulator -= 1.0
                return mint_trace_id()
        return None

    def record(self, span: SliceSpan) -> None:
        """Fold one completed span into the ring (oldest evicted)."""
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self._dropped += 1
            self._spans.append(span)

    def spans(
        self,
        *,
        session_id: str | None = None,
        trace_id: str | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        """Matching spans, oldest first, as ``/v1/traces`` dicts."""
        with self._lock:
            spans = list(self._spans)
        if session_id is not None:
            spans = [s for s in spans if s.session_id == session_id]
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return [span.as_dict() for span in spans]

    def stats(self) -> dict:
        """Ring occupancy and config (reported next to the spans)."""
        with self._lock:
            return {
                "sample_rate": self.sample_rate,
                "capacity": self.capacity,
                "recorded": len(self._spans),
                "dropped": self._dropped,
            }

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0


# ---------------------------------------------------------------------------
# Per-session quality telemetry
# ---------------------------------------------------------------------------

#: One slice's quality aggregates, computed worker-side from arrays the
#: dynamic phase already produced: ``observed`` mask cardinality, the
#: sum of squared one-step-ahead forecast residuals over observed
#: entries, the matching sum of squared observed values (the NRE
#: denominator), and how many entries the robust step flagged as
#: outliers.  Plain tuple-of-scalars so it pickles cheaply inside
#: ``FlushResult``.
SliceQuality = tuple  # (seq, observed, residual_ss, signal_ss, outliers)


class SessionQuality:
    """Sliding-window quality accumulator for one session.

    Fed at commit time with the :data:`SliceQuality` tuples the worker
    computed; answers the ``SessionStats`` fields — running NRE of the
    one-step-ahead forecast, outlier fraction, latest error scale, and
    last-flush staleness.  Bounded by ``window`` slices, O(window)
    memory, O(window) snapshot — no linear algebra anywhere.
    """

    def __init__(self, window: int = 64) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._recent: deque[tuple] = deque(maxlen=self.window)
        self.slices_applied = 0
        self.error_scale: float | None = None
        self.last_commit_at: float | None = None

    def observe_batch(
        self,
        quality: list[SliceQuality],
        error_scale: float | None,
        committed_at: float,
        *,
        applied: int | None = None,
    ) -> None:
        """Fold one committed flush in (called under the session lock)."""
        self.slices_applied += (
            applied if applied is not None else len(quality)
        )
        self.last_commit_at = committed_at
        if error_scale is not None:
            self.error_scale = float(error_scale)
        for entry in quality:
            self._recent.append(tuple(entry))

    def snapshot(self, now: float) -> dict:
        """The quality half of a ``SessionStats`` dict."""
        observed = sum(e[1] for e in self._recent)
        residual_ss = sum(e[2] for e in self._recent)
        signal_ss = sum(e[3] for e in self._recent)
        outliers = sum(e[4] for e in self._recent)
        nre = (
            math.sqrt(residual_ss / signal_ss) if signal_ss > 0 else None
        )
        return {
            "slices_applied": self.slices_applied,
            "window_slices": len(self._recent),
            "running_nre": nre,
            "outlier_fraction": (
                outliers / observed if observed else 0.0
            ),
            "error_scale": self.error_scale,
            "last_flush_age_seconds": (
                max(now - self.last_commit_at, 0.0)
                if self.last_commit_at is not None
                else None
            ),
        }


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

#: Snapshot keys that are monotonic counters (rendered as
#: ``<prefix>_<name>_total`` with TYPE counter).  Everything else
#: numeric is a gauge.  Kept in sync with ``metrics._COUNTERS`` by the
#: test suite rather than an import so this module stays usable on
#: merged router snapshots that carry extra keys.
_COUNTER_SUFFIXES = ("_total",)

#: Monotonic keys of the router's ``router_metrics()`` block (its
#: remaining keys — ``shards``, ``placement_overrides``,
#: ``lost_sessions`` — describe current state and stay gauges).
_ROUTER_COUNTER_KEYS = frozenset(
    {
        "migrations",
        "proxied_requests",
        "retried_requests",
        "http_requests",
        "http_errors_4xx",
        "http_errors_5xx",
        "load_placements",
        "rebalances",
        "failovers",
        "failed_over_sessions",
        "degraded_sessions",
    }
)


def _is_counter(name: str, counter_names: frozenset[str]) -> bool:
    return name in counter_names or name.endswith(_COUNTER_SUFFIXES)


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    return "+Inf" if bound == math.inf else format(bound, ".9g")


def percentile_from_buckets(
    bounds: list[float],
    counts: list[int],
    q: float,
    max_seconds: float,
) -> float:
    """The ``q``-quantile of a bucketed histogram, in seconds.

    Mirrors :meth:`LatencyHistogram.percentile` exactly — answer the
    upper bound of the bucket holding rank ``ceil(q * count)``, clamped
    to the observed maximum — so fleet-merged bucket counts reproduce
    the percentile a single histogram over the union of samples would
    report.  ``counts`` has one more entry than ``bounds`` (the
    overflow bucket).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if len(counts) != len(bounds) + 1:
        raise ValueError(
            f"need len(counts) == len(bounds) + 1, got "
            f"{len(counts)} and {len(bounds)}"
        )
    total = sum(counts)
    if total == 0:
        return 0.0
    target = max(int(math.ceil(q * total)), 1)
    seen = 0
    for index, bucket_count in enumerate(counts):
        seen += bucket_count
        if seen >= target:
            if index >= len(bounds):
                return max_seconds
            return min(bounds[index], max_seconds)
    return max_seconds  # pragma: no cover - counts sum to total


def _render_histogram(lines: list[str], name: str, summary: dict) -> None:
    """Emit one snapshot latency summary as Prometheus samples.

    With bucket data, a real ``histogram`` family (cumulative
    ``_bucket`` lines derived from the LatencyHistogram bounds, plus
    ``_sum``/``_count``); without (a fleet merge that fell back to
    conservative percentiles), a ``summary`` family with quantile
    labels so the fleet view never silently loses its latency signal.
    """
    buckets = summary.get("buckets")
    count = int(summary.get("count", 0))
    total = float(
        summary.get(
            "total_seconds",
            summary.get("mean_seconds", 0.0) * count,
        )
    )
    if buckets:
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, bucket_count in zip(
            buckets["bounds"], buckets["counts"]
        ):
            cumulative += int(bucket_count)
            lines.append(
                f'{name}_bucket{{le="{_format_le(bound)}"}} {cumulative}'
            )
        cumulative += int(buckets["counts"][-1])
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {_format_value(total)}")
        lines.append(f"{name}_count {cumulative}")
    else:
        lines.append(f"# TYPE {name} summary")
        for label, key in (
            ("0.5", "p50_seconds"),
            ("0.95", "p95_seconds"),
            ("0.99", "p99_seconds"),
        ):
            value = _format_value(float(summary.get(key, 0.0)))
            lines.append(f'{name}{{quantile="{label}"}} {value}')
        lines.append(f"{name}_sum {_format_value(total)}")
        lines.append(f"{name}_count {count}")
    lines.append(f"# TYPE {name}_max gauge")
    lines.append(
        f"{name}_max {_format_value(float(summary.get('max_seconds', 0.0)))}"
    )


def render_prometheus(
    snapshot: dict,
    *,
    prefix: str = "repro",
    counter_names: frozenset[str] | None = None,
) -> str:
    """A metrics snapshot in Prometheus text exposition format.

    Works on a single gateway's :meth:`ServingMetrics.snapshot` and on
    the router's fleet-merged dict (``aggregate_snapshots`` output plus
    its ``router`` sub-dict): plain ints become counters or gauges,
    ``*_latency`` dicts become histogram (or summary-fallback)
    families, the ``shards`` map is skipped (per-shard views live on
    the shards), and ``unreachable_shards`` / ``dead_shards`` lists are
    exposed as size gauges.
    """
    if counter_names is None:
        from repro.serving.metrics import COUNTER_NAMES

        counter_names = COUNTER_NAMES
    lines: list[str] = []

    def emit_scalar(scope: str, key: str, value, counters) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        if _is_counter(key, counters):
            name = f"{prefix}_{scope}{key}"
            if not name.endswith("_total"):
                name += "_total"
            lines.append(f"# TYPE {name} counter")
        else:
            name = f"{prefix}_{scope}{key}"
            lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(value)}")

    def emit_block(scope: str, block: dict, counters) -> None:
        for key in sorted(block):
            value = block[key]
            # The fleet snapshot's "shards" is the per-shard raw-view
            # map (lives on the shards); the router block's "shards"
            # is a plain count and renders as a gauge below.
            if key == "shards" and isinstance(value, dict):
                continue
            if key in ("unreachable_shards", "dead_shards"):
                size = len(value) if isinstance(value, (list, tuple)) else 0
                name = f"{prefix}_{scope}{key}"
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {size}")
                continue
            if key == "router" and isinstance(value, dict):
                emit_block("router_", value, _ROUTER_COUNTER_KEYS)
                continue
            if key.endswith("_latency") and isinstance(value, dict):
                _render_histogram(
                    lines,
                    f"{prefix}_{scope}{key}_seconds",
                    value,
                )
                continue
            emit_scalar(scope, key, value, counters)

    emit_block("", snapshot, counter_names)
    return "\n".join(lines) + "\n"
