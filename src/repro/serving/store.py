"""LRU checkpoint-backed eviction tier for resident SOFIA sessions.

The serving runtime hosts many initialized :class:`~repro.core.Sofia`
models, but only ``max_resident`` of them stay in memory at once: the
least-recently-used session is *spilled* — checkpointed to disk through
:func:`repro.core.serialization.save_sofia` and dropped from memory —
and transparently *rehydrated* with
:func:`~repro.core.serialization.load_sofia` the next time the
scheduler flushes a batch for it.  Because the ``.npz`` round-trip is
bit-exact (arrays stored losslessly, config floats via JSON repr), a
spill/rehydrate cycle does not perturb the model trajectory at all —
an eviction-capped run produces bit-identical results to an uncapped
one, which ``tests/serving`` pins.

Concurrency contract
--------------------
All bookkeeping runs under one internal lock.  A session *must* be
checked out (:meth:`CheckpointStore.checkout`) before its model is
stepped and checked back in afterwards; checked-out sessions are pinned
and never evicted, so a worker mid-``step_batch`` cannot have its model
snatched from under it.  Pins can push the resident count above the cap
transiently; the cap is re-enforced over unpinned sessions at every
check-in.  Checkpoint I/O happens inside the lock — correctness first;
spills are off the ingest hot path (they happen at check-in, in worker
threads).
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from pathlib import Path

from repro.core.serialization import (
    dumps_sofia,
    load_sofia,
    loads_sofia,
    save_sofia,
)
from repro.core.sofia import Sofia
from repro.exceptions import SessionNotFoundError
from repro.serving.metrics import ServingMetrics

__all__ = ["CheckpointStore", "checkpoint_meta_path"]


def checkpoint_meta_path(checkpoint: str | Path) -> Path:
    """The JSON sidecar next to a checkpoint file.

    Durable-mode managers write serving bookkeeping (sequence numbers,
    consumed count, kernel-backend pin) here alongside each persisted
    checkpoint; the shard router's failover path reads it to rebuild a
    dead shard's sessions with their stream positions intact.
    """
    path = Path(checkpoint)
    return path.with_name(path.stem + ".meta.json")


class CheckpointStore:
    """Bounded-residency store mapping session ids to ``Sofia`` models."""

    def __init__(
        self,
        directory: str | Path,
        *,
        max_resident: int | None = None,
        metrics: ServingMetrics | None = None,
        durable: bool = False,
    ) -> None:
        if max_resident is not None and max_resident < 1:
            raise ValueError(
                f"max_resident must be >= 1 or None, got {max_resident}"
            )
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._max_resident = max_resident
        self._metrics = metrics
        self._durable = durable
        self._lock = threading.Lock()
        #: Resident models, least-recently-used first.
        self._resident: OrderedDict[str, Sofia] = OrderedDict()
        #: Spilled sessions: id -> checkpoint path on disk.
        self._spilled: dict[str, Path] = {}
        #: Check-out pin counts; pinned sessions are never evicted.
        self._pins: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def max_resident(self) -> int | None:
        return self._max_resident

    @property
    def durable(self) -> bool:
        """Whether checkpoint files outlive residency (see :meth:`persist`)."""
        return self._durable

    def resident_count(self) -> int:
        with self._lock:
            return len(self._resident)

    def spilled_count(self) -> int:
        with self._lock:
            return len(self._spilled)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._resident or session_id in self._spilled

    def is_resident(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._resident

    def checkpoint_path(self, session_id: str) -> Path:
        """Where this session checkpoints to on disk.

        Non-durable stores keep the file only while the session is
        spilled; durable stores keep it continuously (rewritten by
        :meth:`persist` after every committed flush) so an external
        failover tier can rebuild the session after a crash.
        """
        return self._directory / f"{session_id}.npz"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def put(self, session_id: str, sofia: Sofia) -> None:
        """Register a newly initialized session (most-recently-used)."""
        with self._lock:
            self._spilled.pop(session_id, None)
            self._resident[session_id] = sofia
            self._resident.move_to_end(session_id)
            self._enforce_cap_locked()

    def checkout(self, session_id: str) -> Sofia:
        """Pin and return the session's model, rehydrating if spilled."""
        with self._lock:
            sofia = self._resident.get(session_id)
            if sofia is None:
                path = self._spilled.get(session_id)
                if path is None:
                    raise SessionNotFoundError(
                        f"session {session_id!r} is not in the store"
                    )
                sofia = load_sofia(path)
                del self._spilled[session_id]
                # A durable store keeps the file: it still holds the
                # last committed state, which is exactly what failover
                # would want if this process died mid-flush.
                if not self._durable:
                    path.unlink(missing_ok=True)
                self._resident[session_id] = sofia
                if self._metrics is not None:
                    self._metrics.increment("rehydrations")
            self._resident.move_to_end(session_id)
            self._pins[session_id] += 1
            # Rehydration may have pushed residency past the cap; evict
            # someone colder right away (the checked-out session is
            # pinned and safe).
            self._enforce_cap_locked()
            return sofia

    def checkin(self, session_id: str) -> None:
        """Unpin after a checkout; re-enforces the residency cap."""
        with self._lock:
            if self._pins[session_id] <= 0:
                raise RuntimeError(
                    f"checkin without matching checkout for {session_id!r}"
                )
            self._pins[session_id] -= 1
            if self._pins[session_id] == 0:
                del self._pins[session_id]
            if session_id in self._resident:
                self._resident.move_to_end(session_id)
            self._enforce_cap_locked()

    def remove(self, session_id: str) -> None:
        """Drop a session and delete its spilled checkpoint, if any."""
        with self._lock:
            self._resident.pop(session_id, None)
            path = self._spilled.pop(session_id, None)
            if path is not None:
                path.unlink(missing_ok=True)
            if self._durable:
                # Durable files exist independently of spill state.
                self.checkpoint_path(session_id).unlink(missing_ok=True)
            self._pins.pop(session_id, None)

    def persist(self, session_id: str) -> Path:
        """Write the session's current state to its checkpoint path.

        The durable-mode hook: called after every committed flush so
        the on-disk checkpoint always holds the last committed state.
        A spilled session's file is already current (the spill wrote
        it), so only resident models are re-serialized.  Returns the
        checkpoint path either way.
        """
        with self._lock:
            path = self.checkpoint_path(session_id)
            sofia = self._resident.get(session_id)
            if sofia is None:
                if session_id in self._spilled:
                    return path
                raise SessionNotFoundError(
                    f"session {session_id!r} is not in the store"
                )
            save_sofia(sofia, path)
        if self._metrics is not None:
            self._metrics.increment("checkpoint_persists")
        return path

    def save_to(self, session_id: str, path: str | Path) -> Path:
        """Checkpoint a session to an explicit path (resident or not)."""
        target = Path(path)
        sofia = self.checkout(session_id)
        try:
            save_sofia(sofia, target)
        finally:
            self.checkin(session_id)
        return target

    # ------------------------------------------------------------------
    # Process-worker handoff
    # ------------------------------------------------------------------
    def export_state(self, session_id: str) -> bytes:
        """The session's model as versioned checkpoint-format bytes.

        The serving layer's process worker pool ships session state to
        a worker with this — the same ``_FORMAT_VERSION`` archive the
        eviction tier spills, so a worker rebuilds the model through
        the one verified ``Sofia.from_state`` path.  The pin is held
        only for the serialization itself; the caller is expected to
        hold the session's lock across the whole flush.
        """
        sofia = self.checkout(session_id)
        try:
            return dumps_sofia(sofia)
        finally:
            self.checkin(session_id)

    def import_state(self, session_id: str, data: bytes) -> None:
        """Replace the session's model from worker-returned bytes.

        The loaded model becomes the authoritative resident copy
        (most-recently-used; any stale spill file of the session is
        dropped by :meth:`put`).  Refuses while the session is checked
        out: replacing a pinned model would silently discard whatever
        the holder of the pin is still computing on.
        """
        with self._lock:
            if self._pins[session_id] > 0:
                raise RuntimeError(
                    f"cannot import state over session {session_id!r} "
                    "while it is checked out"
                )
        self.put(session_id, loads_sofia(data))

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _enforce_cap_locked(self) -> None:
        if self._max_resident is None:
            return
        while len(self._resident) > self._max_resident:
            victim = next(
                (
                    sid
                    for sid in self._resident  # LRU order, oldest first
                    if self._pins[sid] == 0
                ),
                None,
            )
            if victim is None:
                return  # everything over the cap is pinned right now
            sofia = self._resident.pop(victim)
            path = self.checkpoint_path(victim)
            save_sofia(sofia, path)
            self._spilled[victim] = path
            if self._metrics is not None:
                self._metrics.increment("evictions")
