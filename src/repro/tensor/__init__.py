"""Dense tensor algebra substrate used throughout the SOFIA reproduction.

This subpackage replaces the MATLAB tensor toolbox / tensorly dependency:
matricization, Khatri-Rao and Hadamard products, the Kruskal operator,
masked-tensor helpers, and seeded random constructions.
"""

from repro.tensor.dense import (
    fold,
    frobenius_norm,
    mode_lengths_product,
    relative_error,
    unfold,
    vec,
)
from repro.tensor.masked import (
    apply_mask,
    impute,
    masked_frobenius_norm,
    masked_relative_error,
    observed_fraction,
)
from repro.tensor.products import (
    hadamard_all,
    khatri_rao,
    kruskal_to_tensor,
    normalize_columns,
    outer,
)
from repro.tensor.random import as_generator, random_factors, random_kruskal_tensor
from repro.tensor import kernels

__all__ = [
    "kernels",
    "apply_mask",
    "as_generator",
    "fold",
    "frobenius_norm",
    "hadamard_all",
    "impute",
    "khatri_rao",
    "kruskal_to_tensor",
    "masked_frobenius_norm",
    "masked_relative_error",
    "mode_lengths_product",
    "normalize_columns",
    "observed_fraction",
    "outer",
    "random_factors",
    "random_kruskal_tensor",
    "relative_error",
    "unfold",
    "vec",
]
