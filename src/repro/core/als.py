"""SOFIA_ALS: the batch update used during initialization (paper Alg. 2).

Row-wise alternating least squares on the masked, outlier-corrected
tensor.  Non-temporal rows solve the plain normal equations of Theorem 1;
temporal rows additionally carry the temporal/seasonal smoothness
coupling of Theorem 2 (Eq. 17-18) and are swept Gauss-Seidel style so
each row sees its neighbors' freshest values.

The normal-equation pieces ``B_i`` and ``c_i`` (Eq. 14-15) are accumulated
over observed entries only, in chunks, giving ``O(|Ω| R (N + R))`` work
per sweep as stated in Lemma 1.  All linear-algebra hot paths — the
accumulation, the stacked row solves, and the temporal sweep — dispatch
through :mod:`repro.tensor.kernels`, so the whole routine follows the
active backend (density-dispatched ``"auto"`` by default, with dense
``"batched"``, observed-entry ``"sparse"``, and scalar ``"reference"``
paths selectable) without touching this module.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.config import SofiaConfig
from repro.exceptions import ShapeError
from repro.tensor import kernels, kruskal_to_tensor, normalize_columns
from repro.tensor.validation import check_factor_matrices, check_mask

__all__ = ["AlsResult", "accumulate_normal_equations", "sofia_als"]


@dataclass(frozen=True)
class AlsResult:
    """Outcome of one `sofia_als` call."""

    factors: list[np.ndarray]
    completed: np.ndarray
    fitness: float
    n_iters: int
    converged: bool


def accumulate_normal_equations(
    coords: tuple[np.ndarray, ...],
    values: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Accumulate ``B_i`` and ``c_i`` (Eq. 14-15) for every row of ``mode``.

    Delegates to the active kernel backend (segment-sum reductions by
    default); see :func:`repro.tensor.kernels.accumulate_normal_equations`
    for parameter details.
    """
    return kernels.accumulate_normal_equations(coords, values, factors, mode)


def _update_non_temporal_mode(
    coords, values, factors, mode
) -> np.ndarray:
    """Theorem 1: ``u_i = B_i^{-1} c_i`` for each row of a non-temporal
    factor, solved as one stacked batch."""
    big_b, big_c = accumulate_normal_equations(coords, values, factors, mode)
    return kernels.solve_rows(big_b, big_c, fallback=factors[mode])


def _update_temporal_mode(
    coords, values, factors, config: SofiaConfig
) -> np.ndarray:
    """Theorem 2 / Eq. 17: Gauss-Seidel temporal row sweep.

    Uses the general neighbor form derived from Eq. 18 — the diagonal
    gains ``λ1·(#lag-1 neighbors) + λ2·(#lag-m neighbors)`` and the RHS
    gains the corresponding neighbor sums — which reduces to the paper's
    five cases when ``I_N >= 2m``.  The batched backend sweeps the rows
    in multicolor blocks (an exact Gauss-Seidel ordering; see
    :mod:`repro.tensor.kernels`).
    """
    mode = len(factors) - 1
    big_b, big_c = accumulate_normal_equations(coords, values, factors, mode)
    return kernels.temporal_sweep(
        big_b,
        big_c,
        factors[mode],
        lambda1=config.lambda1,
        lambda2=config.lambda2,
        period=config.period,
    )


def sofia_als(
    tensor: np.ndarray,
    mask: np.ndarray,
    outliers: np.ndarray,
    factors: Sequence[np.ndarray],
    config: SofiaConfig,
    *,
    smooth: bool = True,
) -> AlsResult:
    """Run SOFIA_ALS (Alg. 2) on the outlier-corrected tensor.

    Parameters
    ----------
    tensor, mask:
        The observed data ``Y`` and its indicator ``Ω``; the temporal mode
        must be the **last** mode.
    outliers:
        Current outlier estimate ``O`` (subtracted before fitting).
    factors:
        Initial factor matrices (not mutated).
    config:
        Model configuration; ``lambda1/lambda2/period`` drive the temporal
        coupling, ``tol``/``max_als_iters`` the stopping rule.
    smooth:
        Set ``False`` to drop the smoothness coupling, which turns this
        into the vanilla masked ALS of [43] used as the Fig. 2 baseline.

    Returns
    -------
    AlsResult
        Updated factors, the completed tensor ``[[U]]``, the final fitness
        ``1 - ||Ω ⊛ (Y* - X̂)|| / ||Ω ⊛ Y*||``, and convergence info.
    """
    y = np.asarray(tensor, dtype=np.float64)
    m = check_mask(mask, y.shape)
    o = np.asarray(outliers, dtype=np.float64)
    mats = check_factor_matrices(factors, shape=y.shape)
    if y.ndim < 2:
        raise ShapeError("sofia_als needs at least a 2-way tensor")

    y_star = y - o
    coords = np.nonzero(m)
    values = y_star[coords]
    denom = float(np.linalg.norm(values))
    n_modes = y.ndim
    temporal_mode = n_modes - 1

    working = config if smooth else config.with_updates(lambda1=0.0, lambda2=0.0)

    fitness = -np.inf
    converged = False
    iteration = 0
    for iteration in range(1, config.max_als_iters + 1):
        for mode in range(temporal_mode):
            mats[mode] = _update_non_temporal_mode(coords, values, mats, mode)
            normalized, norms = normalize_columns(mats[mode])
            mats[mode] = normalized
            mats[temporal_mode] = mats[temporal_mode] * norms[None, :]
        mats[temporal_mode] = _update_temporal_mode(
            coords, values, mats, working
        )
        reconstruction = kruskal_to_tensor(mats)
        residual = float(np.linalg.norm(values - reconstruction[coords]))
        new_fitness = 1.0 - residual / denom if denom > 0 else 1.0
        if abs(new_fitness - fitness) < config.tol:
            fitness = new_fitness
            converged = True
            break
        fitness = new_fitness
    return AlsResult(
        factors=mats,
        completed=kruskal_to_tensor(mats),
        fitness=fitness,
        n_iters=iteration,
        converged=converged,
    )
