"""Holt-Winters parameter estimation (paper §V-B).

The smoothing parameters ``(alpha, beta, gamma)`` are estimated per series
by minimizing the sum of squared one-step-ahead forecast errors with
L-BFGS-B under box constraints ``[0, 1]^3`` — the same optimizer family
the paper uses ([42]).  Initial level/trend/seasonal states come from the
standard two-season heuristic in
:func:`repro.forecast.holt_winters.initial_state`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from repro.exceptions import ShapeError
from repro.forecast.holt_winters import (
    HoltWintersParams,
    HoltWintersState,
    hw_filter,
    hw_forecast,
    initial_state,
    one_step_sse,
)

__all__ = ["FittedHoltWinters", "fit_holt_winters"]

_PARAM_BOUNDS = [(0.0, 1.0)] * 3
_DEFAULT_STARTS = (
    (0.3, 0.1, 0.1),
    (0.7, 0.05, 0.3),
    (0.1, 0.01, 0.9),
)


@dataclass(frozen=True)
class FittedHoltWinters:
    """Result of fitting the additive HW model to one series."""

    params: HoltWintersParams
    state: HoltWintersState
    sse: float
    fitted: np.ndarray

    def forecast(self, horizon: int) -> np.ndarray:
        """Forecast ``horizon`` steps beyond the training series (Eq. 6)."""
        return hw_forecast(self.state, horizon)


def fit_holt_winters(
    series: np.ndarray,
    period: int,
    *,
    starts: tuple[tuple[float, float, float], ...] = _DEFAULT_STARTS,
) -> FittedHoltWinters:
    """Fit the additive Holt-Winters model to ``series``.

    Parameters
    ----------
    series:
        1-D array with at least two full seasons.
    period:
        Seasonal period ``m``.
    starts:
        Multi-start initial guesses for ``(alpha, beta, gamma)``; the best
        local optimum wins.  L-BFGS-B on this objective is cheap, so a few
        restarts buy robustness against its nonconvexity.

    Returns
    -------
    FittedHoltWinters
        Fitted parameters, the state after consuming ``series`` (ready for
        forecasting), the achieved SSE, and in-sample one-step forecasts.
    """
    y = np.asarray(series, dtype=np.float64).reshape(-1)
    if y.size < 2 * period:
        raise ShapeError(
            f"need at least {2 * period} observations to fit HW with "
            f"period {period}, got {y.size}"
        )
    init = initial_state(y, period)

    def objective(theta: np.ndarray) -> float:
        params = HoltWintersParams(*np.clip(theta, 0.0, 1.0))
        return one_step_sse(y, params, init)

    best_theta = None
    best_value = np.inf
    for start in starts:
        result = minimize(
            objective,
            x0=np.asarray(start, dtype=np.float64),
            method="L-BFGS-B",
            bounds=_PARAM_BOUNDS,
        )
        if result.fun < best_value:
            best_value = float(result.fun)
            best_theta = np.clip(result.x, 0.0, 1.0)
    params = HoltWintersParams(*best_theta)
    fitted, final_state = hw_filter(y, params, init)
    return FittedHoltWinters(
        params=params, state=final_state, sse=best_value, fitted=fitted
    )
