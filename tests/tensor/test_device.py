"""The array-module registry and the ``"xp"`` backend's degradation.

The optional-dependency policy must fail *loudly, not weirdly*: with
``array_api_compat``/torch absent, ``"numpy"`` keeps working through
the NumPy shim, any other module raises
:class:`~repro.exceptions.ConfigError` naming the missing piece, and
the ``use_array_module``/``use_backend`` context managers restore their
previous state even when the body (or the switch itself) raises.
Torch-specific tests are importorskip-guarded and run in the CI matrix
leg that installs torch-CPU.
"""

import importlib.util

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.tensor import device, kernels

HAVE_COMPAT = importlib.util.find_spec("array_api_compat") is not None
HAVE_TORCH = (
    HAVE_COMPAT and importlib.util.find_spec("torch") is not None
)


class TestArrayModuleRegistry:
    def test_numpy_is_always_available(self):
        assert "numpy" in device.available_array_modules()
        with device.use_array_module("numpy") as xp:
            assert xp.asarray([1.0, 2.0]).shape == (2,)

    def test_default_module_respects_env(self, monkeypatch):
        import os

        expected = os.environ.get(device.ARRAY_MODULE_ENV_VAR, "").strip()
        assert device.active_array_module_name() == (expected or "numpy")

    def test_unknown_module_raises_config_error_and_leaves_active(self):
        previous = device.active_array_module_name()
        with pytest.raises(ConfigError) as excinfo:
            device.set_array_module("definitely-not-an-array-module")
        assert device.active_array_module_name() == previous
        # The error names what to do about it, loudly.
        message = str(excinfo.value)
        assert "definitely-not-an-array-module" in message
        assert "array-api-compat" in message or "importable" in message

    @pytest.mark.skipif(
        HAVE_COMPAT, reason="array_api_compat installed; shim not in play"
    )
    def test_non_numpy_without_compat_degrades_loudly(self):
        previous = device.active_array_module_name()
        with pytest.raises(ConfigError, match="array-api-compat"):
            device.set_array_module("torch")
        assert device.active_array_module_name() == previous
        assert device.available_array_modules() == ["numpy"]

    @pytest.mark.skipif(
        not HAVE_COMPAT or HAVE_TORCH,
        reason="needs array_api_compat installed but torch absent",
    )
    def test_missing_torch_with_compat_degrades_loudly(self):
        with pytest.raises(ConfigError, match="torch"):
            device.set_array_module("torch")
        assert "torch" not in device.available_array_modules()

    def test_use_array_module_restores_on_raise(self):
        previous = device.active_array_module_name()
        with pytest.raises(RuntimeError, match="boom"):
            with device.use_array_module("numpy"):
                raise RuntimeError("boom")
        assert device.active_array_module_name() == previous

    def test_use_array_module_restores_over_inner_switch(self):
        previous = device.active_array_module_name()
        with device.use_array_module("numpy"):
            device.set_array_module("numpy")
        assert device.active_array_module_name() == previous

    def test_entering_unavailable_module_leaves_active_unchanged(self):
        previous = device.active_array_module_name()
        with pytest.raises(ConfigError):
            with device.use_array_module("definitely-not-a-module"):
                pass  # pragma: no cover - never entered
        assert device.active_array_module_name() == previous


class TestBoundaryConverters:
    def test_roundtrip_preserves_values_and_dtype(self):
        host = np.arange(6, dtype=np.float32).reshape(2, 3)
        dev = device.to_device(host)
        back = device.from_device(dev)
        assert isinstance(back, np.ndarray)
        assert back.dtype == np.float32
        np.testing.assert_array_equal(back, host)

    def test_to_device_casts_dtype(self):
        host = np.ones(4, dtype=np.float64)
        dev = device.to_device(host, dtype=np.float32)
        assert device.from_device(dev).dtype == np.float32

    def test_from_device_passes_numpy_through(self):
        host = np.ones(3)
        assert device.from_device(host) is host


class TestXpBackendRegistration:
    def test_xp_backend_always_registered(self):
        # The NumPy shim keeps "xp" usable with zero optional deps.
        assert "xp" in kernels.available_backends()
        backend = kernels._BACKENDS["xp"]
        assert backend.to_device is device.to_device
        assert backend.from_device is device.from_device
        assert backend.keeps_dense_steps

    def test_set_backend_error_lists_xp(self):
        with pytest.raises(ConfigError, match="xp"):
            kernels.set_backend("nope-not-a-backend")

    def test_use_backend_xp_restores_on_raise(self):
        previous = kernels.active_backend().name
        with pytest.raises(RuntimeError, match="boom"):
            with kernels.use_backend("xp"):
                assert kernels.active_backend().name == "xp"
                raise RuntimeError("boom")
        assert kernels.active_backend().name == previous

    def test_dispatched_to_device_is_identity_for_cpu_backends(self):
        arr = np.ones((2, 2))
        with kernels.use_backend("batched"):
            assert kernels.to_device(arr) is arr
            assert kernels.from_device(arr) is arr

    def test_xp_outputs_follow_host_inputs(self):
        rng = np.random.default_rng(0)
        factors = [rng.normal(size=(s, 2)) for s in (3, 4)]
        with kernels.use_backend("xp"):
            out = kernels.kruskal_reconstruct_rows(
                factors, rng.normal(size=(2, 2))
            )
        assert isinstance(out, np.ndarray)


@pytest.mark.skipif(not HAVE_TORCH, reason="torch not installed")
class TestTorchModule:
    def test_torch_listed_and_selectable(self):
        assert "torch" in device.available_array_modules()
        with device.use_array_module("torch") as xp:
            t = xp.asarray(np.ones(3))
            assert not isinstance(t, np.ndarray)
            back = device.from_device(t)
            assert isinstance(back, np.ndarray)

    def test_xp_kernels_match_reference_on_torch(self):
        rng = np.random.default_rng(1)
        factors = [rng.normal(size=(s, 3)) for s in (5, 4, 6)]
        mask = rng.random((5, 4, 6)) < 0.4
        coords = np.nonzero(mask)
        values = rng.normal(size=coords[0].size)
        with device.use_array_module("torch"):
            with kernels.use_backend("xp"):
                got_b, got_c = kernels.accumulate_normal_equations(
                    coords, values, factors, 1
                )
        with kernels.use_backend("reference"):
            exp_b, exp_c = kernels.accumulate_normal_equations(
                coords, values, factors, 1
            )
        assert isinstance(got_b, np.ndarray)  # host in, host out
        np.testing.assert_allclose(got_b, exp_b, atol=1e-10)
        np.testing.assert_allclose(got_c, exp_c, atol=1e-10)

    def test_device_native_inputs_stay_on_device(self):
        import torch

        rng = np.random.default_rng(2)
        with device.use_array_module("torch"):
            factors = [
                device.to_device(rng.normal(size=(s, 2))) for s in (3, 4)
            ]
            weights = device.to_device(rng.normal(size=(5, 2)))
            with kernels.use_backend("xp"):
                out = kernels.kruskal_reconstruct_rows(factors, weights)
        assert isinstance(out, torch.Tensor)
