"""Table I: the capability matrix of all ten algorithms.

Regenerates the paper's qualitative comparison from the ``capabilities``
records every algorithm class declares, and verifies the headline claim
that only SOFIA satisfies every criterion.
"""

from conftest import report

from repro.experiments import table1_capabilities, table1_text


def test_bench_table1(benchmark):
    text = benchmark(table1_text)
    report(text)

    rows = table1_capabilities()
    sofia = rows[-1]
    assert sofia.name == "SOFIA"
    flags = (
        "imputation",
        "forecasting",
        "robust_missing",
        "robust_outliers",
        "online",
        "seasonality_aware",
        "trend_aware",
    )
    assert all(getattr(sofia, f) for f in flags)
    for caps in rows[:-1]:
        assert not all(getattr(caps, f) for f in flags), caps.name
