"""Unit tests for repro.tensor.validation."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tensor.validation import (
    as_tensor,
    check_factor_matrices,
    check_mask,
    check_mode,
    check_rank,
    check_same_shape,
)


class TestAsTensor:
    def test_list_converted(self):
        out = as_tensor([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_min_ndim(self):
        with pytest.raises(ShapeError):
            as_tensor(np.ones(3), min_ndim=2)

    def test_empty(self):
        with pytest.raises(ShapeError):
            as_tensor(np.array([]))


class TestCheckMode:
    def test_valid(self):
        assert check_mode(1, 3) == 1

    def test_negative(self):
        assert check_mode(-1, 3) == 2

    def test_out_of_range(self):
        with pytest.raises(ShapeError):
            check_mode(3, 3)

    def test_numpy_integer(self):
        assert check_mode(np.int64(2), 3) == 2


class TestCheckRank:
    def test_valid(self):
        assert check_rank(5) == 5

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2"])
    def test_invalid(self, bad):
        with pytest.raises(ShapeError):
            check_rank(bad)


class TestCheckSameShape:
    def test_ok(self):
        check_same_shape(np.ones((2, 3)), np.zeros((2, 3)))

    def test_mismatch(self):
        with pytest.raises(ShapeError):
            check_same_shape(np.ones((2, 3)), np.zeros((3, 2)))


class TestCheckMask:
    def test_bool_passthrough(self):
        m = np.array([[True, False]])
        out = check_mask(m)
        assert out.dtype == np.bool_

    def test_int_converted(self):
        out = check_mask(np.array([[1, 0], [0, 1]]))
        assert out.dtype == np.bool_

    def test_non_binary(self):
        with pytest.raises(ShapeError):
            check_mask(np.array([[0.5]]))

    def test_shape_enforced(self):
        with pytest.raises(ShapeError):
            check_mask(np.ones((2, 2), dtype=bool), shape=(3, 3))


class TestCheckFactorMatrices:
    def test_ok(self):
        mats = check_factor_matrices([np.ones((3, 2)), np.ones((4, 2))])
        assert len(mats) == 2

    def test_empty(self):
        with pytest.raises(ShapeError):
            check_factor_matrices([])

    def test_not_2d(self):
        with pytest.raises(ShapeError):
            check_factor_matrices([np.ones(3)])

    def test_rank_mismatch(self):
        with pytest.raises(ShapeError):
            check_factor_matrices([np.ones((3, 2)), np.ones((4, 3))])

    def test_shape_check(self):
        with pytest.raises(ShapeError):
            check_factor_matrices(
                [np.ones((3, 2)), np.ones((4, 2))], shape=(3, 5)
            )

    def test_mode_count_check(self):
        with pytest.raises(ShapeError):
            check_factor_matrices([np.ones((3, 2))], shape=(3, 4))
