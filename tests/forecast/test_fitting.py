"""Unit tests for HW parameter estimation (paper §V-B)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.forecast import fit_holt_winters, initial_state, one_step_sse
from repro.forecast.holt_winters import HoltWintersParams


def make_series(n=60, period=6, trend=0.1, amplitude=3.0, noise=0.0, seed=0):
    t = np.arange(n)
    y = 5.0 + trend * t + amplitude * np.sin(2 * np.pi * t / period)
    if noise:
        y = y + np.random.default_rng(seed).normal(0, noise, n)
    return y


class TestFitHoltWinters:
    def test_params_within_bounds(self):
        fit = fit_holt_winters(make_series(noise=0.2), 6)
        for v in fit.params.as_array():
            assert 0.0 <= v <= 1.0

    def test_fit_beats_default_params(self):
        y = make_series(noise=0.3, seed=3)
        fit = fit_holt_winters(y, 6)
        default = one_step_sse(y, HoltWintersParams(0.5, 0.5, 0.5), initial_state(y, 6))
        assert fit.sse <= default + 1e-9

    def test_sse_consistent_with_fitted(self):
        y = make_series(noise=0.3, seed=4)
        fit = fit_holt_winters(y, 6)
        assert fit.sse == pytest.approx(np.sum((y - fit.fitted) ** 2), rel=1e-6)

    def test_forecast_accuracy_on_clean_series(self):
        y = make_series(n=72, period=6)
        fit = fit_holt_winters(y[:60], 6)
        fc = fit.forecast(12)
        np.testing.assert_allclose(fc, y[60:72], atol=0.5)

    def test_forecast_shape(self):
        fit = fit_holt_winters(make_series(), 6)
        assert fit.forecast(5).shape == (5,)

    def test_too_short_series(self):
        with pytest.raises(ShapeError):
            fit_holt_winters(np.ones(10), 6)

    def test_constant_series(self):
        fit = fit_holt_winters(np.full(30, 4.0), 5)
        np.testing.assert_allclose(fit.forecast(5), 4.0, atol=1e-6)

    def test_trend_only_series(self):
        y = 1.0 + 0.5 * np.arange(40)
        fit = fit_holt_winters(y, 5)
        np.testing.assert_allclose(fit.forecast(4), y[-1] + 0.5 * np.arange(1, 5),
                                   atol=0.1)

    def test_deterministic(self):
        y = make_series(noise=0.2, seed=9)
        f1 = fit_holt_winters(y, 6)
        f2 = fit_holt_winters(y, 6)
        np.testing.assert_array_equal(f1.params.as_array(), f2.params.as_array())
