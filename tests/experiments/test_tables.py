"""Unit tests for the Table I / Table III renders."""

from repro.experiments import (
    table1_capabilities,
    table1_text,
    table3_rows,
    table3_text,
)


class TestTable1:
    def test_sofia_is_last_and_has_everything(self):
        rows = table1_capabilities()
        sofia = rows[-1]
        assert sofia.name == "SOFIA"
        assert all(
            (
                sofia.imputation,
                sofia.forecasting,
                sofia.robust_missing,
                sofia.robust_outliers,
                sofia.online,
                sofia.seasonality_aware,
                sofia.trend_aware,
            )
        )

    def test_only_sofia_has_everything(self):
        """The paper's headline: only SOFIA satisfies all criteria."""
        for caps in table1_capabilities()[:-1]:
            assert not all(
                (
                    caps.imputation,
                    caps.forecasting,
                    caps.robust_missing,
                    caps.robust_outliers,
                    caps.online,
                    caps.seasonality_aware,
                    caps.trend_aware,
                )
            ), f"{caps.name} should not satisfy all criteria"

    def test_expected_rows_present(self):
        names = {caps.name for caps in table1_capabilities()}
        assert {
            "CP-WOPT",
            "OnlineSGD",
            "OLSTEC",
            "MAST",
            "BRST",
            "OR-MSTC",
            "SMF",
            "CPHW",
            "SOFIA",
        } <= names

    def test_render_contains_all_names(self):
        text = table1_text()
        for caps in table1_capabilities():
            assert caps.name in text


class TestTable3:
    def test_four_rows(self):
        assert len(table3_rows()) == 4

    def test_paper_shapes_rendered(self):
        text = table3_text()
        for fragment in ("54x4x1152", "23x23x2000", "77x77x2016", "265x265x904"):
            assert fragment in text

    def test_periods_rendered(self):
        text = table3_text()
        for period in ("144", "168", "7"):
            assert period in text
