"""Unit tests for the dataset registry and Table III metadata."""

import pytest

from repro.datasets import (
    Dataset,
    dataset_info,
    list_datasets,
    load_dataset,
    register_dataset,
)
from repro.exceptions import DatasetError


class TestRegistry:
    def test_all_four_paper_datasets_registered(self):
        names = list_datasets()
        for expected in (
            "chicago_taxi",
            "intel_lab",
            "network_traffic",
            "nyc_taxi",
        ):
            assert expected in names

    def test_load_unknown_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("nope")

    def test_info_unknown_raises(self):
        with pytest.raises(DatasetError):
            dataset_info("nope")

    def test_duplicate_registration_rejected(self):
        info = dataset_info("intel_lab")
        with pytest.raises(DatasetError):
            register_dataset(info)(lambda **kwargs: None)

    def test_load_passes_kwargs(self):
        ds = load_dataset("nyc_taxi", n_zones=5, n_weeks=8, seed=1)
        assert ds.shape == (5, 5, 56)


class TestTableIIIMetadata:
    """The registry must reproduce the paper's Table III rows."""

    @pytest.mark.parametrize(
        "name, shape, period, granularity",
        [
            ("intel_lab", (54, 4, 1152), 144, "every 10 minutes"),
            ("network_traffic", (23, 23, 2000), 168, "hourly"),
            ("chicago_taxi", (77, 77, 2016), 168, "hourly"),
            ("nyc_taxi", (265, 265, 904), 7, "daily"),
        ],
    )
    def test_paper_rows(self, name, shape, period, granularity):
        info = dataset_info(name)
        assert info.paper_shape == shape
        assert info.period == period
        assert info.granularity == granularity

    def test_ranks_match_fig3_captions(self):
        assert dataset_info("intel_lab").rank == 4
        assert dataset_info("network_traffic").rank == 5
        assert dataset_info("chicago_taxi").rank == 10
        assert dataset_info("nyc_taxi").rank == 5


class TestDatasetObject:
    def test_properties(self):
        ds = load_dataset("intel_lab", n_positions=6, period=12, n_seasons=4)
        assert isinstance(ds, Dataset)
        assert ds.name == "intel_lab"
        assert ds.shape == (6, 4, 48)
        assert ds.n_steps == 48
        assert ds.period == 12
