"""Multiplicative Holt-Winters (the paper's §III-C second variant).

The paper focuses on the additive model; the multiplicative variant is
preferred when seasonal variation scales with the level.  Provided as an
extension with the same state/fit/forecast API as the additive module so
either can back a forecaster.

Smoothing equations::

    l_t = α (y_t / s_{t-m}) + (1 - α)(l_{t-1} + b_{t-1})
    b_t = β (l_t - l_{t-1}) + (1 - β) b_{t-1}
    s_t = γ (y_t / (l_{t-1} + b_{t-1})) + (1 - γ) s_{t-m}

and the h-step forecast is ``(l_t + h b_t) · s_{t+h-m(⌊(h-1)/m⌋+1)}``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
from scipy.optimize import minimize

from repro.exceptions import ConfigError, ShapeError
from repro.forecast.holt_winters import HoltWintersParams, HoltWintersState

__all__ = [
    "fit_multiplicative",
    "mul_forecast",
    "mul_initial_state",
    "mul_update",
]


def mul_initial_state(series: np.ndarray, period: int) -> HoltWintersState:
    """Heuristic initial state for the multiplicative model.

    Level/trend come from seasonal means as in the additive case; the
    seasonal components are average *ratios* to their season mean.  The
    series must be strictly positive.
    """
    y = np.asarray(series, dtype=np.float64).reshape(-1)
    if period < 1:
        raise ConfigError(f"period must be >= 1, got {period}")
    if y.size < 2 * period:
        raise ShapeError(
            f"need at least {2 * period} points, got {y.size}"
        )
    if np.any(y <= 0):
        raise ShapeError("multiplicative HW requires strictly positive data")
    n_seasons = y.size // period
    seasons = y[: n_seasons * period].reshape(n_seasons, period)
    season_means = seasons.mean(axis=1)
    level = float(season_means[0])
    trend = float(season_means[1] - season_means[0]) / period
    seasonal = (seasons / season_means[:, None]).mean(axis=0)
    seasonal = seasonal / seasonal.mean()  # normalize ratios to mean 1
    return HoltWintersState(level=level, trend=trend, seasonal=seasonal)


def mul_update(
    state: HoltWintersState, value: float, params: HoltWintersParams
) -> HoltWintersState:
    """One multiplicative smoothing step."""
    s_old = float(state.seasonal[0])
    base = state.level + state.trend
    level = params.alpha * (value / max(s_old, 1e-12)) + (
        1.0 - params.alpha
    ) * base
    trend = params.beta * (level - state.level) + (1.0 - params.beta) * state.trend
    s_new = params.gamma * (value / max(base, 1e-12)) + (1.0 - params.gamma) * s_old
    seasonal = np.roll(state.seasonal, -1)
    seasonal[-1] = s_new
    return replace(state, level=level, trend=trend, seasonal=seasonal)


def mul_forecast(state: HoltWintersState, horizon: int) -> np.ndarray:
    """Multiplicative h-step forecast."""
    if horizon < 1:
        raise ConfigError(f"horizon must be >= 1, got {horizon}")
    steps = np.arange(1, horizon + 1)
    seasonal_idx = (steps - 1) % state.period
    return (state.level + steps * state.trend) * state.seasonal[seasonal_idx]


def _one_step_sse(series, params, state) -> float:
    total = 0.0
    current = state
    for value in series:
        forecast = (current.level + current.trend) * float(current.seasonal[0])
        total += (float(value) - forecast) ** 2
        current = mul_update(current, float(value), params)
    return total


def fit_multiplicative(
    series: np.ndarray,
    period: int,
    *,
    starts: tuple[tuple[float, float, float], ...] = (
        (0.3, 0.1, 0.1),
        (0.7, 0.05, 0.3),
    ),
) -> tuple[HoltWintersParams, HoltWintersState]:
    """Fit the multiplicative model; returns (params, final state)."""
    y = np.asarray(series, dtype=np.float64).reshape(-1)
    init = mul_initial_state(y, period)

    def objective(theta: np.ndarray) -> float:
        params = HoltWintersParams(*np.clip(theta, 0.0, 1.0))
        return _one_step_sse(y, params, init)

    best_theta, best_value = None, np.inf
    for start in starts:
        result = minimize(
            objective,
            x0=np.asarray(start),
            method="L-BFGS-B",
            bounds=[(0.0, 1.0)] * 3,
        )
        if result.fun < best_value:
            best_value, best_theta = float(result.fun), np.clip(result.x, 0, 1)
    params = HoltWintersParams(*best_theta)
    state = init
    for value in y:
        state = mul_update(state, float(value), params)
    return params, state
