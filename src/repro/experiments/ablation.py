"""Ablation studies of SOFIA's design choices (beyond the paper).

DESIGN.md calls out four load-bearing mechanisms; each ablation switches
one off and measures the damage on a corrupted seasonal stream:

* temporal/seasonal smoothness in the initialization (the Fig. 2 story),
* the decaying soft-threshold ``λ3`` (vs a fixed threshold),
* interleaved single ALS sweeps (vs running ALS to convergence between
  thresholdings),
* robust pre-cleaning in the dynamic phase (vs accepting raw residuals).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import SofiaImputer
from repro.core import SofiaConfig
from repro.datasets import seasonal_stream
from repro.streams import (
    CorruptionSpec,
    TensorStream,
    corrupt,
    run_imputation,
)

__all__ = ["AblationOutcome", "run_ablation"]


@dataclass(frozen=True)
class AblationOutcome:
    """RAE of one configuration variant."""

    variant: str
    rae: float


def _base_config(rank: int, period: int) -> SofiaConfig:
    return SofiaConfig(
        rank=rank,
        period=period,
        lambda1=0.1,
        lambda2=0.1,
        max_outer_iters=300,
        tol=1e-6,
    )


def run_ablation(
    *,
    setting: CorruptionSpec = CorruptionSpec(50, 15, 4),
    dims: tuple[int, int] = (12, 10),
    rank: int = 3,
    period: int = 12,
    n_seasons: int = 9,
    seed: int = 0,
) -> list[AblationOutcome]:
    """Run all ablation variants on one corrupted seasonal stream."""
    stream = seasonal_stream(
        dims, rank=rank, period=period, n_steps=period * n_seasons, seed=seed
    )
    corrupted = corrupt(stream.data, setting, seed=seed + 1)
    observed = TensorStream(
        data=corrupted.observed, mask=corrupted.mask, period=period
    )
    truth = TensorStream.fully_observed(stream.data, period=period)
    startup = 3 * period
    base = _base_config(rank, period)

    variants: dict[str, SofiaConfig] = {
        "full SOFIA": base,
        "no smoothness (λ1=λ2=0)": base.with_updates(
            lambda1=0.0, lambda2=0.0
        ),
        "fixed λ3 (no decay)": base.with_updates(lambda3_decay=1.0),
        "ALS to convergence per outer iter": base.with_updates(
            als_sweeps_per_outer=50
        ),
        "no robust pre-cleaning (k=1e6)": base.with_updates(huber_k=1e6),
        "raw gradient steps (paper Eq. 24-25, μ=0.001)": base.with_updates(
            step_normalization="none", mu=0.001
        ),
    }
    outcomes = []
    for name, config in variants.items():
        result = run_imputation(
            SofiaImputer(config), observed, truth, startup_steps=startup
        )
        rae = result.rae if np.isfinite(result.rae) else float("inf")
        outcomes.append(AblationOutcome(variant=name, rae=rae))
    return outcomes
