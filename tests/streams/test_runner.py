"""Unit tests for the experiment runner."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.streams import (
    CorruptionSpec,
    TensorStream,
    corrupt,
    run_forecasting,
    run_imputation,
)


class PerfectOracle:
    """Test double that returns the clean truth it was given."""

    name = "oracle"

    def __init__(self, truth):
        self._truth = truth
        self._t = 0
        self.initialized_with = None
        self.batch_sizes_seen = []

    def initialize(self, subtensors, masks):
        self.initialized_with = (len(subtensors), len(masks))
        self._t = len(subtensors)

    def step(self, subtensor, mask):
        completed = self._truth[..., self._t]
        self._t += 1
        return completed

    def step_batch(self, subtensors, masks):
        self.batch_sizes_seen.append(len(subtensors))
        return np.stack(
            [self.step(y_t, m_t) for y_t, m_t in zip(subtensors, masks)],
            axis=0,
        )

    def forecast(self, horizon):
        return np.stack(
            [self._truth[..., self._t + h] for h in range(horizon)], axis=0
        )


class ZeroImputer:
    """Test double that always answers zeros."""

    name = "zeros"

    def initialize(self, subtensors, masks):
        pass

    def step(self, subtensor, mask):
        return np.zeros_like(subtensor)

    def forecast(self, horizon):
        raise NotImplementedError


@pytest.fixture
def streams():
    rng = np.random.default_rng(0)
    clean = rng.normal(size=(4, 5, 20)) + 5.0
    corrupted = corrupt(clean, CorruptionSpec(30, 10, 3), seed=1)
    observed = TensorStream(
        data=corrupted.observed, mask=corrupted.mask, period=4
    )
    truth = TensorStream.fully_observed(clean, period=4)
    return observed, truth, clean


class TestRunImputation:
    def test_oracle_gets_zero_error(self, streams):
        observed, truth, clean = streams
        result = run_imputation(
            PerfectOracle(clean), observed, truth, startup_steps=6
        )
        assert result.rae == pytest.approx(0.0)
        assert result.n_steps == 14
        np.testing.assert_array_equal(result.nre_series, 0.0)

    def test_zero_imputer_gets_unit_error(self, streams):
        observed, truth, _ = streams
        result = run_imputation(
            ZeroImputer(), observed, truth, startup_steps=6
        )
        np.testing.assert_allclose(result.nre_series, 1.0)
        assert result.rae == pytest.approx(1.0)

    def test_initialize_receives_startup_window(self, streams):
        observed, truth, clean = streams
        oracle = PerfectOracle(clean)
        run_imputation(oracle, observed, truth, startup_steps=7)
        assert oracle.initialized_with == (7, 7)

    def test_timing_fields_populated(self, streams):
        observed, truth, clean = streams
        result = run_imputation(
            PerfectOracle(clean), observed, truth, startup_steps=6
        )
        assert result.art_seconds >= 0.0
        assert result.init_seconds >= 0.0

    def test_bad_startup(self, streams):
        observed, truth, clean = streams
        with pytest.raises(ShapeError):
            run_imputation(
                PerfectOracle(clean), observed, truth, startup_steps=0
            )
        with pytest.raises(ShapeError):
            run_imputation(
                PerfectOracle(clean), observed, truth, startup_steps=20
            )

    def test_shape_mismatch(self, streams):
        observed, _, clean = streams
        bad_truth = TensorStream.fully_observed(clean[..., :10], period=4)
        with pytest.raises(ShapeError):
            run_imputation(
                PerfectOracle(clean), observed, bad_truth, startup_steps=5
            )


class TestRunImputationBatched:
    def test_batched_oracle_scores_per_step(self, streams):
        observed, truth, clean = streams
        oracle = PerfectOracle(clean)
        result = run_imputation(
            oracle, observed, truth, startup_steps=6, batch_size=4
        )
        # 14 live steps chunked by 4: per-step metrics are unchanged.
        assert oracle.batch_sizes_seen == [4, 4, 4, 2]
        assert result.n_steps == 14
        assert result.rae == pytest.approx(0.0)
        assert result.art_seconds >= 0.0

    def test_batched_matches_sequential_for_fallback_algorithms(
        self, streams
    ):
        from repro.baselines import OnlineSGD

        observed, truth, _ = streams
        seq = run_imputation(
            OnlineSGD(2, seed=0), observed, truth, startup_steps=6
        )
        bat = run_imputation(
            OnlineSGD(2, seed=0),
            observed,
            truth,
            startup_steps=6,
            batch_size=5,
        )
        # The default step_batch replays step, so the NRE trajectory is
        # bit-identical; only the timing attribution differs.
        np.testing.assert_array_equal(seq.nre_series, bat.nre_series)

    def test_bad_batch_size(self, streams):
        observed, truth, clean = streams
        with pytest.raises(ShapeError, match="batch_size"):
            run_imputation(
                PerfectOracle(clean),
                observed,
                truth,
                startup_steps=6,
                batch_size=0,
            )


class TestRunnerKernelBackend:
    def test_run_executes_under_requested_backend(self, streams):
        from repro.tensor import kernels

        observed, truth, clean = streams
        seen = []

        class BackendProbe(PerfectOracle):
            def step(self, subtensor, mask):
                seen.append(kernels.active_backend().name)
                return super().step(subtensor, mask)

        previous = kernels.active_backend().name
        result = run_imputation(
            BackendProbe(clean),
            observed,
            truth,
            startup_steps=6,
            kernel_backend="sparse",
        )
        assert seen and set(seen) == {"sparse"}
        assert kernels.active_backend().name == previous
        assert result.rae == pytest.approx(0.0)

    def test_backend_restored_when_algorithm_raises(self, streams):
        from repro.tensor import kernels

        observed, truth, clean = streams

        class ExplodingOracle(PerfectOracle):
            def step(self, subtensor, mask):
                raise RuntimeError("boom")

        previous = kernels.active_backend().name
        with pytest.raises(RuntimeError, match="boom"):
            run_imputation(
                ExplodingOracle(clean),
                observed,
                truth,
                startup_steps=6,
                kernel_backend="reference",
            )
        assert kernels.active_backend().name == previous

    def test_unknown_backend_rejected(self, streams):
        from repro.exceptions import ConfigError

        observed, truth, clean = streams
        with pytest.raises(ConfigError):
            run_imputation(
                PerfectOracle(clean),
                observed,
                truth,
                startup_steps=6,
                kernel_backend="does-not-exist",
            )

    def test_forecasting_accepts_backend(self, streams):
        observed, truth, clean = streams
        result = run_forecasting(
            PerfectOracle(clean),
            observed,
            truth,
            startup_steps=6,
            horizon=3,
            kernel_backend="sparse",
        )
        assert result.afe == pytest.approx(0.0, abs=1e-12)


class TestRunForecasting:
    def test_oracle_forecast_perfect(self, streams):
        observed, truth, clean = streams
        result = run_forecasting(
            PerfectOracle(clean),
            observed,
            truth,
            startup_steps=6,
            horizon=4,
        )
        assert result.afe == pytest.approx(0.0)
        assert result.horizon == 4
        assert result.forecast.shape == (4, 4, 5)

    def test_stream_too_short(self, streams):
        observed, truth, clean = streams
        with pytest.raises(ShapeError):
            run_forecasting(
                PerfectOracle(clean),
                observed,
                truth,
                startup_steps=6,
                horizon=14,
            )

    def test_algorithm_never_sees_holdout(self, streams):
        observed, truth, clean = streams

        class CountingOracle(PerfectOracle):
            def __init__(self, truth):
                super().__init__(truth)
                self.steps_seen = 0

            def step(self, subtensor, mask):
                self.steps_seen += 1
                return super().step(subtensor, mask)

        oracle = CountingOracle(clean)
        run_forecasting(
            oracle, observed, truth, startup_steps=6, horizon=4
        )
        # 20 total - 6 startup - 4 holdout = 10 dynamic steps
        assert oracle.steps_seen == 10

    def test_batched_consumption_matches_sequential(self, streams):
        observed, truth, clean = streams
        seq = run_forecasting(
            PerfectOracle(clean), observed, truth,
            startup_steps=6, horizon=4,
        )
        bat = run_forecasting(
            PerfectOracle(clean), observed, truth,
            startup_steps=6, horizon=4, batch_size=3,
        )
        assert bat.afe == pytest.approx(seq.afe)
        np.testing.assert_array_equal(bat.forecast, seq.forecast)

    def test_bad_batch_size(self, streams):
        observed, truth, clean = streams
        with pytest.raises(ShapeError, match="batch_size"):
            run_forecasting(
                PerfectOracle(clean), observed, truth,
                startup_steps=6, horizon=4, batch_size=-1,
            )
