"""Unit tests for repro.tensor.products (Khatri-Rao/Hadamard/Kruskal)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tensor import (
    hadamard_all,
    khatri_rao,
    kruskal_to_tensor,
    normalize_columns,
    outer,
    unfold,
)


class TestKhatriRao:
    def test_shape(self):
        a = np.ones((3, 2))
        b = np.ones((4, 2))
        assert khatri_rao([a, b]).shape == (12, 2)

    def test_paper_eq1_block_structure(self):
        # Eq. (1): row-block i of U ⊙ W is u_{i r} * column_r(W).
        rng = np.random.default_rng(7)
        u = rng.normal(size=(3, 2))
        w = rng.normal(size=(4, 2))
        kr = khatri_rao([u, w])
        for i in range(3):
            block = kr[i * 4:(i + 1) * 4]
            np.testing.assert_allclose(block, u[i][None, :] * w)

    def test_single_matrix_is_copy(self):
        a = np.arange(6, dtype=float).reshape(3, 2)
        out = khatri_rao([a])
        np.testing.assert_array_equal(out, a)
        out[0, 0] = 99.0
        assert a[0, 0] == 0.0

    def test_three_matrices_associative(self):
        rng = np.random.default_rng(1)
        mats = [rng.normal(size=(d, 3)) for d in (2, 3, 4)]
        direct = khatri_rao(mats)
        nested = khatri_rao([khatri_rao(mats[:2]), mats[2]])
        np.testing.assert_allclose(direct, nested)

    def test_rank_mismatch(self):
        with pytest.raises(ShapeError):
            khatri_rao([np.ones((3, 2)), np.ones((4, 3))])

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            khatri_rao([])

    def test_last_matrix_varies_fastest(self):
        a = np.array([[1.0], [2.0]])
        b = np.array([[10.0], [20.0], [30.0]])
        expected = np.array([[10.0], [20.0], [30.0], [20.0], [40.0], [60.0]])
        np.testing.assert_allclose(khatri_rao([a, b]), expected)


class TestHadamard:
    def test_two(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[2.0, 0.5], [1.0, 2.0]])
        np.testing.assert_allclose(hadamard_all([a, b]), a * b)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            hadamard_all([np.ones((2, 2)), np.ones((3, 2))])

    def test_does_not_mutate_inputs(self):
        a = np.ones((2, 2))
        b = np.full((2, 2), 3.0)
        hadamard_all([a, b])
        np.testing.assert_array_equal(a, np.ones((2, 2)))


class TestOuter:
    def test_rank1_3way(self):
        u, v, w = np.array([1.0, 2.0]), np.array([3.0, 4.0]), np.array([5.0])
        t = outer([u, v, w])
        assert t.shape == (2, 2, 1)
        assert t[1, 0, 0] == pytest.approx(2 * 3 * 5)

    def test_single_vector(self):
        np.testing.assert_array_equal(outer([np.array([1.0, 2.0])]), [1.0, 2.0])


class TestKruskalToTensor:
    def test_matches_explicit_sum_of_outer_products(self):
        rng = np.random.default_rng(3)
        factors = [rng.normal(size=(d, 3)) for d in (4, 5, 6)]
        expected = np.zeros((4, 5, 6))
        for r in range(3):
            expected += outer([f[:, r] for f in factors])
        np.testing.assert_allclose(kruskal_to_tensor(factors), expected)

    def test_unfold_identity(self):
        # unfold(X, n) == U_n @ KR(others).T under the C-order convention.
        rng = np.random.default_rng(4)
        factors = [rng.normal(size=(d, 2)) for d in (3, 4, 5)]
        x = kruskal_to_tensor(factors)
        for n in range(3):
            others = [factors[l] for l in range(3) if l != n]
            np.testing.assert_allclose(
                unfold(x, n), factors[n] @ khatri_rao(others).T, atol=1e-12
            )

    def test_weights_scale_components(self):
        rng = np.random.default_rng(5)
        factors = [rng.normal(size=(d, 2)) for d in (3, 4)]
        w = np.array([2.0, -1.0])
        scaled = [factors[0] * w[None, :], factors[1]]
        np.testing.assert_allclose(
            kruskal_to_tensor(factors, weights=w), kruskal_to_tensor(scaled)
        )

    def test_weights_as_temporal_row(self):
        # SOFIA predicts a subtensor by weighting the non-temporal factors
        # with a temporal row vector (Eq. 20).
        rng = np.random.default_rng(6)
        u1 = rng.normal(size=(3, 2))
        u2 = rng.normal(size=(4, 2))
        u3 = rng.normal(size=(5, 2))
        full = kruskal_to_tensor([u1, u2, u3])
        for t in range(5):
            np.testing.assert_allclose(
                kruskal_to_tensor([u1, u2], weights=u3[t]), full[:, :, t]
            )

    def test_single_factor(self):
        u = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(kruskal_to_tensor([u]), u.sum(axis=1))

    def test_wrong_weight_length(self):
        with pytest.raises(ShapeError):
            kruskal_to_tensor([np.ones((2, 2))], weights=np.ones(3))

    def test_4way(self):
        rng = np.random.default_rng(8)
        factors = [rng.normal(size=(d, 2)) for d in (2, 3, 2, 3)]
        x = kruskal_to_tensor(factors)
        assert x.shape == (2, 3, 2, 3)
        expected = sum(outer([f[:, r] for f in factors]) for r in range(2))
        np.testing.assert_allclose(x, expected)


class TestNormalizeColumns:
    def test_unit_norms(self):
        rng = np.random.default_rng(9)
        mat = rng.normal(size=(5, 3)) * np.array([1.0, 10.0, 0.1])
        normalized, norms = normalize_columns(mat)
        np.testing.assert_allclose(np.linalg.norm(normalized, axis=0), 1.0)
        np.testing.assert_allclose(normalized * norms[None, :], mat)

    def test_zero_column_untouched(self):
        mat = np.zeros((4, 2))
        mat[:, 1] = 2.0
        normalized, norms = normalize_columns(mat)
        np.testing.assert_array_equal(normalized[:, 0], 0.0)
        assert norms[0] == 1.0
        assert norms[1] == pytest.approx(4.0)

    def test_rejects_tensor(self):
        with pytest.raises(ShapeError):
            normalize_columns(np.zeros((2, 2, 2)))
