"""One conformance suite, two transports.

Every test here runs twice — once against
:class:`InProcessServingClient` on a bare manager, once against
:class:`HTTPServingClient` on a live gateway — and asserts the same
behaviour from the same :class:`~repro.serving.api.ServingClient`
surface: typed results, identical field values, identical exception
types.  This is the contract that lets callers switch transports
without changing code.
"""

import threading
import time

import numpy as np
import pytest

from repro.exceptions import (
    SessionError,
    SessionExistsError,
    SessionNotFoundError,
)
from repro.serving import (
    ForecastResult,
    HTTPServingClient,
    ImputeResult,
    IngestAck,
    InProcessServingClient,
    ServingClient,
    SessionManager,
    SliceResult,
)
from repro.serving.gateway import serve

from tests.serving.conftest import CONFIG_KWARGS, make_session_stream

TRANSPORTS = ("inprocess", "http")


@pytest.fixture(params=TRANSPORTS)
def client(request):
    """A ServingClient over either transport, same manager settings."""
    manager = SessionManager(max_batch=4, max_latency_s=0.01, workers=2)
    if request.param == "inprocess":
        try:
            yield InProcessServingClient(manager)
        finally:
            manager.close()
        return
    server = serve(manager, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield HTTPServingClient(f"http://127.0.0.1:{server.port}")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        manager.close()


def _warm_session(client, session_id="s", n_steps=12, seed=31):
    """Create a session and feed it past warmup; wait until applied.

    Only the public client surface is used (no manager handle — the
    HTTP transport has none), so settling relies on the 10 ms latency
    deadline plus a status poll.
    """
    slices, masks = make_session_stream(seed=seed, n_steps=n_steps)
    client.create_session(session_id, dict(CONFIG_KWARGS))
    for t in range(n_steps):
        client.ingest(session_id, slices[t], masks[t])
    for _ in range(500):
        info = client.session_info(session_id)
        if info["pending"] == 0 and info["status"] != "warming":
            break
        time.sleep(0.01)
    else:
        raise AssertionError("session never settled after ingest")
    return slices, masks


class TestProtocol:
    def test_both_clients_implement_serving_client(self, client):
        assert isinstance(client, ServingClient)


class TestTypedSurface:
    def test_ingest_returns_ack(self, client):
        slices, masks = make_session_stream(seed=40, n_steps=1)
        client.create_session("s", dict(CONFIG_KWARGS))
        ack = client.ingest("s", slices[0], masks[0])
        assert isinstance(ack, IngestAck)
        assert ack == IngestAck(session_id="s", seq=0)

    def test_results_are_slice_results(self, client):
        _warm_session(client, n_steps=12)
        results = client.results("s")
        assert results, "warmed session should have flushed results"
        assert all(isinstance(r, SliceResult) for r in results)
        assert [r.seq for r in results] == sorted(
            r.seq for r in results
        )
        assert all(r.session_id == "s" for r in results)

    def test_impute_result_fields(self, client):
        slices, masks = _warm_session(client, n_steps=12)
        result = client.impute("s", slices[0], masks[0])
        assert isinstance(result, ImputeResult)
        assert result.session_id == "s"
        np.testing.assert_allclose(
            result.completed[masks[0]], slices[0][masks[0]]
        )
        assert result.lower is None and result.upper is None

    def test_forecast_result_fields(self, client):
        slices, _ = _warm_session(client, n_steps=12)
        result = client.forecast("s", 4)
        assert isinstance(result, ForecastResult)
        assert result.session_id == "s"
        assert result.horizon == 4
        assert result.forecast.shape == (4, *slices[0].shape)
        assert result.lower is None and result.upper is None

    def test_info_surfaces_are_dicts(self, client):
        client.create_session("s", dict(CONFIG_KWARGS))
        assert isinstance(client.session_info("s"), dict)
        assert isinstance(client.metrics(), dict)
        assert client.list_sessions() == ["s"]


class TestSharedErrors:
    def test_unknown_session(self, client):
        with pytest.raises(SessionNotFoundError):
            client.session_info("ghost")

    def test_duplicate_session(self, client):
        client.create_session("dup", dict(CONFIG_KWARGS))
        with pytest.raises(SessionExistsError):
            client.create_session("dup", dict(CONFIG_KWARGS))

    def test_warming_session_rejects_forecast(self, client):
        client.create_session("cold", dict(CONFIG_KWARGS))
        with pytest.raises(SessionError, match="warming"):
            client.forecast("cold", 2)


class TestDeprecationShims:
    """Release N-1 idioms still work, warning once each."""

    def test_ack_as_int(self, client):
        slices, masks = make_session_stream(seed=41, n_steps=1)
        client.create_session("s", dict(CONFIG_KWARGS))
        ack = client.ingest("s", slices[0], masks[0])
        with pytest.deprecated_call():
            assert int(ack) == 0
        with pytest.deprecated_call():
            assert ack == 0

    def test_slice_result_unpacks(self, client):
        _warm_session(client, n_steps=12)
        results = client.results("s")
        with pytest.deprecated_call():
            seq, completed = results[0]
        assert seq == results[0].seq
        np.testing.assert_array_equal(completed, results[0].completed)

    def test_results_as_arrays(self, client):
        slices, masks = _warm_session(client, n_steps=12)
        imputed = client.impute("s", slices[0], masks[0])
        with pytest.deprecated_call():
            as_array = np.asarray(imputed)
        np.testing.assert_array_equal(as_array, imputed.completed)
        forecast = client.forecast("s", 2)
        with pytest.deprecated_call():
            as_array = np.asarray(forecast)
        np.testing.assert_array_equal(as_array, forecast.forecast)

    def test_dict_style_field_access(self, client):
        slices, masks = _warm_session(client, n_steps=12)
        imputed = client.impute("s", slices[0], masks[0])
        with pytest.deprecated_call():
            completed = imputed["completed"]
        np.testing.assert_array_equal(completed, imputed.completed)
        with pytest.deprecated_call():
            assert imputed.get("lower") is None
        with pytest.raises(KeyError):
            with pytest.deprecated_call():
                imputed["nope"]
