"""Array-module selection for the ``"xp"`` kernel backend.

The ``"xp"`` backend in :mod:`repro.tensor.kernels` implements the six
seam kernels once, against the Python Array API standard, and runs that
single implementation on whatever array library this module selects —
NumPy, torch (CPU or CUDA), or CuPy.  This module owns the selection:

* :func:`set_array_module` / :func:`get_array_module` /
  :func:`use_array_module` pick the active array namespace by name
  (``"numpy"``, ``"torch"``, ``"cupy"``, or any library with an
  ``array_api_compat`` wrapper);
* the ``REPRO_ARRAY_MODULE`` environment variable selects the
  import-time module, mirroring ``REPRO_KERNEL_BACKEND`` — the hook the
  CI matrix uses to run whole suites on torch;
* :func:`to_device` / :func:`from_device` are the host↔device boundary
  converters the kernels (and the dynamic phase's residency routing)
  use to move arrays into and out of the active module.

Optional-dependency policy
--------------------------
Non-NumPy modules require the optional ``array_api_compat`` package
(``pip install "repro-sofia[xp]"``), which papers over the remaining
differences between library namespaces.  When it is missing, ``"numpy"``
still works: NumPy >= 2.0's main namespace is itself Array API
compliant, so it is used directly as the fallback shim.  Requesting any
other module without the dependency — or a module that is not
installed — raises :class:`~repro.exceptions.ConfigError` immediately
and loudly, listing what *is* importable; nothing degrades silently.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
from contextlib import contextmanager
from typing import Any

import numpy as np

from repro.exceptions import ConfigError

__all__ = [
    "ARRAY_MODULE_ENV_VAR",
    "active_array_module_name",
    "available_array_modules",
    "from_device",
    "get_array_module",
    "set_array_module",
    "to_device",
    "use_array_module",
]

#: Environment variable that selects the import-time array module —
#: mirrors ``REPRO_KERNEL_BACKEND`` so CI can pin both per matrix leg.
ARRAY_MODULE_ENV_VAR = "REPRO_ARRAY_MODULE"

#: Module names probed by :func:`available_array_modules`.  Any other
#: name with an ``array_api_compat`` wrapper also works with
#: :func:`set_array_module`; these are just the ones surfaced.
_KNOWN_MODULES = ("numpy", "torch", "cupy")

_active = "numpy"
_namespaces: dict[str, Any] = {}


def _has_compat() -> bool:
    return importlib.util.find_spec("array_api_compat") is not None


def available_array_modules() -> list[str]:
    """Names of the array modules importable right now.

    ``"numpy"`` is always present (the shim path); ``"torch"``/
    ``"cupy"`` appear only when both the library and
    ``array_api_compat`` are importable.
    """
    modules = ["numpy"]
    if _has_compat():
        for name in _KNOWN_MODULES[1:]:
            try:
                if importlib.util.find_spec(name) is not None:
                    modules.append(name)
            except (ImportError, ValueError):
                continue
    return modules


def _load_namespace(name: str) -> Any:
    """Import the Array API namespace for ``name``, loudly on failure."""
    if name == "numpy":
        try:
            from array_api_compat import numpy as xp_numpy

            return xp_numpy
        except ImportError:
            # NumPy >= 2.0 is Array API compliant on its main namespace;
            # older NumPy without array_api_compat has no compliant
            # namespace at all, so fail loudly here instead of deep
            # inside a kernel (np.astype etc. are 2.0-only).
            if tuple(int(p) for p in np.__version__.split(".")[:2]) < (2, 0):
                raise ConfigError(
                    f"the 'xp' backend needs NumPy >= 2.0 (found "
                    f"{np.__version__}) or the optional "
                    "'array-api-compat' dependency (pip install "
                    "'repro-sofia[xp]')"
                ) from None
            return np
    if not _has_compat():
        raise ConfigError(
            f"array module {name!r} needs the optional dependency "
            "'array-api-compat' (pip install array-api-compat, or "
            "pip install 'repro-sofia[xp]'); only 'numpy' works "
            "without it"
        )
    try:
        return importlib.import_module(f"array_api_compat.{name}")
    except ImportError as exc:
        raise ConfigError(
            f"array module {name!r} is not importable ({exc}); install "
            f"it to use the 'xp' backend on it — importable now: "
            f"{available_array_modules()}"
        ) from exc


def set_array_module(name: str) -> None:
    """Make ``name`` the active array module for the ``"xp"`` backend.

    Unknown or uninstalled modules raise
    :class:`~repro.exceptions.ConfigError` listing
    :func:`available_array_modules`, and leave the active module
    unchanged.
    """
    global _active
    if name not in _namespaces:
        _namespaces[name] = _load_namespace(name)
    _active = name


def get_array_module() -> Any:
    """The Array API namespace all ``"xp"`` kernels currently use."""
    if _active not in _namespaces:
        _namespaces[_active] = _load_namespace(_active)
    return _namespaces[_active]


def active_array_module_name() -> str:
    """Name of the active array module (``"numpy"`` by default)."""
    return _active


@contextmanager
def use_array_module(name: str):
    """Context manager: run a block under a different array module.

    The previously active module is restored on exit even when the body
    raises (or itself switches modules); entering with an unavailable
    name raises without changing the active module.
    """
    previous = _active
    set_array_module(name)
    try:
        yield get_array_module()
    finally:
        set_array_module(previous)


def _module_dtype(xp: Any, dtype: Any) -> Any:
    """The ``xp`` dtype object matching a NumPy dtype (or dtype-like)."""
    return getattr(xp, str(np.dtype(dtype)))


def to_device(array: Any, *, dtype: Any = None) -> Any:
    """Move ``array`` into the active array module (the host→device edge).

    Accepts NumPy arrays, lists, scalars, or arrays already native to
    the active module (returned as-is up to a dtype cast).  With
    ``dtype``, the result is cast to the matching dtype of the module.
    On CPU modules the conversion is zero-copy where the library
    supports it, so callers must not mutate the result in place unless
    they made it (the kernels copy before any in-place update).
    """
    xp = get_array_module()
    if dtype is not None:
        dtype = _module_dtype(xp, dtype)
    return xp.asarray(array, dtype=dtype)


def from_device(array: Any) -> np.ndarray:
    """Move an array back to a host :class:`numpy.ndarray`.

    NumPy arrays pass through untouched; torch tensors are detached and
    brought to CPU; CuPy arrays are copied down with ``.get()``.  The
    dtype is preserved (a float32 device array comes back float32).
    """
    if isinstance(array, np.ndarray):
        return array
    out = array
    for method in ("detach", "cpu"):  # torch, incl. CUDA tensors
        step = getattr(out, method, None)
        if callable(step):
            out = step()
    getter = getattr(out, "get", None)  # cupy device arrays
    if callable(getter) and not isinstance(out, np.ndarray):
        out = getter()
    return np.asarray(out)


_env_module = os.environ.get(ARRAY_MODULE_ENV_VAR, "").strip()
if _env_module:
    set_array_module(_env_module)
