"""Formatting gate for the lint job (no third-party formatter needed).

Enforces the mechanical formatting invariants the code base already
follows, so drift fails CI loudly: LF line endings, no tabs, no trailing
whitespace, a trailing newline at end of file, and the ruff line-length
limit of 88 characters.  Runs on any Python without extra dependencies::

    python tools/check_format.py src tests benchmarks examples tools
"""

import pathlib
import sys

MAX_LINE_LENGTH = 88


def check_file(path):
    """Return a list of violation strings for one Python file."""
    violations = []
    raw = path.read_bytes()
    if b"\r" in raw:
        violations.append(f"{path}: CRLF or bare CR line ending")
    if raw and not raw.endswith(b"\n"):
        violations.append(f"{path}: missing newline at end of file")
    for number, line in enumerate(raw.decode("utf-8").splitlines(), 1):
        if "\t" in line:
            violations.append(f"{path}:{number}: tab character")
        if line != line.rstrip():
            violations.append(f"{path}:{number}: trailing whitespace")
        if len(line) > MAX_LINE_LENGTH:
            violations.append(
                f"{path}:{number}: line too long "
                f"({len(line)} > {MAX_LINE_LENGTH})"
            )
    return violations


def main(argv=None):
    roots = (argv if argv is not None else sys.argv[1:]) or ["src", "tests"]
    violations = []
    checked = 0
    for root in roots:
        root_path = pathlib.Path(root)
        files = (
            [root_path]
            if root_path.is_file()
            else sorted(root_path.rglob("*.py"))
        )
        for path in files:
            checked += 1
            violations.extend(check_file(path))
    for violation in violations:
        print(violation)
    if violations:
        print(
            f"\n{len(violations)} formatting violation(s) in "
            f"{checked} files",
            file=sys.stderr,
        )
        return 1
    print(f"{checked} files formatted cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
