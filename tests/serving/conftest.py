"""Shared fixtures for the serving suite: tiny streams + a checkpoint.

Everything is sized for speed: 5x4 slices, rank 2, period 4, two
seasons of warmup (8 slices).  The session-scoped ``checkpoint`` fits
one model once and saves it; tests that need ready-to-step sessions
warm-start from it instead of re-running the ALS initialization.
"""

import numpy as np
import pytest

from repro.core import Sofia, SofiaConfig
from repro.core.serialization import save_sofia
from repro.datasets import seasonal_stream

DIMS = (5, 4)
RANK = 2
PERIOD = 4

CONFIG_KWARGS = dict(
    rank=RANK,
    period=PERIOD,
    init_seasons=2,
    lambda1=0.1,
    lambda2=0.1,
    max_outer_iters=50,
    tol=1e-5,
)


def make_config(**overrides) -> SofiaConfig:
    kwargs = dict(CONFIG_KWARGS)
    kwargs.update(overrides)
    return SofiaConfig(**kwargs)


def make_session_stream(seed: int, n_steps: int = 32, missing: float = 0.2):
    """(slices, masks) for one synthetic session stream."""
    stream = seasonal_stream(
        dims=DIMS, rank=RANK, period=PERIOD, n_steps=n_steps, seed=seed
    )
    rng = np.random.default_rng(seed + 1000)
    slices = [stream.data[..., t] for t in range(n_steps)]
    masks = [rng.random(DIMS) > missing for _ in range(n_steps)]
    return slices, masks


@pytest.fixture(scope="session")
def checkpoint(tmp_path_factory):
    """Path of a fitted model checkpoint (init phase already done)."""
    config = make_config()
    slices, masks = make_session_stream(seed=77, n_steps=config.init_steps)
    sofia = Sofia(config)
    sofia.initialize(slices, masks)
    path = tmp_path_factory.mktemp("ckpt") / "fitted.npz"
    save_sofia(sofia, path)
    return path
