"""SOFIA_ALS: the batch update used during initialization (paper Alg. 2).

Row-wise alternating least squares on the masked, outlier-corrected
tensor.  Non-temporal rows solve the plain normal equations of Theorem 1;
temporal rows additionally carry the temporal/seasonal smoothness
coupling of Theorem 2 (Eq. 17-18) and are swept sequentially
(Gauss-Seidel), so each row sees its neighbors' freshest values.

The normal-equation pieces ``B_i`` and ``c_i`` (Eq. 14-15) are accumulated
over observed entries only, in chunks, giving ``O(|Ω| R (N + R))`` work
per sweep as stated in Lemma 1.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.config import SofiaConfig
from repro.core.smoothness import neighbor_count, neighbor_sum
from repro.exceptions import ShapeError
from repro.tensor import kruskal_to_tensor, normalize_columns
from repro.tensor.validation import check_factor_matrices, check_mask

__all__ = ["AlsResult", "accumulate_normal_equations", "sofia_als"]

_CHUNK = 1 << 16
_RIDGE = 1e-10


@dataclass(frozen=True)
class AlsResult:
    """Outcome of one `sofia_als` call."""

    factors: list[np.ndarray]
    completed: np.ndarray
    fitness: float
    n_iters: int
    converged: bool


def accumulate_normal_equations(
    coords: tuple[np.ndarray, ...],
    values: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Accumulate ``B_i`` and ``c_i`` (Eq. 14-15) for every row of ``mode``.

    Parameters
    ----------
    coords:
        Tuple of index arrays (one per mode) of the observed entries.
    values:
        Outlier-corrected observed values ``y*`` aligned with ``coords``.
    factors:
        Current factor matrices.
    mode:
        The mode being updated.

    Returns
    -------
    (B, c):
        ``B`` of shape ``(I_mode, R, R)`` and ``c`` of shape
        ``(I_mode, R)``.
    """
    n_modes = len(factors)
    rank = factors[0].shape[1]
    dim = factors[mode].shape[0]
    big_b = np.zeros((dim, rank, rank))
    big_c = np.zeros((dim, rank))
    nnz = values.size
    for start in range(0, nnz, _CHUNK):
        stop = min(start + _CHUNK, nnz)
        rows = coords[mode][start:stop]
        prod = np.ones((stop - start, rank))
        for l in range(n_modes):
            if l != mode:
                prod *= factors[l][coords[l][start:stop], :]
        np.add.at(big_b, rows, prod[:, :, None] * prod[:, None, :])
        np.add.at(big_c, rows, values[start:stop, None] * prod)
    return big_b, big_c


def _solve_row(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve one R x R system, falling back to least-squares when the
    (ridged) system is still numerically singular."""
    rank = rhs.shape[0]
    scale = float(np.trace(lhs)) / rank
    ridged = lhs + (_RIDGE * (1.0 + scale)) * np.eye(rank)
    try:
        return np.linalg.solve(ridged, rhs)
    except np.linalg.LinAlgError:
        return np.linalg.lstsq(ridged, rhs, rcond=None)[0]


def _solve_rows(
    big_b: np.ndarray, rhs: np.ndarray, fallback: np.ndarray
) -> np.ndarray:
    """Solve the per-row systems, keeping ``fallback`` rows where the
    system is all-zero (no observations and no smoothness coupling)."""
    out = fallback.copy()
    for i in range(big_b.shape[0]):
        if not big_b[i].any() and not rhs[i].any():
            continue
        out[i] = _solve_row(big_b[i], rhs[i])
    return out


def _update_non_temporal_mode(
    coords, values, factors, mode
) -> np.ndarray:
    """Theorem 1: ``u_i = B_i^{-1} c_i`` for each row of a non-temporal
    factor."""
    big_b, big_c = accumulate_normal_equations(coords, values, factors, mode)
    return _solve_rows(big_b, big_c, factors[mode])


def _update_temporal_mode(
    coords, values, factors, config: SofiaConfig
) -> np.ndarray:
    """Theorem 2 / Eq. 17: sequential (Gauss-Seidel) temporal row sweep.

    Uses the general neighbor form derived from Eq. 18 — the diagonal
    gains ``λ1·(#lag-1 neighbors) + λ2·(#lag-m neighbors)`` and the RHS
    gains the corresponding neighbor sums — which reduces to the paper's
    five cases when ``I_N >= 2m``.
    """
    mode = len(factors) - 1
    big_b, big_c = accumulate_normal_equations(coords, values, factors, mode)
    temporal = factors[mode].copy()
    length, rank = temporal.shape
    eye = np.eye(rank)
    for i in range(length):
        diag = (
            config.lambda1 * neighbor_count(i, length, 1)
            + config.lambda2 * neighbor_count(i, length, config.period)
        )
        lhs = big_b[i] + diag * eye
        rhs = (
            big_c[i]
            + config.lambda1 * neighbor_sum(temporal, i, 1)
            + config.lambda2 * neighbor_sum(temporal, i, config.period)
        )
        if not lhs.any() and not rhs.any():
            continue
        temporal[i] = _solve_row(lhs, rhs)
    return temporal


def sofia_als(
    tensor: np.ndarray,
    mask: np.ndarray,
    outliers: np.ndarray,
    factors: Sequence[np.ndarray],
    config: SofiaConfig,
    *,
    smooth: bool = True,
) -> AlsResult:
    """Run SOFIA_ALS (Alg. 2) on the outlier-corrected tensor.

    Parameters
    ----------
    tensor, mask:
        The observed data ``Y`` and its indicator ``Ω``; the temporal mode
        must be the **last** mode.
    outliers:
        Current outlier estimate ``O`` (subtracted before fitting).
    factors:
        Initial factor matrices (not mutated).
    config:
        Model configuration; ``lambda1/lambda2/period`` drive the temporal
        coupling, ``tol``/``max_als_iters`` the stopping rule.
    smooth:
        Set ``False`` to drop the smoothness coupling, which turns this
        into the vanilla masked ALS of [43] used as the Fig. 2 baseline.

    Returns
    -------
    AlsResult
        Updated factors, the completed tensor ``[[U]]``, the final fitness
        ``1 - ||Ω ⊛ (Y* - X̂)|| / ||Ω ⊛ Y*||``, and convergence info.
    """
    y = np.asarray(tensor, dtype=np.float64)
    m = check_mask(mask, y.shape)
    o = np.asarray(outliers, dtype=np.float64)
    mats = check_factor_matrices(factors, shape=y.shape)
    if y.ndim < 2:
        raise ShapeError("sofia_als needs at least a 2-way tensor")

    y_star = y - o
    coords = np.nonzero(m)
    values = y_star[coords]
    denom = float(np.linalg.norm(values))
    n_modes = y.ndim
    temporal_mode = n_modes - 1

    working = config if smooth else config.with_updates(lambda1=0.0, lambda2=0.0)

    fitness = -np.inf
    converged = False
    iteration = 0
    for iteration in range(1, config.max_als_iters + 1):
        for mode in range(temporal_mode):
            mats[mode] = _update_non_temporal_mode(coords, values, mats, mode)
            normalized, norms = normalize_columns(mats[mode])
            mats[mode] = normalized
            mats[temporal_mode] = mats[temporal_mode] * norms[None, :]
        mats[temporal_mode] = _update_temporal_mode(
            coords, values, mats, working
        )
        reconstruction = kruskal_to_tensor(mats)
        residual = float(np.linalg.norm(values - reconstruction[coords]))
        new_fitness = 1.0 - residual / denom if denom > 0 else 1.0
        if abs(new_fitness - fitness) < config.tol:
            fitness = new_fitness
            converged = True
            break
        fitness = new_fitness
    return AlsResult(
        factors=mats,
        completed=kruskal_to_tensor(mats),
        fitness=fitness,
        n_iters=iteration,
        converged=converged,
    )
