"""Unit tests for outlier estimation and error scales (Eq. 12, 21, 22)."""

import numpy as np
import pytest

from repro.core import estimate_outliers, soft_threshold, update_error_scale


class TestSoftThreshold:
    def test_shrinks_toward_zero(self):
        x = np.array([-3.0, -0.5, 0.0, 0.5, 3.0])
        np.testing.assert_allclose(
            soft_threshold(x, 1.0), [-2.0, 0.0, 0.0, 0.0, 2.0]
        )

    def test_zero_threshold_identity(self):
        x = np.array([-1.5, 2.5])
        np.testing.assert_allclose(soft_threshold(x, 0.0), x)

    def test_preserves_sign(self):
        x = np.linspace(-5, 5, 11)
        out = soft_threshold(x, 2.0)
        assert np.all(np.sign(out) * np.sign(x) >= 0)

    def test_is_prox_of_l1(self):
        # prox property: out = argmin_z 0.5(z-x)^2 + lam|z| -- check the
        # subgradient optimality condition numerically.
        rng = np.random.default_rng(0)
        x = rng.normal(scale=3.0, size=100)
        lam = 1.2
        z = soft_threshold(x, lam)
        for zi, xi in zip(z, x):
            if zi != 0:
                assert zi - xi + lam * np.sign(zi) == pytest.approx(0.0, abs=1e-12)
            else:
                assert abs(xi) <= lam + 1e-12

    def test_tensor_shape_preserved(self):
        x = np.ones((2, 3, 4))
        assert soft_threshold(x, 0.5).shape == (2, 3, 4)


class TestEstimateOutliers:
    def test_inliers_give_zero(self):
        y = np.array([[1.0, 2.0]])
        yhat = np.array([[1.1, 1.9]])
        sigma = np.full((1, 2), 1.0)
        mask = np.ones((1, 2), dtype=bool)
        np.testing.assert_allclose(
            estimate_outliers(y, yhat, sigma, mask), 0.0, atol=1e-12
        )

    def test_outlier_is_excess_over_k_sigma(self):
        y = np.array([[100.0]])
        yhat = np.array([[10.0]])
        sigma = np.array([[2.0]])
        mask = np.ones((1, 1), dtype=bool)
        out = estimate_outliers(y, yhat, sigma, mask, k=2.0)
        # residual 90, clipped residual 2*2=4 -> outlier 86
        assert out[0, 0] == pytest.approx(86.0)

    def test_negative_outlier(self):
        out = estimate_outliers(
            np.array([[-50.0]]),
            np.array([[0.0]]),
            np.array([[1.0]]),
            np.ones((1, 1), dtype=bool),
        )
        assert out[0, 0] == pytest.approx(-48.0)

    def test_missing_entries_zero(self):
        y = np.full((2, 2), 1000.0)
        yhat = np.zeros((2, 2))
        sigma = np.ones((2, 2))
        mask = np.array([[True, False], [False, True]])
        out = estimate_outliers(y, yhat, sigma, mask)
        assert out[0, 1] == 0.0
        assert out[1, 0] == 0.0
        assert out[0, 0] > 0.0

    def test_decomposition_identity(self):
        # Y - O == psi-cleaned value (Eq. 21 rearranged): the cleaned
        # tensor stays within k*sigma of the prediction.
        rng = np.random.default_rng(1)
        y = rng.normal(scale=10.0, size=(5, 5))
        yhat = rng.normal(size=(5, 5))
        sigma = np.full((5, 5), 0.5)
        mask = np.ones((5, 5), dtype=bool)
        out = estimate_outliers(y, yhat, sigma, mask, k=2.0)
        cleaned = y - out
        assert np.all(np.abs(cleaned - yhat) <= 2.0 * sigma + 1e-9)


class TestUpdateErrorScale:
    def test_missing_entries_keep_scale(self):
        y = np.array([[5.0, 5.0]])
        yhat = np.zeros((1, 2))
        sigma = np.array([[1.0, 1.0]])
        mask = np.array([[True, False]])
        new = update_error_scale(y, yhat, sigma, mask, phi=0.5)
        assert new[0, 1] == pytest.approx(1.0)
        assert new[0, 0] != pytest.approx(1.0)

    def test_bounded_growth_under_huge_outlier(self):
        sigma = np.array([[1.0]])
        new = update_error_scale(
            np.array([[1e9]]),
            np.array([[0.0]]),
            sigma,
            np.ones((1, 1), dtype=bool),
            phi=0.01,
        )
        # rho saturates at ck=2.52: sigma^2 <= 0.01*2.52 + 0.99
        assert new[0, 0] <= np.sqrt(0.01 * 2.52 + 0.99) + 1e-12

    def test_shrinks_on_zero_residual(self):
        sigma = np.array([[2.0]])
        new = update_error_scale(
            np.array([[3.0]]),
            np.array([[3.0]]),
            sigma,
            np.ones((1, 1), dtype=bool),
            phi=0.5,
        )
        assert new[0, 0] == pytest.approx(2.0 * np.sqrt(0.5))

    def test_phi_zero_is_identity(self):
        rng = np.random.default_rng(2)
        y = rng.normal(size=(3, 3))
        yhat = rng.normal(size=(3, 3))
        sigma = np.abs(rng.normal(size=(3, 3))) + 0.1
        mask = rng.random((3, 3)) > 0.5
        new = update_error_scale(y, yhat, sigma, mask, phi=0.0)
        np.testing.assert_allclose(new, sigma)

    def test_positive(self):
        rng = np.random.default_rng(3)
        y = rng.normal(scale=100, size=(4, 4))
        yhat = rng.normal(size=(4, 4))
        sigma = np.full((4, 4), 0.1)
        mask = np.ones((4, 4), dtype=bool)
        for _ in range(50):
            sigma = update_error_scale(y, yhat, sigma, mask, phi=0.1)
        assert np.all(sigma > 0)
