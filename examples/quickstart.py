"""Quickstart: factorize, impute, and forecast a corrupted tensor stream.

Generates a small seasonal (origin, destination, time) stream, corrupts
it with 40% missing entries and 10% outliers, runs SOFIA online, and
prints the imputation error plus a one-season forecast.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import Sofia, SofiaConfig
from repro.datasets import seasonal_stream
from repro.streams import CorruptionSpec, corrupt
from repro.tensor import relative_error


def main() -> None:
    # 1. A ground-truth seasonal stream: 12x10 subtensors, period 12.
    period = 12
    stream = seasonal_stream(
        dims=(12, 10), rank=3, period=period, n_steps=period * 9, seed=7
    )

    # 2. Corrupt it: 40% missing, 10% outliers at 3x the max magnitude.
    corrupted = corrupt(stream.data, CorruptionSpec(40, 10, 3), seed=8)

    # 3. Configure SOFIA: rank, seasonal period, smoothness weights.
    config = SofiaConfig(
        rank=3, period=period, lambda1=0.1, lambda2=0.1,
        max_outer_iters=300, tol=1e-6,
    )
    sofia = Sofia(config)

    # 4. Initialize on the first three seasons (Algorithm 1 + HW fitting).
    t_init = config.init_steps
    startup = [corrupted.observed[..., t] for t in range(t_init)]
    startup_masks = [corrupted.mask[..., t] for t in range(t_init)]
    completed = sofia.initialize(startup, startup_masks)
    init_err = np.mean(
        [relative_error(completed[t], stream.data[..., t]) for t in range(t_init)]
    )
    print(f"initialization: {t_init} steps, mean NRE {init_err:.4f}")

    # 5. Stream the rest online (Algorithm 3), imputing as we go.
    errors = []
    for t in range(t_init, stream.data.shape[-1]):
        step = sofia.step(corrupted.observed[..., t], corrupted.mask[..., t])
        errors.append(relative_error(step.completed, stream.data[..., t]))
    print(
        f"dynamic phase: {len(errors)} steps, mean NRE {np.mean(errors):.4f} "
        f"(last 10: {np.mean(errors[-10:]):.4f})"
    )

    # 6. Forecast one full season ahead (Eq. 28).
    forecast = sofia.forecast(period)
    print(f"forecast shape: {forecast.shape} (horizon x subtensor dims)")
    print(
        "forecast first-step NRE vs last observed season pattern: "
        f"{relative_error(forecast[0], stream.data[..., -period]):.4f}"
    )


if __name__ == "__main__":
    main()
