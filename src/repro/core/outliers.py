"""Outlier estimation and error-scale tracking (paper Eq. 12, 21, 22).

These are the tensor-valued extensions of the robust-HW primitives in
:mod:`repro.forecast.robust`: outliers are whatever part of the observed
residual survives the Huber clipping, and each entry carries its own
exponentially smoothed error scale.  :func:`robust_step` fuses the two
updates over one shared residual, which is what the dynamic phase calls
once per incoming subtensor.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.forecast.robust import biweight_rho, huber_psi
from repro.tensor.kernels import soft_threshold as _kernel_soft_threshold
from repro.tensor.validation import (
    as_float as _as_float,
)
from repro.tensor.validation import (
    check_mask,
    check_same_shape,
)

__all__ = [
    "estimate_outliers",
    "robust_step",
    "robust_step_at",
    "robust_step_batch",
    "robust_step_batch_at",
    "soft_threshold",
    "update_error_scale",
]


def soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Element-wise soft-thresholding ``sign(x) max(|x| - λ, 0)`` (Eq. 12).

    This is the proximal operator of ``λ ||·||_1`` and is how the
    initialization phase refreshes its outlier tensor (Alg. 1 line 8).
    Delegates to the shared kernel layer.
    """
    return _kernel_soft_threshold(values, threshold)


def _huber_excess(residual: np.ndarray, sigma: np.ndarray, k: float):
    """Residual in excess of the Huber clip ``ψ(r/σ)σ`` (Eq. 21 core)."""
    return residual - huber_psi(residual / sigma, k) * sigma


def _biweight_scale(
    residual: np.ndarray,
    sigma: np.ndarray,
    *,
    phi: float,
    k: float,
    ck: float,
) -> np.ndarray:
    """One biweight recursion step of the error scale (Eq. 22 core)."""
    rho = biweight_rho(residual / sigma, k, ck)
    return np.sqrt(phi * rho * sigma**2 + (1.0 - phi) * sigma**2)


def estimate_outliers(
    observed: np.ndarray,
    predicted: np.ndarray,
    sigma: np.ndarray,
    mask: np.ndarray,
    *,
    k: float = 2.0,
) -> np.ndarray:
    """Estimate the outlier subtensor ``O_t`` (Eq. 21).

    ``O_t = Y_t - Yhat - ψ((Y_t - Yhat)/Σ) Σ`` on observed entries: the
    residual in excess of ``k`` error scales.  Missing entries carry no
    outlier (zero).
    """
    y = _as_float(observed)
    yhat = _as_float(predicted)
    sg = _as_float(sigma)
    check_same_shape(y, yhat, names=("observed", "predicted"))
    check_same_shape(y, sg, names=("observed", "sigma"))
    m = check_mask(mask, y.shape)
    return np.where(m, _huber_excess(y - yhat, sg, k), 0.0)


def update_error_scale(
    observed: np.ndarray,
    predicted: np.ndarray,
    sigma: np.ndarray,
    mask: np.ndarray,
    *,
    phi: float,
    k: float = 2.0,
    ck: float = 2.52,
) -> np.ndarray:
    """Advance the error-scale tensor ``Σ_t`` (Eq. 22).

    Observed entries follow the biweight recursion
    ``Σ_t² = φ ρ((Y - Yhat)/Σ_{t-1}) Σ_{t-1}² + (1 - φ) Σ_{t-1}²``;
    missing entries keep their previous scale.  Note the ordering used by
    SOFIA: the caller estimates ``O_t`` with ``Σ_{t-1}`` *before* this
    update, so one extreme outlier cannot contaminate the scale it is
    judged against (paper §V-C1).
    """
    y = _as_float(observed)
    yhat = _as_float(predicted)
    sg = _as_float(sigma)
    check_same_shape(y, yhat, names=("observed", "predicted"))
    check_same_shape(y, sg, names=("observed", "sigma"))
    m = check_mask(mask, y.shape)
    updated = _biweight_scale(y - yhat, sg, phi=phi, k=k, ck=ck)
    return np.where(m, updated, sg)


def robust_step(
    observed: np.ndarray,
    predicted: np.ndarray,
    sigma: np.ndarray,
    mask: np.ndarray,
    *,
    k: float = 2.0,
    phi: float = 0.01,
    ck: float = 2.52,
) -> tuple[np.ndarray, np.ndarray]:
    """Fused Eq. 21 + Eq. 22: outliers and the advanced error scale.

    Computes the forecast residual once and applies both the Huber
    outlier split (against the *previous* scale, preserving SOFIA's
    ordering) and the biweight scale recursion — the exact pair of
    updates Alg. 3 performs per incoming subtensor.
    """
    y = _as_float(observed)
    yhat = _as_float(predicted)
    sg = _as_float(sigma)
    check_same_shape(y, yhat, names=("observed", "predicted"))
    check_same_shape(y, sg, names=("observed", "sigma"))
    m = check_mask(mask, y.shape)
    residual = y - yhat
    outliers = np.where(m, _huber_excess(residual, sg, k), 0.0)
    new_sigma = np.where(
        m, _biweight_scale(residual, sg, phi=phi, k=k, ck=ck), sg
    )
    return outliers, new_sigma


def robust_step_at(
    coords: tuple[np.ndarray, ...],
    observed_values: np.ndarray,
    predicted_values: np.ndarray,
    sigma: np.ndarray,
    *,
    k: float = 2.0,
    phi: float = 0.01,
    ck: float = 2.52,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`robust_step` restricted to the observed coordinates.

    The dense form spends ``O(prod(dims))`` element-wise ψ/ρ work per
    step even when only a few percent of the entries are observed; this
    form gathers ``Σ`` at ``coords`` and touches nothing else, which is
    exactly the Eq. 21-22 semantics (missing entries carry no outlier
    and keep their previous scale).

    Parameters
    ----------
    coords:
        Tuple of index arrays (one per mode) of the observed entries —
        each coordinate must appear at most once.
    observed_values, predicted_values:
        ``Y_t`` and ``X̂_t`` gathered at ``coords``.
    sigma:
        Dense error-scale tensor carried into the step (not mutated).

    Returns
    -------
    (outlier_values, new_sigma):
        Outlier estimates aligned with ``coords`` (1-D) and the dense
        advanced scale.
    """
    y = _as_float(observed_values)
    yhat = _as_float(predicted_values)
    sg = _as_float(sigma)
    residual = y - yhat
    sg_values = sg[coords]
    outlier_values = _huber_excess(residual, sg_values, k)
    new_sigma = sg.copy()
    new_sigma[coords] = _biweight_scale(
        residual, sg_values, phi=phi, k=k, ck=ck
    )
    return outlier_values, new_sigma


def robust_step_batch_at(
    coords: tuple[np.ndarray, ...],
    observed_values: np.ndarray,
    predicted_values: np.ndarray,
    sigma: np.ndarray,
    *,
    k: float = 2.0,
    phi: float = 0.01,
    ck: float = 2.52,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`robust_step_batch` restricted to the observed coordinates.

    Same batch-boundary freezing of ``Σ`` as the dense form — the
    per-entry growth factors ``φ ρ(r_b / Σ) + 1 - φ`` of a mini-batch
    multiply, so entries observed at several batch steps accumulate
    their product as one vectorized histogram of log-growths over the
    raveled spatial coordinates (no buffered element-at-a-time
    scatter).

    Parameters
    ----------
    coords:
        Tuple ``(batch_idx, i_1, ..., i_N)`` of index arrays of the
        observed entries of the stacked ``(B, *shape)`` batch.
    observed_values, predicted_values:
        The stacked data and Eq. 20 predictions gathered at ``coords``.
    sigma:
        The dense ``(*shape,)`` scale carried into the batch.

    Returns
    -------
    (outlier_values, new_sigma):
        Outlier estimates aligned with ``coords`` (1-D) and the dense
        advanced ``(*shape,)`` scale.
    """
    y = _as_float(observed_values)
    yhat = _as_float(predicted_values)
    sg = _as_float(sigma)
    spatial = coords[1:]
    residual = y - yhat
    sg_values = sg[spatial]
    outlier_values = _huber_excess(residual, sg_values, k)
    growth = phi * biweight_rho(residual / sg_values, k, ck) + (1.0 - phi)
    # Product over the batch via a sum of logs: growth is non-negative
    # (and zero only in the degenerate phi = 1 case, where log -> -inf
    # and exp recovers the exact zero product).
    flat = np.ravel_multi_index(spatial, sg.shape)
    with np.errstate(divide="ignore"):
        log_growth = np.log(growth)
    # np.bincount accumulates in float64 regardless of the weight dtype;
    # cast back so a float32 model's sigma does not silently upcast.
    log_product = np.bincount(flat, weights=log_growth, minlength=sg.size)
    growth_product = np.exp(log_product).reshape(sg.shape)
    new_sigma = (sg * np.sqrt(growth_product)).astype(sg.dtype, copy=False)
    return outlier_values, new_sigma


def robust_step_batch(
    observed: np.ndarray,
    predicted: np.ndarray,
    sigma: np.ndarray,
    mask: np.ndarray,
    *,
    k: float = 2.0,
    phi: float = 0.01,
    ck: float = 2.52,
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. 21 + Eq. 22 over a mini-batch in one vectorized pass.

    The batch generalization of :func:`robust_step` for ``B`` stacked
    subtensors: every step's residual is judged against the error scale
    at the *batch boundary* ``Σ_{t-1}`` (the sequential recursion judges
    step ``b`` against ``Σ_{t+b-1}``), which turns the per-entry scale
    recursion into a closed-form product over the batch axis::

        Σ_{t+B-1}² = Σ_{t-1}² · Π_b (φ ρ(r_b / Σ_{t-1}) + 1 - φ)

    with unobserved entries contributing a factor of one.  Because the
    smoothing parameter ``φ`` is small (0.01 in the paper), the scale
    drifts at most ``O(B φ)`` within a batch, so freezing it is a
    second-order approximation — and it removes the only sequential
    tensor-sized pass of the mini-batch engine.

    Parameters
    ----------
    observed, predicted:
        Stacked ``(B, *shape)`` data and Eq. 20 predictions.
    sigma:
        The ``(*shape,)`` error scale carried into the batch.
    mask:
        Stacked ``(B, *shape)`` observation indicator.

    Returns
    -------
    (outliers, new_sigma):
        Stacked ``(B, *shape)`` outlier estimates and the advanced
        ``(*shape,)`` scale.
    """
    y = _as_float(observed)
    yhat = _as_float(predicted)
    sg = _as_float(sigma)
    check_same_shape(y, yhat, names=("observed", "predicted"))
    if y.ndim != sg.ndim + 1 or y.shape[1:] != sg.shape:
        raise ShapeError(
            f"batch shape {y.shape} does not match sigma {sg.shape}"
        )
    m = check_mask(mask, y.shape)
    residual = y - yhat
    outliers = np.where(m, _huber_excess(residual, sg, k), 0.0)
    growth = np.where(
        m, phi * biweight_rho(residual / sg, k, ck) + (1.0 - phi), 1.0
    )
    new_sigma = sg * np.sqrt(np.prod(growth, axis=0))
    return outliers, new_sigma
