"""Benchmark-regression gate: fail CI when a kernel timing regresses.

Compares a fresh ``bench_fig5_speed.py --quick --json`` report against
the committed baseline in ``benchmarks/baseline/BENCH_kernels.json`` and
exits non-zero when a kernel regresses past ``--threshold``, on either
of two signals per case:

* any absolute timing (scalar or batched seconds) more than
  ``threshold`` times slower than the baseline — the literal wall-clock
  gate (absolute seconds do vary across machines; the 1.5x default
  leaves headroom for runner variance, and the baseline should be
  refreshed from a CI-class machine on purposeful perf changes);
* the scalar/batched *speedup ratio* shrinking by more than
  ``threshold`` — machine-independent, so a real de-vectorization of a
  hot path is caught even on a runner whose absolute speed differs from
  the baseline machine.

Faster-than-baseline runs always pass.

Usage::

    python benchmarks/check_regression.py \
        --baseline benchmarks/baseline/BENCH_kernels.json \
        --fresh BENCH_kernels.json
"""

import argparse
import json
import sys

#: Timing fields of one kernel-report case that the gate inspects.
TIMING_KEYS = ("scalar_seconds", "batched_seconds")


def compare_reports(baseline, fresh, threshold):
    """Return (report lines, failure lines) for two kernel reports."""
    lines = []
    failures = []
    base_cases = {entry["case"]: entry for entry in baseline["results"]}
    fresh_cases = {entry["case"]: entry for entry in fresh["results"]}
    missing = sorted(set(base_cases) - set(fresh_cases))
    if missing:
        failures.append(f"cases missing from the fresh run: {missing}")
    for name in sorted(base_cases):
        if name not in fresh_cases:
            continue
        for key in TIMING_KEYS:
            base_seconds = base_cases[name][key]
            fresh_seconds = fresh_cases[name][key]
            ratio = fresh_seconds / max(base_seconds, 1e-12)
            line = (
                f"{name}.{key}: baseline {base_seconds:.4f}s, "
                f"fresh {fresh_seconds:.4f}s ({ratio:.2f}x)"
            )
            if ratio > threshold:
                line += f"  REGRESSION (> {threshold:.2f}x)"
                failures.append(line)
            lines.append(line)
        base_speedup = base_cases[name].get("speedup")
        fresh_speedup = fresh_cases[name].get("speedup")
        if base_speedup is not None and fresh_speedup is not None:
            shrink = base_speedup / max(fresh_speedup, 1e-12)
            line = (
                f"{name}.speedup: baseline {base_speedup:.2f}x, "
                f"fresh {fresh_speedup:.2f}x"
            )
            if shrink > threshold:
                line += f"  REGRESSION (shrunk > {threshold:.2f}x)"
                failures.append(line)
            lines.append(line)
    return lines, failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail when a fresh kernel benchmark run regresses "
        "past the committed baseline."
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/baseline/BENCH_kernels.json",
        help="committed baseline report",
    )
    parser.add_argument(
        "--fresh",
        default="BENCH_kernels.json",
        help="report from the current run",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="maximum allowed fresh/baseline slowdown per timing "
        "(default 1.5)",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.fresh) as handle:
        fresh = json.load(handle)

    lines, failures = compare_reports(baseline, fresh, args.threshold)
    for line in lines:
        print(line)
    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nno benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
