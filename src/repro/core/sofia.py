"""Public facade of the SOFIA algorithm (paper §V).

Typical usage::

    from repro import Sofia, SofiaConfig

    sofia = Sofia(SofiaConfig(rank=5, period=24))
    sofia.initialize(startup_subtensors, startup_masks)   # Alg. 1 + HW fit
    for y_t, mask_t in stream:
        step = sofia.step(y_t, mask_t)                    # Alg. 3
        completed = step.completed                        # imputation
    future = sofia.forecast(horizon=24)                   # Eq. 28
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.config import SofiaConfig
from repro.core.dynamic import dynamic_step, dynamic_step_batch
from repro.core.initialization import (
    InitializationResult,
    initialize,
    stack_subtensors,
)
from repro.core.model import SofiaModelState, SofiaStep
from repro.exceptions import NotFittedError, ShapeError
from repro.forecast.fitting import fit_holt_winters
from repro.forecast.vector_hw import VectorHoltWinters
from repro.tensor import kruskal_to_tensor
from repro.tensor.validation import check_mask

__all__ = ["Sofia"]


class Sofia:
    """Seasonality-aware Outlier-robust Factorization of Incomplete
    streAming tensors.

    The object is driven in two phases: :meth:`initialize` consumes the
    first ``t_i = init_seasons * period`` subtensors in one batch
    (Alg. 1 + §V-B), then :meth:`step` processes each subsequent subtensor
    online (Alg. 3).  :meth:`forecast` extrapolates beyond the last
    consumed step (Eq. 28).
    """

    def __init__(self, config: SofiaConfig):
        self.config = config
        self._state: SofiaModelState | None = None
        self._init_result: InitializationResult | None = None

    @classmethod
    def from_state(
        cls, config: SofiaConfig, state: SofiaModelState
    ) -> "Sofia":
        """Rebuild a ready-to-step model around an existing state.

        This is the warm-start constructor used by
        :func:`repro.core.serialization.load_sofia` (and the serving
        layer's checkpoint rehydration): the returned model skips the
        initialization phase entirely and continues the dynamic phase
        from ``state``.  The :attr:`initialization` details of the
        original fit are not carried along.
        """
        sofia = cls(config)
        sofia._state = state
        return sofia

    # ------------------------------------------------------------------
    # Phase 1-2: initialization + Holt-Winters fitting
    # ------------------------------------------------------------------
    def initialize(
        self,
        subtensors: Sequence[np.ndarray],
        masks: Sequence[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Run the initialization phase on the start-up subtensors.

        Parameters
        ----------
        subtensors:
            The first ``t_i`` subtensors (``t_i = config.init_steps``; more
            are accepted and all are used).
        masks:
            Matching observation masks; ``None`` means fully observed.

        Returns
        -------
        list of numpy.ndarray
            The completed (imputed) start-up subtensors.
        """
        if len(subtensors) < self.config.init_steps:
            raise ShapeError(
                f"initialization needs at least {self.config.init_steps} "
                f"subtensors (= init_seasons * period), got {len(subtensors)}"
            )
        tensor = stack_subtensors(subtensors)
        if masks is None:
            mask = np.ones(tensor.shape, dtype=bool)
        else:
            mask = stack_subtensors(
                [check_mask(m_t) for m_t in masks]
            ).astype(bool)

        result = initialize(tensor, mask, self.config)
        self._init_result = result
        temporal = result.factors[-1]

        fits = [
            fit_holt_winters(temporal[:, r], self.config.period)
            for r in range(self.config.rank)
        ]
        hw = VectorHoltWinters.from_fits(fits)

        # Initialization always runs in float64 (one-off batch work);
        # the fitted state is cast to the configured dtype here, and the
        # dynamic phase stays in that dtype end to end.
        dtype = self.config.np_dtype
        sigma = np.full(
            tuple(f.shape[0] for f in result.factors[:-1]),
            self.config.initial_sigma,
            dtype=dtype,
        )
        self._state = SofiaModelState(
            non_temporal=[f.astype(dtype) for f in result.factors[:-1]],
            temporal_buffer=temporal[-self.config.period:].astype(dtype),
            hw=hw,
            sigma=sigma,
            t=temporal.shape[0],
        )
        completed = result.completed
        return [completed[..., i] for i in range(completed.shape[-1])]

    # ------------------------------------------------------------------
    # Phase 3: dynamic updates
    # ------------------------------------------------------------------
    def step(
        self, subtensor: np.ndarray, mask: np.ndarray | None = None
    ) -> SofiaStep:
        """Consume one new subtensor ``Y_t`` online (Alg. 3).

        Subtensors observed below ``config.density_threshold`` are
        routed through the sparse execution path (robust split and
        gradient contractions per observed entry; see
        :func:`repro.core.dynamic.dynamic_step`) — same results, work
        proportional to the observed entries.

        Parameters
        ----------
        subtensor:
            The incoming data slice (non-temporal shape).
        mask:
            Observation mask; ``None`` means fully observed.

        Returns
        -------
        SofiaStep
            Completed subtensor, outlier estimate, and diagnostics.
        """
        state = self._require_state()
        y = np.asarray(subtensor, dtype=self.config.np_dtype)
        if mask is None:
            mask = np.ones(y.shape, dtype=bool)
        return dynamic_step(state, y, mask, self.config)

    def step_batch(
        self,
        subtensors: Sequence[np.ndarray] | np.ndarray,
        masks: Sequence[np.ndarray] | np.ndarray | None = None,
    ) -> list[SofiaStep]:
        """Consume ``B`` subtensors as one mini-batch (batched Alg. 3).

        The tensor-sized work of the whole batch runs through one kernel
        call per operation instead of ``B`` per-step dispatches; see
        :func:`repro.core.dynamic.dynamic_step_batch` for the exact
        semantics (``B = 1`` is bit-identical to :meth:`step`, ``B > 1``
        freezes the factors at the batch boundary).  Batches observed
        below ``config.density_threshold`` skip the dense robust pass
        and contract gradients per observed entry (the sparse path).

        Parameters
        ----------
        subtensors:
            Stacked ``(B, *subtensor_shape)`` array, or a sequence of
            ``B`` subtensors.
        masks:
            Matching observation masks; ``None`` means fully observed.

        Returns
        -------
        list of SofiaStep
            One per consumed subtensor, oldest first.
        """
        state = self._require_state()
        ys = np.asarray(subtensors, dtype=self.config.np_dtype)
        if masks is None:
            masks = np.ones(ys.shape, dtype=bool)
        else:
            masks = np.asarray(masks)
        return dynamic_step_batch(state, ys, masks, self.config)

    def run(
        self,
        stream: Iterable[tuple[np.ndarray, np.ndarray | None]],
    ) -> list[SofiaStep]:
        """Consume ``(subtensor, mask)`` pairs; returns all step results.

        With ``config.batch_size > 1`` the stream is consumed in
        mini-batch chunks through :meth:`step_batch` (the final chunk may
        be smaller); per-step results are returned either way.
        """
        batch = self.config.batch_size
        if batch == 1:
            return [self.step(y_t, m_t) for y_t, m_t in stream]
        results: list[SofiaStep] = []
        pending: list[tuple[np.ndarray, np.ndarray | None]] = []
        for pair in stream:
            pending.append(pair)
            if len(pending) == batch:
                results.extend(self._flush_chunk(pending))
                pending = []
        if pending:
            results.extend(self._flush_chunk(pending))
        return results

    def _flush_chunk(
        self, pending: Sequence[tuple[np.ndarray, np.ndarray | None]]
    ) -> list[SofiaStep]:
        """Run one collected mini-batch, materializing default masks."""
        ys = np.stack(
            [
                np.asarray(y, dtype=self.config.np_dtype)
                for y, _ in pending
            ],
            axis=0,
        )
        masks = np.stack(
            [
                np.ones(ys.shape[1:], dtype=bool)
                if m is None
                else check_mask(m, ys.shape[1:])
                for (_, m) in pending
            ],
            axis=0,
        )
        return self.step_batch(ys, masks)

    def impute(
        self, subtensor: np.ndarray, mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Process one subtensor and return it with missing entries filled.

        Observed entries are kept verbatim; missing ones come from the
        reconstruction ``X̂_t``.
        """
        y = np.asarray(subtensor, dtype=self.config.np_dtype)
        if mask is None:
            mask = np.ones(y.shape, dtype=bool)
        m = check_mask(mask, y.shape)
        step = self.step(y, m)
        return np.where(m, y, step.completed)

    # ------------------------------------------------------------------
    # Forecasting
    # ------------------------------------------------------------------
    def forecast(self, horizon: int) -> np.ndarray:
        """Forecast the next ``horizon`` subtensors (Eq. 28).

        Returns an array of shape ``(horizon, *subtensor_shape)`` built
        from the most recent non-temporal factors and the HW forecast of
        the temporal vectors.
        """
        state = self._require_state()
        # (horizon, R), cast so a float32 model forecasts in float32.
        u_future = state.hw.forecast(horizon).astype(
            state.dtype, copy=False
        )
        return np.stack(
            [
                kruskal_to_tensor(state.non_temporal, weights=u_future[h])
                for h in range(horizon)
            ],
            axis=0,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_initialized(self) -> bool:
        return self._state is not None

    @property
    def state(self) -> SofiaModelState:
        """The live model state (factors, HW components, error scales)."""
        return self._require_state()

    @property
    def initialization(self) -> InitializationResult:
        """Details of the initialization phase (Alg. 1 outcome)."""
        if self._init_result is None:
            raise NotFittedError("call initialize() first")
        return self._init_result

    def _require_state(self) -> SofiaModelState:
        if self._state is None:
            raise NotFittedError(
                "SOFIA has not been initialized; call initialize() with the "
                "start-up subtensors first"
            )
        return self._state
