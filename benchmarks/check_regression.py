"""Benchmark-regression gate: fail CI when a kernel timing regresses.

Compares fresh ``bench_fig5_speed.py --quick`` reports against the
committed baselines in ``benchmarks/baseline/`` and exits non-zero when
a case regresses past ``--threshold``, on either of two signals:

* any absolute timing (every numeric field ending in ``_seconds``) more
  than ``threshold`` times slower than the baseline — the literal
  wall-clock gate (absolute seconds do vary across machines; the 1.5x
  default leaves headroom for runner variance, and the baselines should
  be refreshed from a CI-class machine on purposeful perf changes);
* the case's *speedup ratio* (scalar/batched for the kernel report,
  batched/sparse for the density sweep) shrinking by more than
  ``threshold`` — machine-independent, so a real de-vectorization of a
  hot path is caught even on a runner whose absolute speed differs from
  the baseline machine.

Timings whose *baseline* value is below ``--min-seconds`` (5 ms by
default) are reported but not gated — sub-millisecond best-of timings
on shared runners are noise-dominated and would make the absolute gate
flaky.  The same floor exempts a case's speedup ratio when any of its
baseline timings is sub-floor (a ratio of a noisy number is noisy).  A
numeric timing field present in the baseline but missing from the fresh
run is a failure (a silently renamed or dropped field would otherwise
leave that path permanently ungated), as is a whole missing case.

Accuracy fields are gated symmetrically to timings: every numeric
field named (or suffixed) ``rae``/``nre``/``afe`` — e.g. ``rae``,
``final_nre``, ``ingest_afe`` — fails when it grows past
``--error-threshold`` times the baseline AND by more than
``--min-error`` absolute (small errors ratio-compare noisily: 0.001 ->
0.002 is a 2x ratio nobody should page for).  A baseline accuracy
field missing from the fresh run is a failure, same as timings.

Faster-than-baseline runs always pass.  ``--baseline``/``--fresh`` may
be repeated to gate several report pairs in one invocation::

    python benchmarks/check_regression.py \
        --baseline benchmarks/baseline/BENCH_kernels.json \
        --fresh BENCH_kernels.json \
        --baseline benchmarks/baseline/BENCH_density.json \
        --fresh BENCH_density.json
"""

import argparse
import json
import sys

#: Default report pair when no --baseline/--fresh flags are given.
DEFAULT_BASELINE = "benchmarks/baseline/BENCH_kernels.json"
DEFAULT_FRESH = "BENCH_kernels.json"


def timing_keys(entry):
    """Numeric ``*_seconds`` fields of one benchmark case."""
    return sorted(
        key
        for key, value in entry.items()
        if key.endswith("_seconds") and isinstance(value, (int, float))
    )


#: Suffixes marking a numeric field as an accuracy metric (lower is
#: better, gated by --error-threshold / --min-error).
ERROR_SUFFIXES = ("rae", "nre", "afe")


def error_keys(entry):
    """Numeric accuracy fields (``rae``/``nre``/``afe``-suffixed)."""
    return sorted(
        key
        for key, value in entry.items()
        if key.endswith(ERROR_SUFFIXES) and isinstance(value, (int, float))
    )


def compare_reports(
    baseline,
    fresh,
    threshold,
    min_seconds=0.0,
    error_threshold=1.5,
    min_error=0.02,
):
    """Return (report lines, failure lines) for two benchmark reports.

    Timings whose baseline value is below ``min_seconds`` are reported
    but exempt from the absolute gate (noise floor).  Accuracy fields
    regress only when they grow past ``error_threshold`` times the
    baseline and by more than ``min_error`` absolute.
    """
    lines = []
    failures = []
    base_cases = {entry["case"]: entry for entry in baseline["results"]}
    fresh_cases = {entry["case"]: entry for entry in fresh["results"]}
    missing = sorted(set(base_cases) - set(fresh_cases))
    if missing:
        failures.append(f"cases missing from the fresh run: {missing}")
    for name in sorted(base_cases):
        if name not in fresh_cases:
            continue
        for key in timing_keys(base_cases[name]):
            base_seconds = base_cases[name][key]
            fresh_value = fresh_cases[name].get(key)
            if not isinstance(fresh_value, (int, float)):
                failures.append(
                    f"{name}.{key}: in the baseline but missing from "
                    f"the fresh run"
                )
                continue
            ratio = fresh_value / max(base_seconds, 1e-12)
            line = (
                f"{name}.{key}: baseline {base_seconds:.4f}s, "
                f"fresh {fresh_value:.4f}s ({ratio:.2f}x)"
            )
            if base_seconds < min_seconds:
                line += "  (below noise floor, not gated)"
            elif ratio > threshold:
                line += f"  REGRESSION (> {threshold:.2f}x)"
                failures.append(line)
            lines.append(line)
        for key in error_keys(base_cases[name]):
            base_error = base_cases[name][key]
            fresh_error = fresh_cases[name].get(key)
            if not isinstance(fresh_error, (int, float)):
                failures.append(
                    f"{name}.{key}: in the baseline but missing from "
                    f"the fresh run"
                )
                continue
            ratio = fresh_error / max(base_error, 1e-12)
            line = (
                f"{name}.{key}: baseline {base_error:.4f}, "
                f"fresh {fresh_error:.4f} ({ratio:.2f}x)"
            )
            grew = fresh_error - base_error
            if ratio > error_threshold and grew > min_error:
                line += (
                    f"  ACCURACY REGRESSION (> {error_threshold:.2f}x "
                    f"and +{grew:.4f} absolute)"
                )
                failures.append(line)
            lines.append(line)
        base_speedup = base_cases[name].get("speedup")
        fresh_speedup = fresh_cases[name].get("speedup")
        if base_speedup is not None and fresh_speedup is not None:
            shrink = base_speedup / max(fresh_speedup, 1e-12)
            line = (
                f"{name}.speedup: baseline {base_speedup:.2f}x, "
                f"fresh {fresh_speedup:.2f}x"
            )
            # A ratio built from a sub-floor timing inherits its noise.
            noisy = any(
                base_cases[name][key] < min_seconds
                for key in timing_keys(base_cases[name])
            )
            if noisy:
                line += "  (below noise floor, not gated)"
            elif shrink > threshold:
                line += f"  REGRESSION (shrunk > {threshold:.2f}x)"
                failures.append(line)
            lines.append(line)
    return lines, failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail when a fresh benchmark run regresses past the "
        "committed baseline.  Repeat --baseline/--fresh to gate several "
        "report pairs."
    )
    parser.add_argument(
        "--baseline",
        action="append",
        default=None,
        help=f"committed baseline report (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--fresh",
        action="append",
        default=None,
        help=f"report from the current run (default {DEFAULT_FRESH})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="maximum allowed fresh/baseline slowdown per timing "
        "(default 1.5)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.005,
        dest="min_seconds",
        help="baseline timings below this are reported but not gated "
        "(sub-ms best-of timings are runner-noise-dominated; "
        "default 0.005)",
    )
    parser.add_argument(
        "--error-threshold",
        type=float,
        default=1.5,
        dest="error_threshold",
        help="maximum allowed fresh/baseline growth per accuracy field "
        "(rae/nre/afe; default 1.5)",
    )
    parser.add_argument(
        "--min-error",
        type=float,
        default=0.02,
        dest="min_error",
        help="accuracy growth below this absolute amount is never a "
        "regression, whatever the ratio (default 0.02)",
    )
    args = parser.parse_args(argv)
    baselines = args.baseline or [DEFAULT_BASELINE]
    freshes = args.fresh or [DEFAULT_FRESH]
    if len(baselines) != len(freshes):
        parser.error(
            f"got {len(baselines)} --baseline but {len(freshes)} --fresh; "
            "they pair up one-to-one"
        )

    all_failures = []
    for baseline_path, fresh_path in zip(baselines, freshes):
        with open(baseline_path) as handle:
            baseline = json.load(handle)
        with open(fresh_path) as handle:
            fresh = json.load(handle)
        lines, failures = compare_reports(
            baseline,
            fresh,
            args.threshold,
            args.min_seconds,
            args.error_threshold,
            args.min_error,
        )
        print(f"== {baseline_path} vs {fresh_path} ==")
        for line in lines:
            print(line)
        all_failures.extend(failures)

    if all_failures:
        print(
            f"\n{len(all_failures)} benchmark regression(s):",
            file=sys.stderr,
        )
        for failure in all_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nno benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
