"""Unit tests for the TensorStream abstraction."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.streams import TensorStream


@pytest.fixture
def stream():
    rng = np.random.default_rng(0)
    data = rng.normal(size=(4, 5, 12))
    mask = rng.random((4, 5, 12)) > 0.3
    return TensorStream(data=data, mask=mask, period=4)


class TestConstruction:
    def test_properties(self, stream):
        assert stream.n_steps == 12
        assert stream.subtensor_shape == (4, 5)
        assert stream.entries_per_step == 20

    def test_fully_observed(self):
        s = TensorStream.fully_observed(np.zeros((3, 8)), period=2)
        assert s.mask.all()
        assert s.n_steps == 8

    def test_1d_rejected(self):
        with pytest.raises(ShapeError):
            TensorStream(
                data=np.zeros(5), mask=np.ones(5, dtype=bool), period=1
            )

    def test_mask_shape_mismatch(self):
        with pytest.raises(ShapeError):
            TensorStream(
                data=np.zeros((3, 4)),
                mask=np.ones((4, 3), dtype=bool),
                period=1,
            )

    def test_bad_period(self):
        with pytest.raises(ShapeError):
            TensorStream(
                data=np.zeros((3, 4)),
                mask=np.ones((3, 4), dtype=bool),
                period=0,
            )


class TestSlicing:
    def test_subtensor(self, stream):
        np.testing.assert_array_equal(stream.subtensor(3), stream.data[..., 3])

    def test_mask_at(self, stream):
        np.testing.assert_array_equal(stream.mask_at(3), stream.mask[..., 3])

    def test_startup(self, stream):
        subtensors, masks = stream.startup(5)
        assert len(subtensors) == 5
        assert len(masks) == 5
        np.testing.assert_array_equal(subtensors[2], stream.data[..., 2])

    def test_startup_out_of_range(self, stream):
        with pytest.raises(ShapeError):
            stream.startup(0)
        with pytest.raises(ShapeError):
            stream.startup(13)

    def test_iter_from(self, stream):
        steps = list(stream.iter_from(9))
        assert [t for t, _, _ in steps] == [9, 10, 11]
        np.testing.assert_array_equal(steps[0][1], stream.data[..., 9])

    def test_iter_from_empty_range_raises(self, stream):
        # Starting at (or past) the end used to yield nothing silently;
        # it now fails loudly, as does a negative start.
        with pytest.raises(ShapeError, match="empty"):
            list(stream.iter_from(12))
        with pytest.raises(ShapeError, match="empty"):
            list(stream.iter_from(13))
        with pytest.raises(ShapeError, match=">= 0"):
            list(stream.iter_from(-1))

    def test_slice_steps(self, stream):
        sub = stream.slice_steps(2, 7)
        assert sub.n_steps == 5
        np.testing.assert_array_equal(sub.data, stream.data[..., 2:7])
        assert sub.period == stream.period

    def test_slice_steps_invalid(self, stream):
        with pytest.raises(ShapeError, match="empty"):
            stream.slice_steps(5, 5)
        with pytest.raises(ShapeError, match="exceeds"):
            stream.slice_steps(0, 13)
        with pytest.raises(ShapeError, match=">= 0"):
            stream.slice_steps(-1, 4)
        with pytest.raises(ShapeError, match="empty"):
            stream.slice_steps(7, 2)


class TestIterBatches:
    def test_chunks_cover_stream(self, stream):
        blocks = list(stream.iter_batches(2, 4))
        assert [t0 for t0, _, _ in blocks] == [2, 6, 10]
        assert [ys.shape[0] for _, ys, _ in blocks] == [4, 4, 2]
        for t0, ys, ms in blocks:
            assert ys.shape[1:] == stream.subtensor_shape
            assert ms.shape == ys.shape
            for offset in range(ys.shape[0]):
                np.testing.assert_array_equal(
                    ys[offset], stream.subtensor(t0 + offset)
                )
                np.testing.assert_array_equal(
                    ms[offset], stream.mask_at(t0 + offset)
                )

    def test_batch_size_one_matches_iter_from(self, stream):
        singles = list(stream.iter_batches(9, 1))
        steps = list(stream.iter_from(9))
        assert len(singles) == len(steps)
        for (t0, ys, _), (t, y_t, _) in zip(singles, steps):
            assert t0 == t
            np.testing.assert_array_equal(ys[0], y_t)

    def test_invalid_arguments(self, stream):
        with pytest.raises(ShapeError, match="batch_size"):
            list(stream.iter_batches(0, 0))
        with pytest.raises(ShapeError, match="empty"):
            list(stream.iter_batches(12, 4))
        with pytest.raises(ShapeError, match=">= 0"):
            list(stream.iter_batches(-2, 4))
