"""SOFIA initialization: robust batch factorization (paper Alg. 1).

Alternates soft-thresholding of the masked residual with SOFIA_ALS sweeps
on the outlier-corrected tensor, while the threshold ``λ3`` decays
geometrically (``d = 0.85``) down to ``λ3 / 100``.  Conceptually, early
outer iterations strip the largest outliers and later ones the smaller
ones, which is what lets the smooth temporal structure emerge even under
heavy corruption (Fig. 2).

Two implementation choices (validated against the paper's Fig. 2
trajectory; see DESIGN.md):

* the initial random factors are small (``init_factor_scale``), so the
  first reconstruction is near zero and the first thresholding strips
  gross outliers straight off the raw data before any least-squares fit
  can chase them;
* by default a single ALS sweep runs per outer iteration
  (``als_sweeps_per_outer = 1``), making the loop a joint block-coordinate
  descent over (factors, O) — running ALS to convergence between
  thresholdings lets the factors absorb outliers irrecoverably under
  heavy corruption.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.als import sofia_als
from repro.core.config import SofiaConfig
from repro.exceptions import ShapeError
from repro.tensor import kruskal_to_tensor, random_factors
from repro.tensor.kernels import masked_soft_threshold
from repro.tensor.validation import check_mask

__all__ = ["InitializationResult", "initialize", "stack_subtensors"]

ProgressHook = Callable[[int, list[np.ndarray]], None]


@dataclass(frozen=True)
class InitializationResult:
    """Outcome of the initialization phase (Alg. 1)."""

    factors: list[np.ndarray]
    outliers: np.ndarray
    completed: np.ndarray
    n_outer_iters: int
    converged: bool


def stack_subtensors(subtensors: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate ``(N-1)``-way subtensors into one tensor whose **last**
    mode is time (the paper's ``Y_init``, Alg. 1 line 1)."""
    if not subtensors:
        raise ShapeError("need at least one subtensor")
    arrays = [np.asarray(s, dtype=np.float64) for s in subtensors]
    shape = arrays[0].shape
    for i, arr in enumerate(arrays):
        if arr.shape != shape:
            raise ShapeError(
                f"subtensor {i} has shape {arr.shape}, expected {shape}"
            )
    return np.stack(arrays, axis=-1)


def initialize(
    tensor: np.ndarray,
    mask: np.ndarray,
    config: SofiaConfig,
    *,
    smooth: bool = True,
    initial_factors: Sequence[np.ndarray] | None = None,
    progress_hook: ProgressHook | None = None,
) -> InitializationResult:
    """Run Algorithm 1 on the start-up tensor.

    Parameters
    ----------
    tensor, mask:
        Start-up data ``Y_init`` (time on the last mode) and indicator.
    config:
        Model configuration.  ``config.max_outer_iters`` caps the outer
        loop; ``config.tol`` is the relative-change stopping criterion.
    smooth:
        Forwarded to :func:`repro.core.als.sofia_als`; ``False`` gives the
        vanilla-ALS ablation of Fig. 2(b).
    initial_factors:
        Optional starting factors (random otherwise, from ``config.seed``).
    progress_hook:
        Called as ``hook(outer_iteration, factors)`` after each outer
        iteration — used by the Fig. 2 experiment to trace how the
        temporal factor evolves.

    Returns
    -------
    InitializationResult
    """
    y = np.asarray(tensor, dtype=np.float64)
    m = check_mask(mask, y.shape)
    if initial_factors is not None:
        factors = [np.array(f, dtype=np.float64) for f in initial_factors]
    else:
        factors = random_factors(
            y.shape, config.rank, seed=config.seed,
            scale=config.init_factor_scale,
        )

    sweep_config = config.with_updates(
        max_als_iters=config.als_sweeps_per_outer
    )
    lam3 = config.lambda3
    previous = None
    completed = kruskal_to_tensor(factors)
    outliers = np.zeros_like(y)
    converged = False
    outer = 0
    for outer in range(1, config.max_outer_iters + 1):
        outliers = masked_soft_threshold(y, completed, m, lam3)
        lam3 = max(lam3 * config.lambda3_decay, config.lambda3_floor)
        result = sofia_als(y, m, outliers, factors, sweep_config, smooth=smooth)
        factors = result.factors
        completed = result.completed
        if progress_hook is not None:
            progress_hook(outer, factors)
        if previous is not None:
            denom = float(np.linalg.norm(previous))
            change = float(np.linalg.norm(completed - previous))
            if denom > 0 and change / denom < config.tol:
                converged = True
                break
        previous = completed.copy()
    return InitializationResult(
        factors=factors,
        outliers=outliers,
        completed=completed,
        n_outer_iters=outer,
        converged=converged,
    )
