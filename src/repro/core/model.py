"""Mutable state of a fitted SOFIA model and per-step result records."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ShapeError
from repro.forecast.vector_hw import VectorHoltWinters

__all__ = ["SofiaModelState", "SofiaStep"]


@dataclass(frozen=True)
class SofiaStep:
    """Everything SOFIA produces for one incoming subtensor (Alg. 3 body).

    Attributes
    ----------
    completed:
        The reconstruction ``X̂_t = [[{U_t}; u_t]]`` used for imputation.
    outliers:
        Estimated outlier subtensor ``O_t`` (zero where unobserved).
    prediction:
        One-step-ahead forecast ``Ŷ_{t|t-1}`` made before seeing the data.
    temporal_forecast:
        The HW forecast ``û_{t|t-1}`` of the temporal vector.
    temporal_vector:
        The updated temporal vector ``u_t``.
    """

    completed: np.ndarray
    outliers: np.ndarray
    prediction: np.ndarray
    temporal_forecast: np.ndarray
    temporal_vector: np.ndarray


@dataclass
class SofiaModelState:
    """Online state carried between dynamic-update steps.

    Attributes
    ----------
    non_temporal:
        Factor matrices ``{U^(n)_t}`` for the non-temporal modes.
    temporal_buffer:
        The last ``m`` temporal row vectors, oldest first, so
        ``temporal_buffer[0]`` is ``u_{t-m}`` and ``temporal_buffer[-1]``
        is ``u_{t-1}`` — exactly what Eq. 25's smoothness terms need.
    hw:
        Vectorized Holt-Winters state over the ``R`` components.
    sigma:
        Per-entry one-step forecast error scale ``Σ̂_t`` (Alg. 3 line 1).
    t:
        Number of subtensors consumed so far (``t_i`` right after
        initialization).
    """

    non_temporal: list[np.ndarray]
    temporal_buffer: np.ndarray = field(repr=False)
    hw: VectorHoltWinters
    sigma: np.ndarray = field(repr=False)
    t: int

    def __post_init__(self) -> None:
        if not self.non_temporal:
            raise ShapeError("need at least one non-temporal factor")
        rank = self.non_temporal[0].shape[1]
        # The buffer follows the factors' dtype so a float32 model stays
        # float32 end to end (non-float factors fall back to float64).
        buf = np.asarray(self.temporal_buffer, dtype=self.dtype)
        if buf.ndim != 2 or buf.shape[1] != rank:
            raise ShapeError(
                f"temporal buffer must be (m, {rank}), got {buf.shape}"
            )
        self.temporal_buffer = buf
        expected = tuple(f.shape[0] for f in self.non_temporal)
        if self.sigma.shape != expected:
            raise ShapeError(
                f"sigma shape {self.sigma.shape} does not match subtensor "
                f"shape {expected}"
            )

    @property
    def rank(self) -> int:
        return int(self.non_temporal[0].shape[1])

    @property
    def dtype(self) -> np.dtype:
        """Floating dtype of the model (taken from the factors)."""
        dtype = np.asarray(self.non_temporal[0]).dtype
        if dtype.kind != "f":
            return np.dtype(np.float64)
        return dtype

    @property
    def subtensor_shape(self) -> tuple[int, ...]:
        return tuple(f.shape[0] for f in self.non_temporal)

    @property
    def previous_vector(self) -> np.ndarray:
        """``u_{t-1}``."""
        return self.temporal_buffer[-1]

    @property
    def season_vector(self) -> np.ndarray:
        """``u_{t-m}``."""
        return self.temporal_buffer[0]

    def push_temporal(self, vector: np.ndarray) -> None:
        """Append ``u_t`` to the ring buffer, dropping ``u_{t-m}``."""
        v = np.asarray(vector, dtype=self.temporal_buffer.dtype).reshape(1, -1)
        if v.shape[1] != self.rank:
            raise ShapeError(f"expected a length-{self.rank} vector")
        self.temporal_buffer = np.vstack([self.temporal_buffer[1:], v])
