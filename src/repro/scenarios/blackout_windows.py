"""Blackout windows: structured missing blocks on top of random dropout.

Two contiguous blackout windows punch rectangular holes in the stream:
one hides the first half of the spatial modes for a full season, the
other hides *every* entry for three consecutive steps — a total
outage.  Both sit on top of 20% uniform random missingness, so the
mask composes structured and unstructured dropout the way real
telemetry does (a rack goes dark while individual sensors also flake).
Season-aware imputation should ride through the windows on the
seasonal estimate; the envelope checks overall RAE, which includes
the blacked-out entries.
"""

from __future__ import annotations

from repro.scenarios.base import (
    GeneratorSpec,
    QualityEnvelope,
    scenario_from_module,
)
from repro.streams.corruption import (
    BlackoutWindow,
    CorruptionSchedule,
    CorruptionSpec,
    SchedulePhase,
)

SCENARIO = scenario_from_module(
    __doc__,
    name="blackout_windows",
    generator=GeneratorSpec(
        dims=(8, 6),
        rank=3,
        period=10,
        n_steps=200,
        noise=0.02,
    ),
    schedule=CorruptionSchedule(
        phases=(SchedulePhase(0, None, CorruptionSpec(20, 0, 0)),),
        windows=(
            # One season with the first half of mode 0 dark.
            BlackoutWindow(start=80, stop=90, mode_ranges=((0, 4), None)),
            # A short total outage later in the stream.
            BlackoutWindow(start=140, stop=143),
        ),
    ),
    envelope=QualityEnvelope(max_rae=0.45, max_final_nre=0.45, max_afe=0.80),
    n_sessions=2,
)
