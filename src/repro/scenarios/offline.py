"""Offline scenario runs: accuracy under stress, gated by envelopes.

:func:`run_scenario` takes a registered scenario through the standard
streaming evaluation — generate the clean stream, apply the corruption
schedule, run SOFIA slice by slice, score NRE/RAE/AFE against the
clean truth — and checks the results against the scenario's
expected-quality envelope.  This is the ``repro-experiments scenario``
path and the accuracy half of ``benchmarks/bench_scenarios.py``; the
latency half lives in :mod:`repro.scenarios.replay`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import SofiaImputer
from repro.core import SofiaConfig
from repro.scenarios import get_scenario
from repro.streams import TensorStream, run_forecasting, run_imputation
from repro.streams.corruption import corrupt_schedule

__all__ = ["ScenarioRunResult", "format_scenario_report", "run_scenario"]


@dataclass(frozen=True)
class ScenarioRunResult:
    """Accuracy metrics of one offline scenario run.

    ``final_nre`` is the mean NRE over the last quarter of the stream —
    the recovery metric the envelopes bound.  ``violations`` is empty
    when the run stayed inside its envelope.
    """

    scenario: str
    tiny: bool
    seed: int
    rae: float
    final_nre: float
    afe: float
    art_seconds: float
    violations: tuple[str, ...]

    @property
    def passed(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        """JSON-ready flat dict (the bench harness embeds this)."""
        return {
            "scenario": self.scenario,
            "tiny": self.tiny,
            "seed": self.seed,
            "rae": self.rae,
            "final_nre": self.final_nre,
            "afe": self.afe,
            "art_seconds": self.art_seconds,
            "violations": list(self.violations),
            "passed": self.passed,
        }


def _config_for(generator) -> SofiaConfig:
    """A modest SOFIA config sized to the scenario's generator."""
    return SofiaConfig(
        rank=generator.rank,
        period=generator.period,
        lambda1=0.1,
        lambda2=0.1,
        init_seasons=2,
        max_outer_iters=50,
        tol=1e-5,
    )


def run_scenario(
    name: str,
    *,
    seed: int = 0,
    tiny: bool = False,
    horizon: int | None = None,
) -> ScenarioRunResult:
    """Run one scenario offline and score it against its envelope."""
    scenario = get_scenario(name)
    generator, schedule = scenario.sized(tiny=tiny)
    clean = generator.build(seed=seed)
    corrupted = corrupt_schedule(clean, schedule, seed=seed)
    truth = TensorStream.fully_observed(clean, period=generator.period)
    observed = TensorStream(
        data=corrupted.observed,
        mask=corrupted.mask,
        period=generator.period,
    )
    config = _config_for(generator)
    startup = config.init_seasons * generator.period
    imputation = run_imputation(
        SofiaImputer(config),
        observed,
        truth,
        startup_steps=startup,
    )
    series = np.asarray(imputation.nre_series, dtype=float)
    tail = series[-max(len(series) // 4, 1):]
    final_nre = float(np.mean(tail)) if tail.size else float("nan")
    forecast = run_forecasting(
        SofiaImputer(config),
        observed,
        truth,
        startup_steps=startup,
        horizon=horizon if horizon is not None else generator.period,
    )
    violations = scenario.envelope.check(
        rae=imputation.rae, final_nre=final_nre, afe=forecast.afe
    )
    return ScenarioRunResult(
        scenario=name,
        tiny=tiny,
        seed=seed,
        rae=float(imputation.rae),
        final_nre=final_nre,
        afe=float(forecast.afe),
        art_seconds=float(imputation.art_seconds),
        violations=violations,
    )


def format_scenario_report(result: ScenarioRunResult) -> str:
    """Human-readable single-run report for the CLI."""
    scenario = get_scenario(result.scenario)
    status = "PASS" if result.passed else "FAIL"
    lines = [
        f"scenario {result.scenario} "
        f"({'tiny' if result.tiny else 'full'}, seed {result.seed}): "
        f"{status}",
        f"  {scenario.summary}",
        f"  RAE          {result.rae:.4f}"
        + _bound(scenario.envelope.max_rae),
        f"  final NRE    {result.final_nre:.4f}"
        + _bound(scenario.envelope.max_final_nre),
        f"  AFE          {result.afe:.4f}"
        + _bound(scenario.envelope.max_afe),
        f"  ART          {result.art_seconds * 1e3:.3f} ms/slice",
    ]
    for violation in result.violations:
        lines.append(f"  VIOLATION: {violation}")
    return "\n".join(lines)


def _bound(bound: float | None) -> str:
    return "" if bound is None else f"  (bound {bound:.2f})"
