"""Transport-agnostic flush execution: requests in, results out.

The scheduler used to call a closure supplied by the session manager;
that closure captured live objects and therefore pinned the whole
runtime to threads.  This module replaces it with plain data — a
:class:`FlushRequest` describes everything one session's flush needs
and a :class:`FlushResult` carries everything the manager must commit
back, so the pair can cross a process boundary by pickling (the
``"state"`` transport: model state travels as versioned
checkpoint-format bytes from :func:`repro.core.serialization`) or stay
in-process with zero copies (the ``"model"`` transport: the live
:class:`~repro.core.Sofia` object rides along).

:func:`execute_requests` is the worker-side entry point for a *fused
group*: several sessions' requests executed back-to-back in one
dispatch.  Each request is isolated in its own try/except — one
session's failing batch becomes an ``error`` result and the remaining
group members still flush (the manager poisons only the failed
session).  :func:`process_worker_main` is the loop a
``multiprocessing`` worker runs around it.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SofiaConfig
from repro.core.serialization import dumps_sofia, loads_sofia
from repro.core.sofia import Sofia
from repro.tensor import kernels

__all__ = [
    "FlushRequest",
    "FlushResult",
    "execute_request",
    "execute_requests",
    "process_worker_main",
]


@dataclass
class FlushRequest:
    """One session's flush, as plain (picklable) data.

    Exactly one of ``model`` (``transport="model"``, in-process) and
    ``state`` (``transport="state"``, checkpoint-format bytes) carries
    the session's model — or neither, when this flush *initializes*
    the session from its completed warmup window (``warmup_ys`` set).
    ``step_seqs``/``step_ys``/``step_masks`` describe the dynamic-phase
    slices to apply after any initialization, oldest first.

    ``trace_ids`` maps sequence numbers to lifecycle trace ids for the
    slices that are being traced (usually none).  The worker echoes it
    back on the result, so the trace context demonstrably survives the
    pickle round-trip of the ``"state"`` transport.
    """

    session_id: str
    config: SofiaConfig
    transport: str = "model"
    kernel_backend: str | None = None
    model: Sofia | None = None
    state: bytes | None = None
    warmup_seqs: list[int] = field(default_factory=list)
    warmup_ys: np.ndarray | None = None
    warmup_masks: np.ndarray | None = None
    step_seqs: list[int] = field(default_factory=list)
    step_ys: np.ndarray | None = None
    step_masks: np.ndarray | None = None
    trace_ids: dict[int, str] = field(default_factory=dict)


@dataclass
class FlushResult:
    """What one executed flush hands back to the manager.

    ``results`` pairs each consumed slice's sequence number with its
    completed (imputed) reconstruction.  The updated model comes back
    on the same transport the request used; ``error`` is the formatted
    exception when execution failed (the other fields then describe
    nothing and the manager marks the session failed).

    ``quality`` carries one ``(seq, observed, residual_ss, signal_ss,
    outliers)`` tuple per dynamic-phase slice — scalar aggregates of
    arrays the step already produced (one-step-ahead forecast
    residuals, outlier indicators), folded into the session's quality
    window at commit.  ``error_scale`` is the post-batch mean of the
    model's running error scale Sigma-hat.  ``trace_ids`` is the
    request's map, echoed across the transport.
    """

    session_id: str
    results: list[tuple[int, np.ndarray]] = field(default_factory=list)
    consumed: int = 0
    model: Sofia | None = None
    state: bytes | None = None
    error: str | None = None
    seconds: float = 0.0
    quality: list[tuple] = field(default_factory=list)
    error_scale: float | None = None
    trace_ids: dict[int, str] = field(default_factory=dict)


def _backend_scope(name: str | None):
    return nullcontext() if name is None else kernels.use_backend(name)


def execute_request(request: FlushRequest) -> FlushResult:
    """Run one flush; never raises (failures become ``error`` results)."""
    started = time.perf_counter()
    result = FlushResult(session_id=request.session_id)
    try:
        with _backend_scope(request.kernel_backend):
            if request.model is not None:
                sofia = request.model
            elif request.state is not None:
                sofia = loads_sofia(request.state)
            else:
                sofia = None
            if request.warmup_ys is not None:
                sofia = Sofia(request.config)
                completed = sofia.initialize(
                    list(request.warmup_ys), list(request.warmup_masks)
                )
                result.results.extend(
                    zip(request.warmup_seqs, completed)
                )
                result.consumed += len(request.warmup_seqs)
            if request.step_ys is not None and len(request.step_seqs):
                steps = sofia.step_batch(
                    request.step_ys, request.step_masks
                )
                result.results.extend(
                    (seq, step.completed)
                    for seq, step in zip(request.step_seqs, steps)
                )
                result.consumed += len(request.step_seqs)
                # Quality aggregates from arrays the step already
                # computed — reductions only, no new linear algebra.
                for seq, step, y, m in zip(
                    request.step_seqs,
                    steps,
                    request.step_ys,
                    request.step_masks,
                ):
                    mask = np.asarray(m, dtype=bool)
                    y_arr = np.asarray(y, dtype=float)
                    forecast = np.asarray(step.prediction, dtype=float)
                    residual = np.where(mask, y_arr - forecast, 0.0)
                    signal = np.where(mask, y_arr, 0.0)
                    result.quality.append(
                        (
                            seq,
                            int(mask.sum()),
                            float(np.sum(residual * residual)),
                            float(np.sum(signal * signal)),
                            int(np.count_nonzero(np.asarray(step.outliers))),
                        )
                    )
                result.error_scale = float(
                    np.mean(np.asarray(sofia.state.sigma))
                )
        if request.transport == "state":
            result.state = dumps_sofia(sofia)
        else:
            result.model = sofia
    except Exception as exc:  # noqa: BLE001 - worker boundary
        result = FlushResult(
            session_id=request.session_id,
            error=f"{type(exc).__name__}: {exc}",
        )
    # Echoed even on error results, so a failed flush still completes
    # its slices' spans (with the error recorded) instead of leaving
    # dangling traces.
    result.trace_ids = dict(request.trace_ids)
    result.seconds = time.perf_counter() - started
    return result


def execute_requests(requests: list[FlushRequest]) -> list[FlushResult]:
    """Execute a fused group in one dispatch, members isolated."""
    return [execute_request(request) for request in requests]


def process_worker_main(connection) -> None:
    """Request loop of one ``multiprocessing`` worker lane.

    Receives pickled request groups over ``connection``, answers with
    the matching result groups, and exits on the ``None`` sentinel.
    ``execute_request`` already converts per-session exceptions into
    error results, so the loop itself only ends at shutdown (sentinel
    or closed pipe).
    """
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        connection.send(execute_requests(message))
