"""Shared fixtures for baseline tests."""

import pytest

from repro.datasets import seasonal_stream
from repro.streams import CorruptionSpec, TensorStream, corrupt


@pytest.fixture(scope="session")
def clean_stream():
    """Seasonal rank-3 stream used across baseline tests."""
    return seasonal_stream((10, 8), rank=3, period=10, n_steps=80, seed=21)


@pytest.fixture(scope="session")
def mild_corruption(clean_stream):
    c = corrupt(clean_stream.data, CorruptionSpec(20, 0, 0), seed=3)
    observed = TensorStream(data=c.observed, mask=c.mask, period=10)
    truth = TensorStream.fully_observed(clean_stream.data, period=10)
    return observed, truth


@pytest.fixture(scope="session")
def outlier_corruption(clean_stream):
    c = corrupt(clean_stream.data, CorruptionSpec(20, 10, 3), seed=4)
    observed = TensorStream(data=c.observed, mask=c.mask, period=10)
    truth = TensorStream.fully_observed(clean_stream.data, period=10)
    return observed, truth
