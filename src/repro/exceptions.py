"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape or number of modes."""


class ConfigError(ReproError, ValueError):
    """A configuration value is out of its documented range."""


class NotFittedError(ReproError, RuntimeError):
    """A model method was called before the model was initialized/fitted."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to make progress (e.g. singular system)."""


class DatasetError(ReproError, ValueError):
    """A dataset name or dataset parameter is invalid."""


class CheckpointError(ReproError, ValueError):
    """A model checkpoint is unreadable, incomplete, or from an
    incompatible format version."""


class SessionError(ReproError, RuntimeError):
    """A serving-session operation cannot be performed (see message)."""


class SessionNotFoundError(SessionError, KeyError):
    """No serving session is registered under the given id."""


class SessionExistsError(SessionError):
    """A serving session with the given id already exists."""
