"""Additive Holt-Winters smoothing and forecasting (paper §III-C).

The additive model tracks a level ``l_t``, a trend ``b_t`` and ``m``
seasonal components ``s_t`` with smoothing parameters ``alpha``, ``beta``
and ``gamma`` (Eq. 5), and forecasts ``h`` steps ahead with Eq. 6.

State is carried in :class:`HoltWintersState`, whose ``seasonal`` buffer
stores the most recent season ``s_{t-m+1}, ..., s_t`` oldest-first, which
is exactly the information the forecast equation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.exceptions import ConfigError, ShapeError

__all__ = [
    "HoltWintersParams",
    "HoltWintersState",
    "hw_filter",
    "hw_forecast",
    "hw_update",
    "initial_state",
    "one_step_sse",
]


@dataclass(frozen=True)
class HoltWintersParams:
    """Smoothing parameters ``(alpha, beta, gamma)``, each in [0, 1]."""

    alpha: float
    beta: float
    gamma: float

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")

    def as_array(self) -> np.ndarray:
        return np.array([self.alpha, self.beta, self.gamma])


@dataclass(frozen=True)
class HoltWintersState:
    """Level, trend and one season of seasonal components (oldest first)."""

    level: float
    trend: float
    seasonal: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        arr = np.asarray(self.seasonal, dtype=np.float64).reshape(-1)
        if arr.size < 1:
            raise ShapeError("seasonal buffer must have at least one entry")
        object.__setattr__(self, "seasonal", arr)

    @property
    def period(self) -> int:
        return int(self.seasonal.size)

    def forecast_next(self) -> float:
        """One-step-ahead forecast ``l_t + b_t + s_{t+1-m}`` (Eq. 6, h=1)."""
        return self.level + self.trend + float(self.seasonal[0])


def initial_state(series: np.ndarray, period: int) -> HoltWintersState:
    """Heuristic initial HW state from at least two full seasons.

    Uses the standard convention (Hyndman & Athanasopoulos): the initial
    level is the first season's mean, the initial trend is the per-step
    change between the first two seasonal means, and each seasonal
    component is the average deviation of its phase from its season mean.
    """
    y = np.asarray(series, dtype=np.float64).reshape(-1)
    if period < 1:
        raise ConfigError(f"period must be >= 1, got {period}")
    if y.size < 2 * period:
        raise ShapeError(
            f"need at least two seasons ({2 * period} points) to initialize, "
            f"got {y.size}"
        )
    n_seasons = y.size // period
    seasons = y[: n_seasons * period].reshape(n_seasons, period)
    season_means = seasons.mean(axis=1)
    level = float(season_means[0])
    trend = float(season_means[1] - season_means[0]) / period
    seasonal = (seasons - season_means[:, None]).mean(axis=0)
    return HoltWintersState(level=level, trend=trend, seasonal=seasonal)


def hw_update(
    state: HoltWintersState, value: float, params: HoltWintersParams
) -> HoltWintersState:
    """Apply one step of the smoothing equations (Eq. 5) for ``value``."""
    s_old = float(state.seasonal[0])  # s_{t-m}
    level = params.alpha * (value - s_old) + (1.0 - params.alpha) * (
        state.level + state.trend
    )
    trend = params.beta * (level - state.level) + (1.0 - params.beta) * state.trend
    s_new = params.gamma * (value - state.level - state.trend) + (
        1.0 - params.gamma
    ) * s_old
    seasonal = np.roll(state.seasonal, -1)
    seasonal[-1] = s_new
    return replace(state, level=level, trend=trend, seasonal=seasonal)


def hw_forecast(state: HoltWintersState, horizon: int) -> np.ndarray:
    """Forecast ``horizon`` steps ahead (Eq. 6).

    For horizon ``h`` the seasonal term is ``s_{t+h-m(floor((h-1)/m)+1)}``,
    i.e. the matching phase from the last observed season.
    """
    if horizon < 1:
        raise ConfigError(f"horizon must be >= 1, got {horizon}")
    m = state.period
    steps = np.arange(1, horizon + 1)
    seasonal_idx = (steps - 1) % m
    return state.level + steps * state.trend + state.seasonal[seasonal_idx]


def hw_filter(
    series: np.ndarray,
    params: HoltWintersParams,
    state: HoltWintersState,
) -> tuple[np.ndarray, HoltWintersState]:
    """Run the HW recursion over ``series``.

    Returns the one-step-ahead forecasts ``yhat_{t|t-1}`` for every point of
    ``series`` and the state after consuming all of it.
    """
    y = np.asarray(series, dtype=np.float64).reshape(-1)
    forecasts = np.empty_like(y)
    current = state
    for t, value in enumerate(y):
        forecasts[t] = current.forecast_next()
        current = hw_update(current, float(value), params)
    return forecasts, current


def one_step_sse(
    series: np.ndarray,
    params: HoltWintersParams,
    state: HoltWintersState,
) -> float:
    """Sum of squared one-step forecast errors over ``series`` (§III-C)."""
    forecasts, _ = hw_filter(series, params, state)
    residuals = np.asarray(series, dtype=np.float64).reshape(-1) - forecasts
    return float(np.dot(residuals, residuals))
