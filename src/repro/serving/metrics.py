"""Thread-safe counters for the serving runtime.

One :class:`ServingMetrics` instance is shared by the session manager,
the micro-batching scheduler, and the checkpoint store; the gateway
exposes :meth:`ServingMetrics.snapshot` at ``GET /metrics``.  All
updates take the instance lock, so worker threads can bump counters
concurrently and a snapshot is always internally consistent.
"""

from __future__ import annotations

import threading

__all__ = ["ServingMetrics"]

#: Counter names a ServingMetrics instance tracks.  ``increment`` with
#: any other name raises — a typo'd metric would otherwise count into
#: the void forever.
_COUNTERS = (
    "sessions_created",
    "sessions_closed",
    "slices_ingested",
    "slices_flushed",
    "batches_flushed",
    "flush_failures",
    "evictions",
    "rehydrations",
    "imputations",
    "forecasts",
    # One per scheduler dispatch (= one worker wakeup; on a process
    # pool, one IPC round-trip).  A dispatch covering a fused group of
    # several sessions also counts into fused_dispatches, and every
    # group member into fused_sessions_flushed — so
    # batches_flushed / dispatches is the cross-session amortization
    # factor the fusion path exists for.
    "dispatches",
    "fused_dispatches",
    "fused_sessions_flushed",
)


class ServingMetrics:
    """Monotonic counters plus flush-latency accumulation."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in _COUNTERS}
        self._flush_seconds = 0.0

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (must be a known name)."""
        if name not in self._counts:
            raise KeyError(
                f"unknown serving metric {name!r}; known: {_COUNTERS}"
            )
        with self._lock:
            self._counts[name] += amount

    def observe_flush(self, n_slices: int, seconds: float) -> None:
        """Record one scheduler flush of ``n_slices`` slices."""
        with self._lock:
            self._counts["batches_flushed"] += 1
            self._counts["slices_flushed"] += n_slices
            self._flush_seconds += seconds

    def snapshot(self) -> dict:
        """A consistent point-in-time copy of every counter.

        Includes three derived values: ``mean_batch_size`` (flushed
        slices per flush), ``mean_fused_sessions`` (session flushes
        per scheduler dispatch — 1.0 means no cross-session fusion
        happened), and ``flush_seconds_total``.
        """
        with self._lock:
            counts = dict(self._counts)
            flush_seconds = self._flush_seconds
        batches = counts["batches_flushed"]
        dispatches = counts["dispatches"]
        counts["flush_seconds_total"] = flush_seconds
        counts["mean_batch_size"] = (
            counts["slices_flushed"] / batches if batches else 0.0
        )
        # Solo dispatches carry one session each; fused ones carry
        # their member count (fused_sessions_flushed).  Warmup slices
        # absorbed without a dispatch count into batches_flushed but
        # not here.
        dispatched_flushes = (
            counts["dispatches"]
            - counts["fused_dispatches"]
            + counts["fused_sessions_flushed"]
        )
        counts["mean_fused_sessions"] = (
            dispatched_flushes / dispatches if dispatches else 0.0
        )
        return counts
