"""BRST: Bayesian robust streaming tensor factorization [14].

Zhang & Hawkins fit a probabilistic CP model with (a) automatic rank
determination through ARD (automatic relevance determination) priors on
the components, and (b) a sparse outlier term, using streaming
variational Bayes.  This implementation keeps the two essential
mechanisms in MAP form:

* per-component ARD precisions ``γ_r`` re-estimated from the component
  energies after every step; components whose precision explodes are
  pruned (their columns zeroed) — rank determination;
* a Laplace-prior outlier tensor updated by soft-thresholding of the
  residual.

The paper reports that BRST "wrongly estimated that the rank is 0 in all
the tensor streams" under the experimental corruption (§VI-C) and
excludes its curves; :attr:`estimated_rank` exposes the same diagnosis
for our benches, which report it the same way.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    Capabilities,
    ColdStartMixin,
    StreamingImputer,
    random_initial_factors,
    solve_temporal_weights,
)
from repro.core.outliers import soft_threshold
from repro.exceptions import ShapeError
from repro.tensor import kruskal_to_tensor

__all__ = ["Brst"]


class Brst(ColdStartMixin, StreamingImputer):
    """Streaming variational-Bayes-style robust factorization with ARD.

    Parameters
    ----------
    rank:
        Initial (maximum) CP rank; ARD may prune components.
    ard_threshold:
        Components with mean energy below this fraction of the largest
        component are pruned.
    outlier_scale:
        Laplace-prior scale: residuals beyond this multiple of the
        residual MAD are absorbed as outliers.
    learning_rate:
        Step size of the (normalized) MAP factor updates.
    seed:
        Seed for the lazy initialization.
    """

    name = "BRST"
    capabilities = Capabilities(
        name="BRST",
        imputation=True,
        forecasting=False,
        robust_missing=True,
        robust_outliers=True,
        online=True,
        seasonality_aware=False,
        trend_aware=False,
    )

    def __init__(
        self,
        rank: int,
        *,
        ard_threshold: float = 1e-3,
        outlier_scale: float = 3.0,
        learning_rate: float = 0.5,
        seed: int | None = 0,
    ):
        if rank < 1:
            raise ShapeError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.ard_threshold = ard_threshold
        self.outlier_scale = outlier_scale
        self.learning_rate = learning_rate
        self._rng = np.random.default_rng(seed)
        self._factors: list[np.ndarray] | None = None
        self._active = np.ones(rank, dtype=bool)

    @property
    def estimated_rank(self) -> int:
        """Number of components ARD has kept alive."""
        return int(self._active.sum())

    def _ensure_factors(self, shape: tuple[int, ...]) -> list[np.ndarray]:
        if self._factors is None:
            self._factors = random_initial_factors(
                shape, self.rank, self._rng, scale=0.3
            )
        return self._factors

    def _ard_prune(self) -> None:
        """Re-estimate component energies; zero out irrelevant ones."""
        energies = np.ones(self.rank)
        for factor in self._factors:
            energies *= np.sum(factor * factor, axis=0) / factor.shape[0]
        peak = float(energies.max())
        if peak <= 0:
            self._active[:] = False
            return
        self._active = energies >= self.ard_threshold * peak
        for factor in self._factors:
            factor[:, ~self._active] = 0.0

    def step(self, subtensor: np.ndarray, mask: np.ndarray) -> np.ndarray:
        y = np.asarray(subtensor, dtype=np.float64)
        m = np.asarray(mask, dtype=bool)
        factors = self._ensure_factors(y.shape)

        weights = solve_temporal_weights(y, m, factors)
        prediction = kruskal_to_tensor(factors, weights=weights)
        residual = np.where(m, y - prediction, 0.0)

        # Sparse outlier update: MAD-scaled soft threshold (Laplace MAP).
        observed_residuals = residual[m]
        mad = float(np.median(np.abs(observed_residuals))) if (
            observed_residuals.size
        ) else 0.0
        outliers = soft_threshold(residual, self.outlier_scale * max(mad, 1e-12))
        cleaned_residual = residual - outliers

        from repro.tensor import kernels

        n_modes = len(factors)
        updated = []
        for mode in range(n_modes):
            others = [factors[l] for l in range(n_modes) if l != mode]
            gradient = kernels.mttkrp(
                cleaned_residual, factors, mode, weights=weights
            )
            lipschitz = max(
                float(
                    np.sum(
                        kernels.kruskal_column_sq_norms(others, weights=weights)
                    )
                ),
                1e-12,
            )
            updated.append(
                factors[mode]
                + 2.0 * (self.learning_rate / lipschitz) * gradient
            )
        self._factors = updated
        self._ard_prune()
        weights = solve_temporal_weights(y, m, self._factors)
        weights[~self._active] = 0.0
        return kruskal_to_tensor(self._factors, weights=weights)
