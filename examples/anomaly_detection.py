"""Anomaly detection: SOFIA's outlier tensor as a live anomaly detector.

A byproduct of SOFIA's robustness machinery (Eq. 21): every step yields
an explicit outlier subtensor ``O_t`` — the part of the observation that
deviates from the forecast by more than ``k`` error scales.  This
example streams network traffic with injected incidents (link floods)
and shows that the entries flagged by ``O_t`` recover the injected
anomalies with high precision/recall, while the completed tensor stays
clean.

Run with::

    python examples/anomaly_detection.py
"""

import numpy as np

from repro.core import Sofia, SofiaConfig
from repro.datasets import load_dataset
from repro.tensor import relative_error


def main() -> None:
    ds = load_dataset("network_traffic", n_routers=12, period=24, n_seasons=9,
                      seed=0)
    data = ds.data
    period = ds.period
    print(f"dataset: {ds.info.title} stand-in, shape {ds.shape}, m={period}")

    # Inject incidents into the live phase: each incident floods one
    # origin-destination pair for one step with traffic far above normal.
    rng = np.random.default_rng(42)
    t_init = 3 * period
    n_steps = data.shape[-1]
    corrupted = data.copy()
    injected = np.zeros(data.shape, dtype=bool)
    n_incidents = 60
    times = rng.integers(t_init, n_steps, n_incidents)
    sources = rng.integers(0, data.shape[0], n_incidents)
    dests = rng.integers(0, data.shape[1], n_incidents)
    for s, d, t in zip(sources, dests, times):
        corrupted[s, d, t] += 4.0 * data.max()
        injected[s, d, t] = True
    print(f"injected {injected.sum()} single-entry incidents")

    config = SofiaConfig(
        rank=5, period=period, lambda1=0.1, lambda2=0.1,
        max_outer_iters=300, tol=1e-6,
    )
    sofia = Sofia(config)
    sofia.initialize([corrupted[..., t] for t in range(t_init)])

    true_positives = false_positives = false_negatives = 0
    completion_errors = []
    for t in range(t_init, n_steps):
        step = sofia.step(corrupted[..., t])
        # Flag entries whose outlier estimate is large relative to the
        # data scale (incidents are several times the normal maximum).
        flagged = np.abs(step.outliers) > 0.5 * data.max()
        truth_t = injected[..., t]
        true_positives += int(np.sum(flagged & truth_t))
        false_positives += int(np.sum(flagged & ~truth_t))
        false_negatives += int(np.sum(~flagged & truth_t))
        completion_errors.append(relative_error(step.completed, data[..., t]))

    precision = true_positives / max(true_positives + false_positives, 1)
    recall = true_positives / max(true_positives + false_negatives, 1)
    print(f"\nanomaly detection: precision {precision:.2f}, recall {recall:.2f}")
    print(
        f"completion quality despite incidents: mean NRE "
        f"{np.mean(completion_errors):.4f}"
    )
    if precision > 0.8 and recall > 0.8:
        print("=> the outlier tensor isolates the incidents cleanly")


if __name__ == "__main__":
    main()
