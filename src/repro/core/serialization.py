"""Save/load SOFIA model state as ``.npz`` archives.

An initialized :class:`repro.core.Sofia` can be checkpointed mid-stream
and restored later — the archive holds the non-temporal factors, the
temporal ring buffer, the vector Holt-Winters state, the error-scale
tensor, the step counter, and the configuration.  The serving layer's
eviction tier (:mod:`repro.serving.store`) spills cold sessions through
this exact format, so a round-trip must be bit-exact: ``np.savez``
stores the arrays losslessly and the config travels as JSON (Python
float repr round-trips exactly).

Format versioning
-----------------
``_FORMAT_VERSION`` is 2 since the config surface grew ``dtype``,
``density_threshold``, and ``batch_size``: every
:class:`~repro.core.config.SofiaConfig` field is round-tripped
explicitly and verified on load — a checkpoint whose config is missing
a field (or carries an unknown one) raises
:class:`~repro.exceptions.CheckpointError` instead of silently
defaulting, and so does any format-version mismatch.  Version-1
archives predate that config surface and are refused loudly for the
same reason.
"""

from __future__ import annotations

import dataclasses
import json
import zipfile
from pathlib import Path

import numpy as np

from repro.core.config import SofiaConfig
from repro.core.model import SofiaModelState
from repro.core.sofia import Sofia
from repro.exceptions import CheckpointError, NotFittedError
from repro.forecast.vector_hw import VectorHoltWinters

__all__ = ["load_sofia", "save_sofia"]

#: Version 2: the config JSON must carry the full post-PR-4 field set
#: (``dtype``, ``density_threshold``, ``batch_size``, ...) and is
#: checked field-by-field on load.
_FORMAT_VERSION = 2


def _config_field_names() -> set[str]:
    return {field.name for field in dataclasses.fields(SofiaConfig)}


def save_sofia(sofia: Sofia, path: str | Path) -> None:
    """Checkpoint an initialized SOFIA model to ``path`` (npz)."""
    if not sofia.is_initialized:
        raise NotFittedError("cannot save an uninitialized SOFIA model")
    state = sofia.state
    arrays: dict[str, np.ndarray] = {
        "temporal_buffer": state.temporal_buffer,
        "sigma": state.sigma,
        "hw_level": state.hw.level,
        "hw_trend": state.hw.trend,
        "hw_seasonal": state.hw.seasonal,
        "hw_alpha": state.hw.alpha,
        "hw_beta": state.hw.beta,
        "hw_gamma": state.hw.gamma,
        "t": np.asarray(state.t),
        "n_factors": np.asarray(len(state.non_temporal)),
        "format_version": np.asarray(_FORMAT_VERSION),
    }
    for i, factor in enumerate(state.non_temporal):
        arrays[f"factor_{i}"] = factor
    config_fields = dataclasses.asdict(sofia.config)
    # The full field set is written explicitly (not just "whatever the
    # dataclass happens to hold") so load_sofia can verify it; a field
    # added to SofiaConfig without a version bump fails the next
    # round-trip test rather than silently defaulting on load.
    assert set(config_fields) == _config_field_names()
    config_json = json.dumps(config_fields)
    arrays["config_json"] = np.frombuffer(
        config_json.encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **arrays)


def _load_config(archive) -> SofiaConfig:
    config_json = bytes(archive["config_json"].tobytes()).decode("utf-8")
    payload = json.loads(config_json)
    expected = _config_field_names()
    saved = set(payload)
    if saved != expected:
        missing = sorted(expected - saved)
        unexpected = sorted(saved - expected)
        raise CheckpointError(
            "checkpoint config does not match this build's SofiaConfig "
            f"(missing fields: {missing}, unexpected fields: "
            f"{unexpected}); refusing to fill the gaps with defaults — "
            "re-save the checkpoint with this version"
        )
    return SofiaConfig(**payload)


def load_sofia(path: str | Path) -> Sofia:
    """Restore a SOFIA model checkpointed by :func:`save_sofia`.

    Raises
    ------
    CheckpointError
        If ``path`` is not a SOFIA checkpoint, its format version does
        not match this build's ``_FORMAT_VERSION``, or its config does
        not carry exactly this build's :class:`SofiaConfig` fields.
        Nothing is ever silently defaulted.
    """
    try:
        archive_ctx = np.load(Path(path))
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise CheckpointError(
            f"cannot read {path!s} as a SOFIA checkpoint: {exc}"
        ) from exc
    with archive_ctx as archive:
        if "format_version" not in archive:
            raise CheckpointError(
                f"{path!s} has no 'format_version' field — not a SOFIA "
                "checkpoint"
            )
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format version {version} does not match "
                f"this build's version {_FORMAT_VERSION}; version-1 "
                "archives predate the dtype/density_threshold/"
                "batch_size config surface and would load with "
                "silently defaulted fields — re-save the model with "
                "this version instead"
            )
        config = _load_config(archive)
        n_factors = int(archive["n_factors"])
        non_temporal = [archive[f"factor_{i}"] for i in range(n_factors)]
        hw = VectorHoltWinters(
            level=archive["hw_level"],
            trend=archive["hw_trend"],
            seasonal=archive["hw_seasonal"],
            alpha=archive["hw_alpha"],
            beta=archive["hw_beta"],
            gamma=archive["hw_gamma"],
        )
        state = SofiaModelState(
            non_temporal=non_temporal,
            temporal_buffer=archive["temporal_buffer"],
            hw=hw,
            sigma=archive["sigma"],
            t=int(archive["t"]),
        )
    return Sofia.from_state(config, state)
