"""Seeded random constructions of factors and low-rank tensors.

All functions accept either a seed (``int``/``None``) or an existing
:class:`numpy.random.Generator`, which keeps every experiment in this
repository reproducible from a single integer.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ShapeError
from repro.tensor.products import kruskal_to_tensor
from repro.tensor.validation import check_rank

__all__ = [
    "as_generator",
    "random_factors",
    "random_kruskal_tensor",
]


def as_generator(
    seed: int | np.random.Generator | None,
) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_factors(
    shape: Sequence[int],
    rank: int,
    *,
    seed: int | np.random.Generator | None = None,
    scale: float = 1.0,
    nonnegative: bool = False,
) -> list[np.ndarray]:
    """Draw CP factor matrices with i.i.d. Gaussian (or uniform) entries.

    Parameters
    ----------
    shape:
        Mode lengths ``(I_1, ..., I_N)``.
    rank:
        Number of components ``R``.
    seed:
        Seed or generator.
    scale:
        Standard deviation (Gaussian) or upper bound (uniform).
    nonnegative:
        Draw from ``U[0, scale)`` instead of ``N(0, scale^2)``.
    """
    rank = check_rank(rank)
    dims = [int(s) for s in shape]
    if any(d < 1 for d in dims):
        raise ShapeError(f"all mode lengths must be positive, got {shape}")
    rng = as_generator(seed)
    if nonnegative:
        return [rng.uniform(0.0, scale, size=(d, rank)) for d in dims]
    return [rng.normal(0.0, scale, size=(d, rank)) for d in dims]


def random_kruskal_tensor(
    shape: Sequence[int],
    rank: int,
    *,
    seed: int | np.random.Generator | None = None,
    noise: float = 0.0,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Generate a random low-rank tensor and its ground-truth factors.

    Parameters
    ----------
    noise:
        Standard deviation of additive Gaussian noise relative to the
        tensor's RMS entry value (0 disables noise).

    Returns
    -------
    (tensor, factors)
    """
    rng = as_generator(seed)
    factors = random_factors(shape, rank, seed=rng)
    tensor = kruskal_to_tensor(factors)
    if noise > 0.0:
        rms = float(np.sqrt(np.mean(tensor**2)))
        tensor = tensor + rng.normal(0.0, noise * max(rms, 1e-12), tensor.shape)
    return tensor, factors
