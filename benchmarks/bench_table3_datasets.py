"""Table III: dataset summary (paper shapes + generated stand-in shapes).

Renders the paper's dataset table from the registry and reports the
scaled shapes the benches actually run on; the benchmark times one
stand-in generation.
"""

from conftest import report

from repro.experiments import SMALL_SCALE, dataset_stream, format_table
from repro.experiments.tables import table3_text


def test_bench_table3(benchmark):
    report(table3_text())

    rows = []
    for name in ("intel_lab", "network_traffic", "chicago_taxi", "nyc_taxi"):
        ds = dataset_stream(name, SMALL_SCALE)
        rows.append(
            [
                ds.info.title,
                "x".join(str(d) for d in ds.shape),
                ds.period,
                f"rank {SMALL_SCALE.ranks[name]}",
            ]
        )
    report(
        format_table(
            ["Dataset", "Generated shape", "Period", "Model"],
            rows,
            title="Generated stand-ins (small preset)",
        )
    )

    ds = benchmark(lambda: dataset_stream("chicago_taxi", SMALL_SCALE))
    assert ds.n_steps == ds.period * 9
