"""Ablations: the design choices DESIGN.md calls out, plus BRST's
rank-collapse diagnosis (the reason its curves are absent from Fig. 3).

The benchmark times the full-SOFIA variant's streaming run.
"""

from conftest import report

from repro.baselines import Brst, SofiaImputer
from repro.core import SofiaConfig
from repro.datasets import seasonal_stream
from repro.experiments import format_table, run_ablation
from repro.streams import CorruptionSpec, TensorStream, corrupt, run_imputation


def test_bench_ablation(benchmark):
    outcomes = run_ablation(setting=CorruptionSpec(50, 15, 4))
    report(
        format_table(
            ["Variant", "RAE"],
            [[o.variant, o.rae] for o in outcomes],
            title="Ablation: SOFIA design choices at (50, 15, 4)",
        )
    )
    rae = {o.variant: o.rae for o in outcomes}
    full = rae["full SOFIA"]
    # Every ablation should cost accuracy (some slack for jitter).
    for name, value in rae.items():
        if name != "full SOFIA":
            assert value >= 0.8 * full, (name, value, full)

    # Benchmark the full variant end to end on the same stream.
    stream = seasonal_stream((12, 10), rank=3, period=12, n_steps=108, seed=0)
    corrupted = corrupt(stream.data, CorruptionSpec(50, 15, 4), seed=1)
    observed = TensorStream(
        data=corrupted.observed, mask=corrupted.mask, period=12
    )
    truth = TensorStream.fully_observed(stream.data, period=12)
    config = SofiaConfig(
        rank=3, period=12, lambda1=0.1, lambda2=0.1,
        max_outer_iters=100, tol=1e-6,
    )

    def run_full():
        return run_imputation(
            SofiaImputer(config), observed, truth, startup_steps=36
        )

    result = benchmark.pedantic(run_full, rounds=2, iterations=1)
    assert result.rae < 1.0


def test_bench_brst_rank_collapse(benchmark):
    """BRST's ARD under heavy corruption: the paper reports it estimated
    rank 0 and omits its curves; we report the estimated rank the same
    way."""
    stream = seasonal_stream((12, 10), rank=3, period=12, n_steps=108, seed=0)
    corrupted = corrupt(stream.data, CorruptionSpec(70, 20, 5), seed=1)
    observed = TensorStream(
        data=corrupted.observed, mask=corrupted.mask, period=12
    )
    truth = TensorStream.fully_observed(stream.data, period=12)

    def run_brst():
        algo = Brst(6, ard_threshold=1e-2, seed=0)
        result = run_imputation(algo, observed, truth, startup_steps=36)
        return algo, result

    algo, result = benchmark.pedantic(run_brst, rounds=1, iterations=1)
    report(
        f"BRST at (70, 20, 5): estimated rank {algo.estimated_rank} of 6, "
        f"RAE {result.rae:.3f} (paper: BRST degenerated — rank 0 — and was "
        f"excluded from Fig. 3)"
    )
    # Diagnosis shape: BRST fails to track the stream under corruption.
    assert result.rae > 0.5
