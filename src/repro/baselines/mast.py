"""MAST: multi-aspect streaming tensor completion [13] (temporal growth).

Song et al. handle tensors that grow along several modes at once with an
ADMM scheme whose core ingredients are (a) a least-squares data fit on
the newly arrived entries, (b) a proximal anchor pulling the factors
toward their previous values (weighted by a forgetting factor), and
(c) low-rank regularization.  The paper's experiments (and ours) only
grow the temporal mode, so this implementation specializes to that case:
each step solves

``min_{U, w}  ||Ω_t ⊛ (Y_t - [[U; w]])||² + α Σ_n ||U^(n) - U^(n)_prev||²
+ γ (Σ_n ||U^(n)||² + ||w||²)``

by one pass of regularized row-wise least squares per factor, which is
the ADMM iteration's primal update with the dual fixed (documented
simplification, DESIGN.md §4).  No outlier model (Table I).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    Capabilities,
    ColdStartMixin,
    StreamingImputer,
    random_initial_factors,
    solve_temporal_weights,
)
from repro.exceptions import ShapeError
from repro.tensor import kernels, kruskal_to_tensor

__all__ = ["Mast"]


class Mast(ColdStartMixin, StreamingImputer):
    """Streaming completion with proximal anchoring to previous factors.

    Parameters
    ----------
    rank:
        CP rank.
    alpha:
        Proximal weight tying factors to their previous values; plays the
        role of MAST's forgetting-weighted history term.
    gamma:
        Low-rank (ridge) regularization weight.
    seed:
        Seed for the lazy random initialization.
    """

    name = "MAST"
    capabilities = Capabilities(
        name="MAST",
        imputation=True,
        forecasting=False,
        robust_missing=True,
        robust_outliers=False,
        online=True,
        seasonality_aware=False,
        trend_aware=False,
    )

    def __init__(
        self,
        rank: int,
        *,
        alpha: float = 1.0,
        gamma: float = 1e-3,
        seed: int | None = 0,
    ):
        if rank < 1:
            raise ShapeError(f"rank must be >= 1, got {rank}")
        if alpha < 0 or gamma < 0:
            raise ShapeError("alpha and gamma must be non-negative")
        self.rank = rank
        self.alpha = alpha
        self.gamma = gamma
        self._rng = np.random.default_rng(seed)
        self._factors: list[np.ndarray] | None = None

    def _ensure_factors(self, shape: tuple[int, ...]) -> list[np.ndarray]:
        if self._factors is None:
            self._factors = random_initial_factors(
                shape, self.rank, self._rng, scale=0.5
            )
        return self._factors

    def _update_factor_rows(
        self,
        y: np.ndarray,
        m: np.ndarray,
        factors: list[np.ndarray],
        mode: int,
        weights: np.ndarray,
    ) -> np.ndarray:
        """Regularized row-wise LS for one non-temporal factor."""
        rank = self.rank
        coords = np.nonzero(m)
        design = kernels.observed_factor_products(
            coords, factors, skip_mode=mode, weights=weights
        )
        dim = factors[mode].shape[0]
        gram, rhs = kernels.scatter_normal_equations(
            coords[mode], design, y[coords], dim
        )
        prox = self.alpha + self.gamma
        lhs = gram + prox * np.eye(rank)
        targets = rhs + self.alpha * factors[mode]
        return kernels.solve_rows(lhs, targets, fallback=factors[mode])

    def step(self, subtensor: np.ndarray, mask: np.ndarray) -> np.ndarray:
        y = np.asarray(subtensor, dtype=np.float64)
        m = np.asarray(mask, dtype=bool)
        factors = self._ensure_factors(y.shape)

        weights = solve_temporal_weights(y, m, factors, ridge=self.gamma)
        updated = list(factors)
        for mode in range(len(factors)):
            updated[mode] = self._update_factor_rows(
                y, m, updated, mode, weights
            )
        self._factors = updated
        weights = solve_temporal_weights(y, m, self._factors, ridge=self.gamma)
        return kruskal_to_tensor(self._factors, weights=weights)
