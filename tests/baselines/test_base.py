"""Unit tests for the shared baseline machinery."""

import numpy as np
import pytest

from repro.baselines import solve_temporal_weights
from repro.baselines.base import random_initial_factors
from repro.exceptions import ShapeError
from repro.tensor import kruskal_to_tensor, random_factors


class TestSolveTemporalWeights:
    def test_exact_recovery_full_mask(self):
        factors = random_factors((6, 5), 3, seed=0)
        w_true = np.array([1.5, -2.0, 0.5])
        y = kruskal_to_tensor(factors, weights=w_true)
        mask = np.ones(y.shape, dtype=bool)
        w = solve_temporal_weights(y, mask, factors, ridge=1e-12)
        np.testing.assert_allclose(w, w_true, atol=1e-8)

    def test_recovery_with_missing(self):
        factors = random_factors((8, 7), 3, seed=1)
        w_true = np.array([1.0, 2.0, -1.0])
        y = kruskal_to_tensor(factors, weights=w_true)
        mask = np.random.default_rng(2).random(y.shape) > 0.5
        w = solve_temporal_weights(y, mask, factors, ridge=1e-12)
        np.testing.assert_allclose(w, w_true, atol=1e-6)

    def test_empty_mask_returns_zeros(self):
        factors = random_factors((4, 4), 2, seed=3)
        w = solve_temporal_weights(
            np.ones((4, 4)), np.zeros((4, 4), dtype=bool), factors
        )
        np.testing.assert_array_equal(w, 0.0)

    def test_ridge_shrinks(self):
        factors = random_factors((6, 5), 2, seed=4)
        w_true = np.array([3.0, -3.0])
        y = kruskal_to_tensor(factors, weights=w_true)
        mask = np.ones(y.shape, dtype=bool)
        w_small = solve_temporal_weights(y, mask, factors, ridge=1e-10)
        w_big = solve_temporal_weights(y, mask, factors, ridge=1e3)
        assert np.linalg.norm(w_big) < np.linalg.norm(w_small)

    def test_shape_mismatch(self):
        factors = random_factors((4, 4), 2, seed=5)
        with pytest.raises(ShapeError):
            solve_temporal_weights(
                np.ones((4, 4)), np.ones((3, 3), dtype=bool), factors
            )


class TestRandomInitialFactors:
    def test_shapes_and_scale(self):
        rng = np.random.default_rng(0)
        factors = random_initial_factors((30, 40), 5, rng, scale=0.1)
        assert [f.shape for f in factors] == [(30, 5), (40, 5)]
        assert np.std(factors[0]) == pytest.approx(0.1, rel=0.3)
