"""Shared fixtures for core tests: synthetic seasonal tensor streams."""

import numpy as np
import pytest

from repro.tensor import kruskal_to_tensor


def make_seasonal_stream(
    dims=(12, 10),
    rank=3,
    period=12,
    n_steps=48,
    trend=0.0,
    seed=42,
):
    """Low-rank tensor stream with sinusoidal seasonal temporal factors.

    Mirrors the paper's Fig. 2 construction: non-temporal factors are
    uniform on [0, 1] and temporal columns are a*sin(2*pi*t/m + b) + c.
    Returns (full tensor with time last, temporal factor, non-temporal
    factors).
    """
    rng = np.random.default_rng(seed)
    t = np.arange(n_steps)
    a = rng.uniform(0.5, 2.0, rank)
    b = rng.uniform(0, 2 * np.pi, rank)
    c = rng.uniform(1.0, 2.0, rank)
    temporal = np.stack(
        [
            a[r] * np.sin(2 * np.pi * t / period + b[r]) + c[r] + trend * t
            for r in range(rank)
        ],
        axis=1,
    )
    non_temporal = [rng.uniform(0, 1, size=(d, rank)) for d in dims]
    tensor = np.stack(
        [
            kruskal_to_tensor(non_temporal, weights=temporal[i])
            for i in range(n_steps)
        ],
        axis=-1,
    )
    return tensor, temporal, non_temporal


def corrupt_tensor(tensor, missing_pct, outlier_pct, magnitude, seed=7):
    """Apply the paper's (X, Y, Z) corruption model to a full tensor."""
    rng = np.random.default_rng(seed)
    mask = rng.random(tensor.shape) > missing_pct / 100.0
    corrupted = tensor.copy()
    outlier_idx = rng.random(tensor.shape) < outlier_pct / 100.0
    signs = np.where(rng.random(outlier_idx.sum()) < 0.5, -1.0, 1.0)
    corrupted[outlier_idx] += signs * magnitude * np.abs(tensor).max()
    return corrupted, mask, outlier_idx


@pytest.fixture
def seasonal_stream():
    return make_seasonal_stream()


@pytest.fixture
def small_stream():
    return make_seasonal_stream(dims=(6, 5), rank=2, period=6, n_steps=30)
