"""Reusable cross-backend conformance harness for the kernel seam.

Every backend registered in :mod:`repro.tensor.kernels` is checked
against the ``"reference"`` backend (the seed's scalar semantics) on
all six dispatched kernels — current backends (``batched``, ``sparse``,
``auto``) and any future one (GPU, distributed) alike.  A new backend
only has to call :func:`repro.tensor.kernels.register_backend` before
the suite runs; :func:`backends_under_test` picks it up and the whole
case matrix below applies to it with no new test code.

Structure
---------
* :func:`backends_under_test` — every registered backend except the
  reference it is compared against.
* :func:`iter_conformance_cases` — ``(kernel, case_id, check)`` triples;
  each ``check`` is a callable taking a backend name and asserting
  parity with ``"reference"`` (same tolerances the original
  batched-vs-reference parity tests used).

The case matrix sweeps observed density over
{0%, 0.5%, 5%, 50%, 100%} — crossing the 5% auto-dispatch threshold
from both sides — and pins the degenerate coordinate patterns a
histogram/segment path can silently mishandle: empty masks, a single
observed entry, and every observed entry landing in one factor row.
Solver edge cases (singular systems, all-zero rows, empty batches) ride
along from the original parity suite.
"""

from collections.abc import Callable

import numpy as np

from repro.tensor import kernels, random_factors

__all__ = [
    "DENSITIES",
    "backends_under_test",
    "iter_conformance_cases",
]

#: Observed fractions swept by the density cases; 0.05 is the auto
#: backend's dispatch threshold, approached from both sides.
DENSITIES = (0.0, 0.005, 0.05, 0.5, 1.0)

_SHAPE = (6, 5, 12)
_RANK = 3

_CASES: list[tuple[str, str, Callable[[str], None]]] = []


def backends_under_test() -> list[str]:
    """All registered backends except the reference they are pinned to."""
    return [
        name for name in kernels.available_backends() if name != "reference"
    ]


def iter_conformance_cases() -> list[tuple[str, str, Callable[[str], None]]]:
    """``(kernel, case_id, check)`` triples covering all six kernels."""
    return list(_CASES)


def _case(kernel: str, case_id: str):
    def decorate(check: Callable[[str], None]):
        _CASES.append((kernel, case_id, check))
        return check

    return decorate


def _call(backend: str, kernel: str, *args, **kwargs):
    with kernels.use_backend(backend):
        return getattr(kernels, kernel)(*args, **kwargs)


def _both(backend: str, kernel: str, *args, **kwargs):
    """Evaluate one kernel under ``backend`` and under the reference."""
    got = _call(backend, kernel, *args, **kwargs)
    expected = _call("reference", kernel, *args, **kwargs)
    return got, expected


def _mask_for(seed: int, shape, density: float | str) -> np.ndarray:
    """Observation mask at a density, or one of the edge patterns.

    ``"empty"``/``"single"``/``"one_row"`` build the degenerate masks;
    a float draws i.i.d. Bernoulli(density) observations.
    """
    rng = np.random.default_rng(seed)
    if density == "empty":
        return np.zeros(shape, dtype=bool)
    if density == "single":
        mask = np.zeros(shape, dtype=bool)
        mask[tuple(int(rng.integers(0, s)) for s in shape)] = True
        return mask
    if density == "one_row":
        # Every observed entry shares index 1 of the *first* mode: the
        # whole histogram collapses into one bin and all other bins
        # must come back exactly zero despite never being touched.
        mask = np.zeros(shape, dtype=bool)
        mask[1] = rng.random(shape[1:]) < 0.6
        return mask
    if density >= 1.0:
        return np.ones(shape, dtype=bool)
    return rng.random(shape) < density


def _observed_case(seed: int, density: float | str, shape=_SHAPE):
    """Coordinates, values, and factors of one masked-tensor case."""
    rng = np.random.default_rng(seed + 1000)
    factors = random_factors(shape, _RANK, seed=seed)
    mask = _mask_for(seed, shape, density)
    coords = np.nonzero(mask)
    values = rng.normal(size=coords[0].size)
    return coords, values, factors, mask


# ---------------------------------------------------------------------------
# solve_rows
# ---------------------------------------------------------------------------


@_case("solve_rows", "well_conditioned")
def _check_solve_well_conditioned(backend: str) -> None:
    rng = np.random.default_rng(0)
    base = rng.normal(size=(40, 4, 4))
    lhs = base @ base.transpose(0, 2, 1) + 0.5 * np.eye(4)
    rhs = rng.normal(size=(40, 4))
    fallback = rng.normal(size=(40, 4))
    got, expected = _both(backend, "solve_rows", lhs, rhs, fallback)
    np.testing.assert_allclose(got, expected, atol=1e-10)
    np.testing.assert_allclose(
        np.einsum("nij,nj->ni", lhs, got), rhs, atol=1e-6
    )


@_case("solve_rows", "singular_consistent")
def _check_solve_singular(backend: str) -> None:
    # Rank-1 systems with consistent right-hand sides: a plain batched
    # solve would fail; lstsq/pinv fallbacks must agree.
    rng = np.random.default_rng(1)
    v = rng.normal(size=(10, 3))
    lhs = v[:, :, None] * v[:, None, :]
    rhs = np.einsum("nij,nj->ni", lhs, rng.normal(size=(10, 3)))
    got, expected = _both(backend, "solve_rows", lhs, rhs)
    np.testing.assert_allclose(got, expected, atol=1e-7)


@_case("solve_rows", "all_zero_rows_keep_fallback")
def _check_solve_fallback(backend: str) -> None:
    rng = np.random.default_rng(2)
    lhs = np.zeros((6, 3, 3))
    rhs = np.zeros((6, 3))
    lhs[0] = np.eye(3)
    rhs[0] = rng.normal(size=3)
    fallback = rng.normal(size=(6, 3))
    got, expected = _both(backend, "solve_rows", lhs, rhs, fallback)
    np.testing.assert_allclose(got, expected, atol=1e-10)
    np.testing.assert_array_equal(got[1:], fallback[1:])


@_case("solve_rows", "zero_lhs_nonzero_rhs_solved")
def _check_solve_zero_lhs(backend: str) -> None:
    # Only rows where BOTH sides vanish pass through to the fallback.
    lhs = np.zeros((2, 2, 2))
    rhs = np.array([[1.0, -2.0], [0.0, 0.0]])
    fallback = np.full((2, 2), 7.0)
    got, expected = _both(backend, "solve_rows", lhs, rhs, fallback)
    np.testing.assert_allclose(got, expected, atol=1e-4, rtol=1e-4)
    np.testing.assert_array_equal(got[1], fallback[1])


@_case("solve_rows", "empty_batch")
def _check_solve_empty(backend: str) -> None:
    got = _call(backend, "solve_rows", np.zeros((0, 3, 3)), np.zeros((0, 3)))
    assert got.shape == (0, 3)


# ---------------------------------------------------------------------------
# accumulate_normal_equations
# ---------------------------------------------------------------------------


def _register_accumulate_cases() -> None:
    def make_check(density, mode, seed):
        def check(backend: str) -> None:
            coords, values, factors, _ = _observed_case(seed, density)
            got, expected = _both(
                backend,
                "accumulate_normal_equations",
                coords,
                values,
                factors,
                mode,
            )
            np.testing.assert_allclose(
                got[0], expected[0], atol=1e-9, rtol=1e-9
            )
            np.testing.assert_allclose(
                got[1], expected[1], atol=1e-9, rtol=1e-9
            )

        return check

    for density in DENSITIES:
        for mode in range(len(_SHAPE)):
            _case(
                "accumulate_normal_equations",
                f"density_{density}_mode_{mode}",
            )(make_check(density, mode, seed=7))
    for edge in ("empty", "single", "one_row"):
        for mode in range(len(_SHAPE)):
            _case(
                "accumulate_normal_equations", f"{edge}_mode_{mode}"
            )(make_check(edge, mode, seed=11))


_register_accumulate_cases()


# ---------------------------------------------------------------------------
# temporal_sweep
# ---------------------------------------------------------------------------


def _sweep_inputs(seed: int, density: float | str = 0.5):
    shape = (4, 3, 24)
    coords, values, factors, _ = _observed_case(seed, density, shape=shape)
    big_b, big_c = _call(
        "reference", "accumulate_normal_equations", coords, values, factors, 2
    )
    return big_b, big_c, factors[2]


@_case("temporal_sweep", "decoupled_exact")
def _check_sweep_decoupled(backend: str) -> None:
    # With zero smoothness the rows decouple, so every valid Gauss-Seidel
    # ordering gives identical results — exact parity is required.
    big_b, big_c, temporal = _sweep_inputs(3)
    got, expected = _both(
        backend,
        "temporal_sweep",
        big_b,
        big_c,
        temporal,
        lambda1=0.0,
        lambda2=0.0,
        period=7,
    )
    np.testing.assert_allclose(got, expected, atol=1e-10)


@_case("temporal_sweep", "coupled_shared_fixed_point")
def _check_sweep_fixed_point(backend: str) -> None:
    # With coupling, backends may sweep in different (valid) orderings;
    # both are Gauss-Seidel on the same linear system and must converge
    # to the same fixed point.
    big_b, big_c, temporal = _sweep_inputs(4)
    kwargs = dict(lambda1=0.5, lambda2=0.4, period=7)
    got = temporal.copy()
    expected = temporal.copy()
    for _ in range(250):
        got = _call(backend, "temporal_sweep", big_b, big_c, got, **kwargs)
        expected = _call(
            "reference", "temporal_sweep", big_b, big_c, expected, **kwargs
        )
    np.testing.assert_allclose(got, expected, atol=1e-8)


@_case("temporal_sweep", "uncoupled_rows_pass_through")
def _check_sweep_passthrough(backend: str) -> None:
    temporal = np.random.default_rng(5).normal(size=(10, 3))
    got = _call(
        backend,
        "temporal_sweep",
        np.zeros((10, 3, 3)),
        np.zeros((10, 3)),
        temporal,
        lambda1=0.0,
        lambda2=0.0,
        period=3,
    )
    np.testing.assert_array_equal(got, temporal)


# ---------------------------------------------------------------------------
# mttkrp
# ---------------------------------------------------------------------------


def _register_mttkrp_cases() -> None:
    def make_check(density, mode, weighted, seed):
        def check(backend: str) -> None:
            coords, values, factors, _ = _observed_case(seed, density)
            tensor = np.zeros(_SHAPE)
            tensor[coords] = values
            weights = (
                np.random.default_rng(seed).normal(size=_RANK)
                if weighted
                else None
            )
            got, expected = _both(
                backend, "mttkrp", tensor, factors, mode, weights
            )
            np.testing.assert_allclose(
                got, expected, atol=1e-10, rtol=1e-9
            )

        return check

    for density in DENSITIES:
        for mode in (0, 1, 2, None):
            _case("mttkrp", f"density_{density}_mode_{mode}")(
                make_check(density, mode, weighted=False, seed=13)
            )
    for edge in ("empty", "single", "one_row"):
        _case("mttkrp", f"{edge}_mode_0")(
            make_check(edge, 0, weighted=False, seed=17)
        )
    for mode in (0, 1, 2, None):
        _case("mttkrp", f"weighted_mode_{mode}")(
            make_check(0.5, mode, weighted=True, seed=19)
        )


_register_mttkrp_cases()


@_case("mttkrp", "single_mode_tensor")
def _check_mttkrp_single_mode(backend: str) -> None:
    rng = np.random.default_rng(7)
    tensor = rng.normal(size=5)
    factors = [rng.normal(size=(5, 3))]
    got, expected = _both(backend, "mttkrp", tensor, factors, 0)
    np.testing.assert_allclose(got, expected, atol=1e-12)


@_case("mttkrp", "none_slot_in_skipped_mode")
def _check_mttkrp_none_slot(backend: str) -> None:
    # The mini-batch engine passes ``None`` in the contracted-away slot
    # (the batch axis of Eq. 25); it must never be read.
    coords, values, factors, _ = _observed_case(23, 0.3)
    tensor = np.zeros(_SHAPE)
    tensor[coords] = values
    mats = [factors[0], factors[1], None]
    got, expected = _both(backend, "mttkrp", tensor, mats, 2)
    np.testing.assert_allclose(got, expected, atol=1e-10)


# ---------------------------------------------------------------------------
# kruskal_reconstruct_rows
# ---------------------------------------------------------------------------


def _register_kruskal_cases() -> None:
    def make_dense_check(n_batch, shape, seed):
        def check(backend: str) -> None:
            rng = np.random.default_rng(seed)
            factors = random_factors(shape, _RANK, seed=seed)
            weight_rows = rng.normal(size=(n_batch, _RANK))
            got, expected = _both(
                backend, "kruskal_reconstruct_rows", factors, weight_rows
            )
            np.testing.assert_allclose(got, expected, atol=1e-10)

        return check

    # Batch sizes straddle the batched backend's strategy switch at
    # ``n_batch >= I_last`` (5 and 6 here).
    for n_batch in (1, 3, 40):
        _case("kruskal_reconstruct_rows", f"dense_batch_{n_batch}")(
            make_dense_check(n_batch, (5, 6), seed=29)
        )
    _case("kruskal_reconstruct_rows", "dense_three_mode")(
        make_dense_check(3, (4, 3, 5), seed=31)
    )
    _case("kruskal_reconstruct_rows", "dense_single_factor")(
        make_dense_check(2, (6,), seed=37)
    )

    def make_coords_check(density, seed):
        def check(backend: str) -> None:
            rng = np.random.default_rng(seed)
            shape = (5, 6)
            n_batch = 7
            factors = random_factors(shape, _RANK, seed=seed)
            weight_rows = rng.normal(size=(n_batch, _RANK))
            mask = _mask_for(seed, (n_batch,) + shape, density)
            coords = np.nonzero(mask)
            got, expected = _both(
                backend,
                "kruskal_reconstruct_rows",
                factors,
                weight_rows,
                coords,
            )
            np.testing.assert_allclose(got, expected, atol=1e-10)
            assert got.shape == (coords[0].size,)

        return check

    for density in DENSITIES:
        _case("kruskal_reconstruct_rows", f"coords_density_{density}")(
            make_coords_check(density, seed=41)
        )
    for edge in ("empty", "single", "one_row"):
        _case("kruskal_reconstruct_rows", f"coords_{edge}")(
            make_coords_check(edge, seed=43)
        )


_register_kruskal_cases()


# ---------------------------------------------------------------------------
# rls_update_rows
# ---------------------------------------------------------------------------


def _register_rls_cases() -> None:
    def make_check(case_id, rows_builder, n, seed):
        def check(backend: str) -> None:
            rng = np.random.default_rng(seed)
            dim, rank = 8, 3
            rows = rows_builder(rng, n, dim)
            regressors = rng.normal(size=(n, rank))
            targets = rng.normal(size=n)
            factor0 = rng.normal(size=(dim, rank))
            cov0 = np.tile(10.0 * np.eye(rank), (dim, 1, 1))
            factor_got, cov_got = factor0.copy(), cov0.copy()
            factor_exp, cov_exp = factor0.copy(), cov0.copy()
            _call(
                backend,
                "rls_update_rows",
                factor_got,
                cov_got,
                rows,
                regressors,
                targets,
                0.98,
            )
            _call(
                "reference",
                "rls_update_rows",
                factor_exp,
                cov_exp,
                rows,
                regressors,
                targets,
                0.98,
            )
            np.testing.assert_allclose(factor_got, factor_exp, atol=1e-10)
            np.testing.assert_allclose(cov_got, cov_exp, atol=1e-8)

        return check

    _case("rls_update_rows", "random_rows")(
        make_check(
            "random_rows",
            lambda rng, n, dim: rng.integers(0, dim, size=n),
            n=200,
            seed=47,
        )
    )
    _case("rls_update_rows", "all_entries_one_row")(
        make_check(
            "all_entries_one_row",
            lambda rng, n, dim: np.full(n, 2, dtype=np.intp),
            n=40,
            seed=53,
        )
    )
    _case("rls_update_rows", "empty")(
        make_check(
            "empty",
            lambda rng, n, dim: np.zeros(0, dtype=np.intp),
            n=0,
            seed=59,
        )
    )


_register_rls_cases()
