"""Unit tests for repro.tensor.dense (unfold/fold/vec/norms)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tensor import fold, frobenius_norm, relative_error, unfold, vec
from repro.tensor.dense import mode_lengths_product


@pytest.fixture
def tensor_3way():
    return np.arange(24, dtype=float).reshape(2, 3, 4)


class TestUnfold:
    def test_mode0_shape(self, tensor_3way):
        assert unfold(tensor_3way, 0).shape == (2, 12)

    def test_mode1_shape(self, tensor_3way):
        assert unfold(tensor_3way, 1).shape == (3, 8)

    def test_mode2_shape(self, tensor_3way):
        assert unfold(tensor_3way, 2).shape == (4, 6)

    def test_negative_mode(self, tensor_3way):
        np.testing.assert_array_equal(
            unfold(tensor_3way, -1), unfold(tensor_3way, 2)
        )

    def test_mode0_is_reshape(self, tensor_3way):
        np.testing.assert_array_equal(
            unfold(tensor_3way, 0), tensor_3way.reshape(2, 12)
        )

    def test_rows_are_mode_fibers(self, tensor_3way):
        row = unfold(tensor_3way, 1)[2]
        expected = tensor_3way[:, 2, :].reshape(-1)
        np.testing.assert_array_equal(row, expected)

    def test_known_values_mode2(self):
        x = np.arange(8, dtype=float).reshape(2, 2, 2)
        expected = np.array([[0.0, 2.0, 4.0, 6.0], [1.0, 3.0, 5.0, 7.0]])
        np.testing.assert_array_equal(unfold(x, 2), expected)

    def test_mode_out_of_range(self, tensor_3way):
        with pytest.raises(ShapeError):
            unfold(tensor_3way, 3)

    def test_non_integer_mode(self, tensor_3way):
        with pytest.raises(ShapeError):
            unfold(tensor_3way, 1.5)

    def test_matrix_mode0_identity(self):
        mat = np.arange(6, dtype=float).reshape(2, 3)
        np.testing.assert_array_equal(unfold(mat, 0), mat)

    def test_empty_tensor_rejected(self):
        with pytest.raises(ShapeError):
            unfold(np.zeros((0, 2)), 0)


class TestFold:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_roundtrip(self, tensor_3way, mode):
        unfolded = unfold(tensor_3way, mode)
        np.testing.assert_array_equal(
            fold(unfolded, mode, tensor_3way.shape), tensor_3way
        )

    def test_roundtrip_4way(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 4, 5))
        for mode in range(4):
            np.testing.assert_array_equal(fold(unfold(x, mode), mode, x.shape), x)

    def test_wrong_size(self):
        with pytest.raises(ValueError):
            fold(np.zeros((2, 5)), 0, (2, 3, 4))

    def test_mode_out_of_range(self):
        with pytest.raises(ShapeError):
            fold(np.zeros((2, 12)), 5, (2, 3, 4))


class TestVec:
    def test_c_order(self, tensor_3way):
        np.testing.assert_array_equal(vec(tensor_3way), tensor_3way.reshape(-1))

    def test_length(self, tensor_3way):
        assert vec(tensor_3way).shape == (24,)


class TestNorms:
    def test_frobenius_matches_numpy(self, tensor_3way):
        assert frobenius_norm(tensor_3way) == pytest.approx(
            np.linalg.norm(tensor_3way.ravel())
        )

    def test_frobenius_zero(self):
        assert frobenius_norm(np.zeros((3, 3))) == 0.0

    def test_relative_error_zero_for_equal(self, tensor_3way):
        assert relative_error(tensor_3way, tensor_3way) == 0.0

    def test_relative_error_scale_invariant(self, tensor_3way):
        e1 = relative_error(1.1 * tensor_3way, tensor_3way)
        e2 = relative_error(1.1 * (5 * tensor_3way), 5 * tensor_3way)
        assert e1 == pytest.approx(e2)

    def test_relative_error_known_value(self):
        truth = np.ones((2, 2))
        est = np.full((2, 2), 1.5)
        assert relative_error(est, truth) == pytest.approx(0.5)

    def test_relative_error_zero_truth(self):
        est = np.ones((2, 2))
        assert relative_error(est, np.zeros((2, 2))) == pytest.approx(2.0)

    def test_relative_error_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_error(np.zeros((2, 2)), np.zeros((3, 2)))


class TestModeLengthsProduct:
    def test_full_product(self):
        assert mode_lengths_product((2, 3, 4)) == 24

    def test_skip(self):
        assert mode_lengths_product((2, 3, 4), skip=1) == 8
