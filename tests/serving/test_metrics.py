"""Unit tests for ServingMetrics counters and latency histograms."""

import threading

import numpy as np
import pytest

from repro.serving import LatencyHistogram, ServingMetrics, SessionManager


class TestLatencyHistogram:
    def test_empty_percentiles_are_zero(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(0.5) == 0.0
        assert histogram.summary()["p99_seconds"] == 0.0
        assert histogram.summary()["count"] == 0

    def test_percentiles_bounded_relative_error(self):
        histogram = LatencyHistogram()
        rng = np.random.default_rng(0)
        samples = rng.uniform(1e-4, 2.0, size=5000)
        for s in samples:
            histogram.record(float(s))
        for q in (0.50, 0.95, 0.99):
            exact = float(np.quantile(samples, q))
            approx = histogram.percentile(q)
            # Bucketed answer is an upper bound within the bucket
            # growth factor (~12% with the defaults).
            assert exact <= approx <= exact * 1.15

    def test_max_clamps_top_percentile(self):
        histogram = LatencyHistogram()
        for s in (0.001, 0.002, 0.5):
            histogram.record(s)
        assert histogram.percentile(1.0) == pytest.approx(0.5)
        assert histogram.summary()["max_seconds"] == pytest.approx(0.5)

    def test_bounded_memory(self):
        histogram = LatencyHistogram()
        n_buckets = len(histogram._counts)
        for i in range(10_000):
            histogram.record(i * 1e-4)
        assert len(histogram._counts) == n_buckets
        assert histogram.count == 10_000

    def test_overflow_and_negative_observations(self):
        histogram = LatencyHistogram(lower=1e-3, upper=1.0)
        histogram.record(50.0)  # above upper: overflow bucket
        histogram.record(-1.0)  # clamps to zero
        assert histogram.count == 2
        assert histogram.percentile(1.0) == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(lower=1.0, upper=0.5)
        with pytest.raises(ValueError):
            LatencyHistogram(buckets_per_decade=0)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)

    def test_thread_safety_under_metrics_lock(self):
        metrics = ServingMetrics()

        def pound():
            for i in range(2000):
                metrics.observe_latency("ingest", i * 1e-5)

        threads = [threading.Thread(target=pound) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.snapshot()["ingest_latency"]["count"] == 8000


class TestServingMetrics:
    def test_unknown_counter_raises(self):
        with pytest.raises(KeyError):
            ServingMetrics().increment("nope")

    def test_unknown_histogram_raises(self):
        with pytest.raises(KeyError):
            ServingMetrics().observe_latency("nope", 0.1)

    def test_snapshot_includes_latency_summaries(self):
        metrics = ServingMetrics()
        metrics.observe_latency("ingest", 0.010)
        metrics.observe_latency("ingest", 0.020)
        snap = metrics.snapshot()
        for name in ("ingest_latency", "flush_latency"):
            summary = snap[name]
            for key in (
                "count",
                "mean_seconds",
                "max_seconds",
                "p50_seconds",
                "p95_seconds",
                "p99_seconds",
            ):
                assert key in summary
        assert snap["ingest_latency"]["count"] == 2
        assert snap["ingest_latency"]["mean_seconds"] == pytest.approx(
            0.015
        )

    def test_observe_flush_feeds_flush_histogram(self):
        metrics = ServingMetrics()
        metrics.observe_flush(4, 0.02)
        # Warmup absorption (0.0 seconds) counts slices but is not a
        # real execution — it stays out of the latency histogram.
        metrics.observe_flush(4, 0.0)
        snap = metrics.snapshot()
        assert snap["batches_flushed"] == 2
        assert snap["slices_flushed"] == 8
        assert snap["flush_latency"]["count"] == 1


class TestManagerIngestLatency:
    def test_ingest_latency_recorded_per_slice(self):
        rng = np.random.default_rng(0)
        with SessionManager(max_batch=4, max_latency_s=3600.0) as manager:
            manager.create_session(
                "s",
                {
                    "rank": 2,
                    "period": 3,
                    "init_seasons": 2,
                    "max_outer_iters": 5,
                    "tol": 1e-2,
                },
            )
            n_slices = 14  # 6 warmup + 8 streamed
            for _ in range(n_slices):
                manager.ingest("s", rng.normal(size=(4, 3)))
            manager.drain()
            snap = manager.metrics.snapshot()
        summary = snap["ingest_latency"]
        # Every committed slice got a latency sample; warmup slices
        # absorbed into the startup buffer never commit, so the count
        # is positive but may trail the ingest count.
        assert 0 < summary["count"] <= n_slices
        assert snap["slices_ingested"] == n_slices
        assert summary["p50_seconds"] > 0.0
        assert summary["p99_seconds"] >= summary["p50_seconds"]
        assert snap["flush_latency"]["count"] >= 1
