"""The paper's corruption model: random missing entries and outliers.

Experimental settings are written ``(X, Y, Z)`` (§VI-A): ``X``\\% of
entries are hidden (treated as missing), ``Y``\\% are corrupted by
outliers of magnitude ``±Z · max(|X|)`` (sign chosen uniformly), where
``max(|X|)`` is the maximum absolute entry of the whole ground-truth
tensor.  Missing and outlier positions are drawn independently, so an
entry can be both (an invisible outlier).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigError
from repro.tensor.random import as_generator

__all__ = ["CorruptedTensor", "CorruptionSpec", "PAPER_SETTINGS", "corrupt"]


@dataclass(frozen=True)
class CorruptionSpec:
    """An ``(X, Y, Z)`` experimental setting.

    Attributes
    ----------
    missing_pct:
        Percentage of entries hidden from the algorithm (``X``).
    outlier_pct:
        Percentage of entries hit by additive outliers (``Y``).
    magnitude:
        Outlier magnitude as a multiple of ``max(|ground truth|)`` (``Z``).
    """

    missing_pct: float
    outlier_pct: float
    magnitude: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.missing_pct < 100.0:
            raise ConfigError(
                f"missing_pct must be in [0, 100), got {self.missing_pct}"
            )
        if not 0.0 <= self.outlier_pct <= 100.0:
            raise ConfigError(
                f"outlier_pct must be in [0, 100], got {self.outlier_pct}"
            )
        if self.magnitude < 0.0:
            raise ConfigError(f"magnitude must be >= 0, got {self.magnitude}")

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``(70, 20, 5)``."""

        def fmt(x: float) -> str:
            return str(int(x)) if float(x).is_integer() else str(x)

        return (
            f"({fmt(self.missing_pct)}, {fmt(self.outlier_pct)}, "
            f"{fmt(self.magnitude)})"
        )


#: The four settings used throughout the paper's Figures 3-5,
#: mildest to harshest.
PAPER_SETTINGS = (
    CorruptionSpec(20, 10, 2),
    CorruptionSpec(30, 15, 3),
    CorruptionSpec(50, 20, 4),
    CorruptionSpec(70, 20, 5),
)


@dataclass(frozen=True)
class CorruptedTensor:
    """A ground-truth tensor together with its corrupted observation."""

    clean: np.ndarray = field(repr=False)
    observed: np.ndarray = field(repr=False)
    mask: np.ndarray = field(repr=False)
    outlier_mask: np.ndarray = field(repr=False)
    spec: CorruptionSpec

    @property
    def shape(self) -> tuple[int, ...]:
        return self.clean.shape


def corrupt(
    tensor: np.ndarray,
    spec: CorruptionSpec,
    *,
    seed: int | np.random.Generator | None = None,
) -> CorruptedTensor:
    """Apply ``spec`` to a ground-truth tensor.

    Parameters
    ----------
    tensor:
        The clean ground truth (any order; time convention is up to the
        caller).
    spec:
        The ``(X, Y, Z)`` setting.
    seed:
        Seed or generator for the corruption randomness.

    Returns
    -------
    CorruptedTensor
        The observation ``Y`` (clean + outliers), the indicator ``Ω``
        (True = observed), the outlier positions, and the clean tensor.
    """
    clean = np.asarray(tensor, dtype=np.float64)
    rng = as_generator(seed)
    mask = rng.random(clean.shape) >= spec.missing_pct / 100.0
    outlier_mask = rng.random(clean.shape) < spec.outlier_pct / 100.0
    observed = clean.copy()
    n_outliers = int(outlier_mask.sum())
    if n_outliers and spec.magnitude > 0:
        signs = np.where(rng.random(n_outliers) < 0.5, -1.0, 1.0)
        observed[outlier_mask] += signs * spec.magnitude * np.abs(clean).max()
    return CorruptedTensor(
        clean=clean,
        observed=observed,
        mask=mask,
        outlier_mask=outlier_mask,
        spec=spec,
    )
