"""Tests for the scenario registry and its declarative building blocks."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.scenarios import (
    BurstyArrival,
    ConstantArrival,
    GeneratorSpec,
    QualityEnvelope,
    RampArrival,
    Scenario,
    available_scenarios,
    get_scenario,
    register_scenario,
)
from repro.scenarios.base import rescale_schedule
from repro.streams.corruption import (
    BlackoutWindow,
    CorruptionSchedule,
    CorruptionSpec,
    SchedulePhase,
)

EXPECTED_NAMES = (
    "blackout_windows",
    "bursty_arrival",
    "cold_start_flood",
    "heavy_tail_outburst",
    "regime_shift",
    "seasonality_change",
    "session_churn",
)


class TestRegistry:
    def test_all_scenarios_registered(self):
        assert available_scenarios() == EXPECTED_NAMES

    def test_get_scenario_roundtrip(self):
        for name in EXPECTED_NAMES:
            scenario = get_scenario(name)
            assert scenario.name == name
            assert scenario.summary
            assert scenario.summary in scenario.description

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="regime_shift"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_scenario(get_scenario("regime_shift"))


class TestGeneratorSpec:
    def test_plain_build_shape(self):
        spec = GeneratorSpec(dims=(4, 5), rank=2, period=6, n_steps=30)
        data = spec.build(seed=0)
        assert data.shape == (4, 5, 30)

    def test_regime_shift_changes_tail(self):
        spec = GeneratorSpec(
            dims=(4, 5),
            rank=2,
            period=6,
            n_steps=30,
            noise=0.0,
            regime_shift_at=15,
            regime_scale=2.0,
        )
        shifted = spec.build(seed=0)
        plain = GeneratorSpec(
            dims=(4, 5), rank=2, period=6, n_steps=30, noise=0.0
        ).build(seed=0)
        np.testing.assert_array_equal(shifted[..., :15], plain[..., :15])
        assert not np.allclose(shifted[..., 15:], plain[..., 15:])

    def test_at_most_one_event(self):
        with pytest.raises(ConfigError):
            GeneratorSpec(
                dims=(4,),
                rank=2,
                period=6,
                n_steps=30,
                regime_shift_at=10,
                period_change_at=20,
                new_period=9,
            )

    def test_period_change_requires_new_period(self):
        with pytest.raises(ConfigError):
            GeneratorSpec(
                dims=(4,), rank=2, period=6, n_steps=30, period_change_at=10
            )

    def test_changepoint_must_be_interior(self):
        with pytest.raises(ConfigError):
            GeneratorSpec(
                dims=(4,), rank=2, period=6, n_steps=30, regime_shift_at=30
            )

    def test_tiny_shrinks_and_rescales(self):
        spec = GeneratorSpec(
            dims=(20, 30),
            rank=3,
            period=10,
            n_steps=400,
            regime_shift_at=200,
        )
        tiny = spec.tiny()
        assert tiny.n_steps == 80
        assert tiny.dims == (6, 6)
        assert tiny.regime_shift_at == 40
        tiny.build(seed=0)  # still generates


class TestRescaleSchedule:
    def test_phases_and_windows_scale(self):
        schedule = CorruptionSchedule(
            phases=(
                SchedulePhase(0, 100, CorruptionSpec(10, 0, 0)),
                SchedulePhase(100, None, CorruptionSpec(50, 0, 0)),
            ),
            windows=(BlackoutWindow(start=120, stop=160),),
        )
        scaled = rescale_schedule(schedule, 200, 80)
        assert scaled.phases[0].stop == 40
        assert scaled.phases[1].start == 40
        assert (scaled.windows[0].start, scaled.windows[0].stop) == (48, 64)

    def test_identity_when_same_length(self):
        schedule = CorruptionSchedule(
            phases=(SchedulePhase(0, None, CorruptionSpec(10, 0, 0)),)
        )
        assert rescale_schedule(schedule, 50, 50) is schedule

    def test_every_scenario_tiny_schedule_valid(self):
        for name in EXPECTED_NAMES:
            generator, schedule = get_scenario(name).sized(tiny=True)
            for phase in schedule.phases:
                assert phase.resolve_stop(generator.n_steps) <= generator.n_steps
            for window in schedule.windows:
                assert window.start < generator.n_steps


class TestQualityEnvelope:
    def test_inside_envelope_no_violations(self):
        envelope = QualityEnvelope(max_rae=0.5, max_final_nre=0.5)
        assert envelope.check(rae=0.3, final_nre=0.4, afe=99.0) == ()

    def test_violations_reported(self):
        envelope = QualityEnvelope(max_rae=0.5, max_afe=0.5)
        violations = envelope.check(rae=0.7, afe=0.6)
        assert len(violations) == 2
        assert "rae=" in violations[0]

    def test_nan_is_a_violation(self):
        envelope = QualityEnvelope(max_rae=0.5)
        assert len(envelope.check(rae=float("nan"))) == 1

    def test_none_bounds_skip(self):
        assert QualityEnvelope().check(rae=100.0, afe=100.0) == ()


class TestArrivalProcesses:
    @pytest.mark.parametrize(
        "process",
        [ConstantArrival(), BurstyArrival(), RampArrival()],
        ids=["constant", "bursty", "ramp"],
    )
    def test_offsets_monotone_and_start_at_zero(self, process):
        offsets = process.send_offsets(64, 10.0)
        assert len(offsets) == 64
        assert offsets[0] == 0.0
        assert all(a < b for a, b in zip(offsets, offsets[1:]))

    def test_constant_mean_rate(self):
        offsets = ConstantArrival().send_offsets(51, 10.0)
        assert offsets[-1] == pytest.approx(5.0)

    def test_bursty_preserves_mean_rate_per_cycle(self):
        process = BurstyArrival(burst=4, cycle=8, burst_factor=10.0)
        offsets = process.send_offsets(24, 8.0)
        # Cycle boundaries land exactly on cycle/rate.
        assert offsets[8] == pytest.approx(1.0)
        assert offsets[16] == pytest.approx(2.0)
        # Inside the burst the gap is 10x tighter than the mean gap.
        assert offsets[1] - offsets[0] == pytest.approx(1 / 80.0)

    def test_bursty_validation(self):
        with pytest.raises(ConfigError):
            BurstyArrival(burst=0)
        with pytest.raises(ConfigError):
            BurstyArrival(burst=9, cycle=8)
        with pytest.raises(ConfigError):
            BurstyArrival(burst_factor=1.0)

    def test_ramp_accelerates(self):
        offsets = RampArrival().send_offsets(100, 10.0)
        first_gap = offsets[1] - offsets[0]
        last_gap = offsets[-1] - offsets[-2]
        assert last_gap < first_gap

    def test_rate_validation(self):
        with pytest.raises(ConfigError):
            ConstantArrival().send_offsets(10, 0.0)
        with pytest.raises(ConfigError):
            ConstantArrival().send_offsets(0, 1.0)


class TestScenarioValidation:
    def test_bad_name_rejected(self):
        scenario = get_scenario("regime_shift")
        with pytest.raises(ConfigError):
            Scenario(
                name="not a slug!",
                summary=scenario.summary,
                description=scenario.description,
                generator=scenario.generator,
                schedule=scenario.schedule,
                envelope=scenario.envelope,
            )

    def test_n_sessions_positive(self):
        scenario = get_scenario("regime_shift")
        with pytest.raises(ConfigError):
            Scenario(
                name="ok_name",
                summary=scenario.summary,
                description=scenario.description,
                generator=scenario.generator,
                schedule=scenario.schedule,
                envelope=scenario.envelope,
                n_sessions=0,
            )
