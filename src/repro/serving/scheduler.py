"""Micro-batching scheduler: buffer per-session slices, flush in bulk.

Incoming slices are cheap to *accept* (append to a per-session buffer
under a condition variable) and expensive to *apply* (a SOFIA dynamic
step).  The scheduler decouples the two: a pool of worker threads
flushes a session's buffered slices through one fused
``Sofia.step_batch`` call when either

* the buffer reaches ``max_batch`` slices (throughput trigger — this
  is where the PR-2 mini-batch amortization pays: one kernel dispatch
  per operation for the whole batch), or
* the oldest buffered slice has waited ``max_latency_s`` seconds
  (latency trigger — a trickling session is not starved just because
  it never fills a batch).

Ordering and determinism
------------------------
Slices of one session are always applied in arrival order: at most one
flush per session is in flight (``_inflight``), a flush takes the
buffer's oldest ``max_batch`` slices, and newer arrivals stay buffered
until the in-flight flush completes.  Different sessions flush
concurrently on the worker pool.  With the latency trigger disabled
(``max_latency_s`` large) the batch boundaries are a pure function of
the submission sequence — every ``max_batch`` slices, remainder on
drain — which is what makes serving runs reproducible enough to pin
bit-identical eviction tests on.

The ``flush`` callable is supplied by the session manager and must not
raise (the manager records per-session failures itself); a defensive
try/finally still guarantees the scheduler's bookkeeping survives a
misbehaving callback.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

__all__ = ["MicroBatchScheduler", "PendingSlice"]


@dataclass(frozen=True)
class PendingSlice:
    """One buffered slice: sequence number, data, mask, arrival time."""

    seq: int
    subtensor: Any
    mask: Any
    arrived_at: float = field(compare=False)


class MicroBatchScheduler:
    """Per-session micro-batch buffers + a flushing worker pool."""

    def __init__(
        self,
        flush: Callable[[str, list[PendingSlice]], None],
        *,
        max_batch: int = 16,
        max_latency_s: float = 0.05,
        workers: int = 2,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_latency_s <= 0:
            raise ValueError(
                f"max_latency_s must be positive, got {max_latency_s}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._flush = flush
        self.max_batch = max_batch
        self.max_latency_s = max_latency_s
        self._cv = threading.Condition()
        self._buffers: dict[str, deque[PendingSlice]] = {}
        #: Sessions with a flush in flight -> number of slices in it.
        self._inflight: dict[str, int] = {}
        #: Drain markers are *counted*, not set-membership: two threads
        #: draining the same session (or "*") concurrently must not
        #: clear each other's flush-immediately trigger when the first
        #: one finishes.
        self._draining: Counter[str] = Counter()
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-flush-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, session_id: str, item: PendingSlice) -> None:
        """Buffer one slice; wakes a worker if the session became due."""
        with self._cv:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._buffers.setdefault(session_id, deque()).append(item)
            self._cv.notify_all()

    def pending_count(self, session_id: str) -> int:
        """Slices buffered or in-flight for this session."""
        with self._cv:
            buffered = len(self._buffers.get(session_id, ()))
            return buffered + self._inflight.get(session_id, 0)

    def drain(self, session_id: str, timeout: float | None = None) -> None:
        """Block until every buffered slice of this session is applied.

        Marks the session due immediately (partial batches flush
        without waiting out the latency deadline).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            self._draining[session_id] += 1
            self._cv.notify_all()
            try:
                while (
                    self._buffers.get(session_id)
                    or session_id in self._inflight
                ):
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TimeoutError(
                                f"drain of session {session_id!r} timed out"
                            )
                    self._cv.wait(remaining)
            finally:
                self._draining[session_id] -= 1
                if self._draining[session_id] <= 0:
                    del self._draining[session_id]

    def drain_all(self, timeout: float | None = None) -> None:
        """Block until every session's buffer is applied."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            self._draining["*"] += 1
            self._cv.notify_all()
            try:
                while self._inflight or any(self._buffers.values()):
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TimeoutError("drain_all timed out")
                    self._cv.wait(remaining)
            finally:
                self._draining["*"] -= 1
                if self._draining["*"] <= 0:
                    del self._draining["*"]

    def forget(self, session_id: str) -> int:
        """Drop a session's buffered slices (for close); returns count."""
        with self._cv:
            dropped = len(self._buffers.pop(session_id, ()))
            self._cv.notify_all()
            return dropped

    def close(self, *, drain: bool = True) -> None:
        """Stop the workers, optionally applying all buffered work first."""
        if drain:
            self.drain_all()
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "MicroBatchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _due_locked(self, session_id: str, now: float) -> bool:
        buffer = self._buffers.get(session_id)
        if not buffer or session_id in self._inflight:
            return False
        return (
            len(buffer) >= self.max_batch
            or self._closed
            or session_id in self._draining
            or "*" in self._draining
            or now - buffer[0].arrived_at >= self.max_latency_s
        )

    def _pop_due_locked(
        self, now: float
    ) -> tuple[str, list[PendingSlice]] | None:
        for session_id in self._buffers:
            if self._due_locked(session_id, now):
                buffer = self._buffers[session_id]
                batch = [
                    buffer.popleft()
                    for _ in range(min(self.max_batch, len(buffer)))
                ]
                if not buffer:
                    del self._buffers[session_id]
                self._inflight[session_id] = len(batch)
                return session_id, batch
        return None

    def _next_deadline_locked(self, now: float) -> float | None:
        """Seconds until the earliest latency deadline, if any."""
        wait = None
        for session_id, buffer in self._buffers.items():
            if not buffer or session_id in self._inflight:
                continue
            due_in = buffer[0].arrived_at + self.max_latency_s - now
            if wait is None or due_in < wait:
                wait = due_in
        if wait is None:
            return None
        return max(wait, 0.0)

    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                job = None
                while job is None:
                    now = time.monotonic()
                    job = self._pop_due_locked(now)
                    if job is not None:
                        break
                    if self._closed:
                        return
                    self._cv.wait(self._next_deadline_locked(now))
            session_id, batch = job
            try:
                self._flush(session_id, batch)
            except Exception:  # noqa: BLE001 - workers must survive
                # The manager's flush callback records per-session
                # failures itself; a raise reaching this loop is a bug
                # there, and must not take the shared worker down with
                # it (other sessions still need flushing).
                pass
            finally:
                with self._cv:
                    self._inflight.pop(session_id, None)
                    self._cv.notify_all()
