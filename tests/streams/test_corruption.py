"""Unit tests for the (X, Y, Z) corruption model (paper §VI-A)."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.streams import (
    PAPER_SETTINGS,
    BlackoutWindow,
    CorruptionSchedule,
    CorruptionSpec,
    SchedulePhase,
    blackout_windows_mask,
    corrupt,
    corrupt_schedule,
)


@pytest.fixture
def clean():
    rng = np.random.default_rng(0)
    return rng.normal(size=(20, 15, 40))


class TestCorruptionSpec:
    def test_label(self):
        assert CorruptionSpec(70, 20, 5).label == "(70, 20, 5)"

    def test_label_fractional(self):
        assert CorruptionSpec(12.5, 0, 0).label == "(12.5, 0, 0)"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"missing_pct": -1, "outlier_pct": 0, "magnitude": 0},
            {"missing_pct": 100, "outlier_pct": 0, "magnitude": 0},
            {"missing_pct": 0, "outlier_pct": 101, "magnitude": 0},
            {"missing_pct": 0, "outlier_pct": 0, "magnitude": -2},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            CorruptionSpec(**kwargs)

    def test_paper_settings(self):
        labels = [s.label for s in PAPER_SETTINGS]
        assert labels == [
            "(20, 10, 2)",
            "(30, 15, 3)",
            "(50, 20, 4)",
            "(70, 20, 5)",
        ]


class TestCorrupt:
    def test_missing_fraction(self, clean):
        result = corrupt(clean, CorruptionSpec(70, 0, 0), seed=1)
        assert (~result.mask).mean() == pytest.approx(0.70, abs=0.02)

    def test_outlier_fraction(self, clean):
        result = corrupt(clean, CorruptionSpec(0, 20, 5), seed=2)
        assert result.outlier_mask.mean() == pytest.approx(0.20, abs=0.02)

    def test_outlier_magnitude(self, clean):
        spec = CorruptionSpec(0, 10, 5)
        result = corrupt(clean, spec, seed=3)
        deviation = result.observed - clean
        hit = result.outlier_mask
        np.testing.assert_allclose(
            np.abs(deviation[hit]), 5 * np.abs(clean).max()
        )
        np.testing.assert_array_equal(deviation[~hit], 0.0)

    def test_outlier_signs_mixed(self, clean):
        result = corrupt(clean, CorruptionSpec(0, 30, 3), seed=4)
        deviation = (result.observed - clean)[result.outlier_mask]
        assert (deviation > 0).any()
        assert (deviation < 0).any()
        # roughly balanced
        assert abs((deviation > 0).mean() - 0.5) < 0.1

    def test_clean_untouched(self, clean):
        snapshot = clean.copy()
        corrupt(clean, CorruptionSpec(50, 20, 4), seed=5)
        np.testing.assert_array_equal(clean, snapshot)

    def test_zero_setting_is_identity(self, clean):
        result = corrupt(clean, CorruptionSpec(0, 0, 0), seed=6)
        np.testing.assert_array_equal(result.observed, clean)
        assert result.mask.all()

    def test_reproducible(self, clean):
        spec = CorruptionSpec(50, 20, 4)
        r1 = corrupt(clean, spec, seed=7)
        r2 = corrupt(clean, spec, seed=7)
        np.testing.assert_array_equal(r1.observed, r2.observed)
        np.testing.assert_array_equal(r1.mask, r2.mask)

    def test_different_seeds_differ(self, clean):
        spec = CorruptionSpec(50, 20, 4)
        r1 = corrupt(clean, spec, seed=8)
        r2 = corrupt(clean, spec, seed=9)
        assert not np.array_equal(r1.mask, r2.mask)

    def test_missing_and_outliers_independent(self, clean):
        # Some outliers should land on missing entries (invisible).
        result = corrupt(clean, CorruptionSpec(50, 20, 4), seed=10)
        assert (result.outlier_mask & ~result.mask).any()

    def test_shape_property(self, clean):
        result = corrupt(clean, CorruptionSpec(10, 10, 2), seed=11)
        assert result.shape == clean.shape


class TestBlackoutWindowsMask:
    def test_window_edges_exact(self):
        # [start, stop) semantics: step start-1 observed, start..stop-1
        # hidden, stop observed again.
        window = BlackoutWindow(start=5, stop=9, mode_ranges=((2, 4), None))
        mask = blackout_windows_mask((6, 3, 20), (window,))
        assert mask[2:4, :, 4].all()
        assert not mask[2:4, :, 5].any()
        assert not mask[2:4, :, 8].any()
        assert mask[2:4, :, 9].all()
        # Outside the spatial block nothing is hidden.
        assert mask[:2].all() and mask[4:].all()

    def test_full_subtensor_blackout(self):
        window = BlackoutWindow(start=0, stop=2)
        mask = blackout_windows_mask((4, 4, 10), (window,))
        assert not mask[..., :2].any()
        assert mask[..., 2:].all()

    def test_ranges_clipped_to_shape(self):
        window = BlackoutWindow(start=8, stop=99, mode_ranges=((0, 99),))
        mask = blackout_windows_mask((5, 10), (window,))
        assert not mask[:, 8:].any()
        assert mask[:, :8].all()

    def test_window_past_stream_end_is_noop(self):
        window = BlackoutWindow(start=50, stop=60)
        mask = blackout_windows_mask((4, 10), (window,))
        assert mask.all()

    def test_overlapping_windows_union(self):
        windows = (
            BlackoutWindow(start=2, stop=6, mode_ranges=((0, 2),)),
            BlackoutWindow(start=4, stop=8, mode_ranges=((1, 3),)),
        )
        mask = blackout_windows_mask((4, 12), windows)
        assert not mask[0, 2:6].any()
        assert not mask[1, 2:8].any()  # covered by both
        assert not mask[2, 4:8].any()
        assert mask[3].all()

    def test_wrong_rank_of_mode_ranges(self):
        window = BlackoutWindow(start=0, stop=1, mode_ranges=((0, 1),))
        with pytest.raises(ConfigError):
            blackout_windows_mask((4, 4, 10), (window,))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start": -1, "stop": 3},
            {"start": 3, "stop": 3},
            {"start": 0, "stop": 2, "mode_ranges": ((2, 2),)},
            {"start": 0, "stop": 2, "mode_ranges": ((-1, 2),)},
        ],
    )
    def test_window_validation(self, kwargs):
        with pytest.raises(ConfigError):
            BlackoutWindow(**kwargs)


class TestCorruptionSchedule:
    def test_phases_must_not_overlap(self):
        with pytest.raises(ConfigError):
            CorruptionSchedule(
                phases=(
                    SchedulePhase(0, 10, CorruptionSpec(10, 0, 0)),
                    SchedulePhase(5, 15, CorruptionSpec(10, 0, 0)),
                )
            )

    def test_open_ended_phase_must_be_last(self):
        with pytest.raises(ConfigError):
            CorruptionSchedule(
                phases=(
                    SchedulePhase(0, None, CorruptionSpec(10, 0, 0)),
                    SchedulePhase(20, 30, CorruptionSpec(10, 0, 0)),
                )
            )

    def test_per_phase_rates(self, clean):
        schedule = CorruptionSchedule(
            phases=(
                SchedulePhase(0, 20, CorruptionSpec(10, 0, 0)),
                SchedulePhase(20, None, CorruptionSpec(70, 0, 0)),
            )
        )
        result = corrupt_schedule(clean, schedule, seed=0)
        early = (~result.mask[..., :20]).mean()
        late = (~result.mask[..., 20:]).mean()
        assert early == pytest.approx(0.10, abs=0.03)
        assert late == pytest.approx(0.70, abs=0.03)

    def test_uncovered_steps_stay_clean(self, clean):
        schedule = CorruptionSchedule(
            phases=(SchedulePhase(10, 20, CorruptionSpec(50, 20, 4)),)
        )
        result = corrupt_schedule(clean, schedule, seed=1)
        assert result.mask[..., :10].all()
        assert result.mask[..., 20:].all()
        np.testing.assert_array_equal(
            result.observed[..., :10], clean[..., :10]
        )
        np.testing.assert_array_equal(
            result.observed[..., 20:], clean[..., 20:]
        )

    def test_outlier_magnitude_uses_global_scale(self, clean):
        schedule = CorruptionSchedule(
            phases=(SchedulePhase(0, 10, CorruptionSpec(0, 20, 3)),)
        )
        result = corrupt_schedule(clean, schedule, seed=2)
        deviation = result.observed - result.clean
        hit = result.outlier_mask
        np.testing.assert_allclose(
            np.abs(deviation[hit]), 3 * np.abs(clean).max(), rtol=1e-6
        )
        np.testing.assert_array_equal(deviation[~hit], 0.0)

    def test_blackouts_compose_with_random_missingness(self, clean):
        window = BlackoutWindow(start=5, stop=15, mode_ranges=((0, 8), None))
        schedule = CorruptionSchedule(
            phases=(SchedulePhase(0, None, CorruptionSpec(30, 0, 0)),),
            windows=(window,),
        )
        result = corrupt_schedule(clean, schedule, seed=3)
        # Window region fully hidden regardless of the random draw.
        assert not result.mask[:8, :, 5:15].any()
        # Outside the window the random rate still holds.
        outside = result.mask[8:, :, :]
        assert (~outside).mean() == pytest.approx(0.30, abs=0.03)
        # Composition is an intersection: the window cannot *reveal*
        # entries the random draw hid.
        rerun = corrupt_schedule(
            clean,
            CorruptionSchedule(phases=schedule.phases),
            seed=3,
        )
        assert (result.mask <= rerun.mask).all()

    def test_float32_dtype_preserved(self, clean):
        schedule = CorruptionSchedule(
            phases=(SchedulePhase(0, None, CorruptionSpec(30, 10, 2)),),
            windows=(BlackoutWindow(start=0, stop=3),),
        )
        result = corrupt_schedule(
            clean.astype(np.float32), schedule, seed=4
        )
        assert result.clean.dtype == np.float32
        assert result.observed.dtype == np.float32
        assert result.mask.dtype == bool

    def test_reproducible(self, clean):
        schedule = CorruptionSchedule(
            phases=(
                SchedulePhase(0, 15, CorruptionSpec(20, 10, 2)),
                SchedulePhase(15, None, CorruptionSpec(70, 20, 5)),
            ),
            windows=(BlackoutWindow(start=3, stop=6, mode_ranges=((0, 4), None)),),
        )
        r1 = corrupt_schedule(clean, schedule, seed=5)
        r2 = corrupt_schedule(clean, schedule, seed=5)
        np.testing.assert_array_equal(r1.observed, r2.observed)
        np.testing.assert_array_equal(r1.mask, r2.mask)

    def test_clean_input_untouched(self, clean):
        snapshot = clean.copy()
        schedule = CorruptionSchedule(
            phases=(SchedulePhase(0, None, CorruptionSpec(50, 20, 4)),)
        )
        corrupt_schedule(clean, schedule, seed=6)
        np.testing.assert_array_equal(clean, snapshot)
