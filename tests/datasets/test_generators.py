"""Unit tests for the dataset generators: structure and seasonality."""

import numpy as np
import pytest

from repro.datasets import (
    fig2_tensor,
    load_dataset,
    scalability_stream,
    seasonal_stream,
)
from repro.exceptions import ShapeError


def seasonal_autocorrelation(data: np.ndarray, period: int) -> float:
    """Mean correlation between each step and the step one season later,
    averaged over flattened non-temporal entries — high for seasonal data."""
    flat = data.reshape(-1, data.shape[-1])
    a = flat[:, :-period].ravel()
    b = flat[:, period:].ravel()
    return float(np.corrcoef(a, b)[0, 1])


class TestSeasonalStream:
    def test_shapes(self):
        s = seasonal_stream((5, 6), rank=2, period=8, n_steps=24, seed=0)
        assert s.data.shape == (5, 6, 24)
        assert s.temporal.shape == (24, 2)
        assert [f.shape for f in s.non_temporal] == [(5, 2), (6, 2)]
        assert s.rank == 2
        assert s.period == 8

    def test_consistent_with_factors(self):
        from repro.tensor import kruskal_to_tensor

        s = seasonal_stream((4, 4), rank=2, period=6, n_steps=12, seed=1)
        for t in range(12):
            np.testing.assert_allclose(
                s.data[..., t],
                kruskal_to_tensor(s.non_temporal, weights=s.temporal[t]),
            )

    def test_seasonality(self):
        s = seasonal_stream((6, 6), rank=3, period=12, n_steps=60, seed=2)
        assert seasonal_autocorrelation(s.data, 12) > 0.95

    def test_trend(self):
        s = seasonal_stream(
            (4, 4), rank=1, period=6, n_steps=60, trend=0.05, seed=3
        )
        first = s.temporal[:6].mean()
        last = s.temporal[-6:].mean()
        assert last > first + 2.0

    def test_noise(self):
        clean = seasonal_stream((5, 5), rank=2, period=6, n_steps=30, seed=4)
        noisy = seasonal_stream(
            (5, 5), rank=2, period=6, n_steps=30, noise=0.2, seed=4
        )
        assert not np.allclose(clean.data, noisy.data)

    def test_reproducible(self):
        s1 = seasonal_stream((5, 5), rank=2, period=6, n_steps=30, seed=5)
        s2 = seasonal_stream((5, 5), rank=2, period=6, n_steps=30, seed=5)
        np.testing.assert_array_equal(s1.data, s2.data)

    def test_bad_steps(self):
        with pytest.raises(ShapeError):
            seasonal_stream((5, 5), rank=2, period=6, n_steps=0)

    def test_three_way_dims(self):
        s = seasonal_stream((3, 4, 5), rank=2, period=4, n_steps=8, seed=6)
        assert s.data.shape == (3, 4, 5, 8)


class TestFig2Tensor:
    def test_paper_dimensions(self):
        s = fig2_tensor(seed=0)
        assert s.data.shape == (30, 30, 90)
        assert s.temporal.shape == (90, 3)
        assert s.period == 30

    def test_temporal_columns_are_sinusoids(self):
        s = fig2_tensor(seed=1)
        # Each column must be exactly periodic with period 30.
        for r in range(3):
            col = s.temporal[:, r]
            np.testing.assert_allclose(col[:30], col[30:60], atol=1e-9)
            np.testing.assert_allclose(col[:30], col[60:90], atol=1e-9)

    def test_nonnegative_spatial_factors(self):
        s = fig2_tensor(seed=2)
        for f in s.non_temporal:
            assert (f >= 0).all()
            assert (f <= 1).all()


class TestScalabilityStream:
    def test_shape(self):
        s = scalability_stream(50, 20, 40, period=10, seed=0)
        assert s.data.shape == (50, 20, 40)
        assert s.period == 10


class TestStandIns:
    @pytest.mark.parametrize(
        "name, kwargs, expected_shape",
        [
            ("intel_lab", dict(n_positions=8, period=12, n_seasons=5), (8, 4, 60)),
            ("network_traffic", dict(n_routers=6, period=12, n_seasons=5), (6, 6, 60)),
            ("chicago_taxi", dict(n_zones=8, period=12, n_seasons=5), (8, 8, 60)),
            ("nyc_taxi", dict(n_zones=8, n_weeks=6), (8, 8, 42)),
        ],
    )
    def test_shapes(self, name, kwargs, expected_shape):
        ds = load_dataset(name, seed=0, **kwargs)
        assert ds.shape == expected_shape

    @pytest.mark.parametrize(
        "name, kwargs, period",
        [
            ("intel_lab", dict(n_positions=10, period=16, n_seasons=8), 16),
            ("network_traffic", dict(n_routers=8, period=16, n_seasons=8), 16),
            ("chicago_taxi", dict(n_zones=10, period=16, n_seasons=8), 16),
            ("nyc_taxi", dict(n_zones=10, n_weeks=12), 7),
        ],
    )
    def test_seasonal_structure(self, name, kwargs, period):
        ds = load_dataset(name, seed=0, **kwargs)
        assert seasonal_autocorrelation(ds.data, period) > 0.6

    def test_intel_lab_standardized_per_sensor(self):
        ds = load_dataset("intel_lab", seed=1)
        for s in range(4):
            assert ds.data[:, s, :].mean() == pytest.approx(0.0, abs=1e-9)
            assert ds.data[:, s, :].std() == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize(
        "name", ["network_traffic", "chicago_taxi", "nyc_taxi"]
    )
    def test_log_transformed_nonnegative(self, name):
        ds = load_dataset(name, seed=2)
        assert (ds.data >= 0).all()
        # log2 keeps values laptop-scale
        assert ds.data.max() < 30

    def test_taxi_counts_have_quiet_hours(self):
        ds = load_dataset("chicago_taxi", seed=3)
        per_step = ds.data.sum(axis=(0, 1))
        assert per_step.min() < 0.35 * per_step.max()

    def test_reproducible(self):
        d1 = load_dataset("nyc_taxi", seed=9)
        d2 = load_dataset("nyc_taxi", seed=9)
        np.testing.assert_array_equal(d1.data, d2.data)
