"""Session manager: many named SOFIA streams behind one runtime.

A :class:`SessionManager` hosts a fleet of independent SOFIA models
("sessions"), each identified by a string id and fed by its own tensor
stream.  It composes the serving pieces:

* the :class:`~repro.serving.scheduler.MicroBatchScheduler` buffers
  ingested slices per session, groups due sessions with matching
  fusion keys, and dispatches fused flush groups;
* a :class:`~repro.serving.pool.WorkerPool` executes those groups —
  in-process threads (the default) or a ``multiprocessing`` worker
  tier that escapes the GIL, selected via ``worker_pool=`` /
  ``worker_kind=``;
* the :class:`~repro.serving.store.CheckpointStore` bounds resident
  memory — cold sessions spill to disk and rehydrate transparently on
  their next flush — and doubles as the process handoff medium
  (:meth:`~repro.serving.store.CheckpointStore.export_state` /
  :meth:`~repro.serving.store.CheckpointStore.import_state`);
* :class:`~repro.serving.metrics.ServingMetrics` counts everything.

Flushing is a three-step cycle around plain data: the manager
*prepares* a picklable :class:`~repro.serving.worker.FlushRequest` per
group member (warmup bookkeeping, state checkout/serialization), the
pool *executes* the group wherever it runs, and the manager *commits*
each :class:`~repro.serving.worker.FlushResult` back (store the
updated model, publish per-slice results, record failures).  Sessions
in one fused group share a single dispatch, but each is prepared,
executed, and committed independently — one member's failure poisons
only that member.

Session lifecycle
-----------------
``create_session`` registers a stream either from a
:class:`~repro.core.config.SofiaConfig` (the session then *warms up*:
it buffers ingested slices until ``config.init_steps`` have arrived and
runs the batch initialization phase on exactly those, streaming the
rest) or from an existing checkpoint (the session is ready
immediately).  ``ingest`` is asynchronous — it returns a sequence
number at once; the completed (imputed) slice appears under that number
in ``results`` after the scheduler flushes it.  ``impute`` and
``forecast`` are synchronous: they drain the session's buffer first, so
they always observe every previously ingested slice.

Thread-safety
-------------
The registry has its own lock; each session carries a per-session lock
held for the duration of any model mutation (one flush, impute, or
forecast at a time per session — different sessions proceed in
parallel).  A fused flush holds every member's lock, acquired in
sorted session-id order (all other paths take at most one session
lock, so the ordering cannot deadlock).  Lock order is registry ->
session -> store; the scheduler's condition variable is never held
across a flush, and fusion keys are computed from immutable or
atomically-read session fields so the scheduler can ask for them
without taking session locks.  Worker threads may run sessions pinned
to different kernel backends concurrently — safe because the backend
registries are context-local per thread (see
``repro.tensor.kernels.use_backend``) and a process worker applies the
pin inside its own interpreter.
"""

from __future__ import annotations

import json
import tempfile
import threading
from collections import deque
from collections.abc import Hashable
from contextlib import ExitStack, nullcontext
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.config import SofiaConfig
from repro.core.serialization import load_sofia, loads_sofia
from repro.core.sofia import Sofia
from repro.exceptions import (
    ConfigError,
    SessionError,
    SessionExistsError,
    SessionNotFoundError,
    ShapeError,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.observability import (
    SessionQuality,
    SliceSpan,
    TraceBuffer,
)
from repro.serving.pool import WorkerPool, make_worker_pool
from repro.serving.scheduler import MicroBatchScheduler, PendingSlice
from repro.serving.store import CheckpointStore, checkpoint_meta_path
from repro.serving.worker import FlushRequest, FlushResult
from repro.tensor import kernels
from repro.tensor.validation import check_mask

__all__ = ["SessionManager", "make_config"]


def make_config(config: SofiaConfig | dict) -> SofiaConfig:
    """Validate a config given as a dataclass or a JSON-style dict.

    Dict payloads (the gateway's ``POST /sessions`` body) get the same
    loud :class:`~repro.exceptions.ConfigError` treatment as dataclass
    construction, including unknown keys.
    """
    if isinstance(config, SofiaConfig):
        return config
    if not isinstance(config, dict):
        raise ConfigError(
            f"config must be a SofiaConfig or a dict, got {type(config)!r}"
        )
    try:
        return SofiaConfig(**config)
    except TypeError as exc:
        raise ConfigError(f"invalid session config: {exc}") from None


class _Session:
    """Internal per-session record (model state lives in the store)."""

    def __init__(
        self,
        session_id: str,
        config: SofiaConfig,
        *,
        kernel_backend: str | None,
        keep_results: int,
        quality_window: int = 64,
    ) -> None:
        self.session_id = session_id
        self.config = config
        self.kernel_backend = kernel_backend
        self.lock = threading.RLock()
        self.initialized = False
        self.closing = False
        self.failure: str | None = None
        self.warmup: list[tuple[np.ndarray, np.ndarray]] = []
        #: Trace context of warmup slices absorbed while warming, keyed
        #: by seq — their spans complete at the initializing flush.
        self.warmup_spans: dict[int, tuple[str, float, float]] = {}
        #: Sliding-window quality telemetry (fed at commit time).
        self.quality = SessionQuality(window=quality_window)
        self.next_seq = 0
        self.consumed = 0
        #: Sequence watermark of the committed model: every slice with
        #: ``seq < applied_seq`` is reflected in the model state (and,
        #: in durable mode, in the on-disk checkpoint).  The gap up to
        #: ``next_seq`` is what a crash would lose.
        self.applied_seq = 0
        #: Slices acknowledged upstream but missing from the checkpoint
        #: this session was rebuilt from (failover data loss; 0 for a
        #: session that never failed over).
        self.degraded = 0
        self.subtensor_shape: tuple[int, ...] | None = None
        #: (seq, completed) pairs of the most recent flushed slices.
        self.results: deque[tuple[int, np.ndarray]] = deque(
            maxlen=keep_results
        )


class _Runner:
    """The scheduler-facing seam of one manager (see ``FlushRunner``)."""

    def __init__(self, manager: "SessionManager") -> None:
        self._manager = manager

    def run(self, jobs: list[tuple[str, list[PendingSlice]]]) -> None:
        self._manager._run_flush_jobs(jobs)

    def fusion_key(self, session_id: str) -> Hashable | None:
        return self._manager._session_fusion_key(session_id)


@dataclass
class _Prepared:
    """One group member between prepare and commit."""

    session: _Session
    items: list[PendingSlice]
    request: FlushRequest | None = None
    #: Whether prepare checked the live model out of the store (the
    #: in-process transport); commit must check it back in.
    checked_out: bool = False
    #: Whether the request initializes the session from its warmup.
    initializes: bool = False
    #: Trace context per traced seq in this flush:
    #: ``seq -> (trace_id, accepted_at, enqueued_at)``.  Empty unless
    #: slices were sampled for tracing.
    span_starts: dict[int, tuple[str, float, float]] | None = None


class SessionManager:
    """Create/ingest/impute/forecast/close over many SOFIA sessions.

    The executor seam: ``worker_pool`` takes any ready-made
    :class:`~repro.serving.pool.WorkerPool`; otherwise one is built
    from ``worker_kind`` (``"thread"`` in-process, ``"process"`` for
    the multiprocessing tier) and ``workers``.  The manager owns the
    pool either way and closes it with the runtime.  ``fuse_sessions``
    switches cross-session batch fusion (grouping due sessions with
    identical ``(shape, rank, dtype, backend)`` into one dispatch, at
    most ``max_fused_sessions`` per group); per-session results are
    bit-identical either way.

    ``durable=True`` turns the checkpoint directory into crash-safe
    state: after every committed flush the session's checkpoint is
    rewritten in place with a JSON bookkeeping sidecar next to it
    (see :func:`~repro.serving.store.checkpoint_meta_path`), so an
    external failover tier — the shard router — can rebuild this
    manager's sessions on a survivor if the process dies.  Give it an
    explicit ``checkpoint_dir`` on shared storage for that to mean
    anything across machines.
    """

    def __init__(
        self,
        *,
        checkpoint_dir: str | Path | None = None,
        max_resident: int | None = None,
        max_batch: int = 16,
        max_latency_s: float = 0.05,
        workers: int = 2,
        worker_kind: str = "thread",
        worker_pool: WorkerPool | None = None,
        fuse_sessions: bool = True,
        max_fused_sessions: int = 8,
        keep_results: int = 64,
        durable: bool = False,
        trace_sample_rate: float = 0.0,
        trace_capacity: int = 4096,
        quality_window: int = 64,
    ) -> None:
        if keep_results < 1:
            raise ValueError(
                f"keep_results must be >= 1, got {keep_results}"
            )
        if quality_window < 1:
            raise ValueError(
                f"quality_window must be >= 1, got {quality_window}"
            )
        self._registry_lock = threading.Lock()
        self._sessions: dict[str, _Session] = {}
        self._tempdir: tempfile.TemporaryDirectory | None = None
        if checkpoint_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(
                prefix="repro-serving-"
            )
            checkpoint_dir = self._tempdir.name
        self.metrics = ServingMetrics()
        self._durable = durable
        self._store = CheckpointStore(
            checkpoint_dir,
            max_resident=max_resident,
            metrics=self.metrics,
            durable=durable,
        )
        self._keep_results = keep_results
        if worker_pool is None:
            worker_pool = make_worker_pool(worker_kind, workers)
        self._pool = worker_pool
        self._scheduler = MicroBatchScheduler(
            _Runner(self),
            max_batch=max_batch,
            max_latency_s=max_latency_s,
            workers=self._pool.size,
            fuse=fuse_sessions,
            max_fused=max_fused_sessions,
        )
        self._quality_window = quality_window
        #: Slice-lifecycle tracing: the sampling decision + bounded
        #: span ring (see ``GET /v1/traces``).  Off by default — the
        #: ingest path then pays one float compare per slice.
        self.tracer = TraceBuffer(
            sample_rate=trace_sample_rate, capacity=trace_capacity
        )
        # Operational gauges, evaluated at snapshot time: how many
        # sessions are resident vs spilled, and how much acked work is
        # still buffered ahead of any model.
        self.metrics.register_gauge(
            "resident_sessions", self._store.resident_count
        )
        self.metrics.register_gauge(
            "evicted_sessions", self._store.spilled_count
        )
        self.metrics.register_gauge(
            "pending_slices", self._scheduler.total_pending
        )
        self._closed = False

    @property
    def worker_pool(self) -> WorkerPool:
        """The executor behind the scheduler (thread/process/custom)."""
        return self._pool

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create_session(
        self,
        session_id: str,
        config: SofiaConfig | dict | None = None,
        *,
        checkpoint: str | Path | None = None,
        kernel_backend: str | None = None,
    ) -> dict:
        """Register a new session; returns its info dict.

        Exactly one of ``config`` and ``checkpoint`` must be given:
        with a config the session warms up on its first
        ``config.init_steps`` ingested slices; with a checkpoint it is
        rehydrated ready-to-step (the config travels inside the
        checkpoint).  ``kernel_backend`` pins all of this session's
        computation to one kernel backend (validated here, applied
        context-locally on the worker threads).
        """
        if (config is None) == (checkpoint is None):
            raise ConfigError(
                "give exactly one of 'config' (fresh session) or "
                "'checkpoint' (warm-started session)"
            )
        if not session_id or "/" in session_id:
            raise ConfigError(
                f"session id must be a non-empty string without '/', "
                f"got {session_id!r}"
            )
        if kernel_backend is not None and (
            kernel_backend not in kernels.available_backends()
        ):
            raise ConfigError(
                f"unknown kernel backend {kernel_backend!r}; "
                f"available: {kernels.available_backends()}"
            )
        sofia: Sofia | None = None
        if checkpoint is not None:
            sofia = load_sofia(checkpoint)
            resolved = sofia.config
        else:
            resolved = make_config(config)
        session = _Session(
            session_id,
            resolved,
            kernel_backend=kernel_backend,
            keep_results=self._keep_results,
            quality_window=self._quality_window,
        )
        with self._registry_lock:
            if self._closed:
                raise SessionError("the session manager is closed")
            if session_id in self._sessions:
                raise SessionExistsError(
                    f"session {session_id!r} already exists"
                )
            self._sessions[session_id] = session
        if sofia is not None:
            session.initialized = True
            session.subtensor_shape = sofia.state.subtensor_shape
            session.consumed = int(sofia.state.t)
            self._store.put(session_id, sofia)
            if self._durable:
                with session.lock:
                    self._persist_session_locked(session)
        self.metrics.increment("sessions_created")
        return self.session_info(session_id)

    def close_session(
        self, session_id: str, *, checkpoint_path: str | Path | None = None
    ) -> str | None:
        """Drain, optionally checkpoint, and remove a session.

        Returns the checkpoint path when one was written.  Pending
        slices are applied before the final checkpoint, so nothing
        ingested is lost.
        """
        session = self._get_session(session_id)
        with session.lock:
            session.closing = True
        self._scheduler.drain(session_id)
        saved: str | None = None
        with session.lock:
            if checkpoint_path is not None:
                self._require_initialized(session, "checkpointing")
                saved = str(
                    self._store.save_to(session_id, checkpoint_path)
                )
            self._store.remove(session_id)
            if self._durable:
                checkpoint_meta_path(
                    self._store.checkpoint_path(session_id)
                ).unlink(missing_ok=True)
        with self._registry_lock:
            self._sessions.pop(session_id, None)
        self.metrics.increment("sessions_closed")
        return saved

    # ------------------------------------------------------------------
    # Live migration (the shard router's handoff medium)
    # ------------------------------------------------------------------
    def export_session(self, session_id: str) -> dict:
        """Drain a session and return its portable state for handoff.

        The returned dict carries the model as versioned
        checkpoint-format bytes (``state``, via
        :meth:`~repro.serving.store.CheckpointStore.export_state`) plus
        the serving-side bookkeeping a receiving runtime needs to
        continue the stream seamlessly: ``next_seq`` (so later ingests
        keep numbering where this runtime left off), ``consumed``, and
        the session's ``kernel_backend`` pin.  Pending slices are
        applied first, so the exported state reflects everything ever
        ingested — feed the dict to :meth:`import_session` on another
        manager and the trajectory continues bit-identically.

        The session stays registered here; the caller decides whether
        to :meth:`close_session` it after a successful import elsewhere.
        """
        session = self._get_session(session_id)
        self._scheduler.drain(session_id)
        with session.lock:
            self._raise_on_failure(session)
            self._require_initialized(session, "export")
            state = self._store.export_state(session_id)
            payload = {
                "session_id": session_id,
                "state": state,
                "next_seq": session.next_seq,
                "consumed": session.consumed,
                "kernel_backend": session.kernel_backend,
                # The degraded mark is permanent and must follow the
                # session across migrations, not reset to zero.
                "degraded": session.degraded,
            }
        self.metrics.increment("session_exports")
        return payload

    def import_session(
        self,
        session_id: str,
        state: bytes,
        *,
        next_seq: int | None = None,
        consumed: int | None = None,
        kernel_backend: str | None = None,
        degraded: int = 0,
    ) -> dict:
        """Adopt a session exported from another runtime; returns info.

        ``state`` is the checkpoint-format bytes of
        :meth:`export_session` (or
        :meth:`~repro.serving.store.CheckpointStore.export_state`); the
        config travels inside them.  The session is ready immediately —
        no warmup — and its sequence numbering continues from
        ``next_seq`` so clients polling ``results`` see no gap or
        reuse.  ``consumed`` defaults to the model's own step count.

        ``degraded`` is the failover path's honesty marker: the number
        of slices that were acknowledged upstream but are missing from
        ``state`` because the source died before flushing them.  A
        non-zero count turns the session's status to ``"degraded"``
        (permanently — the data is gone) instead of dropping the loss
        silently.
        """
        if not session_id or "/" in session_id:
            raise ConfigError(
                f"session id must be a non-empty string without '/', "
                f"got {session_id!r}"
            )
        if kernel_backend is not None and (
            kernel_backend not in kernels.available_backends()
        ):
            raise ConfigError(
                f"unknown kernel backend {kernel_backend!r}; "
                f"available: {kernels.available_backends()}"
            )
        if next_seq is not None and next_seq < 0:
            raise ConfigError(
                f"next_seq must be >= 0, got {next_seq}"
            )
        if degraded < 0:
            raise ConfigError(
                f"degraded must be >= 0, got {degraded}"
            )
        sofia = loads_sofia(state)
        session = _Session(
            session_id,
            sofia.config,
            kernel_backend=kernel_backend,
            keep_results=self._keep_results,
            quality_window=self._quality_window,
        )
        session.initialized = True
        session.subtensor_shape = sofia.state.subtensor_shape
        session.consumed = (
            int(sofia.state.t) if consumed is None else int(consumed)
        )
        if next_seq is not None:
            session.next_seq = int(next_seq)
        # Everything the source acknowledged is either in the model or
        # counted as degraded loss; later flushes only move it forward.
        session.applied_seq = session.next_seq
        session.degraded = int(degraded)
        with self._registry_lock:
            if self._closed:
                raise SessionError("the session manager is closed")
            if session_id in self._sessions:
                raise SessionExistsError(
                    f"session {session_id!r} already exists"
                )
            self._sessions[session_id] = session
        self._store.put(session_id, sofia)
        if self._durable:
            with session.lock:
                self._persist_session_locked(session)
        self.metrics.increment("sessions_created")
        self.metrics.increment("session_imports")
        if session.degraded:
            self.metrics.increment("degraded_imports")
        return self.session_info(session_id)

    def close(self) -> None:
        """Drain every session and shut the worker pool down."""
        with self._registry_lock:
            if self._closed:
                return
            self._closed = True
        self._scheduler.close(drain=True)
        self._pool.close()
        if self._tempdir is not None:
            self._tempdir.cleanup()

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Streaming ingestion
    # ------------------------------------------------------------------
    def ingest(
        self,
        session_id: str,
        subtensor,
        mask=None,
        *,
        trace_id: str | None = None,
    ) -> int:
        """Buffer one incoming slice; returns its sequence number.

        Asynchronous: the slice is applied by the micro-batching
        scheduler (flush on full batch or latency deadline) and its
        completed reconstruction appears in :meth:`results` under the
        returned sequence number.  Shape problems raise
        :class:`~repro.exceptions.ShapeError` here, synchronously.

        An explicit ``trace_id`` forces lifecycle tracing for this
        slice; otherwise the manager's sample rate decides (see
        :meth:`ingest_traced` for getting the minted id back).
        """
        seq, _ = self.ingest_traced(
            session_id, subtensor, mask, trace_id=trace_id
        )
        return seq

    def ingest_traced(
        self,
        session_id: str,
        subtensor,
        mask=None,
        *,
        trace_id: str | None = None,
    ) -> tuple[int, str | None]:
        """:meth:`ingest`, returning ``(seq, trace_id-or-None)``.

        The trace id is the explicit one when given, a freshly minted
        one when the sample rate elected this slice, else ``None``
        (untraced).  The gateway uses this form so the ack can echo
        the id back to the caller.
        """
        session = self._get_session(session_id)
        trace = self.tracer.sample(trace_id)
        accepted_at = self._scheduler.now() if trace else 0.0
        y = np.asarray(subtensor, dtype=session.config.np_dtype)
        if mask is None:
            m = np.ones(y.shape, dtype=bool)
        else:
            m = check_mask(mask, y.shape)
        with session.lock:
            if session.closing:
                raise SessionNotFoundError(
                    f"session {session_id!r} is closing"
                )
            if session.failure is not None:
                raise SessionError(
                    f"session {session_id!r} failed: {session.failure}"
                )
            if session.subtensor_shape is None:
                session.subtensor_shape = y.shape
            elif y.shape != session.subtensor_shape:
                raise ShapeError(
                    f"session {session_id!r} expects slices of shape "
                    f"{session.subtensor_shape}, got {y.shape}"
                )
            seq = session.next_seq
            session.next_seq += 1
            # Submitted under the session lock so concurrent ingests
            # enqueue in sequence order (the scheduler applies a
            # session's buffer strictly in submission order).  Lock
            # order session -> scheduler condition is deadlock-free:
            # workers never take a session lock while holding the
            # condition.
            self._scheduler.submit(
                session_id,
                PendingSlice(
                    seq=seq,
                    subtensor=y,
                    mask=m,
                    # Stamped off the scheduler's own monotonic clock:
                    # the latency deadline compares against this, and
                    # mixing clocks (or using wall time, which NTP can
                    # step) would skew it.  For a traced slice it
                    # doubles as the enqueue stamp.
                    arrived_at=self._scheduler.now(),
                    trace_id=trace,
                    accepted_at=accepted_at if trace else None,
                ),
            )
        self.metrics.increment("slices_ingested")
        return seq, trace

    def results(self, session_id: str, since_seq: int = 0) -> list:
        """Completed slices with ``seq >= since_seq``, oldest first.

        Only the most recent ``keep_results`` per session are retained;
        each entry is ``(seq, completed)``.
        """
        session = self._get_session(session_id)
        with session.lock:
            self._raise_on_failure(session)
            return [
                (seq, completed)
                for seq, completed in session.results
                if seq >= since_seq
            ]

    # ------------------------------------------------------------------
    # Synchronous operations
    # ------------------------------------------------------------------
    def impute(self, session_id: str, subtensor, mask=None) -> np.ndarray:
        """Ingest one slice and return it with missing entries filled.

        Synchronous: drains the session's buffer, so the returned slice
        reflects every previously ingested one.  Observed entries are
        kept verbatim; missing ones come from the reconstruction (the
        slice joins the model trajectory exactly like an ingested one).

        Warming sessions are rejected *before* the slice is buffered,
        so a failed impute has no side effect and can be retried safely
        once warmup completes (feed warmup data through :meth:`ingest`).
        """
        session = self._get_session(session_id)
        y = np.asarray(subtensor, dtype=session.config.np_dtype)
        m = (
            np.ones(y.shape, dtype=bool)
            if mask is None
            else check_mask(mask, y.shape)
        )
        # Apply what is already buffered first: a warming session may
        # be a few pending slices away from initializing, and the check
        # below must see the post-drain state.
        self._scheduler.drain(session_id)
        with session.lock:
            self._raise_on_failure(session)
            self._require_initialized(session, "impute")
        seq = self.ingest(session_id, y, m)
        self._scheduler.drain(session_id)
        with session.lock:
            self._raise_on_failure(session)
            completed = next(
                (c for s, c in session.results if s == seq), None
            )
        if completed is None:  # pragma: no cover - keep_results too small
            raise SessionError(
                f"result for slice {seq} of session {session_id!r} was "
                "evicted from the result window; raise keep_results"
            )
        self.metrics.increment("imputations")
        return np.where(m, y, completed)

    def forecast(self, session_id: str, horizon: int) -> np.ndarray:
        """Forecast the next ``horizon`` slices of this session.

        Synchronous: drains the session's buffer first so the forecast
        starts from the latest ingested state.
        """
        if horizon < 1:
            raise ShapeError(f"horizon must be >= 1, got {horizon}")
        session = self._get_session(session_id)
        self._scheduler.drain(session_id)
        with session.lock:
            self._raise_on_failure(session)
            self._require_initialized(session, "forecast")
            sofia = self._store.checkout(session_id)
            try:
                with self._backend_context(session):
                    forecast = sofia.forecast(horizon)
            finally:
                self._store.checkin(session_id)
        self.metrics.increment("forecasts")
        return forecast

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def session_info(self, session_id: str) -> dict:
        """Status snapshot of one session (JSON-serializable)."""
        session = self._get_session(session_id)
        with session.lock:
            if not session.initialized:
                status = "warming"
            elif session.degraded:
                # Failover lost acknowledged slices for this session;
                # the mark is permanent and outranks ready/evicted.
                status = "degraded"
            elif self._store.is_resident(session_id):
                status = "ready"
            else:
                status = "evicted"
            return {
                "session_id": session_id,
                "status": status,
                "failure": session.failure,
                "consumed": session.consumed,
                "degraded": session.degraded,
                "pending": self._scheduler.pending_count(session_id),
                "warmup_ingested": len(session.warmup),
                "warmup_needed": (
                    0
                    if session.initialized
                    else session.config.init_steps - len(session.warmup)
                ),
                "subtensor_shape": (
                    list(session.subtensor_shape)
                    if session.subtensor_shape
                    else None
                ),
                "kernel_backend": session.kernel_backend,
                "config": {
                    "rank": session.config.rank,
                    "period": session.config.period,
                    "batch_size": session.config.batch_size,
                    "dtype": session.config.dtype,
                },
            }

    def session_stats(self, session_id: str) -> dict:
        """The ``SessionStats`` snapshot of one session.

        Everything an operator needs to judge one stream's health at a
        glance, fed from state the dynamic phase already computed:
        lifecycle (status, resident/evicted, queue depth, applied
        watermark) plus the sliding-window quality signals (running
        NRE of the one-step-ahead forecast, outlier fraction, latest
        error scale, last-flush staleness).  Served at
        ``GET /v1/sessions/<id>/stats``.
        """
        session = self._get_session(session_id)
        now = self._scheduler.now()
        with session.lock:
            if not session.initialized:
                status = "warming"
            elif session.degraded:
                status = "degraded"
            elif self._store.is_resident(session_id):
                status = "ready"
            else:
                status = "evicted"
            stats = {
                "session_id": session_id,
                "status": status,
                "failure": session.failure,
                "resident": self._store.is_resident(session_id),
                "pending": self._scheduler.pending_count(session_id),
                "next_seq": session.next_seq,
                "applied_seq": session.applied_seq,
                "consumed": session.consumed,
                "degraded": session.degraded,
            }
            stats.update(session.quality.snapshot(now))
        return stats

    def session_stats_all(self) -> dict[str, dict]:
        """``session_stats`` for every registered session, by id."""
        stats = {}
        for session_id in self.list_sessions():
            try:
                stats[session_id] = self.session_stats(session_id)
            except SessionNotFoundError:
                continue  # closed between listing and snapshot
        return stats

    def traces(
        self,
        *,
        session_id: str | None = None,
        trace_id: str | None = None,
        limit: int | None = None,
    ) -> dict:
        """Recorded slice-lifecycle spans (``GET /v1/traces`` payload)."""
        return {
            "traces": self.tracer.spans(
                session_id=session_id,
                trace_id=trace_id,
                limit=limit,
            ),
            "tracing": self.tracer.stats(),
        }

    def list_sessions(self) -> list[str]:
        with self._registry_lock:
            return sorted(self._sessions)

    @property
    def store(self) -> CheckpointStore:
        return self._store

    def drain(self, session_id: str | None = None) -> None:
        """Apply all buffered slices (of one session, or all)."""
        if session_id is None:
            self._scheduler.drain_all()
        else:
            self._get_session(session_id)
            self._scheduler.drain(session_id)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _get_session(self, session_id: str) -> _Session:
        with self._registry_lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionNotFoundError(f"no session {session_id!r}")
        return session

    @staticmethod
    def _raise_on_failure(session: _Session) -> None:
        if session.failure is not None:
            raise SessionError(
                f"session {session.session_id!r} failed: {session.failure}"
            )

    @staticmethod
    def _require_initialized(session: _Session, operation: str) -> None:
        if not session.initialized:
            raise SessionError(
                f"session {session.session_id!r} is still warming up "
                f"({len(session.warmup)} of "
                f"{session.config.init_steps} startup slices ingested); "
                f"{operation} needs an initialized model"
            )

    @staticmethod
    def _backend_context(session: _Session):
        if session.kernel_backend is None:
            return nullcontext()
        return kernels.use_backend(session.kernel_backend)

    def _session_fusion_key(self, session_id: str) -> Hashable | None:
        """What makes sessions fusable: same shape, rank, dtype, backend.

        Called by the scheduler *under its condition variable*, so this
        must not take session locks (lock order is session -> scheduler
        condition).  Every field read is either immutable after
        creation (config, kernel backend) or an atomically-assigned
        snapshot (``initialized``, ``subtensor_shape``); a stale read
        only costs one missed or solo fusion, never correctness.
        Warming and failed sessions never fuse.
        """
        with self._registry_lock:
            session = self._sessions.get(session_id)
        if (
            session is None
            or not session.initialized
            or session.failure is not None
            or session.subtensor_shape is None
        ):
            return None
        return (
            session.subtensor_shape,
            session.config.rank,
            session.config.dtype,
            session.kernel_backend,
        )

    def _persist_session_locked(self, session: _Session) -> None:
        """Write the durable checkpoint + bookkeeping sidecar.

        Called with the session's lock held, right after a commit (or
        at adoption time), so the ``.npz`` and the ``.meta.json`` next
        to it describe one consistent state.  ``next_seq`` in the meta
        is the highest sequence this runtime acknowledged; anything
        between ``applied_seq`` and it was still buffered — the gap a
        failover must report as degraded.
        """
        try:
            path = self._store.persist(session.session_id)
        except SessionNotFoundError:  # pragma: no cover - close race
            return
        meta = {
            "session_id": session.session_id,
            "next_seq": session.next_seq,
            "applied_seq": session.applied_seq,
            "consumed": session.consumed,
            "kernel_backend": session.kernel_backend,
            "degraded": session.degraded,
        }
        checkpoint_meta_path(path).write_text(
            json.dumps(meta), encoding="utf-8"
        )

    def _run_flush_jobs(
        self, jobs: list[tuple[str, list[PendingSlice]]]
    ) -> None:
        """Scheduler dispatch: apply one fused group of micro-batches.

        Never raises — a failing member marks only its own session
        failed and the error surfaces on the next API call against it.
        All member locks are taken in sorted session-id order for the
        whole prepare/execute/commit cycle, so synchronous operations
        (impute, forecast, results) observe each flush atomically.
        """
        members: list[tuple[_Session, list[PendingSlice]]] = []
        for session_id, items in sorted(jobs):
            try:
                members.append((self._get_session(session_id), items))
            except SessionNotFoundError:
                continue  # closed concurrently; nothing to apply to
        if not members:
            return
        with ExitStack() as stack:
            for session, _ in members:
                stack.enter_context(session.lock)
            prepared = [
                self._prepare_locked(session, items)
                for session, items in members
            ]
            for plan in prepared:
                if plan.request is None and plan.session.failure:
                    # Dropped batch of a failed session: complete any
                    # traced slices' spans with the error instead of
                    # leaving them dangling forever.
                    self._record_dropped_spans(plan)
            requests = [
                plan.request for plan in prepared if plan.request is not None
            ]
            if requests:
                # One stamp for the fused group: the pool hand-off.
                dispatched_at = self._scheduler.now()
                results = self._pool.execute(requests)
                # ... and one when the group's results are back (on a
                # process pool the gap minus the worker's own seconds
                # is IPC + peer time).
                returned_at = self._scheduler.now()
                self.metrics.increment("dispatches")
                if len(requests) > 1:
                    self.metrics.increment("fused_dispatches")
                    self.metrics.increment(
                        "fused_sessions_flushed", len(requests)
                    )
                by_session = {
                    result.session_id: result for result in results
                }
                for plan in prepared:
                    if plan.request is None:
                        continue
                    self._commit_locked(
                        plan,
                        by_session.get(plan.request.session_id),
                        dispatched_at=dispatched_at,
                        returned_at=returned_at,
                    )
                    if (
                        self._durable
                        and plan.session.failure is None
                        and plan.session.initialized
                    ):
                        # Member locks are still held, so the persisted
                        # checkpoint + sidecar are exactly the committed
                        # state — the failover tier never reads a torn
                        # snapshot.
                        self._persist_session_locked(plan.session)

    def _prepare_locked(
        self, session: _Session, items: list[PendingSlice]
    ) -> _Prepared:
        """Turn one member's batch into a flush request (or buffer it).

        Warmup bookkeeping happens here, in the manager: slices of a
        warming session accumulate until ``init_steps`` have arrived,
        at which point the request carries the whole initialization
        window.  A warming session whose window is still short
        produces no request (the slices were absorbed into the warmup
        buffer); so does a failed session (its slices are dropped, as
        before — the failure already surfaces on every API call).
        """
        plan = _Prepared(session=session, items=items)
        if session.failure is not None:
            return plan
        config = session.config
        remaining = items
        span_starts = {
            item.seq: (
                item.trace_id,
                (
                    item.accepted_at
                    if item.accepted_at is not None
                    else item.arrived_at
                ),
                item.arrived_at,
            )
            for item in items
            if item.trace_id is not None
        }
        request = FlushRequest(
            session_id=session.session_id,
            config=config,
            transport=self._pool.transport,
            kernel_backend=session.kernel_backend,
        )
        if not session.initialized:
            need = config.init_steps - len(session.warmup)
            head, remaining = items[:need], items[need:]
            session.warmup.extend(
                (item.subtensor, item.mask) for item in head
            )
            # Traced warmup slices park their span context with the
            # session: their spans complete at the initializing flush,
            # which is when they are actually dispatched and executed.
            for item in head:
                if item.trace_id is not None:
                    session.warmup_spans[item.seq] = span_starts.pop(
                        item.seq
                    )
            if len(session.warmup) < config.init_steps:
                # Buffered only; count the slices as flushed, exactly
                # like the closure-based path did.
                self.metrics.observe_flush(len(items), 0.0)
                return plan
            span_starts.update(session.warmup_spans)
            # Startup slices get results too: their seqs are exactly
            # 0..init_steps-1 in ingestion order.
            request.warmup_seqs = list(range(config.init_steps))
            request.warmup_ys = np.stack(
                [y for y, _ in session.warmup]
            )
            request.warmup_masks = np.stack(
                [m for _, m in session.warmup]
            )
            plan.initializes = True
        if remaining:
            request.step_seqs = [item.seq for item in remaining]
            request.step_ys = np.stack(
                [item.subtensor for item in remaining]
            )
            request.step_masks = np.stack(
                [item.mask for item in remaining]
            )
        if session.initialized:
            if self._pool.transport == "state":
                request.state = self._store.export_state(
                    session.session_id
                )
            else:
                request.model = self._store.checkout(session.session_id)
                plan.checked_out = True
        if span_starts:
            plan.span_starts = span_starts
            # The trace context rides inside the (picklable) request
            # and is echoed back on the result — across the process
            # boundary on the "state" transport.
            request.trace_ids = {
                seq: start[0] for seq, start in span_starts.items()
            }
        plan.request = request
        return plan

    def _record_dropped_spans(self, plan: _Prepared) -> None:
        """Error-complete the spans of a failed session's dropped batch."""
        now = self._scheduler.now()
        for item in plan.items:
            if item.trace_id is None:
                continue
            accepted = (
                item.accepted_at
                if item.accepted_at is not None
                else item.arrived_at
            )
            self.tracer.record(
                SliceSpan(
                    trace_id=item.trace_id,
                    session_id=plan.session.session_id,
                    seq=item.seq,
                    accepted=accepted,
                    enqueued=item.arrived_at,
                    dispatched=now,
                    executed=now,
                    committed=now,
                    transport=self._pool.transport,
                    error=f"dropped: {plan.session.failure}",
                )
            )

    def _commit_locked(
        self,
        plan: _Prepared,
        result: FlushResult | None,
        *,
        dispatched_at: float,
        returned_at: float,
    ) -> None:
        """Fold one member's result back into its session."""
        session = plan.session
        try:
            if result is None or result.error is not None:
                session.failure = (
                    "worker pool returned no result for this flush"
                    if result is None
                    else result.error
                )
                self.metrics.increment("flush_failures")
                self._record_spans_locked(
                    plan,
                    result,
                    dispatched_at=dispatched_at,
                    returned_at=returned_at,
                    committed_at=self._scheduler.now(),
                    error=session.failure,
                )
                return
            if result.state is not None:
                self._store.import_state(
                    session.session_id, result.state
                )
            elif result.model is not None and not plan.checked_out:
                # Freshly initialized on the in-process transport.
                self._store.put(session.session_id, result.model)
            if plan.initializes:
                session.warmup = []
                session.warmup_spans = {}
                session.initialized = True
            for seq, completed in result.results:
                session.results.append((seq, completed))
            session.consumed += result.consumed
            applied = [
                seqs[-1]
                for seqs in (
                    plan.request.warmup_seqs,
                    plan.request.step_seqs,
                )
                if seqs
            ]
            if applied:
                session.applied_seq = max(
                    session.applied_seq, max(applied) + 1
                )
            self.metrics.observe_flush(
                len(plan.items), result.seconds
            )
            # End-to-end ingest latency: scheduler-clock arrival stamp
            # to commit, per slice — the number an ingestion SLO is
            # written against (and what GET /metrics reports as
            # ingest_latency p50/p95/p99).
            committed_at = self._scheduler.now()
            for item in plan.items:
                self.metrics.observe_latency(
                    "ingest", committed_at - item.arrived_at
                )
            # Quality telemetry: the worker's per-slice aggregates and
            # post-batch error scale land in the session's sliding
            # window (scalars only — the arrays stayed in the worker).
            session.quality.observe_batch(
                result.quality,
                result.error_scale,
                committed_at,
                applied=result.consumed,
            )
            self._record_spans_locked(
                plan,
                result,
                dispatched_at=dispatched_at,
                returned_at=returned_at,
                committed_at=committed_at,
            )
        finally:
            if plan.checked_out:
                self._store.checkin(session.session_id)

    def _record_spans_locked(
        self,
        plan: _Prepared,
        result: FlushResult | None,
        *,
        dispatched_at: float,
        returned_at: float,
        committed_at: float,
        error: str | None = None,
    ) -> None:
        """Complete this flush's traced slices' spans into the ring.

        All stamps come from the scheduler's monotonic clock, so every
        chain is monotone by construction even across the process-pool
        boundary: the worker's own ``seconds`` measurement travels
        back as ``execute_seconds`` (the kernel share of
        ``dispatched -> executed``; the remainder is IPC plus fused
        peers).  Trace ids are taken from the result's echoed map when
        available — the proof they crossed the transport.
        """
        if not plan.span_starts:
            return
        echoed = result.trace_ids if result is not None else {}
        seconds = result.seconds if result is not None else 0.0
        for seq, (trace_id, accepted, enqueued) in (
            plan.span_starts.items()
        ):
            self.tracer.record(
                SliceSpan(
                    trace_id=echoed.get(seq, trace_id),
                    session_id=plan.session.session_id,
                    seq=seq,
                    accepted=accepted,
                    enqueued=max(enqueued, accepted),
                    dispatched=max(dispatched_at, enqueued, accepted),
                    executed=max(returned_at, dispatched_at),
                    committed=max(committed_at, returned_at),
                    execute_seconds=seconds,
                    transport=self._pool.transport,
                    error=error,
                )
            )
