"""Integration tests for the per-figure experiment drivers.

Each driver runs at a tiny scale here; the benches run the real presets.
"""

import numpy as np
import pytest

from repro.experiments import (
    TINY_SCALE,
    aligned_factor_error,
    linear_fit_r2,
    run_ablation,
    run_fig2,
    run_forecasting_experiment,
    run_imputation_grid,
    run_scalability,
)
from repro.streams import CorruptionSpec


class TestAlignedFactorError:
    def test_zero_for_identical(self):
        u = np.random.default_rng(0).normal(size=(20, 3))
        assert aligned_factor_error(u, u) == pytest.approx(0.0, abs=1e-9)

    def test_invariant_to_permutation_and_scale(self):
        rng = np.random.default_rng(1)
        u = rng.normal(size=(20, 3))
        shuffled = u[:, [2, 0, 1]] * np.array([3.0, -1.5, 0.2])
        assert aligned_factor_error(shuffled, u) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_garbage(self):
        rng = np.random.default_rng(2)
        u = rng.normal(size=(20, 3))
        v = rng.normal(size=(20, 3))
        assert aligned_factor_error(v, u) > 0.3

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            aligned_factor_error(np.ones((4, 2)), np.ones((4, 3)))


class TestLinearFitR2:
    def test_perfect_line(self):
        x = np.arange(10.0)
        assert linear_fit_r2(x, 3 * x + 1) == pytest.approx(1.0)

    def test_noisy_line_high_r2(self):
        rng = np.random.default_rng(3)
        x = np.arange(50.0)
        y = 2 * x + rng.normal(0, 1.0, 50)
        assert linear_fit_r2(x, y) > 0.95

    def test_quadratic_lower_r2(self):
        x = np.linspace(-10, 10, 50)
        assert linear_fit_r2(x, x**2) < 0.5

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            linear_fit_r2(np.array([1.0]), np.array([2.0]))


class TestFig2Driver:
    def test_sofia_beats_vanilla(self):
        result = run_fig2(max_outer_iters=60, trace_every=20, seed=0)
        assert result.final_nre_sofia < result.final_nre_vanilla
        assert result.temporal_error_sofia < result.temporal_error_vanilla

    def test_trace_lengths_match(self):
        result = run_fig2(max_outer_iters=40, trace_every=10, seed=0)
        assert len(result.iterations) == len(result.nre_sofia)
        assert len(result.nre_sofia) == len(result.nre_vanilla)


class TestImputationGridDriver:
    @pytest.fixture(scope="class")
    def grid(self):
        return run_imputation_grid(
            scale=TINY_SCALE,
            datasets=("nyc_taxi",),
            settings=(CorruptionSpec(30, 15, 3),),
        )

    def test_all_cells_present(self, grid):
        assert len(grid.cells) == 5  # 1 dataset x 1 setting x 5 algorithms

    def test_sofia_wins(self, grid):
        winners = grid.winners()
        assert winners[("nyc_taxi", "(30, 15, 3)")] == "SOFIA"

    def test_cell_lookup(self, grid):
        cell = grid.cell("nyc_taxi", "(30, 15, 3)", "SOFIA")
        assert cell.rae > 0.0
        assert cell.nre_series.ndim == 1

    def test_missing_cell_raises(self, grid):
        with pytest.raises(KeyError):
            grid.cell("nope", "(30, 15, 3)", "SOFIA")

    def test_mini_batch_grid_stays_close_to_sequential(self, grid):
        batched = run_imputation_grid(
            scale=TINY_SCALE.with_batch_size(8),
            datasets=("nyc_taxi",),
            settings=(CorruptionSpec(30, 15, 3),),
        )
        assert len(batched.cells) == len(grid.cells)
        for cell in grid.cells:
            twin = batched.cell(cell.dataset, cell.setting.label, cell.algorithm)
            # nre_series length (= live step count) must be unchanged by
            # chunking, and accuracy must stay in the same regime (SOFIA
            # runs the mini-batch engine; baselines run the sequential
            # fallback and match exactly).
            assert twin.nre_series.shape == cell.nre_series.shape
            if cell.algorithm == "SOFIA":
                assert abs(twin.rae - cell.rae) < 0.05
            else:
                np.testing.assert_allclose(twin.rae, cell.rae, rtol=1e-12)


class TestForecastingDriver:
    def test_sofia_beats_competitors(self):
        cells = run_forecasting_experiment(
            scale=TINY_SCALE, datasets=("nyc_taxi",)
        )
        afe = {c.label: c.afe for c in cells}
        sofia_clean = afe["SOFIA (0, 20, 5)"]
        assert sofia_clean < afe["SMF (0, 20, 5)"]
        assert sofia_clean < afe["CPHW (0, 20, 5)"]

    def test_sofia_all_missing_rates_present(self):
        cells = run_forecasting_experiment(
            scale=TINY_SCALE, datasets=("nyc_taxi",)
        )
        sofia_settings = {
            c.setting.missing_pct for c in cells if c.algorithm == "SOFIA"
        }
        assert sofia_settings == {0, 30, 50, 70}


class TestScalabilityDriver:
    def test_linear_in_entries_and_steps(self):
        # sizes chosen so entry-proportional work dominates the fixed
        # per-step overhead
        result = run_scalability(
            row_sizes=(100, 200, 300, 400), n_cols=50, n_steps=80
        )
        assert result.entries_r2 > 0.8
        assert result.steps_r2 > 0.95
        assert result.total_seconds.shape == (4,)


class TestAblationDriver:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return run_ablation(
            setting=CorruptionSpec(40, 15, 3),
            dims=(8, 7),
            rank=2,
            period=8,
            n_seasons=8,
        )

    def test_all_variants_run(self, outcomes):
        assert len(outcomes) == 6

    def test_full_sofia_is_best_or_close(self, outcomes):
        rae = {o.variant: o.rae for o in outcomes}
        full = rae["full SOFIA"]
        # every ablated variant is at least as bad (small tolerance for
        # run-to-run jitter)
        for name, value in rae.items():
            if name != "full SOFIA":
                assert value >= 0.8 * full, (name, value, full)
