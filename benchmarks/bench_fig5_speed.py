"""Fig. 5: average running time per subtensor.

Reports the ART of every algorithm per (dataset, setting) from the
shared grid run, plus the paper's headline ratio (SOFIA's speed-up over
the second-most accurate method).  The parametrized benchmarks time one
streaming step of each algorithm on the same warmed-up Chicago stream,
which is the honest pytest-benchmark analogue of Fig. 5.

Run as a script, this file instead times the batched kernel layer
against the scalar reference backend on the SOFIA hot paths (one ALS
sweep, a run of dynamic steps, a run of OLSTEC RLS steps) and writes the
scalar-vs-batched wall-clock to a JSON artifact so the perf trajectory
is tracked over time::

    python benchmarks/bench_fig5_speed.py --json BENCH_kernels.json
    python benchmarks/bench_fig5_speed.py --quick   # reduced CI smoke mode

It also times the mini-batch streaming engine on a Fig. 7-style fully
observed stream — amortized per-step wall-clock at batch sizes
B in {1, 4, 16} — and can write that to a second artifact::

    python benchmarks/bench_fig5_speed.py --streaming-json BENCH_streaming.json

A third standalone report sweeps observed density over {1%, 5%, 25%}
and times the sparse kernel backend against the dense batched one on
the accumulation + reconstruction hot paths (the paper's real-world
streams are observed down to a few percent)::

    python benchmarks/bench_fig5_speed.py --density-json BENCH_density.json

A fourth report sweeps the array-API ``"xp"`` kernel backend over the
importable array modules (numpy always; torch/cupy when installed, or
an explicit ``--array-module`` list) against the dense ``batched``
NumPy baseline on the same hot paths::

    python benchmarks/bench_fig5_speed.py --device-json BENCH_device.json
    python benchmarks/bench_fig5_speed.py --device-json BENCH_device.json \
        --array-module numpy --array-module torch

CI runs all four in ``--quick`` mode and gates merges on
``benchmarks/check_regression.py`` against the committed baselines in
``benchmarks/baseline/`` (the device baseline pins the numpy cases;
extra modules available only on CI runners ride along ungated).
"""

import numpy as np
import pytest
from conftest import report

from repro.baselines import Mast, Olstec, OnlineSGD, OrMstc, SofiaImputer
from repro.experiments import SMALL_SCALE, dataset_stream, format_table
from repro.experiments.imputation import sofia_config_for_rank
from repro.streams import CorruptionSpec, TensorStream, corrupt

_ALGOS = {
    "SOFIA": lambda rank, period: SofiaImputer(
        sofia_config_for_rank(rank, period)
    ),
    "OnlineSGD": lambda rank, period: OnlineSGD(rank, seed=0),
    "OLSTEC": lambda rank, period: Olstec(rank, seed=0),
    "MAST": lambda rank, period: Mast(rank, seed=0),
    "OR-MSTC": lambda rank, period: OrMstc(rank, seed=0),
}


def test_bench_fig5_art_report(benchmark, imputation_grid):
    grid = imputation_grid
    datasets = sorted({c.dataset for c in grid.cells})
    algorithms = sorted({c.algorithm for c in grid.cells})

    def aggregate():
        rows = []
        ratios = []
        for dataset in datasets:
            for setting in SMALL_SCALE.settings:
                cells = {
                    c.algorithm: c
                    for c in grid.cells
                    if c.dataset == dataset and c.setting == setting
                }
                row = [dataset, setting.label] + [
                    cells[a].art_seconds * 1e3 for a in algorithms
                ]
                second_most_accurate = min(
                    (c for name, c in cells.items() if name != "SOFIA"),
                    key=lambda c: c.rae,
                )
                ratio = second_most_accurate.art_seconds / max(
                    cells["SOFIA"].art_seconds, 1e-12
                )
                ratios.append(ratio)
                row.append(f"{ratio:.1f}x")
                rows.append(row)
        return rows, ratios

    rows, ratios = benchmark(aggregate)
    report(
        format_table(
            ["Dataset", "Setting"]
            + [f"{a} (ms)" for a in algorithms]
            + ["speedup vs 2nd-acc"],
            rows,
            title="Fig. 5: average running time per subtensor, small preset",
        )
    )
    report(
        f"SOFIA speed-up over the second-most accurate: up to "
        f"{max(ratios):.0f}x (paper reports up to 935x on MATLAB/larger data)"
    )
    # Shape assertion: SOFIA is at least as fast as the second-most
    # accurate competitor in most cells.
    assert np.median(ratios) >= 1.0


@pytest.mark.parametrize("name", list(_ALGOS))
def test_bench_fig5_step(benchmark, name):
    ds = dataset_stream("chicago_taxi", SMALL_SCALE)
    corrupted = corrupt(ds.data, CorruptionSpec(50, 20, 4), seed=0)
    observed = TensorStream(
        data=corrupted.observed, mask=corrupted.mask, period=ds.period
    )
    algo = _ALGOS[name](SMALL_SCALE.ranks["chicago_taxi"], ds.period)
    algo.initialize(*observed.startup(3 * ds.period))
    y = observed.subtensor(3 * ds.period)
    mask = observed.mask_at(3 * ds.period)
    out = benchmark(lambda: algo.step(y, mask))
    assert out.shape == observed.subtensor_shape


# ---------------------------------------------------------------------------
# Scalar-vs-batched kernel speed report (standalone mode)
# ---------------------------------------------------------------------------


def _best_of(fn, repeats):
    """Best wall-clock of ``repeats`` calls (min filters scheduler noise)."""
    import time

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_kernel_speed_report(
    shape=(50, 50, 2000),
    rank=5,
    period=24,
    *,
    n_dynamic_steps=200,
    n_rls_steps=50,
    observed=0.8,
    seed=0,
    repeats=3,
):
    """Time the SOFIA hot paths under each kernel backend.

    Returns a list of dicts, one per case, with scalar/batched seconds
    and the resulting speed-up.  The ALS case is one full SOFIA_ALS sweep
    (normal-equation accumulation, stacked row solves, and the Theorem-2
    temporal sweep) over the whole ``shape`` stream; the dynamic case
    runs ``n_dynamic_steps`` online updates; the RLS case runs OLSTEC
    steps on matrix slices.
    """
    from repro.baselines import Olstec
    from repro.core import SofiaConfig, dynamic_step, sofia_als
    from repro.core.model import SofiaModelState
    from repro.forecast.vector_hw import VectorHoltWinters
    from repro.tensor import kernels, kruskal_to_tensor, random_factors

    rng = np.random.default_rng(seed)
    true = random_factors(shape, rank, seed=seed)
    tensor = kruskal_to_tensor(true) + 0.05 * rng.normal(size=shape)
    mask = rng.random(shape) < observed
    config = SofiaConfig(
        rank=rank, period=period, lambda1=1e-3, lambda2=1e-3,
        max_als_iters=1, tol=1e-12,
    )
    init = random_factors(shape, rank, seed=seed + 1, scale=0.1)
    outliers = np.zeros_like(tensor)

    def als_sweep():
        sofia_als(tensor, mask, outliers, init, config)

    sub_shape = shape[:-1]

    def dynamic_steps():
        state = SofiaModelState(
            non_temporal=[f.copy() for f in true[:-1]],
            temporal_buffer=np.ones((period, rank)),
            hw=VectorHoltWinters(
                level=np.ones(rank),
                trend=np.zeros(rank),
                seasonal=np.zeros((period, rank)),
                alpha=np.full(rank, 0.3),
                beta=np.full(rank, 0.1),
                gamma=np.full(rank, 0.1),
            ),
            sigma=np.full(sub_shape, config.initial_sigma),
            t=0,
        )
        for t in range(n_dynamic_steps):
            dynamic_step(state, tensor[..., t], mask[..., t], config)

    def olstec_steps():
        algo = Olstec(rank, seed=seed)
        for t in range(n_rls_steps):
            algo.step(tensor[..., t], mask[..., t])

    cases = [
        ("sofia_als_sweep", als_sweep, 1),
        ("dynamic_steps", dynamic_steps, repeats),
        ("olstec_rls_steps", olstec_steps, repeats),
    ]
    results = []
    for name, fn, batched_repeats in cases:
        with kernels.use_backend("reference"):
            scalar_seconds = _best_of(fn, 1)
        with kernels.use_backend("batched"):
            batched_seconds = _best_of(fn, batched_repeats)
        results.append(
            {
                "case": name,
                "scalar_seconds": scalar_seconds,
                "batched_seconds": batched_seconds,
                "speedup": scalar_seconds / max(batched_seconds, 1e-12),
            }
        )
    return results


def run_streaming_minibatch_report(
    shape=(60, 40),
    n_steps=1200,
    period=10,
    rank=5,
    *,
    batch_sizes=(1, 4, 16),
    seed=0,
    repeats=2,
):
    """Time the mini-batch streaming engine on a Fig. 7-style workload.

    A fully observed ``shape x n_steps`` stream (the Fig. 7 generator) is
    consumed after one shared initialization recipe, once per batch size
    in ``batch_sizes``; each run reports the *amortized* per-step
    wall-clock (total dynamic time over live steps) and its speed-up over
    the sequential ``B = 1`` run (prepended to ``batch_sizes`` when
    absent, so the ``speedup_vs_b1`` field is always what it claims).
    Subtensors in this regime are small enough that per-step Python
    dispatch dominates — exactly the overhead mini-batching amortizes.
    """
    import time

    from repro.core import Sofia, SofiaConfig
    from repro.datasets import scalability_stream

    batch_sizes = tuple(batch_sizes)
    if batch_sizes[0] != 1:
        batch_sizes = (1,) + tuple(b for b in batch_sizes if b != 1)

    stream = scalability_stream(
        shape[0], shape[1], n_steps, period=period, rank=rank, seed=seed
    )
    startup = 3 * period
    init_subtensors = [stream.data[..., t] for t in range(startup)]
    config = SofiaConfig(
        rank=rank, period=period, lambda1=0.1, lambda2=0.1,
        max_outer_iters=50, tol=1e-4,
    )
    live_steps = n_steps - startup

    def consume(batch):
        sofia = Sofia(config)
        sofia.initialize(init_subtensors)
        t = startup
        t0 = time.perf_counter()
        while t < n_steps:
            stop = min(t + batch, n_steps)
            sofia.step_batch(np.moveaxis(stream.data[..., t:stop], -1, 0))
            t = stop
        return (time.perf_counter() - t0) / live_steps

    results = []
    baseline_per_step = None
    for batch in batch_sizes:
        per_step = min(consume(batch) for _ in range(repeats))
        if baseline_per_step is None:
            baseline_per_step = per_step
        results.append(
            {
                "batch_size": int(batch),
                "per_step_seconds": per_step,
                "speedup_vs_b1": baseline_per_step / max(per_step, 1e-12),
            }
        )
    return results


def run_density_sweep_report(
    shape=(50, 50, 2000),
    rank=5,
    *,
    densities=(0.01, 0.05, 0.25),
    seed=0,
    repeats=3,
):
    """Sparse-vs-batched kernel wall-clock across observed densities.

    For every observed fraction, times the two hot paths whose cost is
    volume-bound on the dense backend and observed-entry-bound on the
    sparse one:

    * *accumulation* — one normal-equation accumulation per mode over
      the observed entries (the work of one SOFIA_ALS sweep, Eq. 14-15);
    * *reconstruction* — one ``kruskal_reconstruct_rows`` evaluation of
      every temporal step's subtensor at the observed coordinates (the
      streaming prediction/completion hot path, Eq. 20).

    The reported ``speedup`` is batched over sparse on the summed
    accumulation + reconstruction time; values below 1 at high density
    are expected (that is the regime the auto backend routes to the
    dense path).

    Each timing covers several rounds of its hot path (5 accumulation
    sweeps, 20 reconstructions) so every ``*_seconds`` field clears
    ``check_regression.py``'s 5 ms noise floor even at the ``--quick``
    shape — sub-floor baselines would exempt the machine-independent
    ``speedup`` gate entirely, leaving the sparse path's headline
    low-density win ungated.
    """
    from repro.tensor import kernels, random_factors

    rng = np.random.default_rng(seed)
    factors = list(random_factors(shape, rank, seed=seed))
    spatial, temporal = factors[:-1], factors[-1]
    results = []
    for density in densities:
        mask = rng.random(shape) < density
        coords = np.nonzero(mask)
        values = rng.normal(size=coords[0].size)
        # Batch index (the temporal step) leads in the stacked layout.
        recon_coords = (coords[-1],) + coords[:-1]
        case = {
            "case": f"density_{density:g}",
            "density": density,
            "nnz": int(values.size),
        }
        for backend in ("batched", "sparse"):
            with kernels.use_backend(backend):
                accumulate_seconds = _best_of(
                    lambda: [
                        kernels.accumulate_normal_equations(
                            coords, values, factors, mode
                        )
                        for _ in range(5)
                        for mode in range(len(shape))
                    ],
                    repeats,
                )
                reconstruct_seconds = _best_of(
                    lambda: [
                        kernels.kruskal_reconstruct_rows(
                            spatial, temporal, recon_coords
                        )
                        for _ in range(20)
                    ],
                    repeats,
                )
            case[f"{backend}_accumulate_seconds"] = accumulate_seconds
            case[f"{backend}_reconstruct_seconds"] = reconstruct_seconds
            case[f"{backend}_seconds"] = (
                accumulate_seconds + reconstruct_seconds
            )
        case["speedup"] = case["batched_seconds"] / max(
            case["sparse_seconds"], 1e-12
        )
        results.append(case)
    return results


def run_device_backend_report(
    shape=(50, 50, 2000),
    rank=5,
    *,
    array_modules=None,
    observed=0.5,
    seed=0,
    repeats=3,
):
    """Array-module sweep of the ``"xp"`` backend on the seam hot paths.

    Times normal-equation accumulations (one per mode), full-tensor
    MTTKRPs (three rounds per mode), and batched Kruskal
    reconstructions of every temporal step (ten rounds) — under the
    dense ``batched`` NumPy backend (the baseline case) and under
    ``"xp"`` on each requested array module.  The round counts are
    chosen so every ``*_seconds`` field clears ``check_regression.py``'s
    5 ms noise floor even at the ``--quick`` shape; otherwise the
    machine-independent ``speedup`` gate would be exempted as noisy and
    never fire.  ``array_modules=None`` sweeps whatever
    :func:`repro.tensor.device.available_array_modules` reports, so the
    same invocation covers numpy-only laptops and torch-equipped CI
    runners; each ``xp_<module>`` case carries a ``speedup`` field
    (baseline total over its total) for that gate.
    """
    from repro.tensor import device, kernels, random_factors

    rng = np.random.default_rng(seed)
    factors = list(random_factors(shape, rank, seed=seed))
    spatial, temporal = factors[:-1], factors[-1]
    mask = rng.random(shape) < observed
    coords = np.nonzero(mask)
    values = rng.normal(size=coords[0].size)
    tensor = np.zeros(shape)
    tensor[coords] = values

    def hot_paths():
        timings = {}
        timings["accumulate_seconds"] = _best_of(
            lambda: [
                kernels.accumulate_normal_equations(
                    coords, values, factors, mode
                )
                for mode in range(len(shape))
            ],
            repeats,
        )
        timings["mttkrp_seconds"] = _best_of(
            lambda: [
                kernels.mttkrp(tensor, factors, mode)
                for _ in range(3)
                for mode in range(len(shape))
            ],
            repeats,
        )
        timings["reconstruct_seconds"] = _best_of(
            lambda: [
                kernels.kruskal_reconstruct_rows(spatial, temporal)
                for _ in range(10)
            ],
            repeats,
        )
        timings["total_seconds"] = sum(timings.values())
        return timings

    if array_modules is None:
        array_modules = device.available_array_modules()
    results = []
    with kernels.use_backend("batched"):
        baseline = {"case": "baseline_batched_numpy", **hot_paths()}
    results.append(baseline)
    for module in array_modules:
        with device.use_array_module(module):
            with kernels.use_backend("xp"):
                case = {
                    "case": f"xp_{module}",
                    "array_module": module,
                    **hot_paths(),
                }
        case["speedup"] = baseline["total_seconds"] / max(
            case["total_seconds"], 1e-12
        )
        results.append(case)
    return results


def main(argv=None):
    import argparse
    import json
    import platform

    parser = argparse.ArgumentParser(
        description="Scalar-vs-batched kernel wall-clock on SOFIA hot paths."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced sizes for CI smoke runs (50x50x300, fewer steps)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the report to this JSON file (e.g. BENCH_kernels.json)",
    )
    parser.add_argument(
        "--streaming-json",
        metavar="PATH",
        default=None,
        dest="streaming_json",
        help="write the mini-batch streaming report to this JSON file "
        "(e.g. BENCH_streaming.json)",
    )
    parser.add_argument(
        "--density-json",
        metavar="PATH",
        default=None,
        dest="density_json",
        help="write the sparse-vs-batched density sweep to this JSON "
        "file (e.g. BENCH_density.json)",
    )
    parser.add_argument(
        "--device-json",
        metavar="PATH",
        default=None,
        dest="device_json",
        help="write the xp-backend array-module sweep to this JSON "
        "file (e.g. BENCH_device.json)",
    )
    parser.add_argument(
        "--array-module",
        action="append",
        default=None,
        dest="array_modules",
        metavar="MODULE",
        help="array module(s) to sweep in the device report (repeat "
        "the flag; default: every importable module)",
    )
    args = parser.parse_args(argv)

    for path in (
        args.json,
        args.streaming_json,
        args.density_json,
        args.device_json,
    ):
        if path:
            # Fail fast on an unwritable path instead of after the run.
            with open(path, "a"):
                pass

    if args.quick:
        results = run_kernel_speed_report(
            shape=(50, 50, 300), n_dynamic_steps=50, n_rls_steps=20, repeats=2
        )
        shape = [50, 50, 300]
        streaming_shape, streaming_steps = (40, 30), 500
        density_shape = (50, 50, 300)
        device_shape = (50, 50, 300)
    else:
        results = run_kernel_speed_report()
        shape = [50, 50, 2000]
        streaming_shape, streaming_steps = (60, 40), 1200
        density_shape = (50, 50, 2000)
        device_shape = (50, 50, 2000)

    payload = {
        "benchmark": "kernels_scalar_vs_batched",
        "shape": shape,
        "rank": 5,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": results,
    }
    text = json.dumps(payload, indent=2)
    if args.json:
        # Written before the streaming sweep so an interrupted run keeps
        # the completed kernel timings.
        with open(args.json, "w") as handle:
            handle.write(text + "\n")

    # The streaming sweep runs when its artifact was requested, and in
    # --quick (CI) mode where it doubles as the mini-batch smoke test;
    # a full-mode kernel-only invocation skips it.
    streaming_results = []
    if args.streaming_json or args.quick:
        streaming_results = run_streaming_minibatch_report(
            shape=streaming_shape, n_steps=streaming_steps
        )
    streaming_payload = {
        "benchmark": "streaming_minibatch",
        "shape": list(streaming_shape),
        "n_steps": streaming_steps,
        "rank": 5,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": streaming_results,
    }
    if args.streaming_json:
        with open(args.streaming_json, "w") as handle:
            handle.write(json.dumps(streaming_payload, indent=2) + "\n")

    # The density sweep runs when its artifact was requested, and in
    # --quick (CI) mode where the regression gate tracks it.
    density_results = []
    if args.density_json or args.quick:
        density_results = run_density_sweep_report(shape=density_shape)
    if args.density_json:
        density_payload = {
            "benchmark": "kernels_density_sweep",
            "shape": list(density_shape),
            "rank": 5,
            "quick": args.quick,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "results": density_results,
        }
        with open(args.density_json, "w") as handle:
            handle.write(json.dumps(density_payload, indent=2) + "\n")

    # The device sweep runs when its artifact was requested, and in
    # --quick (CI) mode where the regression gate tracks the numpy
    # cases (torch rides along on runners that have it installed).
    device_results = []
    if args.device_json or args.quick:
        device_results = run_device_backend_report(
            shape=device_shape, array_modules=args.array_modules
        )
    if args.device_json:
        device_payload = {
            "benchmark": "kernels_xp_array_modules",
            "shape": list(device_shape),
            "rank": 5,
            "quick": args.quick,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "results": device_results,
        }
        with open(args.device_json, "w") as handle:
            handle.write(json.dumps(device_payload, indent=2) + "\n")
    print(text)
    for entry in results:
        print(
            f"{entry['case']}: scalar {entry['scalar_seconds']:.3f}s -> "
            f"batched {entry['batched_seconds']:.3f}s "
            f"({entry['speedup']:.1f}x)"
        )
    for entry in streaming_results:
        print(
            f"streaming B={entry['batch_size']}: "
            f"{entry['per_step_seconds'] * 1e3:.3f} ms/step "
            f"({entry['speedup_vs_b1']:.2f}x vs B=1)"
        )
    for entry in density_results:
        print(
            f"{entry['case']} (nnz {entry['nnz']}): "
            f"batched {entry['batched_seconds'] * 1e3:.1f} ms -> "
            f"sparse {entry['sparse_seconds'] * 1e3:.1f} ms "
            f"({entry['speedup']:.1f}x)"
        )
    for entry in device_results:
        line = (
            f"{entry['case']}: total "
            f"{entry['total_seconds'] * 1e3:.1f} ms"
        )
        if "speedup" in entry:
            line += f" ({entry['speedup']:.2f}x vs batched numpy)"
        print(line)
    return results


if __name__ == "__main__":
    main()
