"""CPHW: batch CP factorization + Holt-Winters forecasting [17].

Dunlavy et al. factorize the full (so far accumulated) tensor with CP
and extend the temporal factor matrix with the Holt-Winters method to
predict future slices.  It is a *batch* algorithm: the factorization is
recomputed from the complete history at forecast time, which is why the
paper notes "it needs to be rerun from scratch at each time step"
(§VI-E) and only compares its forecasting accuracy.

No outlier handling: corrupted entries flow straight into the factors
and from there into the forecast — the Fig. 6 weakness.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.als_vanilla import vanilla_als
from repro.baselines.base import Capabilities, StreamingForecaster
from repro.core.initialization import stack_subtensors
from repro.exceptions import ShapeError
from repro.forecast.fitting import fit_holt_winters
from repro.tensor import kruskal_to_tensor

__all__ = ["Cphw"]


class Cphw(StreamingForecaster):
    """Batch CP + Holt-Winters forecaster.

    Parameters
    ----------
    rank:
        CP rank.
    period:
        Seasonal period for the Holt-Winters extension.
    max_iters, tol:
        Batch ALS controls.
    seed:
        Factor initialization seed.
    """

    name = "CPHW"
    capabilities = Capabilities(
        name="CPHW",
        imputation=False,
        forecasting=True,
        robust_missing=True,
        robust_outliers=False,
        online=False,
        seasonality_aware=True,
        trend_aware=True,
    )

    def __init__(
        self,
        rank: int,
        period: int,
        *,
        max_iters: int = 200,
        tol: float = 1e-6,
        seed: int | None = 0,
    ):
        if rank < 1 or period < 1:
            raise ShapeError("rank and period must be >= 1")
        self.rank = rank
        self.period = period
        self.max_iters = max_iters
        self.tol = tol
        self.seed = seed
        self._history: list[np.ndarray] = []
        self._mask_history: list[np.ndarray] = []

    def initialize(
        self,
        subtensors: Sequence[np.ndarray],
        masks: Sequence[np.ndarray],
    ) -> None:
        for y_t, mask_t in zip(subtensors, masks):
            self._history.append(np.asarray(y_t, dtype=np.float64))
            self._mask_history.append(np.asarray(mask_t, dtype=bool))

    def step(self, subtensor: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Batch method: accumulate; the 'completion' is the raw input."""
        self._history.append(np.asarray(subtensor, dtype=np.float64))
        self._mask_history.append(np.asarray(mask, dtype=bool))
        return self._history[-1]

    def forecast(self, horizon: int) -> np.ndarray:
        """Factorize the accumulated tensor and extend with HW (Eq. 28)."""
        if len(self._history) < 2 * self.period:
            raise ShapeError(
                "CPHW needs at least two seasons of history to forecast"
            )
        tensor = stack_subtensors(self._history)
        mask = stack_subtensors(self._mask_history).astype(bool)
        result = vanilla_als(
            tensor,
            mask,
            self.rank,
            max_iters=self.max_iters,
            tol=self.tol,
            seed=self.seed,
        )
        temporal = result.factors[-1]
        fits = [
            fit_holt_winters(temporal[:, r], self.period)
            for r in range(self.rank)
        ]
        forecasts = np.stack([f.forecast(horizon) for f in fits], axis=1)
        return np.stack(
            [
                kruskal_to_tensor(result.factors[:-1], weights=forecasts[h])
                for h in range(horizon)
            ],
            axis=0,
        )
