"""Shared machinery for the streaming baselines.

Every algorithm in :mod:`repro.baselines` implements
:class:`StreamingImputer` (and forecasters additionally implement
:class:`StreamingForecaster`), matching the runner protocols in
:mod:`repro.streams.runner`.  Algorithms that have no batch
initialization phase — OnlineSGD, OLSTEC, & co., which the paper runs
with ``t_i = 0`` — inherit :class:`ColdStartMixin`, which simply feeds
the start-up window through ``step``.

The :class:`Capabilities` record reproduces a row of the paper's
Table I.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError
from repro.tensor import kernels

__all__ = [
    "Capabilities",
    "ColdStartMixin",
    "StreamingForecaster",
    "StreamingImputer",
    "random_initial_factors",
    "solve_temporal_weights",
]


@dataclass(frozen=True)
class Capabilities:
    """One row of the paper's Table I."""

    name: str
    imputation: bool
    forecasting: bool
    robust_missing: bool
    robust_outliers: bool
    online: bool
    seasonality_aware: bool
    trend_aware: bool


class StreamingImputer(abc.ABC):
    """Base class for streaming tensor completion algorithms."""

    #: Display name used in result tables.
    name: str = "base"
    #: Table I row for this algorithm.
    capabilities: Capabilities

    @abc.abstractmethod
    def initialize(
        self,
        subtensors: Sequence[np.ndarray],
        masks: Sequence[np.ndarray],
    ) -> None:
        """Consume the start-up window."""

    @abc.abstractmethod
    def step(self, subtensor: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Consume one subtensor; return the completed reconstruction."""

    def step_batch(
        self,
        subtensors: Sequence[np.ndarray] | np.ndarray,
        masks: Sequence[np.ndarray] | np.ndarray,
    ) -> np.ndarray:
        """Consume a mini-batch; return stacked reconstructions.

        The default implementation is the sequential fallback — one
        :meth:`step` per subtensor, results stacked batch-first — so
        every baseline accepts mini-batches with unchanged semantics.
        Algorithms with a true batched fast path (SOFIA) override this.
        """
        if len(subtensors) != len(masks):
            raise ShapeError(
                f"{len(subtensors)} subtensors vs {len(masks)} masks"
            )
        if len(subtensors) == 0:
            raise ShapeError("mini-batch must contain at least one subtensor")
        return np.stack(
            [self.step(y_t, m_t) for y_t, m_t in zip(subtensors, masks)],
            axis=0,
        )


class StreamingForecaster(StreamingImputer):
    """A streaming algorithm that can forecast future subtensors."""

    @abc.abstractmethod
    def forecast(self, horizon: int) -> np.ndarray:
        """Forecast the next ``horizon`` subtensors,
        shape ``(horizon, *subtensor_shape)``."""


class ColdStartMixin:
    """Initialization for algorithms the paper runs with ``t_i = 0``:
    the start-up subtensors are processed like any other step."""

    def initialize(
        self,
        subtensors: Sequence[np.ndarray],
        masks: Sequence[np.ndarray],
    ) -> None:
        for y_t, mask_t in zip(subtensors, masks):
            self.step(y_t, mask_t)


def solve_temporal_weights(
    subtensor: np.ndarray,
    mask: np.ndarray,
    factors: Sequence[np.ndarray],
    *,
    ridge: float = 1e-6,
) -> np.ndarray:
    """Masked least-squares for the temporal weight vector ``w_t``.

    Solves ``min_w ||Ω_t ⊛ (Y_t - [[factors; w]])||² + ridge ||w||²``.
    The design row for an observed entry ``(i_1, ..., i_{N-1})`` is the
    Hadamard product of the matching factor rows.  This is the building
    block every streaming CP baseline shares.
    """
    y = np.asarray(subtensor, dtype=np.float64)
    m = np.asarray(mask, dtype=bool)
    if y.shape != m.shape:
        raise ShapeError(f"mask shape {m.shape} != subtensor {y.shape}")
    rank = factors[0].shape[1]
    coords = np.nonzero(m)
    if coords[0].size == 0:
        return np.zeros(rank)
    design = kernels.observed_factor_products(coords, factors)
    gram = design.T @ design + ridge * np.eye(rank)
    rhs = design.T @ y[coords]
    try:
        return np.linalg.solve(gram, rhs)
    except np.linalg.LinAlgError:
        return np.linalg.lstsq(gram, rhs, rcond=None)[0]


def random_initial_factors(
    shape: Sequence[int],
    rank: int,
    rng: np.random.Generator,
    scale: float = 0.1,
) -> list[np.ndarray]:
    """Small random factors for cold-start streaming baselines."""
    return [rng.normal(0.0, scale, size=(d, rank)) for d in shape]
