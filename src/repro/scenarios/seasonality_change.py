"""Seasonality change: the period of the data shifts mid-stream.

The stream oscillates with period 10 for the first half, then the
temporal factors switch to period 15 while the model keeps assuming
10 — the hardest structural break for a season-aware method, because
the seasonal buffer itself becomes stale.  SOFIA's exponentially
decayed seasonal smoothing should gradually re-learn the new cycle,
but a residual mismatch is expected; the envelope is correspondingly
looser than the other scenarios and mainly guards against divergence
(unbounded NRE) rather than demanding full recovery.  Corruption is
light (10% missing) so the signal change dominates.
"""

from __future__ import annotations

from repro.scenarios.base import (
    GeneratorSpec,
    QualityEnvelope,
    scenario_from_module,
)
from repro.streams.corruption import (
    CorruptionSchedule,
    CorruptionSpec,
    SchedulePhase,
)

SCENARIO = scenario_from_module(
    __doc__,
    name="seasonality_change",
    generator=GeneratorSpec(
        dims=(8, 6),
        rank=3,
        period=10,
        n_steps=200,
        noise=0.02,
        period_change_at=100,
        new_period=15,
    ),
    schedule=CorruptionSchedule(
        phases=(SchedulePhase(0, None, CorruptionSpec(10, 0, 0)),)
    ),
    envelope=QualityEnvelope(max_rae=0.80, max_final_nre=0.80, max_afe=1.20),
    n_sessions=2,
)
