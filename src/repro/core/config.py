"""Configuration for SOFIA (paper Table II and §VI-A defaults).

The defaults reproduce the paper's parameter setting: ``λ1 = λ2 = 1e-3``,
``λ3 = 10``, ``μ = 0.1``, ``φ = 0.01``, Huber/biweight constants ``k = 2``
and ``c_k = 2.52``, soft-threshold decay ``d = 0.85``, three seasons of
start-up data, tolerance ``1e-4`` and at most 300 iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import ConfigError
from repro.tensor.kernels import AUTO_DENSITY_THRESHOLD

__all__ = ["SofiaConfig"]


@dataclass(frozen=True)
class SofiaConfig:
    """All tunable knobs of the SOFIA algorithm.

    Parameters
    ----------
    rank:
        CP rank ``R``.
    period:
        Seasonal period ``m`` of the temporal mode.
    lambda1:
        Temporal smoothness weight ``λ1`` (consecutive steps).
    lambda2:
        Seasonal smoothness weight ``λ2`` (lag-``m`` steps).
    lambda3:
        Outlier sparsity weight ``λ3``; also sets the initial error scale
        ``λ3 / 100`` used by the dynamic phase (Alg. 3 line 1).
    mu:
        Gradient step size ``μ`` of the dynamic updates (Eq. 24-25).
    phi:
        Error-scale smoothing parameter ``φ`` (Eq. 22).
    huber_k:
        Clipping constant ``k`` of the Huber ψ-function.
    biweight_c:
        Saturation constant ``c_k`` of the biweight ρ-function.
    init_seasons:
        Number of seasons used for initialization (``t_i = init_seasons·m``,
        3 by default following HW convention).
    lambda3_decay:
        Multiplicative decay ``d`` of ``λ3`` between outer initialization
        iterations (Alg. 1 line 9), floored at ``λ3 / 100``.
    tol:
        Convergence tolerance for both ALS fitness change and the outer
        initialization loop.
    max_outer_iters:
        Cap on outer initialization iterations (Alg. 1).
    max_als_iters:
        Cap on ALS sweeps inside one `sofia_als` call (Alg. 2).
    seed:
        Seed for the random factor initialization.
    step_normalization:
        ``"lipschitz"`` (default) divides each gradient step of Eq. 24-25
        by a trace bound on the local quadratic's Lipschitz constant, so
        ``mu`` is a dimensionless fraction of the largest stable step and
        the update is invariant to the data's scale.  ``"none"`` applies
        the paper's equations verbatim, which requires ``mu`` to be tuned
        to the data scale (the raw step diverges when the temporal weights
        are large; see DESIGN.md).
    als_sweeps_per_outer:
        Number of ALS sweeps run between consecutive soft-thresholding
        steps in the initialization loop (Alg. 1).  The default 1 makes
        the outer loop a joint block-coordinate descent over (factors, O),
        which is what reproduces the gradual pattern-emergence of Fig. 2;
        larger values let the factors chase outliers before the first
        thresholding and noticeably hurt recovery under heavy corruption
        (see the ablation bench).
    init_factor_scale:
        Scale of the random initial factors in Alg. 1.  Small values keep
        the first reconstruction near zero so the first soft-thresholding
        strips the gross outliers straight off the raw data.
    batch_size:
        Mini-batch size ``B`` of the dynamic phase: how many incoming
        subtensors :meth:`Sofia.run` fuses into one
        :func:`repro.core.dynamic.dynamic_step_batch` call.  ``1`` (the
        default) reproduces the paper's strictly sequential Alg. 3
        trajectory; larger values amortize the per-step dispatch cost
        over the batch at the cost of a bounded within-batch
        approximation (factors frozen at the batch boundary, multi-step
        HW forecasts).
    density_threshold:
        Observed fraction *strictly below* which the dynamic phase
        routes its tensor-sized work through the sparse execution path:
        the Eq. 21-22 robust split and the Eq. 24-25 gradient
        contractions run per observed entry (``O(nnz)``) instead of
        over the dense subtensor.  The results are identical to
        floating-point round-off — only the execution strategy changes.
        The default *is*
        ``repro.tensor.kernels.AUTO_DENSITY_THRESHOLD`` (5%), where
        per-entry work starts beating the dense BLAS constants; ``0.0``
        disables the sparse path, ``1.0`` takes it for every
        not-fully-observed input.  The routing defers to the active
        kernel backend: under the pure-dense ``"batched"`` and scalar
        ``"reference"`` backends the sparse path is never taken.
    dtype:
        Floating dtype of the dynamic phase: ``"float64"`` (the default,
        the paper's setting) or ``"float32"``.  The initialization phase
        always computes in float64 (one-off batch work where robustness
        matters most); the fitted model state — factors, temporal
        buffer, error scales — is then cast to this dtype and every
        per-step kernel call stays in it end to end (the kernel seam
        follows its inputs, see
        :func:`repro.tensor.kernels.result_dtype`).  Float32 halves the
        memory traffic of the streaming hot path and is the natural
        dtype for GPU array modules; on the Fig. 7-style stream it
        tracks the float64 NRE within ``1e-3``.
    """

    rank: int
    period: int
    lambda1: float = 1e-3
    lambda2: float = 1e-3
    lambda3: float = 10.0
    mu: float = 0.1
    phi: float = 0.01
    huber_k: float = 2.0
    biweight_c: float = 2.52
    init_seasons: int = 3
    lambda3_decay: float = 0.85
    tol: float = 1e-4
    max_outer_iters: int = 300
    max_als_iters: int = 300
    seed: int | None = 0
    step_normalization: str = "lipschitz"
    als_sweeps_per_outer: int = 1
    init_factor_scale: float = 0.1
    batch_size: int = 1
    density_threshold: float = AUTO_DENSITY_THRESHOLD
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ConfigError(f"rank must be >= 1, got {self.rank}")
        if self.period < 1:
            raise ConfigError(f"period must be >= 1, got {self.period}")
        for name in ("lambda1", "lambda2", "lambda3"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.mu <= 0:
            raise ConfigError(f"mu must be positive, got {self.mu}")
        if not 0.0 <= self.phi <= 1.0:
            raise ConfigError(f"phi must be in [0, 1], got {self.phi}")
        if self.huber_k <= 0 or self.biweight_c <= 0:
            raise ConfigError("huber_k and biweight_c must be positive")
        if self.init_seasons < 2:
            raise ConfigError(
                "init_seasons must be >= 2 (HW needs two seasons), "
                f"got {self.init_seasons}"
            )
        if not 0.0 < self.lambda3_decay <= 1.0:
            raise ConfigError(
                f"lambda3_decay must be in (0, 1], got {self.lambda3_decay}"
            )
        if self.tol <= 0:
            raise ConfigError(f"tol must be positive, got {self.tol}")
        if self.max_outer_iters < 1 or self.max_als_iters < 1:
            raise ConfigError("iteration caps must be >= 1")
        if self.step_normalization not in ("lipschitz", "none"):
            raise ConfigError(
                "step_normalization must be 'lipschitz' or 'none', "
                f"got {self.step_normalization!r}"
            )
        if self.als_sweeps_per_outer < 1:
            raise ConfigError("als_sweeps_per_outer must be >= 1")
        if self.init_factor_scale <= 0:
            raise ConfigError("init_factor_scale must be positive")
        if self.batch_size < 1:
            raise ConfigError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if not 0.0 <= self.density_threshold <= 1.0:
            raise ConfigError(
                "density_threshold must be in [0, 1], "
                f"got {self.density_threshold}"
            )
        if self.dtype not in ("float32", "float64"):
            raise ConfigError(
                f"dtype must be 'float32' or 'float64', got {self.dtype!r}"
            )

    @property
    def np_dtype(self) -> np.dtype:
        """The :class:`numpy.dtype` of the dynamic phase."""
        return np.dtype(self.dtype)

    @property
    def init_steps(self) -> int:
        """Start-up period ``t_i = init_seasons * period`` (Alg. 1)."""
        return self.init_seasons * self.period

    @property
    def lambda3_floor(self) -> float:
        """Lower bound ``λ3 / 100`` for the decayed threshold (Alg. 1)."""
        return self.lambda3 / 100.0

    @property
    def initial_sigma(self) -> float:
        """Initial per-entry error scale ``λ3 / 100`` (Alg. 3 line 1)."""
        return self.lambda3 / 100.0

    def with_updates(self, **kwargs) -> "SofiaConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
