"""Fig. 2 experiment: initialization accuracy, SOFIA_ALS vs vanilla ALS.

Reproduces §VI-B: a rank-3 synthetic tensor with sinusoidal temporal
factors (30x30x90, m=30) corrupted at (90, 20, 7) is initialized with
Algorithm 1 twice — once with the smoothness-aware SOFIA_ALS and once
with vanilla ALS — and the recovery error is traced per outer iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import SofiaConfig, initialize
from repro.datasets import fig2_tensor
from repro.streams import CorruptionSpec, corrupt
from repro.tensor import kruskal_to_tensor, relative_error

__all__ = ["Fig2Result", "aligned_factor_error", "run_fig2"]


@dataclass(frozen=True)
class Fig2Result:
    """Recovery-error traces for both initialization variants."""

    iterations: np.ndarray = field(repr=False)
    nre_sofia: np.ndarray = field(repr=False)
    nre_vanilla: np.ndarray = field(repr=False)
    temporal_error_sofia: float
    temporal_error_vanilla: float

    @property
    def final_nre_sofia(self) -> float:
        return float(self.nre_sofia[-1])

    @property
    def final_nre_vanilla(self) -> float:
        return float(self.nre_vanilla[-1])


def aligned_factor_error(
    estimated: np.ndarray, truth: np.ndarray
) -> float:
    """Scale/permutation/sign-invariant NRE between factor matrices.

    CP factors are identifiable only up to column permutation and scale,
    so each true column is greedily matched to the estimated column with
    the highest absolute correlation and rescaled by least squares before
    the residual is measured (this is the quantity Fig. 2(d) plots).
    """
    est = np.asarray(estimated, dtype=np.float64)
    tru = np.asarray(truth, dtype=np.float64)
    if est.shape != tru.shape:
        raise ValueError(f"shape mismatch: {est.shape} vs {tru.shape}")
    rank = tru.shape[1]
    available = list(range(rank))
    total_residual = 0.0
    total_norm = float(np.sum(tru * tru))
    for r in range(rank):
        target = tru[:, r]
        best_j, best_corr = available[0], -np.inf
        for j in available:
            col = est[:, j]
            denom = np.linalg.norm(col) * np.linalg.norm(target)
            corr = abs(float(col @ target)) / max(denom, 1e-12)
            if corr > best_corr:
                best_corr, best_j = corr, j
        available.remove(best_j)
        col = est[:, best_j]
        scale = float(col @ target) / max(float(col @ col), 1e-12)
        total_residual += float(np.sum((target - scale * col) ** 2))
    return float(np.sqrt(total_residual / max(total_norm, 1e-12)))


def run_fig2(
    *,
    setting: CorruptionSpec = CorruptionSpec(90, 20, 7),
    max_outer_iters: int = 400,
    trace_every: int = 10,
    seed: int = 0,
) -> Fig2Result:
    """Run the Fig. 2 comparison and return the recovery traces.

    Parameters
    ----------
    setting:
        Corruption level; the paper uses the extreme (90, 20, 7).
    max_outer_iters:
        Outer-iteration budget for both variants (paper traces 1000).
    trace_every:
        Record the NRE every this many outer iterations.
    seed:
        Seed for both the data and the corruption.
    """
    stream = fig2_tensor(seed=seed)
    corrupted = corrupt(stream.data, setting, seed=seed + 1)
    config = SofiaConfig(
        rank=3,
        period=30,
        lambda1=0.1,
        lambda2=0.1,
        max_outer_iters=max_outer_iters,
        tol=1e-15,  # effectively disabled: trace the full budget
    )

    def run_variant(smooth: bool):
        trace_iters: list[int] = []
        trace_nre: list[float] = []

        def hook(outer: int, factors) -> None:
            if outer % trace_every == 0 or outer == 1:
                trace_iters.append(outer)
                trace_nre.append(
                    relative_error(kruskal_to_tensor(factors), stream.data)
                )

        result = initialize(
            corrupted.observed,
            corrupted.mask,
            config,
            smooth=smooth,
            progress_hook=hook,
        )
        temporal_err = aligned_factor_error(
            result.factors[-1], stream.temporal
        )
        return np.array(trace_iters), np.array(trace_nre), temporal_err

    iters_s, nre_s, temporal_s = run_variant(True)
    _, nre_v, temporal_v = run_variant(False)
    return Fig2Result(
        iterations=iters_s,
        nre_sofia=nre_s,
        nre_vanilla=nre_v,
        temporal_error_sofia=temporal_s,
        temporal_error_vanilla=temporal_v,
    )
