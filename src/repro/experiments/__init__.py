"""Experiment drivers: one module per paper table/figure plus ablations.

* Table I / III — :mod:`repro.experiments.tables`
* Fig. 1 — :mod:`repro.experiments.summary`
* Fig. 2 — :mod:`repro.experiments.init_accuracy`
* Figs. 3-5 — :mod:`repro.experiments.imputation`
* Fig. 6 — :mod:`repro.experiments.forecasting`
* Fig. 7 — :mod:`repro.experiments.scalability`
* Ablations — :mod:`repro.experiments.ablation`
"""

from repro.experiments.ablation import AblationOutcome, run_ablation
from repro.experiments.forecasting import (
    ForecastCell,
    run_forecasting_experiment,
)
from repro.experiments.imputation import (
    GridCell,
    ImputationGrid,
    default_imputers,
    run_imputation_grid,
)
from repro.experiments.init_accuracy import (
    Fig2Result,
    aligned_factor_error,
    run_fig2,
)
from repro.experiments.reporting import format_series, format_table
from repro.experiments.scalability import (
    ScalabilityResult,
    linear_fit_r2,
    run_scalability,
)
from repro.experiments.settings import (
    DATASET_NAMES,
    ExperimentScale,
    SMALL_SCALE,
    TINY_SCALE,
    dataset_stream,
    sofia_config_for,
)
from repro.experiments.summary import Fig1Result, run_fig1
from repro.experiments.tables import (
    table1_capabilities,
    table1_text,
    table3_rows,
    table3_text,
)

__all__ = [
    "AblationOutcome",
    "DATASET_NAMES",
    "ExperimentScale",
    "Fig1Result",
    "Fig2Result",
    "ForecastCell",
    "GridCell",
    "ImputationGrid",
    "SMALL_SCALE",
    "ScalabilityResult",
    "TINY_SCALE",
    "aligned_factor_error",
    "dataset_stream",
    "default_imputers",
    "format_series",
    "format_table",
    "linear_fit_r2",
    "run_ablation",
    "run_fig1",
    "run_fig2",
    "run_forecasting_experiment",
    "run_imputation_grid",
    "run_scalability",
    "sofia_config_for",
    "table1_capabilities",
    "table1_text",
    "table3_rows",
    "table3_text",
]
