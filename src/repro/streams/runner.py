"""Experiment runner: drive algorithms over corrupted streams.

The runner implements the paper's evaluation protocol (§VI): every
algorithm consumes a start-up window for initialization (excluded from
timing, as in the paper), then processes the rest of the stream step by
step while the runner records per-step NRE against the clean ground
truth and per-step wall-clock time.  Forecast evaluation consumes
``T - t_f`` steps and scores the last ``t_f`` with AFE.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import ShapeError
from repro.streams.metrics import (
    RunningAverage,
    average_forecast_error,
    normalized_residual_error,
)
from repro.streams.stream import TensorStream
from repro.tensor import device, kernels


def _backend_context(kernel_backend: str | None):
    """Run a whole evaluation under one kernel backend (or the active one)."""
    if kernel_backend is None:
        return nullcontext()
    return kernels.use_backend(kernel_backend)


def _module_context(array_module: str | None):
    """Run a whole evaluation under one array module (or the active one)."""
    if array_module is None:
        return nullcontext()
    return device.use_array_module(array_module)

__all__ = [
    "ForecastResult",
    "ImputationResult",
    "StreamingImputerProtocol",
    "StreamingForecasterProtocol",
    "run_forecasting",
    "run_imputation",
]


@runtime_checkable
class StreamingImputerProtocol(Protocol):
    """What the runner needs from a streaming completion algorithm."""

    name: str

    def initialize(
        self,
        subtensors: Sequence[np.ndarray],
        masks: Sequence[np.ndarray],
    ) -> None:
        """Consume the start-up window (batch initialization)."""

    def step(self, subtensor: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Consume one subtensor; return the completed reconstruction."""

    def step_batch(
        self,
        subtensors: Sequence[np.ndarray] | np.ndarray,
        masks: Sequence[np.ndarray] | np.ndarray,
    ) -> np.ndarray:
        """Consume a mini-batch of subtensors; return reconstructions
        stacked batch-first, shape ``(B, *subtensor_shape)``."""


@runtime_checkable
class StreamingForecasterProtocol(StreamingImputerProtocol, Protocol):
    """An imputer that can also extrapolate beyond the consumed stream."""

    def forecast(self, horizon: int) -> np.ndarray:
        """Forecast the next ``horizon`` subtensors."""


@dataclass(frozen=True)
class ImputationResult:
    """Per-algorithm outcome of a streaming imputation run."""

    name: str
    nre_series: np.ndarray = field(repr=False)
    rae: float
    art_seconds: float
    init_seconds: float

    @property
    def n_steps(self) -> int:
        return int(self.nre_series.shape[0])


@dataclass(frozen=True)
class ForecastResult:
    """Per-algorithm outcome of a forecasting run."""

    name: str
    afe: float
    horizon: int
    forecast: np.ndarray = field(repr=False)


def _check_streams(observed: TensorStream, truth: TensorStream) -> None:
    if observed.data.shape != truth.data.shape:
        raise ShapeError(
            f"observed stream shape {observed.data.shape} does not match "
            f"truth {truth.data.shape}"
        )


def run_imputation(
    algorithm: StreamingImputerProtocol,
    observed: TensorStream,
    truth: TensorStream,
    *,
    startup_steps: int,
    batch_size: int = 1,
    kernel_backend: str | None = None,
    array_module: str | None = None,
) -> ImputationResult:
    """Run one algorithm over a corrupted stream and score imputation.

    Parameters
    ----------
    algorithm:
        Object implementing :class:`StreamingImputerProtocol`.
    observed:
        The corrupted stream (data + observation mask).
    truth:
        The clean ground-truth stream (mask ignored).
    startup_steps:
        Length of the initialization window; its processing time is
        reported separately and excluded from ART, as in the paper.
    batch_size:
        Mini-batch size for the dynamic phase.  ``1`` (the default)
        drives the algorithm strictly step by step; larger values feed
        ``step_batch`` chunks while still recording *per-step* NRE and
        per-step amortized wall-clock (batch time divided by batch
        length), so the paper's evaluation protocol is unchanged.
    kernel_backend:
        Run the whole evaluation (initialization and stream) under this
        :mod:`repro.tensor.kernels` backend; ``None`` (the default)
        keeps the active backend.  The previous backend is restored
        afterwards, even on error.
    array_module:
        Run the whole evaluation under this
        :mod:`repro.tensor.device` array module (``"numpy"``,
        ``"torch"``, ``"cupy"``), which the ``"xp"`` kernel backend
        executes on; ``None`` keeps the active module.  Restored
        afterwards, even on error.
    """
    _check_streams(observed, truth)
    if not 0 < startup_steps < observed.n_steps:
        raise ShapeError(
            f"startup_steps {startup_steps} out of range for stream of "
            f"length {observed.n_steps}"
        )
    if batch_size < 1:
        raise ShapeError(f"batch_size must be >= 1, got {batch_size}")
    subtensors, masks = observed.startup(startup_steps)
    nre = RunningAverage()
    step_time = RunningAverage()
    with _module_context(array_module), _backend_context(kernel_backend):
        t0 = time.perf_counter()
        algorithm.initialize(subtensors, masks)
        init_seconds = time.perf_counter() - t0

        if batch_size == 1:
            for t, y_t, mask_t in observed.iter_from(startup_steps):
                t1 = time.perf_counter()
                completed = algorithm.step(y_t, mask_t)
                step_time.add(time.perf_counter() - t1)
                nre.add(
                    normalized_residual_error(completed, truth.subtensor(t))
                )
        else:
            for t0_block, ys, ms in observed.iter_batches(
                startup_steps, batch_size
            ):
                t1 = time.perf_counter()
                completed = algorithm.step_batch(ys, ms)
                amortized = (time.perf_counter() - t1) / ys.shape[0]
                for offset in range(ys.shape[0]):
                    step_time.add(amortized)
                    nre.add(
                        normalized_residual_error(
                            completed[offset],
                            truth.subtensor(t0_block + offset),
                        )
                    )
    return ImputationResult(
        name=algorithm.name,
        nre_series=nre.series(),
        rae=nre.mean,
        art_seconds=step_time.mean,
        init_seconds=init_seconds,
    )


def run_forecasting(
    algorithm: StreamingForecasterProtocol,
    observed: TensorStream,
    truth: TensorStream,
    *,
    startup_steps: int,
    horizon: int,
    batch_size: int = 1,
    kernel_backend: str | None = None,
    array_module: str | None = None,
) -> ForecastResult:
    """Consume ``T - horizon`` steps, forecast the last ``horizon``.

    The algorithm never sees the final ``horizon`` subtensors; AFE is
    computed against the clean ground truth (§VI-E).  With
    ``batch_size > 1`` the consumed stream is fed in ``step_batch``
    chunks.  ``kernel_backend`` selects the
    :mod:`repro.tensor.kernels` backend and ``array_module`` the
    :mod:`repro.tensor.device` array module for the whole run (``None``
    keeps the active ones).
    """
    _check_streams(observed, truth)
    if batch_size < 1:
        raise ShapeError(f"batch_size must be >= 1, got {batch_size}")
    t_end = observed.n_steps - horizon
    if t_end <= startup_steps:
        raise ShapeError(
            f"stream too short: {observed.n_steps} steps cannot cover "
            f"startup {startup_steps} + horizon {horizon}"
        )
    subtensors, masks = observed.startup(startup_steps)
    with _module_context(array_module), _backend_context(kernel_backend):
        algorithm.initialize(subtensors, masks)
        live = observed.slice_steps(0, t_end)
        if batch_size == 1:
            for _, y_t, mask_t in live.iter_from(startup_steps):
                algorithm.step(y_t, mask_t)
        else:
            for _, ys, ms in live.iter_batches(startup_steps, batch_size):
                algorithm.step_batch(ys, ms)
        forecast = algorithm.forecast(horizon)
    truths = np.stack(
        [truth.subtensor(t_end + h) for h in range(horizon)], axis=0
    )
    afe = average_forecast_error(forecast, truths)
    return ForecastResult(
        name=algorithm.name, afe=afe, horizon=horizon, forecast=forecast
    )
