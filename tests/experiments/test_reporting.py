"""Unit tests for ASCII reporting."""

import numpy as np

from repro.experiments import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [["x", 1.0], ["yyyy", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        text = format_table(["a"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.1235" in text

    def test_scientific_for_small(self):
        text = format_table(["v"], [[1.5e-7]])
        assert "e-07" in text

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text


class TestFormatSeries:
    def test_short_series_full(self):
        text = format_series("x", np.array([1.0, 2.0]))
        assert text == "x: 1.000 2.000"

    def test_long_series_downsampled(self):
        text = format_series("x", np.arange(100.0), max_points=5)
        assert len(text.split(":")[1].split()) == 5

    def test_empty(self):
        assert "empty" in format_series("x", np.array([]))
