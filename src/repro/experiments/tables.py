"""Tables I and III: capability matrix and dataset summary.

Both are static renders: Table I from the ``capabilities`` records every
algorithm class declares, Table III from the dataset registry metadata.
"""

from __future__ import annotations

from repro.baselines import (
    Brst,
    Capabilities,
    Cphw,
    Mast,
    Olstec,
    OnlineSGD,
    OrMstc,
    Smf,
    SofiaImputer,
)
from repro.datasets import dataset_info, list_datasets
from repro.experiments.reporting import format_table

__all__ = ["table1_capabilities", "table1_text", "table3_rows", "table3_text"]

#: Batch methods from Table I that are functions rather than streaming
#: classes — their rows are declared here.
_CP_WOPT_CAPS = Capabilities(
    name="CP-WOPT",
    imputation=True,
    forecasting=False,
    robust_missing=True,
    robust_outliers=False,
    online=False,
    seasonality_aware=False,
    trend_aware=False,
)


def table1_capabilities() -> list[Capabilities]:
    """All Table I rows, SOFIA last (as in the paper)."""
    rows = [
        _CP_WOPT_CAPS,
        OnlineSGD(1).capabilities,
        Olstec(1).capabilities,
        Mast(1).capabilities,
        Brst(1).capabilities,
        OrMstc(1).capabilities,
        Smf(1, 1).capabilities,
        Cphw(1, 1).capabilities,
    ]
    rows.append(SofiaImputer.capabilities)
    return rows


def table1_text() -> str:
    """Render Table I as ASCII (✓ = has the property)."""

    def mark(flag: bool) -> str:
        return "yes" if flag else "-"

    rows = [
        [
            caps.name,
            mark(caps.imputation),
            mark(caps.forecasting),
            mark(caps.robust_missing),
            mark(caps.robust_outliers),
            mark(caps.online),
            mark(caps.seasonality_aware),
            mark(caps.trend_aware),
        ]
        for caps in table1_capabilities()
    ]
    return format_table(
        [
            "Algorithm",
            "Imputation",
            "Forecasting",
            "RobustMissing",
            "RobustOutliers",
            "Online",
            "Seasonal",
            "Trend",
        ],
        rows,
        title="Table I: comparison of tensor factorization/completion algorithms",
    )


def table3_rows() -> list[list[object]]:
    """Table III rows: dataset, paper shape, period, granularity."""
    rows = []
    for name in list_datasets():
        info = dataset_info(name)
        shape = "x".join(str(d) for d in info.paper_shape)
        rows.append([info.title, shape, info.period, info.granularity])
    return rows


def table3_text() -> str:
    """Render Table III as ASCII."""
    return format_table(
        ["Dataset", "Dimension", "Period", "Granularity in Time"],
        table3_rows(),
        title="Table III: summary of datasets (paper shapes)",
    )
