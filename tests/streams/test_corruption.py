"""Unit tests for the (X, Y, Z) corruption model (paper §VI-A)."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.streams import PAPER_SETTINGS, CorruptionSpec, corrupt


@pytest.fixture
def clean():
    rng = np.random.default_rng(0)
    return rng.normal(size=(20, 15, 40))


class TestCorruptionSpec:
    def test_label(self):
        assert CorruptionSpec(70, 20, 5).label == "(70, 20, 5)"

    def test_label_fractional(self):
        assert CorruptionSpec(12.5, 0, 0).label == "(12.5, 0, 0)"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"missing_pct": -1, "outlier_pct": 0, "magnitude": 0},
            {"missing_pct": 100, "outlier_pct": 0, "magnitude": 0},
            {"missing_pct": 0, "outlier_pct": 101, "magnitude": 0},
            {"missing_pct": 0, "outlier_pct": 0, "magnitude": -2},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            CorruptionSpec(**kwargs)

    def test_paper_settings(self):
        labels = [s.label for s in PAPER_SETTINGS]
        assert labels == [
            "(20, 10, 2)",
            "(30, 15, 3)",
            "(50, 20, 4)",
            "(70, 20, 5)",
        ]


class TestCorrupt:
    def test_missing_fraction(self, clean):
        result = corrupt(clean, CorruptionSpec(70, 0, 0), seed=1)
        assert (~result.mask).mean() == pytest.approx(0.70, abs=0.02)

    def test_outlier_fraction(self, clean):
        result = corrupt(clean, CorruptionSpec(0, 20, 5), seed=2)
        assert result.outlier_mask.mean() == pytest.approx(0.20, abs=0.02)

    def test_outlier_magnitude(self, clean):
        spec = CorruptionSpec(0, 10, 5)
        result = corrupt(clean, spec, seed=3)
        deviation = result.observed - clean
        hit = result.outlier_mask
        np.testing.assert_allclose(
            np.abs(deviation[hit]), 5 * np.abs(clean).max()
        )
        np.testing.assert_array_equal(deviation[~hit], 0.0)

    def test_outlier_signs_mixed(self, clean):
        result = corrupt(clean, CorruptionSpec(0, 30, 3), seed=4)
        deviation = (result.observed - clean)[result.outlier_mask]
        assert (deviation > 0).any()
        assert (deviation < 0).any()
        # roughly balanced
        assert abs((deviation > 0).mean() - 0.5) < 0.1

    def test_clean_untouched(self, clean):
        snapshot = clean.copy()
        corrupt(clean, CorruptionSpec(50, 20, 4), seed=5)
        np.testing.assert_array_equal(clean, snapshot)

    def test_zero_setting_is_identity(self, clean):
        result = corrupt(clean, CorruptionSpec(0, 0, 0), seed=6)
        np.testing.assert_array_equal(result.observed, clean)
        assert result.mask.all()

    def test_reproducible(self, clean):
        spec = CorruptionSpec(50, 20, 4)
        r1 = corrupt(clean, spec, seed=7)
        r2 = corrupt(clean, spec, seed=7)
        np.testing.assert_array_equal(r1.observed, r2.observed)
        np.testing.assert_array_equal(r1.mask, r2.mask)

    def test_different_seeds_differ(self, clean):
        spec = CorruptionSpec(50, 20, 4)
        r1 = corrupt(clean, spec, seed=8)
        r2 = corrupt(clean, spec, seed=9)
        assert not np.array_equal(r1.mask, r2.mask)

    def test_missing_and_outliers_independent(self, clean):
        # Some outliers should land on missing entries (invisible).
        result = corrupt(clean, CorruptionSpec(50, 20, 4), seed=10)
        assert (result.outlier_mask & ~result.mask).any()

    def test_shape_property(self, clean):
        result = corrupt(clean, CorruptionSpec(10, 10, 2), seed=11)
        assert result.shape == clean.shape
