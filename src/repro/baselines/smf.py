"""SMF: drift-aware streaming matrix factorization with seasonality [16].

Hooi et al. factorize a matrix stream ``y_t ≈ W h_t`` while maintaining a
seasonal dictionary of temporal patterns: the pattern slot for phase
``t mod m`` is exponentially updated toward the current weights, and
forecasting replays the stored pattern for the target phase (optionally
with a drift term).  SMF is seasonality- and trend-aware but has no
outlier handling and assumes fully observed data (Table I) — with
missing entries its least-squares weights simply use whatever is
observed, degrading accordingly.

Tensor streams are consumed by vectorizing each subtensor, which is how
a matrix-stream method is applied to the paper's 3-way streams.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    Capabilities,
    ColdStartMixin,
    StreamingForecaster,
)
from repro.exceptions import ShapeError

__all__ = ["Smf"]


class Smf(ColdStartMixin, StreamingForecaster):
    """Seasonal streaming matrix factorization forecaster.

    Parameters
    ----------
    rank:
        Factorization rank.
    period:
        Seasonal period ``m``.
    learning_rate:
        Step size for the dictionary update (normalized).
    season_smoothing:
        EMA weight pulling the stored seasonal pattern toward the newest
        weights.
    drift_smoothing:
        EMA weight of the per-phase drift estimate (trend awareness).
    seed:
        Seed for the lazy initialization.
    """

    name = "SMF"
    capabilities = Capabilities(
        name="SMF",
        imputation=False,
        forecasting=True,
        robust_missing=False,
        robust_outliers=False,
        online=True,
        seasonality_aware=True,
        trend_aware=True,
    )

    def __init__(
        self,
        rank: int,
        period: int,
        *,
        learning_rate: float = 0.5,
        season_smoothing: float = 0.3,
        drift_smoothing: float = 0.1,
        seed: int | None = 0,
    ):
        if rank < 1 or period < 1:
            raise ShapeError("rank and period must be >= 1")
        self.rank = rank
        self.period = period
        self.learning_rate = learning_rate
        self.season_smoothing = season_smoothing
        self.drift_smoothing = drift_smoothing
        self._rng = np.random.default_rng(seed)
        self._dictionary: np.ndarray | None = None
        self._seasonal: np.ndarray | None = None   # (m, R) pattern slots
        self._drift: np.ndarray | None = None      # (m, R) per-phase drift
        self._shape: tuple[int, ...] | None = None
        self._t = 0

    def _ensure_state(self, shape: tuple[int, ...]) -> None:
        if self._dictionary is not None:
            return
        self._shape = shape
        dim = int(np.prod(shape))
        self._dictionary = self._rng.normal(0, 0.5, size=(dim, self.rank))
        self._seasonal = np.zeros((self.period, self.rank))
        self._drift = np.zeros((self.period, self.rank))

    def _solve_weights(self, values: np.ndarray, observed: np.ndarray):
        design = self._dictionary[observed]
        gram = design.T @ design
        # relative ridge keeps the solve well-posed when the dictionary is
        # poorly conditioned (e.g. after outlier-driven updates)
        ridge = 1e-3 * (np.trace(gram) / self.rank + 1.0)
        gram = gram + ridge * np.eye(self.rank)
        rhs = design.T @ values
        try:
            return np.linalg.solve(gram, rhs)
        except np.linalg.LinAlgError:
            return np.linalg.lstsq(gram, rhs, rcond=None)[0]

    def step(self, subtensor: np.ndarray, mask: np.ndarray) -> np.ndarray:
        y = np.asarray(subtensor, dtype=np.float64)
        m = np.asarray(mask, dtype=bool)
        self._ensure_state(y.shape)
        flat_y = y.reshape(-1)
        flat_m = m.reshape(-1)
        observed = np.nonzero(flat_m)[0]
        if observed.size:
            weights = self._solve_weights(flat_y[observed], observed)
            residual = flat_y[observed] - self._dictionary[observed] @ weights
            # +1 in the normalizer bounds the update when the weights are
            # small, preventing outlier-driven dictionary blow-up
            step = self.learning_rate / (float(np.sum(weights * weights)) + 1.0)
            self._dictionary[observed] += step * np.outer(residual, weights)
        else:
            weights = np.zeros(self.rank)

        phase = self._t % self.period
        previous_pattern = self._seasonal[phase].copy()
        if self._t >= self.period:
            new_drift = weights - previous_pattern
            self._drift[phase] = (
                (1 - self.drift_smoothing) * self._drift[phase]
                + self.drift_smoothing * new_drift
            )
        self._seasonal[phase] = (
            (1 - self.season_smoothing) * previous_pattern
            + self.season_smoothing * weights
        ) if self._t >= self.period else weights
        self._t += 1
        return (self._dictionary @ weights).reshape(self._shape)

    def forecast(self, horizon: int) -> np.ndarray:
        if self._dictionary is None:
            raise ShapeError("SMF has not consumed any data yet")
        forecasts = []
        for h in range(1, horizon + 1):
            phase = (self._t + h - 1) % self.period
            seasons_ahead = (self._t + h - 1) // self.period - (
                (self._t - 1) // self.period
            )
            weights = self._seasonal[phase] + seasons_ahead * self._drift[phase]
            forecasts.append((self._dictionary @ weights).reshape(self._shape))
        return np.stack(forecasts, axis=0)
