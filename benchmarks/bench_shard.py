"""Shard bench: router fleet throughput + a sharded replay, gated.

Two measurements, three gated cases:

* ``shard_throughput_1`` / ``shard_throughput_2`` — the same
  many-session ingest load (64 sessions full-size, 16 with
  ``--quick``) pushed through a self-hosted router fronting one vs two
  gateway shards.  Both runs go through the router so the comparison
  isolates the effect of sharding, not router overhead.  The gated
  field is ``total_wall_seconds`` (``check_regression.py``'s
  ``*_seconds`` ratio rules); the ingest/drain split rides along in
  ms, ungated, because where the boundary lands between them is
  backpressure-timing noise.  The 2-shard entry also carries
  ``two_shard_ratio``
  (1-shard wall over 2-shard wall) *outside* the gated ``speedup`` key
  on purpose — in-process shards share the CPU budget, so the ratio is
  an informational signal, not a machine-independent invariant worth
  paging on.
* ``shard_replay_bursty`` — the ``bursty_arrival`` scenario replayed
  through a self-hosted two-shard router
  (:func:`repro.scenarios.replay.run_replay` with ``shards=2``):
  ``ingest_p95_seconds``/``ingest_p99_seconds`` fleet-aggregated
  percentiles, gated by the same ratio rules.  A replay that fails to
  drain, errors, or stalls fails this bench directly, before the
  regression gate even runs.

``--quick`` shrinks the load for CI; the committed baseline in
``benchmarks/baseline/BENCH_shard.json`` is a ``--quick`` run so the
gate compares like with like.

Run::

    python benchmarks/bench_shard.py --quick --json BENCH_shard.json
"""

import argparse
import json
import platform
import sys
import threading
import time

import numpy as np

from repro.scenarios.replay import run_replay
from repro.serving import HTTPServingClient
from repro.serving.shard import start_local_cluster

#: Slice shape of the synthetic throughput sessions.
DIMS = (5, 4)

#: Serving-path config: modest iteration caps, same spirit as the
#: replay harness — this bench measures the serving path, the offline
#: runner owns accuracy.
SESSION_CONFIG = {
    "rank": 2,
    "period": 4,
    "init_seasons": 2,
    "max_outer_iters": 5,
    "tol": 1e-2,
}


def _session_streams(n_sessions, n_slices, seed):
    """One (slices, masks) stream per session, deterministic."""
    rng = np.random.default_rng(seed)
    streams = []
    for _ in range(n_sessions):
        slices = rng.normal(size=(n_slices, *DIMS))
        masks = rng.random((n_slices, *DIMS)) > 0.2
        streams.append((slices, masks))
    return streams


def run_throughput(
    n_shards, *, n_sessions, n_slices, seed, client_threads=8
):
    """Wall-clock of one many-session load through an N-shard fleet."""
    streams = _session_streams(n_sessions, n_slices, seed)
    cluster = start_local_cluster(
        n_shards, max_batch=8, max_latency_s=0.02
    )
    try:
        admin = HTTPServingClient(cluster.url)
        session_ids = [f"tp-{i}" for i in range(n_sessions)]
        for session_id in session_ids:
            admin.create_session(session_id, dict(SESSION_CONFIG))

        # A small pool of client threads, each driving its stripe of
        # sessions round-robin: enough concurrency to keep every shard
        # busy without 64 sender threads of scheduler noise.
        def worker(stripe):
            client = HTTPServingClient(cluster.url)
            for t in range(n_slices):
                for index in stripe:
                    slices, masks = streams[index]
                    client.ingest(
                        session_ids[index], slices[t], masks[t]
                    )

        stripes = [
            list(range(start, n_sessions, client_threads))
            for start in range(min(client_threads, n_sessions))
        ]
        threads = [
            threading.Thread(target=worker, args=(stripe,), daemon=True)
            for stripe in stripes
            if stripe
        ]
        ingest_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ingest_wall = time.perf_counter() - ingest_start

        drain_start = time.perf_counter()
        while True:
            snapshot = admin.metrics()
            if snapshot["slices_flushed"] >= snapshot["slices_ingested"]:
                break
            time.sleep(0.01)
        drain_wall = time.perf_counter() - drain_start

        total_wall = ingest_wall + drain_wall
        total_slices = n_sessions * n_slices
        for session_id in session_ids:
            admin.close_session(session_id)
        return {
            "case": f"shard_throughput_{n_shards}",
            "shards": n_shards,
            "n_sessions": n_sessions,
            "slices_per_session": n_slices,
            # The ingest/drain split rides along in ms, outside the
            # gated *_seconds suffix: where the boundary lands depends
            # on whether server backpressure surfaces during the sends
            # or after them, which swings 2-10x run to run while the
            # sum stays stable.  Only the sum is gated.
            "ingest_wall_ms": ingest_wall * 1e3,
            "drain_wall_ms": drain_wall * 1e3,
            "total_wall_seconds": total_wall,
            "slices_per_second": total_slices / total_wall,
        }
    finally:
        cluster.close()


def run_shard_report(*, quick=False, seed=0):
    """Throughput at 1 vs 2 shards plus a sharded replay; gated."""
    n_sessions = 16 if quick else 64
    n_slices = 12 if quick else 24
    violations = []

    one = run_throughput(
        1, n_sessions=n_sessions, n_slices=n_slices, seed=seed
    )
    two = run_throughput(
        2, n_sessions=n_sessions, n_slices=n_slices, seed=seed
    )
    two["two_shard_ratio"] = (
        one["total_wall_seconds"] / max(two["total_wall_seconds"], 1e-9)
    )

    replay = run_replay(
        "bursty_arrival",
        rate=300.0,
        slices=24 if quick else None,
        tiny=quick,
        seed=seed,
        shards=2,
    )
    replay_payload = replay.as_dict()
    replay_entry = {
        "case": "shard_replay_bursty",
        "shards": replay.shards,
        "n_sessions": replay.n_sessions,
        "slices_per_session": replay.slices_per_session,
        "achieved_rate": replay.achieved_rate,
        "drained": replay.drained,
        "send_errors": replay.send_errors,
        "ingest_p95_seconds": replay_payload["ingest_p95_seconds"],
        "ingest_p99_seconds": replay_payload["ingest_p99_seconds"],
        "rtt_p95_ms": replay_payload["rtt_p95_seconds"] * 1e3,
    }
    if not replay.drained:
        violations.append("sharded replay did not drain")
    if replay.send_errors:
        violations.append(
            f"sharded replay hit {replay.send_errors} send errors"
        )
    if replay.stalled_sessions:
        violations.append(
            "sharded replay stalled sessions: "
            f"{list(replay.stalled_sessions)}"
        )

    payload = {
        "benchmark": "shard",
        "quick": quick,
        "seed": seed,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": [one, two, replay_entry],
    }
    return payload, violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Router fleet throughput (1 vs 2 shards) and a "
        "2-shard scenario replay."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run (16 sessions, 12 slices, tiny replay)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json",
        default=None,
        help="also write the report to this path",
    )
    args = parser.parse_args(argv)

    payload, violations = run_shard_report(
        quick=args.quick, seed=args.seed
    )
    for entry in payload["results"]:
        if entry["case"].startswith("shard_throughput"):
            ratio = entry.get("two_shard_ratio")
            print(
                f"{entry['case']}: {entry['n_sessions']} sessions x "
                f"{entry['slices_per_session']} slices in "
                f"{entry['total_wall_seconds']:.2f}s "
                f"({entry['slices_per_second']:.0f} sl/s"
                + (f", {ratio:.2f}x vs 1 shard)" if ratio else ")")
            )
        else:
            print(
                f"{entry['case']}: ingest p95/p99 "
                f"{entry['ingest_p95_seconds'] * 1e3:.0f}/"
                f"{entry['ingest_p99_seconds'] * 1e3:.0f} ms "
                f"({entry['achieved_rate']:.0f} sl/s achieved)"
            )
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    if violations:
        print(f"\n{len(violations)} shard violation(s):", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
