"""Unit tests for evaluation metrics (paper §VI-A)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.streams import (
    RunningAverage,
    average_forecast_error,
    normalized_residual_error,
)


class TestNRE:
    def test_zero_for_exact(self):
        x = np.ones((3, 3))
        assert normalized_residual_error(x, x) == 0.0

    def test_known_value(self):
        truth = np.full((2, 2), 2.0)
        est = np.full((2, 2), 3.0)
        assert normalized_residual_error(est, truth) == pytest.approx(0.5)


class TestAFE:
    def test_mean_of_per_step_nre(self):
        rng = np.random.default_rng(0)
        truths = rng.normal(size=(4, 3, 3))
        forecasts = truths.copy()
        forecasts[0] *= 1.5  # NRE 0.5 at step 0 only
        afe = average_forecast_error(forecasts, truths)
        assert afe == pytest.approx(0.5 / 4)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            average_forecast_error(np.zeros((3, 2, 2)), np.zeros((4, 2, 2)))

    def test_empty_horizon(self):
        with pytest.raises(ShapeError):
            average_forecast_error(np.zeros((0, 2, 2)), np.zeros((0, 2, 2)))

    def test_perfect_forecast(self):
        truths = np.random.default_rng(1).normal(size=(5, 2, 2))
        assert average_forecast_error(truths, truths) == 0.0


class TestRunningAverage:
    def test_mean(self):
        acc = RunningAverage()
        for v in (1.0, 2.0, 3.0):
            acc.add(v)
        assert acc.mean == pytest.approx(2.0)
        assert acc.count == 3

    def test_series(self):
        acc = RunningAverage()
        acc.add(1.5)
        acc.add(2.5)
        np.testing.assert_array_equal(acc.series(), [1.5, 2.5])

    def test_empty_mean_raises(self):
        with pytest.raises(ShapeError):
            _ = RunningAverage().mean
