"""Thread-safe counters and latency histograms for the serving runtime.

One :class:`ServingMetrics` instance is shared by the session manager,
the micro-batching scheduler, and the checkpoint store; the gateway
exposes :meth:`ServingMetrics.snapshot` at ``GET /metrics``.  Besides
monotonic counters it keeps bounded log-bucketed
:class:`LatencyHistogram` instances (ingest-to-commit per slice, flush
execution time), so a snapshot reports p50/p95/p99 latency — the
numbers the scenario replay harness gates in CI — not just counts and
averages.  All updates take the instance lock, so worker threads can
bump counters concurrently and a snapshot is always internally
consistent.
"""

from __future__ import annotations

import math
import threading

__all__ = ["COUNTER_NAMES", "LatencyHistogram", "ServingMetrics"]

#: Counter names a ServingMetrics instance tracks.  ``increment`` with
#: any other name raises — a typo'd metric would otherwise count into
#: the void forever.
_COUNTERS = (
    "sessions_created",
    "sessions_closed",
    "slices_ingested",
    "slices_flushed",
    "batches_flushed",
    "flush_failures",
    "evictions",
    "rehydrations",
    "imputations",
    "forecasts",
    # One per scheduler dispatch (= one worker wakeup; on a process
    # pool, one IPC round-trip).  A dispatch covering a fused group of
    # several sessions also counts into fused_dispatches, and every
    # group member into fused_sessions_flushed — so
    # batches_flushed / dispatches is the cross-session amortization
    # factor the fusion path exists for.
    "dispatches",
    "fused_dispatches",
    "fused_sessions_flushed",
    # Live-migration handoffs: one export per drained state shipped
    # off this runtime, one import per state adopted from elsewhere.
    "session_exports",
    "session_imports",
    # Durable mode: one per post-commit checkpoint written so a dead
    # process's sessions can be failed over from disk.
    "checkpoint_persists",
    # Sessions adopted with a non-zero degraded count (slices that were
    # acked upstream but missing from the checkpoint they were rebuilt
    # from — the failover data-loss window, reported, never silent).
    "degraded_imports",
    # HTTP surface: every response the gateway (or router) sends, plus
    # the 4xx/5xx splits — so client errors and proxy failures show up
    # in the fleet view instead of vanishing into access logs.
    "http_requests",
    "http_errors_4xx",
    "http_errors_5xx",
)

#: The counter names, exported for the Prometheus renderer (counters
#: become ``_total`` families; every other numeric snapshot entry is a
#: gauge).
COUNTER_NAMES = frozenset(_COUNTERS)

#: Histogram names a ServingMetrics instance tracks.
#: ``ingest`` is the end-to-end slice latency (ingest accepted ->
#: result committed, the number a serving SLO is written against);
#: ``flush`` is one worker flush's execution wall-clock.
_HISTOGRAMS = ("ingest", "flush")


class LatencyHistogram:
    """Bounded log-bucketed histogram of seconds, percentile-queryable.

    Buckets are geometric between ``lower`` and ``upper`` (fixed count,
    so memory never grows with observations); a percentile is answered
    as the upper bound of the bucket holding that rank, clamped to the
    true observed maximum.  The relative error is bounded by the
    bucket growth factor (~12% with the defaults) — plenty for SLO
    gating, where regressions of interest are 1.5x and up.
    """

    def __init__(
        self,
        *,
        lower: float = 1e-5,
        upper: float = 120.0,
        buckets_per_decade: int = 20,
    ) -> None:
        if not 0 < lower < upper:
            raise ValueError(
                f"need 0 < lower < upper, got {lower}, {upper}"
            )
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        decades = math.log10(upper / lower)
        n = max(int(math.ceil(decades * buckets_per_decade)), 1)
        #: Upper bounds of the finite buckets; one overflow bucket
        #: past the end catches anything above ``upper``.
        self._bounds = [
            lower * (upper / lower) ** ((i + 1) / n) for i in range(n)
        ]
        self._counts = [0] * (n + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        """Fold one observation in (negative values clamp to zero)."""
        seconds = max(float(seconds), 0.0)
        index = self._bucket_index(seconds)
        self._counts[index] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def _bucket_index(self, seconds: float) -> int:
        lo, hi = 0, len(self._bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if seconds <= self._bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def percentile(self, q: float) -> float:
        """The ``q``-quantile in seconds (``q`` in [0, 1]); 0 if empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = max(int(math.ceil(q * self.count)), 1)
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= target:
                if index >= len(self._bounds):
                    return self.max_seconds
                return min(self._bounds[index], self.max_seconds)
        return self.max_seconds  # pragma: no cover - counts sum to count

    def summary(self) -> dict:
        """Count, mean/max, the p50/p95/p99 the SLO gates read, and the
        raw buckets (finite upper ``bounds`` plus per-bucket ``counts``
        with one trailing overflow entry) — what the Prometheus
        ``_bucket`` lines and the fleet-level histogram merge are
        derived from."""
        mean = self.total_seconds / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_seconds": mean,
            "max_seconds": self.max_seconds,
            "total_seconds": self.total_seconds,
            "p50_seconds": self.percentile(0.50),
            "p95_seconds": self.percentile(0.95),
            "p99_seconds": self.percentile(0.99),
            "buckets": {
                "bounds": list(self._bounds),
                "counts": list(self._counts),
            },
        }


class ServingMetrics:
    """Monotonic counters plus latency histograms, one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in _COUNTERS}
        self._flush_seconds = 0.0
        self._histograms = {
            name: LatencyHistogram() for name in _HISTOGRAMS
        }
        self._gauges: dict[str, object] = {}

    def register_gauge(self, name: str, fn) -> None:
        """Register callable ``fn`` as gauge ``name``.

        Gauges are *evaluated at snapshot time* (resident session
        count, pending slices, ...) rather than incremented — the
        owning component registers a cheap zero-argument callable and
        the snapshot reports its current value.  Names must not
        collide with counters.
        """
        if name in self._counts:
            raise KeyError(f"gauge {name!r} collides with a counter")
        with self._lock:
            self._gauges[name] = fn

    def observe_http(self, status: int) -> None:
        """Count one HTTP response (and its 4xx/5xx split)."""
        with self._lock:
            self._counts["http_requests"] += 1
            if 400 <= status < 500:
                self._counts["http_errors_4xx"] += 1
            elif status >= 500:
                self._counts["http_errors_5xx"] += 1

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (must be a known name)."""
        if name not in self._counts:
            raise KeyError(
                f"unknown serving metric {name!r}; known: {_COUNTERS}"
            )
        with self._lock:
            self._counts[name] += amount

    def observe_latency(self, name: str, seconds: float) -> None:
        """Record one latency sample into histogram ``name``."""
        if name not in self._histograms:
            raise KeyError(
                f"unknown latency histogram {name!r}; "
                f"known: {_HISTOGRAMS}"
            )
        with self._lock:
            self._histograms[name].record(seconds)

    def observe_flush(self, n_slices: int, seconds: float) -> None:
        """Record one scheduler flush of ``n_slices`` slices.

        ``seconds == 0.0`` marks a bookkeeping-only flush (warmup
        absorption); it counts into the totals but not the flush
        latency histogram, which tracks real executions.
        """
        with self._lock:
            self._counts["batches_flushed"] += 1
            self._counts["slices_flushed"] += n_slices
            self._flush_seconds += seconds
            if seconds > 0.0:
                self._histograms["flush"].record(seconds)

    def snapshot(self) -> dict:
        """A consistent point-in-time copy of every counter.

        Includes three derived values — ``mean_batch_size`` (flushed
        slices per flush), ``mean_fused_sessions`` (session flushes
        per scheduler dispatch — 1.0 means no cross-session fusion
        happened), and ``flush_seconds_total`` — plus one
        ``<name>_latency`` dict per histogram carrying
        ``count``/``mean_seconds``/``max_seconds`` and the
        ``p50/p95/p99_seconds`` percentiles.
        """
        with self._lock:
            counts = dict(self._counts)
            flush_seconds = self._flush_seconds
            summaries = {
                name: histogram.summary()
                for name, histogram in self._histograms.items()
            }
            gauges = dict(self._gauges)
        # Gauges run outside the metrics lock: they read other
        # components' state (store residency, scheduler queue depth)
        # which takes those components' locks — nesting them under the
        # metrics lock would invite ordering deadlocks.
        for name, fn in gauges.items():
            counts[name] = fn()
        batches = counts["batches_flushed"]
        dispatches = counts["dispatches"]
        counts["flush_seconds_total"] = flush_seconds
        counts["mean_batch_size"] = (
            counts["slices_flushed"] / batches if batches else 0.0
        )
        # Solo dispatches carry one session each; fused ones carry
        # their member count (fused_sessions_flushed).  Warmup slices
        # absorbed without a dispatch count into batches_flushed but
        # not here.
        dispatched_flushes = (
            counts["dispatches"]
            - counts["fused_dispatches"]
            + counts["fused_sessions_flushed"]
        )
        counts["mean_fused_sessions"] = (
            dispatched_flushes / dispatches if dispatches else 0.0
        )
        for name, summary in summaries.items():
            counts[f"{name}_latency"] = summary
        return counts
