"""Fig. 1: the paper's headline summary panels.

Composes all four panels from the shared session runs: (a) the per-step
NRE curve on Chicago Taxi at (70, 20, 5), (b) the ART-vs-RAE trade-off,
(c) the forecasting AFE bars, (d) the scalability line.  The benchmark
times the panel assembly.
"""

from conftest import report

from repro.experiments import format_series, format_table
from repro.experiments.summary import Fig1Result


def test_bench_fig1(benchmark, imputation_grid, forecast_cells, scalability_result):
    result = benchmark.pedantic(
        lambda: Fig1Result(
            imputation=imputation_grid,
            forecasting=forecast_cells,
            scalability=scalability_result,
        ),
        rounds=1,
        iterations=1,
    )

    lines = ["Fig. 1(a): Chicago Taxi (70, 20, 5), per-step NRE"]
    for name, series in result.panel_a_series().items():
        lines.append("  " + format_series(f"{name:10s}", series))
    report("\n".join(lines))

    report(
        format_table(
            ["Algorithm", "ART (s)", "RAE"],
            [[n, t, e] for n, t, e in result.panel_b_tradeoff()],
            title="Fig. 1(b): speed vs accuracy on Chicago Taxi (70, 20, 5)",
        )
    )
    report(
        format_table(
            ["Algorithm (setting)", "AFE"],
            [[label, afe] for label, afe in result.panel_c_bars()],
            title="Fig. 1(c): forecasting error on Chicago Taxi",
        )
    )
    report(
        f"Fig. 1(d): scalability linear-fit R^2 = "
        f"{result.scalability.entries_r2:.4f}"
    )
    report(
        f"Fig. 1(b) headline: SOFIA is "
        f"{result.sofia_speedup_vs_second_most_accurate():.1f}x faster than "
        f"the second-most accurate competitor (paper: 935x on MATLAB)"
    )

    # Headline shape: SOFIA has the lowest RAE in panel (b).
    tradeoff = {name: rae for name, _, rae in result.panel_b_tradeoff()}
    assert min(tradeoff, key=tradeoff.get) == "SOFIA"
