"""Structural and absolute-correctness tests for the kernel layer.

Cross-backend parity (every registered backend vs ``"reference"``) lives
in the reusable harness ``tests/tensor/backend_conformance.py``, driven
by ``test_backend_conformance.py``.  This file pins everything else: the
backend registry semantics, the backend-independent building blocks
(segment sums, gather products, Lipschitz norms), the absolute
correctness of each formulation against its mathematical definition
(``np.add.at``, the materialized Khatri-Rao product, per-row Kruskal
evaluation), the multicolor Gauss-Seidel ordering argument, and
end-to-end ALS agreement across backends.
"""

import os

import numpy as np
import pytest

from repro.core.smoothness import neighbor_count, neighbor_sum
from repro.exceptions import ConfigError, ShapeError
from repro.tensor import (
    khatri_rao,
    kernels,
    kruskal_to_tensor,
    random_factors,
    unfold,
)
from repro.tensor.kernels import (
    kruskal_column_sq_norms,
    lag_neighbor_counts,
    lag_neighbor_sums,
    masked_soft_threshold,
    mttkrp_observed,
    observed_factor_products,
    scatter_normal_equations,
    segment_sum,
    soft_threshold,
)


def random_masked_case(seed, shape=(9, 7, 30), rank=3, observed=0.7):
    rng = np.random.default_rng(seed)
    factors = random_factors(shape, rank, seed=seed)
    tensor = np.einsum(
        "ir,jr,kr->ijk", *factors
    ) + 0.1 * rng.normal(size=shape)
    mask = rng.random(shape) < observed
    coords = np.nonzero(mask)
    return tensor, mask, coords, tensor[coords], factors


class TestBackendRegistry:
    def test_all_shipped_backends_registered(self):
        assert {"auto", "batched", "reference", "sparse"} <= set(
            kernels.available_backends()
        )

    def test_default_backend_is_auto(self):
        # The import-time default; the env hook below may override it in
        # a backend-matrix CI leg.
        expected = os.environ.get(kernels.BACKEND_ENV_VAR, "").strip()
        assert kernels.active_backend().name == (expected or "auto")

    def test_use_backend_restores_previous(self):
        previous = kernels.active_backend().name
        with kernels.use_backend("reference") as backend:
            assert backend.name == "reference"
            assert kernels.active_backend().name == "reference"
        assert kernels.active_backend().name == previous

    def test_use_backend_restores_previous_when_body_raises(self):
        previous = kernels.active_backend().name
        with pytest.raises(RuntimeError, match="boom"):
            with kernels.use_backend("reference"):
                assert kernels.active_backend().name == "reference"
                raise RuntimeError("boom")
        assert kernels.active_backend().name == previous

    def test_use_backend_restores_over_inner_switch(self):
        previous = kernels.active_backend().name
        with kernels.use_backend("reference"):
            kernels.set_backend("batched")
        assert kernels.active_backend().name == previous

    def test_unknown_backend_rejected_and_active_unchanged(self):
        previous = kernels.active_backend().name
        with pytest.raises(ConfigError):
            kernels.set_backend("does-not-exist")
        assert kernels.active_backend().name == previous
        with pytest.raises(ConfigError):
            with kernels.use_backend("does-not-exist"):
                pass  # pragma: no cover - never entered
        assert kernels.active_backend().name == previous

    def test_unknown_backend_error_lists_available(self):
        with pytest.raises(ConfigError) as excinfo:
            kernels.set_backend("does-not-exist")
        message = str(excinfo.value)
        for name in kernels.available_backends():
            assert name in message


class TestSolveRows:
    def test_solves_ridged_systems(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=(40, 4, 4))
        lhs = base @ base.transpose(0, 2, 1) + 0.5 * np.eye(4)
        rhs = rng.normal(size=(40, 4))
        out = kernels.solve_rows(lhs, rhs, rng.normal(size=(40, 4)))
        np.testing.assert_allclose(
            np.einsum("nij,nj->ni", lhs, out), rhs, atol=1e-6
        )

    def test_singular_rows_get_least_squares_solution(self):
        # Rank-1 systems: solve() would fail without the fallback path.
        rng = np.random.default_rng(1)
        v = rng.normal(size=(10, 3))
        lhs = v[:, :, None] * v[:, None, :]
        # consistent right-hand sides so lstsq/pinv agree exactly
        rhs = np.einsum("nij,nj->ni", lhs, rng.normal(size=(10, 3)))
        out = kernels.solve_rows(lhs, rhs)
        assert float(
            np.abs(np.einsum("nij,nj->ni", lhs, out) - rhs).max()
        ) < 1e-6

    def test_all_zero_rows_keep_fallback(self):
        rng = np.random.default_rng(2)
        lhs = np.zeros((6, 3, 3))
        rhs = np.zeros((6, 3))
        lhs[0] = np.eye(3)
        rhs[0] = rng.normal(size=3)
        fallback = rng.normal(size=(6, 3))
        out = kernels.solve_rows(lhs, rhs, fallback)
        np.testing.assert_array_equal(out[1:], fallback[1:])

    def test_zero_lhs_nonzero_rhs_is_solved_not_skipped(self):
        # Only rows where BOTH sides vanish pass through.
        lhs = np.zeros((2, 2, 2))
        rhs = np.array([[1.0, -2.0], [0.0, 0.0]])
        fallback = np.full((2, 2), 7.0)
        out = kernels.solve_rows(lhs, rhs, fallback)
        assert not np.allclose(out[0], fallback[0])
        np.testing.assert_array_equal(out[1], fallback[1])

    def test_empty_batch(self):
        out = kernels.solve_rows(np.zeros((0, 3, 3)), np.zeros((0, 3)))
        assert out.shape == (0, 3)


class TestSegmentSum:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_add_at_on_random_sparse_coords(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 2000))
        dim = int(rng.integers(1, 40))
        segments = rng.integers(0, dim, size=n)
        data = rng.normal(size=(n, 3, 3))
        expected = np.zeros((dim, 3, 3))
        np.add.at(expected, segments, data)
        np.testing.assert_allclose(
            segment_sum(segments, data, dim), expected, atol=1e-10
        )

    def test_empty_input(self):
        out = segment_sum(np.zeros(0, dtype=int), np.zeros((0, 2)), 4)
        np.testing.assert_array_equal(out, np.zeros((4, 2)))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ShapeError):
            segment_sum(np.zeros(3, dtype=int), np.zeros((4, 2)), 5)

    def test_scatter_normal_equations_matches_add_at(self):
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 11, size=500)
        design = rng.normal(size=(500, 4))
        targets = rng.normal(size=500)
        gram, rhs = scatter_normal_equations(rows, design, targets, 11)
        expected_gram = np.zeros((11, 4, 4))
        expected_rhs = np.zeros((11, 4))
        np.add.at(
            expected_gram, rows, design[:, :, None] * design[:, None, :]
        )
        np.add.at(expected_rhs, rows, targets[:, None] * design)
        np.testing.assert_allclose(gram, expected_gram, atol=1e-10)
        np.testing.assert_allclose(rhs, expected_rhs, atol=1e-10)


class TestAccumulateNormalEquations:
    """Absolute correctness of the dense and sparse formulations.

    Both executed paths are pinned to the buffered ``np.add.at``
    definition of Eq. 14-15; the backend dispatch itself is covered by
    the conformance suite.
    """

    @staticmethod
    def add_at_expectation(coords, values, factors, mode):
        rank = factors[0].shape[1]
        dim = factors[mode].shape[0]
        prod = observed_factor_products(coords, factors, skip_mode=mode)
        big_b = np.zeros((dim, rank, rank))
        big_c = np.zeros((dim, rank))
        np.add.at(big_b, coords[mode], prod[:, :, None] * prod[:, None, :])
        np.add.at(big_c, coords[mode], values[:, None] * prod)
        return big_b, big_c

    @pytest.mark.parametrize("backend", ["batched", "sparse"])
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_add_at_accumulation(self, backend, mode):
        tensor, mask, coords, values, factors = random_masked_case(0)
        expected_b, expected_c = self.add_at_expectation(
            coords, values, factors, mode
        )
        with kernels.use_backend(backend):
            big_b, big_c = kernels.accumulate_normal_equations(
                coords, values, factors, mode
            )
        np.testing.assert_allclose(big_b, expected_b, atol=1e-10)
        np.testing.assert_allclose(big_c, expected_c, atol=1e-10)

    @pytest.mark.parametrize("backend", ["auto", "batched", "sparse"])
    def test_empty_mask(self, backend):
        factors = random_factors((4, 5, 6), 2, seed=0)
        coords = tuple(np.zeros(0, dtype=int) for _ in range(3))
        with kernels.use_backend(backend):
            big_b, big_c = kernels.accumulate_normal_equations(
                coords, np.zeros(0), factors, 1
            )
        np.testing.assert_array_equal(big_b, np.zeros((5, 2, 2)))
        np.testing.assert_array_equal(big_c, np.zeros((5, 2)))

    @pytest.mark.parametrize("backend", ["batched", "sparse"])
    def test_all_entries_in_one_row(self, backend):
        # The histogram path must leave untouched bins exactly zero.
        tensor, mask, _, _, factors = random_masked_case(1)
        row_mask = np.zeros_like(mask)
        row_mask[:, 2, :] = mask[:, 2, :]
        coords = np.nonzero(row_mask)
        values = tensor[coords]
        expected_b, expected_c = self.add_at_expectation(
            coords, values, factors, 1
        )
        with kernels.use_backend(backend):
            big_b, big_c = kernels.accumulate_normal_equations(
                coords, values, factors, 1
            )
        np.testing.assert_allclose(big_b, expected_b, atol=1e-10)
        np.testing.assert_allclose(big_c, expected_c, atol=1e-10)
        assert not big_b[[0, 1, 3, 4], :, :].any()


class TestTemporalSweep:
    @staticmethod
    def sweep_inputs(seed, length=40, rank=3, period=7, observed=0.6):
        tensor, mask, coords, values, factors = random_masked_case(
            seed, shape=(6, 5, length), rank=rank, observed=observed
        )
        big_b, big_c = kernels.accumulate_normal_equations(
            coords, values, factors, 2
        )
        return big_b, big_c, factors[2], period

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("period", [1, 2, 7, 100])
    def test_batched_sweep_is_exact_color_ordered_gauss_seidel(
        self, seed, period
    ):
        """The blocked sweep must equal a scalar Gauss-Seidel sweep that
        visits the rows in the same color order — color classes have no
        internal coupling, so the two are the same algorithm."""
        big_b, big_c, temporal, _ = self.sweep_inputs(seed, period=7)
        lambda1, lambda2 = 0.3, 0.2
        length = temporal.shape[0]
        idx = np.arange(length)
        colors = (idx & 1) + 2 * ((idx // period) & 1)
        order = np.concatenate(
            [np.flatnonzero(colors == color) for color in range(4)]
        )

        # scalar color-ordered Gauss-Seidel using the reference row solver
        expected = temporal.copy()
        eye = np.eye(temporal.shape[1])
        counts1 = lag_neighbor_counts(length, 1)
        counts2 = lag_neighbor_counts(length, period)
        for i in order:
            lhs = big_b[i] + (
                lambda1 * counts1[i] + lambda2 * counts2[i]
            ) * eye
            rhs = (
                big_c[i]
                + lambda1 * lag_neighbor_sums(expected, 1, np.array([i]))[0]
                + lambda2
                * lag_neighbor_sums(expected, period, np.array([i]))[0]
            )
            if not lhs.any() and not rhs.any():
                continue
            with kernels.use_backend("reference"):
                expected[i] = kernels.solve_rows(
                    lhs[None], rhs[None], expected[i][None]
                )[0]

        with kernels.use_backend("batched"):
            actual = kernels.temporal_sweep(
                big_b,
                big_c,
                temporal,
                lambda1=lambda1,
                lambda2=lambda2,
                period=period,
            )
        np.testing.assert_allclose(actual, expected, atol=1e-10)

    def test_color_classes_have_no_internal_coupling(self):
        # No two same-color rows may be lag-1 or lag-m neighbors.
        for period in (1, 2, 3, 4, 7, 24):
            idx = np.arange(200)
            colors = (idx & 1) + 2 * ((idx // period) & 1)
            for lag in (1, period):
                same = colors[: 200 - lag] == colors[lag:]
                assert not same.any(), (period, lag)

    def test_unobserved_uncoupled_rows_keep_previous_values(self):
        # With no observations and no smoothness, every row passes through.
        temporal = np.random.default_rng(5).normal(size=(10, 3))
        big_b = np.zeros((10, 3, 3))
        big_c = np.zeros((10, 3))
        with kernels.use_backend("batched"):
            out = kernels.temporal_sweep(
                big_b, big_c, temporal, lambda1=0.0, lambda2=0.0, period=3
            )
        np.testing.assert_array_equal(out, temporal)


class TestMttkrp:
    @pytest.mark.parametrize("backend", ["batched", "sparse"])
    @pytest.mark.parametrize("mode", [0, 1, 2, None])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_matches_khatri_rao_formulation(self, backend, mode, weighted):
        rng = np.random.default_rng(3)
        shape = (5, 6, 7)
        tensor = rng.normal(size=shape)
        factors = random_factors(shape, 4, seed=3)
        weights = rng.normal(size=4) if weighted else None
        with kernels.use_backend(backend):
            got = kernels.mttkrp(tensor, factors, mode, weights)
        if mode is None:
            kr = khatri_rao(list(factors))
            if weights is not None:
                kr = kr * weights[None, :]
            expected = tensor.reshape(-1) @ kr
        else:
            others = [factors[l] for l in range(3) if l != mode]
            kr = khatri_rao(others)
            if weights is not None:
                kr = kr * weights[None, :]
            expected = unfold(tensor, mode) @ kr
        np.testing.assert_allclose(got, expected, atol=1e-10)

    @pytest.mark.parametrize("backend", ["auto", "batched", "sparse"])
    def test_single_mode_tensor(self, backend):
        rng = np.random.default_rng(7)
        tensor = rng.normal(size=5)
        factors = [rng.normal(size=(5, 3))]
        with kernels.use_backend(backend):
            got = kernels.mttkrp(tensor, factors, 0)
        np.testing.assert_allclose(
            got, np.repeat(tensor[:, None], 3, axis=1), atol=1e-12
        )

    def test_mttkrp_observed_matches_dense_on_masked_tensor(self):
        # The coordinate-level building block the sparse dynamic path
        # uses directly must agree with the dense contraction.
        tensor, mask, coords, values, factors = random_masked_case(9)
        masked = np.where(mask, tensor, 0.0)
        weights = np.array([0.5, -1.0, 2.0])
        for mode in (0, 1, 2, None):
            with kernels.use_backend("batched"):
                expected = kernels.mttkrp(masked, factors, mode, weights)
            got = mttkrp_observed(coords, values, factors, mode,
                                  weights=weights)
            np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_mttkrp_observed_dim_override_and_none_slot(self):
        tensor, mask, coords, values, factors = random_masked_case(10)
        got = mttkrp_observed(
            coords, values, [factors[0], factors[1], None], 2, dim=30
        )
        with kernels.use_backend("batched"):
            expected = kernels.mttkrp(
                np.where(mask, tensor, 0.0), factors, 2
            )
        np.testing.assert_allclose(got, expected, atol=1e-10)


class TestKruskalReconstructRows:
    @pytest.mark.parametrize("backend", ["batched", "sparse"])
    @pytest.mark.parametrize("n_batch", [1, 2, 8, 40])
    def test_matches_per_row_kruskal(self, backend, n_batch):
        """Both dense strategies (selected by the batch-vs-last-mode
        size) must match B separate Kruskal calls."""
        rng = np.random.default_rng(n_batch)
        shape = (5, 6)
        factors = random_factors(shape, 3, seed=n_batch)
        weight_rows = rng.normal(size=(n_batch, 3))
        expected = np.stack(
            [
                kruskal_to_tensor(factors, weights=weight_rows[b])
                for b in range(n_batch)
            ],
            axis=0,
        )
        with kernels.use_backend(backend):
            got = kernels.kruskal_reconstruct_rows(factors, weight_rows)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    @pytest.mark.parametrize("backend", ["auto", "batched", "sparse"])
    def test_coords_gather_matches_dense_stack(self, backend):
        rng = np.random.default_rng(11)
        factors = random_factors((4, 3, 5), 2, seed=11)
        weight_rows = rng.normal(size=(6, 2))
        mask = rng.random((6, 4, 3, 5)) < 0.2
        coords = np.nonzero(mask)
        with kernels.use_backend("batched"):
            dense = kernels.kruskal_reconstruct_rows(factors, weight_rows)
        with kernels.use_backend(backend):
            got = kernels.kruskal_reconstruct_rows(
                factors, weight_rows, coords
            )
        np.testing.assert_allclose(got, dense[coords], atol=1e-10)
        assert got.shape == (coords[0].size,)

    def test_three_mode_factors(self):
        rng = np.random.default_rng(11)
        factors = random_factors((4, 3, 5), 2, seed=11)
        weight_rows = rng.normal(size=(3, 2))
        with kernels.use_backend("batched"):
            fast = kernels.kruskal_reconstruct_rows(factors, weight_rows)
        assert fast.shape == (3, 4, 3, 5)
        np.testing.assert_allclose(
            fast[1], kruskal_to_tensor(factors, weights=weight_rows[1]),
            atol=1e-12,
        )

    def test_single_factor(self):
        rng = np.random.default_rng(5)
        factor = rng.normal(size=(6, 3))
        weight_rows = rng.normal(size=(2, 3))
        with kernels.use_backend("batched"):
            got = kernels.kruskal_reconstruct_rows([factor], weight_rows)
        np.testing.assert_allclose(got, weight_rows @ factor.T, atol=1e-12)

    @pytest.mark.parametrize("backend", ["batched", "reference", "sparse"])
    def test_one_dim_weights_rejected(self, backend):
        factors = random_factors((4, 4), 2, seed=0)
        with kernels.use_backend(backend):
            with pytest.raises(ShapeError):
                kernels.kruskal_reconstruct_rows(factors, np.ones(2))

    def test_wrong_coords_arity_rejected(self):
        factors = random_factors((4, 4), 2, seed=0)
        with pytest.raises(ShapeError):
            kernels.kruskal_reconstruct_rows(
                factors, np.ones((2, 2)), (np.zeros(1, dtype=int),) * 2
            )


class TestRlsUpdateRows:
    def test_matches_scalar_recursion(self):
        rng = np.random.default_rng(0)
        dim, rank, n = 8, 3, 300
        rows = rng.integers(0, dim, size=n)
        regressors = rng.normal(size=(n, rank))
        targets = rng.normal(size=n)

        factor_fast = rng.normal(size=(dim, rank))
        cov_fast = np.tile(10.0 * np.eye(rank), (dim, 1, 1))
        factor_slow = factor_fast.copy()
        cov_slow = cov_fast.copy()

        with kernels.use_backend("batched"):
            kernels.rls_update_rows(
                factor_fast, cov_fast, rows, regressors, targets, 0.98
            )
        with kernels.use_backend("reference"):
            kernels.rls_update_rows(
                factor_slow, cov_slow, rows, regressors, targets, 0.98
            )
        np.testing.assert_allclose(factor_fast, factor_slow, atol=1e-10)
        np.testing.assert_allclose(cov_fast, cov_slow, atol=1e-8)

    def test_empty_batch_is_noop(self):
        factor = np.ones((3, 2))
        cov = np.tile(np.eye(2), (3, 1, 1))
        kernels.rls_update_rows(
            factor,
            cov,
            np.zeros(0, dtype=int),
            np.zeros((0, 2)),
            np.zeros(0),
            0.9,
        )
        np.testing.assert_array_equal(factor, np.ones((3, 2)))


class TestSharedHelpers:
    def test_observed_factor_products_matches_manual_loop(self):
        tensor, mask, coords, values, factors = random_masked_case(11)
        design = observed_factor_products(coords, factors, skip_mode=1)
        manual = factors[0][coords[0]] * factors[2][coords[2]]
        np.testing.assert_allclose(design, manual, atol=1e-12)

    def test_observed_factor_products_skip_slot_may_be_none(self):
        tensor, mask, coords, values, factors = random_masked_case(11)
        design = observed_factor_products(
            coords, [None, factors[1], factors[2]], skip_mode=0
        )
        manual = factors[1][coords[1]] * factors[2][coords[2]]
        np.testing.assert_allclose(design, manual, atol=1e-12)

    def test_observed_factor_products_with_weights(self):
        tensor, mask, coords, values, factors = random_masked_case(12)
        w = np.array([0.5, -1.0, 2.0])
        design = observed_factor_products(coords, factors, weights=w)
        manual = (
            factors[0][coords[0]]
            * factors[1][coords[1]]
            * factors[2][coords[2]]
            * w[None, :]
        )
        np.testing.assert_allclose(design, manual, atol=1e-12)

    def test_column_sq_norms_match_khatri_rao_trace(self):
        factors = random_factors((4, 5, 6), 3, seed=13)
        w = np.array([1.5, -0.5, 2.0])
        kr = khatri_rao(factors) * w[None, :]
        np.testing.assert_allclose(
            np.sum(kruskal_column_sq_norms(factors, weights=w)),
            float(np.sum(kr * kr)),
            rtol=1e-12,
        )

    def test_lag_neighbor_helpers_match_scalar_forms(self):
        rng = np.random.default_rng(14)
        u = rng.normal(size=(12, 3))
        for lag in (1, 3, 11, 20):
            counts = lag_neighbor_counts(12, lag)
            sums = lag_neighbor_sums(u, lag)
            for i in range(12):
                assert counts[i] == neighbor_count(i, 12, lag)
                np.testing.assert_allclose(
                    sums[i], neighbor_sum(u, i, lag), atol=1e-12
                )

    def test_masked_soft_threshold_matches_composition(self):
        rng = np.random.default_rng(15)
        y = rng.normal(size=(6, 7))
        pred = rng.normal(size=(6, 7))
        mask = rng.random((6, 7)) > 0.5
        np.testing.assert_allclose(
            masked_soft_threshold(y, pred, mask, 0.3),
            soft_threshold(np.where(mask, y - pred, 0.0), 0.3),
            atol=1e-12,
        )


class TestEndToEndBackendAgreement:
    @staticmethod
    def als_case():
        factors = random_factors((8, 7, 24), 2, seed=1)
        tensor = kruskal_to_tensor(factors)
        rng = np.random.default_rng(2)
        mask = rng.random(tensor.shape) > 0.3
        init = random_factors(tensor.shape, 2, seed=3)
        return tensor, mask, init

    @pytest.mark.parametrize("backend", ["auto", "batched", "sparse"])
    def test_sofia_als_exact_parity_without_coupling(self, backend):
        """With λ1 = λ2 = 0 the temporal rows decouple, so the sweep
        ordering is irrelevant and every backend must agree with the
        reference to solver precision on the whole ALS run."""
        from repro.core import SofiaConfig, sofia_als

        tensor, mask, init = self.als_case()
        config = SofiaConfig(
            rank=2, period=6, lambda1=0.0, lambda2=0.0,
            max_als_iters=30, tol=1e-12,
        )
        outliers = np.zeros_like(tensor)
        with kernels.use_backend(backend):
            fast = sofia_als(tensor, mask, outliers, init, config)
        with kernels.use_backend("reference"):
            slow = sofia_als(tensor, mask, outliers, init, config)
        np.testing.assert_allclose(fast.completed, slow.completed, atol=1e-7)
        for f_fast, f_slow in zip(fast.factors, slow.factors):
            np.testing.assert_allclose(f_fast, f_slow, atol=1e-7)

    @pytest.mark.parametrize("backend", ["batched", "sparse"])
    def test_sofia_als_equally_good_fit_with_coupling(self, backend):
        """With smoothness coupling the backends sweep the temporal
        rows in different (both valid) Gauss-Seidel orderings, so the
        factors drift slightly — but the masked fit must stay equally
        good."""
        from repro.core import SofiaConfig, sofia_als
        from repro.tensor import masked_relative_error

        tensor, mask, init = self.als_case()
        config = SofiaConfig(
            rank=2, period=6, lambda1=0.05, lambda2=0.05,
            max_als_iters=150, tol=1e-9,
        )
        outliers = np.zeros_like(tensor)
        with kernels.use_backend(backend):
            fast = sofia_als(tensor, mask, outliers, init, config)
        with kernels.use_backend("reference"):
            slow = sofia_als(tensor, mask, outliers, init, config)
        fast_err = masked_relative_error(fast.completed, tensor, mask)
        slow_err = masked_relative_error(slow.completed, tensor, mask)
        assert abs(fast_err - slow_err) < 0.02
        assert fast_err < 0.3
