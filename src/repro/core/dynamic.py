"""SOFIA dynamic updates: one online step per subtensor (paper Alg. 3).

Each step: forecast the temporal vector with Holt-Winters (Eq. 19),
predict the incoming subtensor (Eq. 20), split off outliers with the
Huber pre-cleaning rule (Eq. 21), advance the per-entry error scales
(Eq. 22), take one gradient step on the non-temporal factors (Eq. 24) and
the temporal vector (Eq. 25), and finally advance the HW components
(Eq. 26).  Work per step is ``O(|Ω_t| N R)`` in observed-entry count
(Lemma 2); this implementation uses dense masked arithmetic, so its cost
is linear in the subtensor size, which coincides with the bound for the
fully observed streams of the scalability experiment (Fig. 7).

The gradient contractions and Lipschitz bounds route through
:mod:`repro.tensor.kernels`: the MTTKRP kernel contracts the residual
against the factors directly (no materialized Khatri-Rao product) and
the trace bound ``trace(KᵀK)`` comes from per-column norm products.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import SofiaConfig
from repro.core.model import SofiaModelState, SofiaStep
from repro.core.outliers import robust_step
from repro.tensor import kernels, kruskal_to_tensor
from repro.tensor.validation import check_mask

__all__ = ["dynamic_step", "factor_gradient_step", "temporal_gradient_step"]


def factor_gradient_step(
    residual: np.ndarray,
    factors: Sequence[np.ndarray],
    temporal_forecast: np.ndarray,
    mu: float,
    *,
    normalize: bool = True,
) -> list[np.ndarray]:
    """Gradient update of all non-temporal factors (Eq. 24).

    ``U^(n)_t = U^(n)_{t-1} + 2μ_n R_(n) (⊙_{l≠n} U^(l)_{t-1}) diag(û)``.
    All gradients are evaluated at the *previous* factors, so the updates
    are computed first and applied together.

    With ``normalize=True`` (the default, ``step_normalization =
    "lipschitz"``) the step size is ``μ / trace(KᵀK)`` where
    ``K = (⊙_{l≠n} U^(l)) diag(û)`` — a trace upper bound on the Lipschitz
    constant of the data term's gradient, making the update stable for
    any ``μ < 1`` regardless of the data's scale.
    """
    n_modes = len(factors)
    updated = []
    for mode in range(n_modes):
        gradient = kernels.mttkrp(
            residual, factors, mode, weights=temporal_forecast
        )
        step = mu
        if normalize:
            others = [factors[l] for l in range(n_modes) if l != mode]
            lipschitz = float(
                np.sum(
                    kernels.kruskal_column_sq_norms(
                        others, weights=temporal_forecast
                    )
                )
            )
            step = mu / max(lipschitz, 1e-12)
        updated.append(factors[mode] + 2.0 * step * gradient)
    return updated


def temporal_gradient_step(
    residual: np.ndarray,
    factors: Sequence[np.ndarray],
    temporal_forecast: np.ndarray,
    previous_vector: np.ndarray,
    season_vector: np.ndarray,
    config: SofiaConfig,
) -> np.ndarray:
    """Gradient update of the temporal vector ``u_t`` (Eq. 25).

    Starts from the HW forecast ``û_{t|t-1}`` and descends the local cost,
    pulling toward the data term plus the lag-1 / lag-m smoothness
    anchors.  Under ``step_normalization = "lipschitz"`` the step is
    scaled by ``trace(KᵀK) + λ1 + λ2`` with ``K = ⊙_n U^(n)``.
    """
    data_term = kernels.mttkrp(residual, factors, None)
    step = config.mu
    if config.step_normalization == "lipschitz":
        lipschitz = (
            float(np.sum(kernels.kruskal_column_sq_norms(factors)))
            + config.lambda1
            + config.lambda2
        )
        step = config.mu / max(lipschitz, 1e-12)
    return temporal_forecast + 2.0 * step * (
        data_term
        + config.lambda1 * previous_vector
        + config.lambda2 * season_vector
        - (config.lambda1 + config.lambda2) * temporal_forecast
    )


def dynamic_step(
    state: SofiaModelState,
    subtensor: np.ndarray,
    mask: np.ndarray,
    config: SofiaConfig,
) -> SofiaStep:
    """Process one incoming subtensor (the body of Alg. 3).

    Mutates ``state`` in place (factors, HW components, error scales,
    temporal ring buffer, step counter) and returns the per-step outputs.
    """
    y = np.asarray(subtensor, dtype=np.float64)
    m = check_mask(mask, state.subtensor_shape)
    if y.shape != state.subtensor_shape:
        raise ValueError(
            f"subtensor shape {y.shape} does not match model "
            f"{state.subtensor_shape}"
        )

    # (1) Forecast the temporal vector and the subtensor (Eq. 19-20).
    u_forecast = state.hw.forecast_one_step()
    prediction = kruskal_to_tensor(state.non_temporal, weights=u_forecast)

    # (2) Estimate outliers against the forecast (Eq. 21), then advance the
    #     error scale (Eq. 22) in one fused pass over the shared residual —
    #     outliers are judged against the *previous* scale, which is
    #     SOFIA's robustness tweak.
    outliers, state.sigma = robust_step(
        y,
        prediction,
        state.sigma,
        m,
        k=config.huber_k,
        phi=config.phi,
        ck=config.biweight_c,
    )

    # (3) Gradient steps on the factors (Eq. 24) and the temporal vector
    #     (Eq. 25), both evaluated at the previous factors.
    residual = np.where(m, y - outliers - prediction, 0.0)
    new_factors = factor_gradient_step(
        residual,
        state.non_temporal,
        u_forecast,
        config.mu,
        normalize=config.step_normalization == "lipschitz",
    )
    u_new = temporal_gradient_step(
        residual,
        state.non_temporal,
        u_forecast,
        state.previous_vector,
        state.season_vector,
        config,
    )
    state.non_temporal = new_factors

    # (4) Advance the Holt-Winters components (Eq. 26) and bookkeeping.
    state.hw.update(u_new)
    state.push_temporal(u_new)
    state.t += 1

    completed = kruskal_to_tensor(state.non_temporal, weights=u_new)
    return SofiaStep(
        completed=completed,
        outliers=outliers,
        prediction=prediction,
        temporal_forecast=u_forecast,
        temporal_vector=u_new,
    )
