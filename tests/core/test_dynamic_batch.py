"""Parity suite for the mini-batch dynamic engine (``dynamic_step_batch``).

Pins the ``step_batch`` trajectory to the sequential ``step`` trajectory:
``B = 1`` must be bit-identical, and ``B in {4, 16}`` must stay within the
documented mini-batch tolerance (factors frozen at the batch boundary and
multi-step HW forecasts introduce an ``O(B mu)`` within-batch deviation;
see ``dynamic_step_batch``).
"""

import numpy as np
import pytest

from repro.core import Sofia, SofiaConfig, robust_step, robust_step_batch
from repro.exceptions import ShapeError
from repro.streams import CorruptionSpec, corrupt
from tests.core.conftest import make_seasonal_stream

#: Documented mini-batch tolerances for B in {4, 16} on the corrupted
#: seasonal stream below (30% missing, 10% outlier steps, baseline
#: per-step NRE ~0.085): per-step NRE within 0.08 absolute of the
#: sequential trajectory, mean NRE within 0.015, factors within 10%
#: relative, forecasts within 8% relative.  Measured deviations are
#: roughly half of each bound (e.g. max per-step NRE diff 0.042 at
#: B=16); the bounds leave ~2x headroom for platform variation.
NRE_STEP_TOL = 8e-2
NRE_MEAN_TOL = 1.5e-2
FACTOR_REL_TOL = 1e-1
FORECAST_REL_TOL = 8e-2


def _config(rank=3, period=12, **kwargs):
    return SofiaConfig(
        rank=rank,
        period=period,
        lambda1=0.1,
        lambda2=0.1,
        max_outer_iters=40,
        tol=1e-5,
        **kwargs,
    )


@pytest.fixture(scope="module")
def stream():
    tensor, _, _ = make_seasonal_stream(
        dims=(12, 10), rank=3, period=12, n_steps=120, seed=7
    )
    corrupted = corrupt(tensor, CorruptionSpec(30, 10, 3), seed=1)
    return tensor, corrupted.observed, corrupted.mask


def _sequential_run(stream, config, startup, n_steps):
    tensor, observed, mask = stream
    sofia = Sofia(config)
    sofia.initialize(
        [observed[..., t] for t in range(startup)],
        [mask[..., t] for t in range(startup)],
    )
    steps = [
        sofia.step(observed[..., t], mask[..., t])
        for t in range(startup, n_steps)
    ]
    return sofia, steps


def _batched_run(stream, config, startup, n_steps, batch):
    tensor, observed, mask = stream
    sofia = Sofia(config)
    sofia.initialize(
        [observed[..., t] for t in range(startup)],
        [mask[..., t] for t in range(startup)],
    )
    steps = []
    t = startup
    while t < n_steps:
        stop = min(t + batch, n_steps)
        steps.extend(
            sofia.step_batch(
                np.moveaxis(observed[..., t:stop], -1, 0),
                np.moveaxis(mask[..., t:stop], -1, 0),
            )
        )
        t = stop
    return sofia, steps


def _nre_series(steps, tensor, startup):
    return np.array(
        [
            np.linalg.norm(s.completed - tensor[..., startup + i])
            / np.linalg.norm(tensor[..., startup + i])
            for i, s in enumerate(steps)
        ]
    )


class TestBatchOfOneIsBitIdentical:
    def test_full_trajectory_state_and_outputs(self, stream):
        config = _config()
        startup = config.init_steps
        seq, seq_steps = _sequential_run(stream, config, startup, 90)
        bat, bat_steps = _batched_run(stream, config, startup, 90, batch=1)
        for s, b in zip(seq_steps, bat_steps):
            np.testing.assert_array_equal(s.completed, b.completed)
            np.testing.assert_array_equal(s.outliers, b.outliers)
            np.testing.assert_array_equal(s.prediction, b.prediction)
            np.testing.assert_array_equal(
                s.temporal_forecast, b.temporal_forecast
            )
            np.testing.assert_array_equal(
                s.temporal_vector, b.temporal_vector
            )
        for f_seq, f_bat in zip(
            seq.state.non_temporal, bat.state.non_temporal
        ):
            np.testing.assert_array_equal(f_seq, f_bat)
        np.testing.assert_array_equal(seq.state.sigma, bat.state.sigma)
        np.testing.assert_array_equal(
            seq.state.temporal_buffer, bat.state.temporal_buffer
        )
        np.testing.assert_array_equal(
            seq.forecast(24), bat.forecast(24)
        )


class TestMiniBatchTolerance:
    @pytest.mark.parametrize("batch", [4, 16])
    def test_trajectory_within_documented_tolerance(self, stream, batch):
        tensor = stream[0]
        config = _config()
        startup = config.init_steps
        seq, seq_steps = _sequential_run(stream, config, startup, 120)
        bat, bat_steps = _batched_run(stream, config, startup, 120, batch)
        assert len(bat_steps) == len(seq_steps)

        nre_seq = _nre_series(seq_steps, tensor, startup)
        nre_bat = _nre_series(bat_steps, tensor, startup)
        assert np.max(np.abs(nre_seq - nre_bat)) < NRE_STEP_TOL
        assert abs(nre_seq.mean() - nre_bat.mean()) < NRE_MEAN_TOL

        for f_seq, f_bat in zip(
            seq.state.non_temporal, bat.state.non_temporal
        ):
            scale = max(float(np.max(np.abs(f_seq))), 1e-12)
            assert np.max(np.abs(f_seq - f_bat)) / scale < FACTOR_REL_TOL

        fc_seq = seq.forecast(24)
        fc_bat = bat.forecast(24)
        rel = np.linalg.norm(fc_seq - fc_bat) / np.linalg.norm(fc_seq)
        assert rel < FORECAST_REL_TOL

    def test_ragged_final_chunk(self, stream):
        # 78 live steps do not divide by 16: the final short chunk must
        # be consumed and scored like any other.
        config = _config()
        startup = config.init_steps
        _, steps = _batched_run(stream, config, startup, startup + 78, 16)
        assert len(steps) == 78


class TestStepBatchValidation:
    @pytest.fixture()
    def sofia(self, stream):
        _, observed, mask = stream
        config = _config()
        s = Sofia(config)
        s.initialize(
            [observed[..., t] for t in range(config.init_steps)],
            [mask[..., t] for t in range(config.init_steps)],
        )
        return s

    def test_empty_batch_rejected(self, sofia):
        with pytest.raises(ShapeError, match="at least one"):
            sofia.step_batch(np.empty((0, 12, 10)))

    def test_wrong_subtensor_shape_rejected(self, sofia):
        with pytest.raises(ShapeError, match="does not match"):
            sofia.step_batch(np.zeros((2, 5, 10)))

    def test_single_subtensor_without_batch_axis_rejected(self, sofia):
        with pytest.raises(ShapeError):
            sofia.step_batch(np.zeros((12,)))

    def test_mask_shape_mismatch_rejected(self, sofia):
        with pytest.raises(ShapeError):
            sofia.step_batch(
                np.zeros((2, 12, 10)), np.ones((3, 12, 10), dtype=bool)
            )

    def test_none_masks_mean_fully_observed(self, sofia, stream):
        tensor, observed, _ = stream
        t0 = sofia.config.init_steps
        explicit = Sofia(sofia.config)
        explicit.initialize(
            [observed[..., t] for t in range(t0)],
            [stream[2][..., t] for t in range(t0)],
        )
        got = sofia.step_batch(np.moveaxis(tensor[..., t0:t0 + 3], -1, 0))
        assert len(got) == 3


class TestRunChunking:
    def test_run_honours_config_batch_size(self, stream):
        tensor, observed, mask = stream
        config = _config(batch_size=8)
        startup = config.init_steps

        chunked = Sofia(config)
        chunked.initialize(
            [observed[..., t] for t in range(startup)],
            [mask[..., t] for t in range(startup)],
        )
        via_run = chunked.run(
            (observed[..., t], mask[..., t]) for t in range(startup, 100)
        )

        manual, manual_steps = _batched_run(
            stream, config, startup, 100, batch=8
        )
        assert len(via_run) == len(manual_steps)
        for a, b in zip(via_run, manual_steps):
            np.testing.assert_array_equal(a.completed, b.completed)


class TestRobustStepBatch:
    def test_single_step_matches_sequential_exactly(self):
        rng = np.random.default_rng(3)
        y = rng.normal(size=(6, 5))
        yhat = rng.normal(size=(6, 5))
        sigma = rng.uniform(0.5, 2.0, size=(6, 5))
        mask = rng.random((6, 5)) > 0.3
        out_seq, sg_seq = robust_step(y, yhat, sigma, mask, phi=0.05)
        out_bat, sg_bat = robust_step_batch(
            y[None], yhat[None], sigma, mask[None], phi=0.05
        )
        np.testing.assert_allclose(out_bat[0], out_seq, rtol=0, atol=1e-15)
        np.testing.assert_allclose(sg_bat, sg_seq, rtol=1e-12)

    def test_unobserved_entries_keep_scale_and_carry_no_outlier(self):
        rng = np.random.default_rng(4)
        y = rng.normal(size=(3, 4, 4))
        yhat = rng.normal(size=(3, 4, 4))
        sigma = rng.uniform(0.5, 1.0, size=(4, 4))
        mask = np.zeros((3, 4, 4), dtype=bool)
        outliers, new_sigma = robust_step_batch(y, yhat, sigma, mask)
        np.testing.assert_array_equal(outliers, 0.0)
        np.testing.assert_allclose(new_sigma, sigma, rtol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            robust_step_batch(
                np.zeros((2, 3)),
                np.zeros((2, 3)),
                np.zeros((2, 3)),
                np.ones((2, 3), dtype=bool),
            )
