"""Bursty traffic: slices arrive in tight bursts separated by silence.

The data itself is benign — a well-behaved seasonal stream with light
random missingness — because this scenario stresses the *serving
path*, not the model.  Traffic comes in bursts of eight back-to-back
slices at ten times the mean rate, then goes quiet for the rest of
each sixteen-slice cycle.  The micro-batching scheduler should absorb
each burst into a handful of fused flushes; the replay harness watches
whether p95/p99 ingest latency stays bounded while it does.  Offline,
the scenario doubles as a sanity check that accuracy is unaffected by
batch-size choices made for throughput.
"""

from __future__ import annotations

from repro.scenarios.arrival import BurstyArrival
from repro.scenarios.base import (
    GeneratorSpec,
    QualityEnvelope,
    scenario_from_module,
)
from repro.streams.corruption import (
    CorruptionSchedule,
    CorruptionSpec,
    SchedulePhase,
)

SCENARIO = scenario_from_module(
    __doc__,
    name="bursty_arrival",
    generator=GeneratorSpec(
        dims=(8, 6),
        rank=3,
        period=10,
        n_steps=200,
        noise=0.02,
    ),
    schedule=CorruptionSchedule(
        phases=(SchedulePhase(0, None, CorruptionSpec(10, 0, 0)),)
    ),
    envelope=QualityEnvelope(max_rae=0.30, max_final_nre=0.30, max_afe=0.60),
    arrival=BurstyArrival(burst=8, cycle=16, burst_factor=10.0),
    n_sessions=4,
)
