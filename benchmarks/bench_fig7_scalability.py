"""Fig. 7: linear scalability of the dynamic updates.

Reports total dynamic-update time against entries per subtensor (7a) and
cumulative time against time steps (7b), with the R² of the linear fits
(Lemma 2 predicts straight lines).  The benchmark times one dynamic step
at the largest sweep size.
"""

import numpy as np
from conftest import report

from repro.baselines import SofiaImputer
from repro.core import SofiaConfig
from repro.datasets import scalability_stream
from repro.experiments import format_table


def test_bench_fig7(benchmark, scalability_result):
    result = scalability_result
    rows = [
        [int(entries), seconds]
        for entries, seconds in zip(
            result.entries_per_step, result.total_seconds
        )
    ]
    report(
        format_table(
            ["Entries per subtensor", "Total dynamic time (s)"],
            rows,
            title="Fig. 7(a): running time vs entries per time step",
        )
    )
    quarters = np.linspace(
        0, len(result.cumulative_steps) - 1, 5
    ).round().astype(int)
    report(
        format_table(
            ["Steps processed", "Cumulative time (s)"],
            [
                [int(result.cumulative_steps[i]), result.cumulative_seconds[i]]
                for i in quarters
            ],
            title="Fig. 7(b): cumulative time vs number of time steps",
        )
    )
    report(
        f"Linear-fit R^2: vs entries {result.entries_r2:.4f}, "
        f"vs steps {result.steps_r2:.4f} (Lemma 2 predicts ~1.0)"
    )
    assert result.entries_r2 > 0.9
    assert result.steps_r2 > 0.99

    # Benchmark one dynamic step at the largest size.
    stream = scalability_stream(100, 50, 40, period=10, seed=0)
    algo = SofiaImputer(
        SofiaConfig(rank=5, period=10, lambda1=0.1, lambda2=0.1,
                    max_outer_iters=50, tol=1e-4)
    )
    mask = np.ones(stream.data.shape[:-1], dtype=bool)
    algo.initialize(
        [stream.data[..., t] for t in range(30)], [mask] * 30
    )
    y = stream.data[..., 30]
    out = benchmark(lambda: algo.step(y, mask))
    assert out.shape == (100, 50)
