"""Fig. 4: running average error bars across the experiment grid.

Reports the RAE of every algorithm per (dataset, setting) plus SOFIA's
improvement over the second-best — the paper's "up to 76% lower" claim —
and asserts the ordering.  The benchmark times a full RAE evaluation of
one pre-recorded series.
"""

from conftest import report

from repro.experiments import SMALL_SCALE, format_table
from repro.streams.metrics import RunningAverage


def test_bench_fig4(benchmark, imputation_grid):
    grid = imputation_grid
    datasets = sorted({c.dataset for c in grid.cells})
    algorithms = sorted({c.algorithm for c in grid.cells})

    rows = []
    improvements = []
    for dataset in datasets:
        for setting in SMALL_SCALE.settings:
            cells = {
                c.algorithm: c
                for c in grid.cells
                if c.dataset == dataset and c.setting == setting
            }
            row = [dataset, setting.label] + [
                cells[a].rae for a in algorithms
            ]
            sofia = cells["SOFIA"].rae
            second = min(
                c.rae for name, c in cells.items() if name != "SOFIA"
            )
            improvement = 100.0 * (1.0 - sofia / second)
            improvements.append(improvement)
            row.append(f"{improvement:.0f}%")
            rows.append(row)
    report(
        format_table(
            ["Dataset", "Setting"] + algorithms + ["SOFIA vs 2nd"],
            rows,
            title="Fig. 4: running average error (RAE), small preset",
        )
    )
    report(
        f"SOFIA improvement over second-best: max {max(improvements):.0f}% "
        f"(paper reports up to 76%)"
    )

    # Paper shape: SOFIA strictly better everywhere, substantially so at
    # the harsher settings.
    assert min(improvements) > 0.0
    assert max(improvements) > 50.0

    series = grid.cells[0].nre_series

    def compute_rae():
        acc = RunningAverage()
        for v in series:
            acc.add(v)
        return acc.mean

    value = benchmark(compute_rae)
    assert value > 0.0
