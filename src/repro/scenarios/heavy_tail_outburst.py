"""Heavy-tail outburst: a window of dense, extreme outliers.

The stream runs under the paper's mild (10, 5, 2) corruption until a
three-season window where 30% of observed entries are hit with
outliers at five times the clean maximum — a heavy-tailed error burst
like a miscalibrated upstream pipeline flooding garbage.  This is the
setting SOFIA's Huber/biweight robust losses exist for: the robust
weights should clamp the burst's influence so the factors barely move,
and accuracy should recover to pre-burst levels once it passes.  The
envelope therefore bounds final NRE tightly relative to the burst's
severity.
"""

from __future__ import annotations

from repro.scenarios.base import (
    GeneratorSpec,
    QualityEnvelope,
    scenario_from_module,
)
from repro.streams.corruption import (
    CorruptionSchedule,
    CorruptionSpec,
    SchedulePhase,
)

SCENARIO = scenario_from_module(
    __doc__,
    name="heavy_tail_outburst",
    generator=GeneratorSpec(
        dims=(8, 6),
        rank=3,
        period=10,
        n_steps=200,
        noise=0.02,
    ),
    schedule=CorruptionSchedule(
        phases=(
            SchedulePhase(0, 100, CorruptionSpec(10, 5, 2)),
            SchedulePhase(100, 130, CorruptionSpec(10, 30, 5)),
            SchedulePhase(130, None, CorruptionSpec(10, 5, 2)),
        )
    ),
    envelope=QualityEnvelope(max_rae=0.50, max_final_nre=0.50, max_afe=0.90),
    n_sessions=2,
)
