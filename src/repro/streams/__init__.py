"""Streaming infrastructure: corruption, streams, metrics, runners.

Implements the paper's experimental protocol (§VI-A): the ``(X, Y, Z)``
corruption model, the tensor-stream abstraction with a start-up window,
and the NRE/RAE/AFE/ART metrics with timing that excludes initialization.
"""

from repro.streams.corruption import (
    PAPER_SETTINGS,
    BlackoutWindow,
    CorruptedTensor,
    CorruptionSchedule,
    CorruptionSpec,
    SchedulePhase,
    ScheduledCorruption,
    blackout_windows_mask,
    corrupt,
    corrupt_schedule,
)
from repro.streams.metrics import (
    RunningAverage,
    average_forecast_error,
    normalized_residual_error,
)
from repro.streams.runner import (
    ForecastResult,
    ImputationResult,
    StreamingForecasterProtocol,
    StreamingImputerProtocol,
    run_forecasting,
    run_imputation,
)
from repro.streams.stream import TensorStream
from repro.streams.structured import blackout_mask, dropped_steps_mask

__all__ = [
    "PAPER_SETTINGS",
    "BlackoutWindow",
    "CorruptedTensor",
    "CorruptionSchedule",
    "CorruptionSpec",
    "ForecastResult",
    "ImputationResult",
    "RunningAverage",
    "SchedulePhase",
    "ScheduledCorruption",
    "StreamingForecasterProtocol",
    "StreamingImputerProtocol",
    "TensorStream",
    "average_forecast_error",
    "blackout_mask",
    "blackout_windows_mask",
    "corrupt",
    "corrupt_schedule",
    "dropped_steps_mask",
    "normalized_residual_error",
    "run_forecasting",
    "run_imputation",
]
