"""HTTP tests: a live ThreadingHTTPServer driven by HTTPServingClient."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.exceptions import (
    ConfigError,
    SessionError,
    SessionExistsError,
    SessionNotFoundError,
)
from repro.serving import HTTPServingClient, SessionManager
from repro.serving.gateway import main as serve_main
from repro.serving.gateway import serve

from tests.serving.conftest import CONFIG_KWARGS, make_session_stream


@pytest.fixture
def live_gateway(checkpoint):
    """(client, manager) against a gateway on an ephemeral port."""
    manager = SessionManager(max_batch=4, max_latency_s=0.01, workers=2)
    server = serve(manager, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = HTTPServingClient(f"http://127.0.0.1:{server.port}")
    try:
        yield client, manager
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        manager.close()


class TestRoutes:
    def test_healthz_and_metrics(self, live_gateway):
        client, _ = live_gateway
        assert client.healthz()["status"] == "ok"
        metrics = client.metrics()
        assert metrics["sessions_created"] == 0

    def test_full_session_lifecycle_over_http(self, live_gateway, tmp_path):
        client, manager = live_gateway
        slices, masks = make_session_stream(seed=21, n_steps=16)

        info = client.create_session("taxi", dict(CONFIG_KWARGS))
        assert info["status"] == "warming"
        assert client.list_sessions() == ["taxi"]

        for t in range(16):
            ack = client.ingest("taxi", slices[t], masks[t])
            assert ack.session_id == "taxi"
            assert ack.seq == t
        manager.drain("taxi")

        info = client.session_info("taxi")
        assert info["status"] == "ready"
        assert info["consumed"] == 16

        results = client.results("taxi", since=12)
        assert [r.seq for r in results] == [12, 13, 14, 15]
        assert results[0].completed.shape == tuple(
            info["subtensor_shape"]
        )

        imputed = client.impute("taxi", slices[0], masks[0])
        np.testing.assert_allclose(
            imputed.completed[masks[0]], slices[0][masks[0]]
        )
        assert imputed.lower is None and imputed.upper is None

        forecast = client.forecast("taxi", 3)
        assert forecast.horizon == 3
        assert forecast.forecast.shape == (
            3,
            *info["subtensor_shape"],
        )

        saved = client.close_session(
            "taxi", checkpoint_path=str(tmp_path / "taxi.npz")
        )
        assert saved is not None
        assert client.list_sessions() == []

    def test_checkpoint_session_over_http(self, live_gateway, checkpoint):
        client, manager = live_gateway
        info = client.create_session("warm", checkpoint=str(checkpoint))
        assert info["status"] == "ready"
        slices, masks = make_session_stream(seed=22, n_steps=4)
        for t in range(4):
            client.ingest("warm", slices[t], masks[t])
        manager.drain("warm")
        assert len(client.results("warm")) == 4


class TestVersioning:
    def _raw(self, client, path):
        """(status, headers, body) of an unredirected raw GET."""
        url = client._base.removesuffix("/v1") + path

        class NoRedirect(urllib.request.HTTPRedirectHandler):
            def redirect_request(self, *args, **kwargs):
                return None

        opener = urllib.request.build_opener(NoRedirect)
        try:
            with opener.open(url, timeout=10) as response:
                return response.status, response.headers, response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.headers, exc.read()

    def test_unversioned_path_redirects_308(self, live_gateway):
        client, _ = live_gateway
        status, headers, _ = self._raw(client, "/healthz")
        assert status == 308
        assert headers["Location"] == "/v1/healthz"

    def test_redirect_preserves_query(self, live_gateway):
        client, _ = live_gateway
        status, headers, _ = self._raw(
            client, "/sessions/x/forecast?horizon=3"
        )
        assert status == 308
        assert headers["Location"] == "/v1/sessions/x/forecast?horizon=3"

    def test_v1_path_serves_directly(self, live_gateway):
        client, _ = live_gateway
        status, _, body = self._raw(client, "/v1/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"


class TestHTTPErrors:
    def test_unknown_session_is_404(self, live_gateway):
        client, _ = live_gateway
        with pytest.raises(SessionNotFoundError):
            client.session_info("ghost")

    def test_duplicate_session_is_409(self, live_gateway):
        client, _ = live_gateway
        client.create_session("dup", dict(CONFIG_KWARGS))
        with pytest.raises(SessionExistsError):
            client.create_session("dup", dict(CONFIG_KWARGS))

    def test_bad_config_is_400(self, live_gateway):
        client, _ = live_gateway
        with pytest.raises(ConfigError, match="rank"):
            client.create_session("bad", {"rank": 0, "period": 4})

    def test_sync_op_on_warming_session_is_409(self, live_gateway):
        client, _ = live_gateway
        client.create_session("cold", dict(CONFIG_KWARGS))
        with pytest.raises(SessionError, match="warming"):
            client.forecast("cold", 2)

    def test_unknown_route_is_404(self, live_gateway):
        client, _ = live_gateway
        with pytest.raises(SessionNotFoundError, match="no route"):
            client._request("GET", "/definitely/not/a/route")

    def test_error_envelope_shape(self, live_gateway):
        client, _ = live_gateway
        url = f"{client._base}/sessions/ghost"
        try:
            urllib.request.urlopen(url, timeout=10)
            raise AssertionError("expected a 404")
        except urllib.error.HTTPError as exc:
            envelope = json.loads(exc.read())["error"]
        assert envelope["type"] == "SessionNotFoundError"
        assert "ghost" in envelope["message"]
        assert envelope["session"] == "ghost"

    def test_error_envelope_session_null_when_unnamed(self, live_gateway):
        client, _ = live_gateway
        url = f"{client._base}/sessions"
        request = urllib.request.Request(
            url,
            data=b'{"config": {}}',
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            urllib.request.urlopen(request, timeout=10)
            raise AssertionError("expected a 400")
        except urllib.error.HTTPError as exc:
            envelope = json.loads(exc.read())["error"]
        assert envelope["session"] is None


class TestCLI:
    def test_main_help_mentions_knobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            serve_main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in (
            "--max-resident",
            "--max-batch",
            "--max-latency-ms",
            "--workers",
            "--worker-kind",
            "--no-fuse-sessions",
            "--max-fused-sessions",
            "--checkpoint-dir",
        ):
            assert flag in out
