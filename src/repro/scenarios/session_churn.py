"""Session churn: more concurrent sessions than the residency cap.

The data is benign — a well-behaved seasonal stream with light random
missingness — because this scenario stresses the *eviction tier*, not
the model.  Six sessions stream concurrently into a serving runtime
capped at two resident models, so every flush cycle spills cold
sessions to disk and rehydrates them on their next batch.  The
``.npz`` round-trip is bit-exact, so the quality envelope must hold
exactly as it would uncapped; the replay harness watches whether
p95/p99 ingest latency stays bounded while the checkpoint store
thrashes.  This is the same spill/rehydrate path shard failover
rebuilds dead sessions from, so keeping it hot under load is what
makes the self-healing tier trustworthy.
"""

from __future__ import annotations

from repro.scenarios.base import (
    GeneratorSpec,
    QualityEnvelope,
    scenario_from_module,
)
from repro.streams.corruption import (
    CorruptionSchedule,
    CorruptionSpec,
    SchedulePhase,
)

SCENARIO = scenario_from_module(
    __doc__,
    name="session_churn",
    generator=GeneratorSpec(
        dims=(8, 6),
        rank=3,
        period=10,
        n_steps=200,
        noise=0.02,
    ),
    schedule=CorruptionSchedule(
        phases=(SchedulePhase(0, None, CorruptionSpec(10, 0, 0)),)
    ),
    envelope=QualityEnvelope(max_rae=0.30, max_final_nre=0.30, max_afe=0.60),
    n_sessions=6,
    serving={"max_resident": 2},
)
