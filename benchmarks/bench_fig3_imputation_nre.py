"""Fig. 3: per-step imputation NRE across datasets, settings, algorithms.

Reports the downsampled NRE curves for every (dataset, setting) cell of
the grid and asserts the paper's shape: SOFIA is the most accurate in
every cell.  The benchmark times one SOFIA dynamic step on the Chicago
stand-in.
"""

from conftest import report

from repro.baselines import SofiaImputer
from repro.experiments import SMALL_SCALE, dataset_stream, format_series
from repro.experiments.imputation import sofia_config_for_rank
from repro.streams import CorruptionSpec, TensorStream, corrupt


def test_bench_fig3(benchmark, imputation_grid):
    grid = imputation_grid
    lines = ["Fig. 3: per-step NRE (downsampled), small preset"]
    datasets = sorted({c.dataset for c in grid.cells})
    for dataset in datasets:
        for setting in SMALL_SCALE.settings:
            lines.append(f"- {dataset} {setting.label}")
            for cell in grid.cells:
                if cell.dataset == dataset and cell.setting == setting:
                    lines.append(
                        "  "
                        + format_series(f"{cell.algorithm:10s}", cell.nre_series)
                    )
    report("\n".join(lines))

    # Paper shape: SOFIA most accurate in every dataset x setting cell.
    winners = grid.winners()
    assert all(w == "SOFIA" for w in winners.values()), winners

    # Benchmark one dynamic step (the Lemma-2 kernel).
    ds = dataset_stream("chicago_taxi", SMALL_SCALE)
    corrupted = corrupt(ds.data, CorruptionSpec(70, 20, 5), seed=0)
    observed = TensorStream(
        data=corrupted.observed, mask=corrupted.mask, period=ds.period
    )
    algo = SofiaImputer(
        sofia_config_for_rank(SMALL_SCALE.ranks["chicago_taxi"], ds.period)
    )
    algo.initialize(*observed.startup(3 * ds.period))
    y = observed.subtensor(3 * ds.period)
    mask = observed.mask_at(3 * ds.period)
    out = benchmark(lambda: algo.step(y, mask))
    assert out.shape == observed.subtensor_shape
