"""Rank selection by running-average-error grid search (paper §VI-A).

The paper adjusts each method's rank over a grid "varying from 4 to 20
based on running average error"; this utility reproduces that protocol
for SOFIA: run the full pipeline on a validation prefix of the stream at
each candidate rank and keep the one with the lowest RAE against the
observed entries of held-out steps (ground truth is not required —
scoring masks a fraction of the observed entries).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.config import SofiaConfig
from repro.core.sofia import Sofia
from repro.exceptions import ShapeError
from repro.streams.stream import TensorStream
from repro.tensor.random import as_generator

__all__ = ["RankSelectionResult", "select_rank"]


@dataclass(frozen=True)
class RankSelectionResult:
    """Outcome of the rank grid search."""

    best_rank: int
    scores: dict[int, float]


def select_rank(
    observed: TensorStream,
    base_config: SofiaConfig,
    *,
    candidate_ranks: Sequence[int] = (4, 6, 8, 10, 12, 16, 20),
    validation_fraction: float = 0.2,
    seed: int | np.random.Generator | None = 0,
) -> RankSelectionResult:
    """Pick the CP rank that best predicts held-out observed entries.

    Parameters
    ----------
    observed:
        The (corrupted) stream; no ground truth needed.
    base_config:
        Configuration template; only ``rank`` is varied.
    candidate_ranks:
        The grid (the paper's 4..20 by default).
    validation_fraction:
        Fraction of observed entries per dynamic step that are hidden
        from the model and used for scoring.
    seed:
        Seed for the validation split.

    Returns
    -------
    RankSelectionResult
        The winning rank and the per-rank validation RAE.
    """
    if not 0.0 < validation_fraction < 1.0:
        raise ShapeError(
            f"validation_fraction must be in (0, 1), got {validation_fraction}"
        )
    startup = base_config.init_steps
    if observed.n_steps <= startup + 2:
        raise ShapeError(
            f"stream of {observed.n_steps} steps too short for start-up "
            f"{startup}"
        )
    rng = as_generator(seed)
    # One fixed validation split shared by all candidate ranks.
    holdout = (
        rng.random(observed.data.shape) < validation_fraction
    ) & observed.mask
    holdout[..., :startup] = False

    scores: dict[int, float] = {}
    for rank in candidate_ranks:
        config = base_config.with_updates(rank=rank)
        sofia = Sofia(config)
        subtensors, masks = observed.startup(startup)
        sofia.initialize(subtensors, masks)
        errors = []
        for t, y_t, mask_t in observed.iter_from(startup):
            visible = mask_t & ~holdout[..., t]
            step = sofia.step(y_t, visible)
            held = holdout[..., t]
            if held.any():
                denominator = float(np.linalg.norm(y_t[held]))
                residual = float(
                    np.linalg.norm((step.completed - y_t)[held])
                )
                errors.append(
                    residual / denominator if denominator > 0 else residual
                )
        scores[rank] = float(np.mean(errors)) if errors else np.inf
    best_rank = min(scores, key=scores.get)
    return RankSelectionResult(best_rank=best_rank, scores=scores)
