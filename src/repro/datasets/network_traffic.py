"""Network Traffic stand-in (paper: 23 x 23 x 2000, m = 168, hourly).

The paper builds a (source router, destination router, time) tensor from
an intra-domain traffic-matrix dataset and applies ``log2(x + 1)`` to
counter the heavy-tailed scale of traffic volumes.  This generator
reproduces that structure: origin/destination gravity factors, a daily
profile with a weekday/weekend split, multiplicative log-normal noise,
and the same log transform.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, DatasetInfo, register_dataset
from repro.tensor.random import as_generator

__all__ = ["NETWORK_TRAFFIC_INFO", "generate_network_traffic"]

NETWORK_TRAFFIC_INFO = DatasetInfo(
    name="network_traffic",
    title="Network Traffic",
    paper_shape=(23, 23, 2000),
    period=168,
    granularity="hourly",
    rank=5,
    modes=("source", "destination", "time"),
)


@register_dataset(NETWORK_TRAFFIC_INFO)
def generate_network_traffic(
    *,
    n_routers: int = 12,
    period: int = 24,
    n_seasons: int = 9,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """Generate the traffic-matrix-style (src, dst, time) stream.

    Parameters
    ----------
    n_routers:
        Routers per side (23 in the paper).
    period:
        Steps per season.  The paper uses a weekly period of 168 hours;
        the scaled default uses a daily period of 24.
    n_seasons:
        Number of seasons in the stream.
    seed:
        Seed or generator.
    """
    rng = as_generator(seed)
    n_steps = period * n_seasons
    t = np.arange(n_steps)
    day_fraction = (t % period) / period

    # Gravity model: traffic between routers scales with the product of
    # their sizes (log-normal, heavy-tailed).
    sizes = rng.lognormal(mean=0.0, sigma=0.8, size=n_routers)
    gravity = np.outer(sizes, sizes)
    np.fill_diagonal(gravity, gravity.diagonal() * 0.1)  # little self-traffic

    # Diurnal pattern: business-hours hump, plus a slower weekly-like
    # modulation so consecutive seasons are similar but not identical.
    diurnal = 1.0 + 0.8 * np.sin(2 * np.pi * (day_fraction - 0.3))
    diurnal = np.clip(diurnal, 0.05, None)
    slow = 1.0 + 0.15 * np.sin(2 * np.pi * t / (period * n_seasons / 2))
    profile = diurnal * slow

    volume = (
        gravity[:, :, None]
        * profile[None, None, :]
        * rng.lognormal(mean=0.0, sigma=0.25, size=(n_routers, n_routers, n_steps))
    )
    data = np.log2(volume + 1.0)
    return Dataset(info=NETWORK_TRAFFIC_INFO, data=data, period=period)
