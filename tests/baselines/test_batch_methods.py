"""Unit tests for the batch baselines: vanilla ALS and CP-WOPT."""

import numpy as np
import pytest

from repro.baselines import cp_wopt, cp_wopt_gradient, vanilla_als
from repro.exceptions import ShapeError
from repro.tensor import kruskal_to_tensor, random_factors, relative_error


@pytest.fixture(scope="module")
def low_rank():
    factors = random_factors((8, 7, 15), 2, seed=0)
    tensor = kruskal_to_tensor(factors)
    mask = np.random.default_rng(1).random(tensor.shape) > 0.3
    return tensor, mask


class TestVanillaAls:
    def test_completion(self, low_rank):
        tensor, mask = low_rank
        result = vanilla_als(tensor, mask, 2, seed=3)
        assert relative_error(result.completed, tensor) < 1e-2

    def test_reproducible(self, low_rank):
        tensor, mask = low_rank
        r1 = vanilla_als(tensor, mask, 2, seed=5, max_iters=10)
        r2 = vanilla_als(tensor, mask, 2, seed=5, max_iters=10)
        np.testing.assert_array_equal(r1.completed, r2.completed)

    def test_rank_one(self, low_rank):
        tensor, mask = low_rank
        result = vanilla_als(tensor, mask, 1, max_iters=50)
        # rank-1 can't fully fit a rank-2 tensor
        assert 0.0 < result.fitness < 1.0


class TestCpWoptGradient:
    def test_matches_finite_differences(self):
        rng = np.random.default_rng(2)
        factors = random_factors((3, 4, 5), 2, seed=6)
        tensor = kruskal_to_tensor(random_factors((3, 4, 5), 2, seed=7))
        mask = rng.random(tensor.shape) > 0.4
        loss, grads = cp_wopt_gradient(tensor, mask, factors)
        eps = 1e-6
        for mode in range(3):
            for _ in range(5):
                i = rng.integers(factors[mode].shape[0])
                r = rng.integers(2)
                bumped = [f.copy() for f in factors]
                bumped[mode][i, r] += eps
                loss2, _ = cp_wopt_gradient(tensor, mask, bumped)
                fd = (loss2 - loss) / eps
                assert grads[mode][i, r] == pytest.approx(fd, rel=1e-3, abs=1e-6)

    def test_zero_at_exact_fit(self):
        factors = random_factors((4, 4, 4), 2, seed=8)
        tensor = kruskal_to_tensor(factors)
        mask = np.ones(tensor.shape, dtype=bool)
        loss, grads = cp_wopt_gradient(tensor, mask, factors)
        assert loss == pytest.approx(0.0, abs=1e-18)
        for g in grads:
            np.testing.assert_allclose(g, 0.0, atol=1e-12)


class TestCpWopt:
    def test_completion(self, low_rank):
        tensor, mask = low_rank
        result = cp_wopt(tensor, mask, 2, seed=9)
        assert relative_error(result.completed, tensor) < 0.05

    def test_loss_reported(self, low_rank):
        tensor, mask = low_rank
        result = cp_wopt(tensor, mask, 2, seed=10)
        residual = np.where(mask, tensor - result.completed, 0.0)
        assert result.loss == pytest.approx(0.5 * np.sum(residual**2), rel=1e-6)

    def test_1d_rejected(self):
        with pytest.raises(ShapeError):
            cp_wopt(np.ones(5), np.ones(5, dtype=bool), 2)
