"""Shard router: consistent-hash session placement across gateways.

One ``repro-serve`` gateway scales with cores; a fleet of them scales
with machines.  This module puts a routing tier in front of N backend
gateways so clients keep one URL while sessions spread across the
fleet:

* :class:`HashRing` — consistent hashing with virtual nodes.  The
  ring is a pure function of the shard URL list (stable
  ``blake2b``-based hashing, never Python's salted ``hash``), so every
  router instance built from the same shard list places every session
  identically, and adding a shard moves only ~1/N of the keyspace.
* :class:`ShardRouterServer` — a stdlib ``ThreadingHTTPServer`` that
  proxies the full ``/v1`` surface: session-scoped requests forward to
  the owning shard with status and body relayed verbatim (the
  structured error envelope survives the hop, so
  :class:`~repro.serving.client.HTTPServingClient` raises the same
  exception types through the router as against a bare gateway);
  ``/v1/sessions`` merges the fleet's listings; ``/v1/metrics``
  aggregates per-shard snapshots (:func:`aggregate_snapshots`);
  ``/v1/shards`` exposes the topology.
* **Live migration** — ``POST /v1/sessions/<id>/migrate`` with
  ``{"target": <shard-url>}`` drains the session's pending slices and
  exports its state on the source shard (the gateway's ``export``
  endpoint, backed by
  :meth:`~repro.serving.store.CheckpointStore.export_state`), imports
  it on the target (``import`` /
  :meth:`~repro.serving.store.CheckpointStore.import_state`),
  atomically repoints the session's ring entry, and closes the source
  copy.  The handoff medium is the same versioned checkpoint bytes the
  eviction tier spills, so a migrated session's trajectory is
  bit-identical to an unmigrated one (pinned by
  ``tests/serving/test_shard.py``).  A per-session lock serializes
  proxied requests against the migration, so no request ever lands on
  the source mid-handoff.
* :func:`start_local_cluster` — self-host N backend gateways plus a
  router in one process (what the replay harness's ``--shards`` mode
  and the shard bench use).

``main`` is the ``repro-serve-router`` console entry point::

    repro-serve-router --shard http://10.0.0.1:8349 \\
        --shard http://10.0.0.2:8349 --port 8350

    repro-serve-router --local-shards 2 --port 8350   # demo/CI cluster
"""

from __future__ import annotations

import argparse
import bisect
import hashlib
import json
import re
import threading
import urllib.error
import urllib.request
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import ConfigError
from repro.serving.gateway import API_PREFIX, ServingHTTPServer, serve
from repro.serving.manager import SessionManager
from repro.serving.pool import WORKER_KINDS

__all__ = [
    "HashRing",
    "LocalCluster",
    "ShardRouterServer",
    "aggregate_snapshots",
    "main",
    "serve_router",
    "start_local_cluster",
]

_SESSION_PATH = re.compile(r"^/sessions/(?P<sid>[^/]+)(?:/|$)")

#: Derived metric keys recomputed from the summed counters instead of
#: being summed themselves (a sum of per-shard means is meaningless).
_DERIVED_METRICS = ("mean_batch_size", "mean_fused_sessions")


class HashRing:
    """Consistent-hash ring over shard URLs, with virtual nodes.

    Deterministic given the shard list: placement uses
    :func:`hashlib.blake2b` (Python's builtin ``hash`` is salted per
    process and would scatter sessions differently on every restart).
    Each shard contributes ``replicas`` virtual nodes, which evens out
    the keyspace split; shard list order does not matter.
    """

    def __init__(self, shards, *, replicas: int = 64) -> None:
        cleaned = []
        for shard in shards:
            url = str(shard).rstrip("/")
            if not url.startswith(("http://", "https://")):
                raise ConfigError(
                    f"shard must be an http(s) base URL, got {shard!r}"
                )
            if url not in cleaned:
                cleaned.append(url)
        if not cleaned:
            raise ConfigError("a hash ring needs at least one shard")
        if replicas < 1:
            raise ConfigError(
                f"replicas must be >= 1, got {replicas}"
            )
        self._shards = tuple(cleaned)
        self._replicas = replicas
        points = sorted(
            (self._hash(f"{shard}#{replica}"), shard)
            for shard in self._shards
            for replica in range(replicas)
        )
        self._points = points
        self._keys = [key for key, _ in points]

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(
            key.encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    @property
    def shards(self) -> tuple[str, ...]:
        return self._shards

    @property
    def replicas(self) -> int:
        return self._replicas

    def shard_for(self, session_id: str) -> str:
        """The shard owning ``session_id`` (first point clockwise)."""
        index = bisect.bisect_right(
            self._keys, self._hash(str(session_id))
        ) % len(self._keys)
        return self._points[index][1]


def aggregate_snapshots(per_shard: dict[str, dict]) -> dict:
    """Fold per-shard ``/v1/metrics`` snapshots into one fleet view.

    Plain numeric counters sum; the derived means are recomputed from
    the summed counters; each ``*_latency`` summary merges with exact
    ``count``/``mean_seconds``/``max_seconds`` and *conservative*
    percentiles (the max across shards — an upper bound, which is the
    safe direction for SLO gating).  The raw per-shard snapshots ride
    along under ``"shards"``.
    """
    merged: dict = {}
    latency_keys: set[str] = set()
    for snapshot in per_shard.values():
        for key, value in snapshot.items():
            if isinstance(value, dict):
                if key.endswith("_latency"):
                    latency_keys.add(key)
                continue
            if key in _DERIVED_METRICS:
                continue
            if isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
    batches = merged.get("batches_flushed", 0)
    merged["mean_batch_size"] = (
        merged.get("slices_flushed", 0) / batches if batches else 0.0
    )
    dispatches = merged.get("dispatches", 0)
    dispatched_flushes = (
        dispatches
        - merged.get("fused_dispatches", 0)
        + merged.get("fused_sessions_flushed", 0)
    )
    merged["mean_fused_sessions"] = (
        dispatched_flushes / dispatches if dispatches else 0.0
    )
    for key in sorted(latency_keys):
        summaries = [
            snapshot[key]
            for snapshot in per_shard.values()
            if isinstance(snapshot.get(key), dict)
        ]
        count = sum(s.get("count", 0) for s in summaries)
        total = sum(
            s.get("mean_seconds", 0.0) * s.get("count", 0)
            for s in summaries
        )
        merged[key] = {
            "count": count,
            "mean_seconds": total / count if count else 0.0,
            "max_seconds": max(
                (s.get("max_seconds", 0.0) for s in summaries),
                default=0.0,
            ),
            **{
                quantile: max(
                    (s.get(quantile, 0.0) for s in summaries),
                    default=0.0,
                )
                for quantile in (
                    "p50_seconds",
                    "p95_seconds",
                    "p99_seconds",
                )
            },
        }
    merged["shards"] = dict(per_shard)
    return merged


class _ShardReply(Exception):
    """An upstream (or router-made) response to relay as-is."""

    def __init__(self, status: int, body: bytes) -> None:
        super().__init__(f"HTTP {status}")
        self.status = status
        self.body = body


def _error_body(
    error_type: str, message: str, session_id: str | None
) -> bytes:
    return json.dumps(
        {
            "error": {
                "type": error_type,
                "message": message,
                "session": session_id,
            }
        }
    ).encode("utf-8")


class _RouterHandler(BaseHTTPRequestHandler):
    """Routes one request; placement state lives on the server."""

    server: "ShardRouterServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        self._send(status, json.dumps(payload).encode("utf-8"))

    def _send_redirect(self, location: str) -> None:
        body = json.dumps({"location": location}).encode("utf-8")
        self.send_response(308)
        self.send_header("Location", location)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        path, _, query = self.path.partition("?")
        if path != API_PREFIX and not path.startswith(API_PREFIX + "/"):
            target = API_PREFIX + path + (f"?{query}" if query else "")
            self._send_redirect(target)
            return
        path = path[len(API_PREFIX):]
        try:
            self._route(method, path, query)
        except _ShardReply as reply:
            self._send(reply.status, reply.body)
        except Exception as exc:  # noqa: BLE001 - HTTP boundary
            match = _SESSION_PATH.match(path)
            self._send(
                500,
                _error_body(
                    type(exc).__name__,
                    str(exc),
                    match.group("sid") if match else None,
                ),
            )

    def _route(self, method: str, path: str, query: str) -> None:
        router = self.server
        body = self._read_body()
        if method == "GET" and path == "/healthz":
            self._send_json(router.fleet_health())
            return
        if method == "GET" and path == "/metrics":
            self._send_json(router.fleet_metrics())
            return
        if method == "GET" and path == "/shards":
            self._send_json(router.describe())
            return
        if path == "/sessions":
            if method == "GET":
                self._send_json(
                    {"sessions": router.merged_sessions()}
                )
                return
            if method == "POST":
                session_id = router.session_id_of(body)
                with router.session_lock(session_id):
                    shard = router.placement(session_id)
                    status, payload = router.forward(
                        shard, method, path, body=body, query=query
                    )
                self._send(status, payload)
                return
        match = _SESSION_PATH.match(path)
        if match:
            session_id = match.group("sid")
            if path.endswith("/migrate") and method == "POST":
                self._send_json(
                    router.migrate(session_id, body)
                )
                return
            with router.session_lock(session_id):
                shard = router.placement(session_id)
                status, payload = router.forward(
                    shard, method, path, body=body, query=query
                )
                if method == "DELETE" and status < 400:
                    router.forget_placement(session_id)
            self._send(status, payload)
            return
        self._send(
            404,
            _error_body(
                "SessionNotFoundError",
                f"no route {method} {API_PREFIX}{path}",
                None,
            ),
        )

    # BaseHTTPRequestHandler hooks
    def do_GET(self):  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self):  # noqa: N802
        self._dispatch("DELETE")


class ShardRouterServer(ThreadingHTTPServer):
    """Consistent-hash routing front for N ``repro-serve`` gateways."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        shards,
        *,
        replicas: int = 64,
        proxy_timeout: float = 30.0,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _RouterHandler)
        self.ring = HashRing(shards, replicas=replicas)
        self.proxy_timeout = proxy_timeout
        self.verbose = verbose
        self._state_lock = threading.Lock()
        #: Migrated sessions: id -> the shard now owning them.  The
        #: ring itself is immutable; this overlay is what "repointing
        #: the ring entry" mutates, atomically under the state lock.
        self._overrides: dict[str, str] = {}
        self._session_locks: dict[str, threading.Lock] = {}
        self._migrations = 0
        self._proxied = 0

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def placement(self, session_id: str) -> str:
        """The shard serving ``session_id`` (override, else the ring)."""
        with self._state_lock:
            override = self._overrides.get(session_id)
        return override or self.ring.shard_for(session_id)

    def forget_placement(self, session_id: str) -> None:
        """Drop a closed session's override and its lock entry."""
        with self._state_lock:
            self._overrides.pop(session_id, None)
            self._session_locks.pop(session_id, None)

    def session_lock(self, session_id: str) -> threading.Lock:
        """Per-session serialization (requests vs live migration)."""
        with self._state_lock:
            lock = self._session_locks.get(session_id)
            if lock is None:
                lock = self._session_locks[session_id] = threading.Lock()
            return lock

    @staticmethod
    def session_id_of(body: bytes) -> str:
        """The session id named by a ``POST /sessions`` body."""
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _ShardReply(
                400,
                _error_body(
                    "ValueError",
                    f"request body is not valid JSON: {exc}",
                    None,
                ),
            ) from None
        if not isinstance(payload, dict) or "session_id" not in payload:
            raise _ShardReply(
                400,
                _error_body(
                    "ValueError", "body needs a 'session_id'", None
                ),
            )
        return str(payload["session_id"])

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def forward(
        self,
        shard: str,
        method: str,
        path: str,
        *,
        body: bytes = b"",
        query: str = "",
    ) -> tuple[int, bytes]:
        """One request to one shard; (status, body) relayed verbatim.

        Upstream error envelopes pass through untouched — the typed
        client re-raises the same exception types it would against the
        shard directly.  An unreachable shard becomes a 502 with the
        standard envelope.
        """
        url = shard + API_PREFIX + path + (f"?{query}" if query else "")
        request = urllib.request.Request(
            url,
            data=body if body else None,
            method=method,
            headers={
                "Accept": "application/json",
                "Content-Type": "application/json",
            },
        )
        with self._state_lock:
            self._proxied += 1
        try:
            with urllib.request.urlopen(
                request, timeout=self.proxy_timeout
            ) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            data = exc.read()
            exc.close()
            return exc.code, data
        except (urllib.error.URLError, OSError) as exc:
            match = _SESSION_PATH.match(path)
            return 502, _error_body(
                "SessionError",
                f"shard {shard} unreachable: {exc}",
                match.group("sid") if match else None,
            )

    def _forward_ok(
        self, shard: str, method: str, path: str, *, body: bytes = b""
    ) -> dict:
        """Forward and parse, raising :class:`_ShardReply` on >= 400."""
        status, payload = self.forward(shard, method, path, body=body)
        if status >= 400:
            raise _ShardReply(status, payload)
        return json.loads(payload.decode("utf-8"))

    # ------------------------------------------------------------------
    # Fleet views
    # ------------------------------------------------------------------
    def fleet_health(self) -> dict:
        """Aggregate ``/healthz``: ok only when every shard answers."""
        per_shard: dict[str, dict] = {}
        healthy = True
        sessions = 0
        for shard in self.ring.shards:
            status, payload = self.forward(shard, "GET", "/healthz")
            try:
                health = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                health = {"status": "error"}
            ok = status == 200 and health.get("status") == "ok"
            healthy = healthy and ok
            sessions += int(health.get("sessions") or 0)
            per_shard[shard] = health
        return {
            "status": "ok" if healthy else "degraded",
            "sessions": sessions,
            "shards": per_shard,
        }

    def fleet_metrics(self) -> dict:
        """Aggregate ``/metrics`` across the fleet (plus the raw views)."""
        per_shard = {
            shard: self._forward_ok(shard, "GET", "/metrics")
            for shard in self.ring.shards
        }
        merged = aggregate_snapshots(per_shard)
        with self._state_lock:
            merged["router"] = {
                "shards": len(self.ring.shards),
                "migrations": self._migrations,
                "proxied_requests": self._proxied,
                "placement_overrides": len(self._overrides),
            }
        return merged

    def merged_sessions(self) -> list[str]:
        """The union of every shard's session listing, sorted."""
        merged: set[str] = set()
        for shard in self.ring.shards:
            listing = self._forward_ok(shard, "GET", "/sessions")
            merged.update(listing.get("sessions", ()))
        return sorted(merged)

    def describe(self) -> dict:
        """The ``GET /v1/shards`` topology snapshot."""
        with self._state_lock:
            overrides = dict(self._overrides)
            migrations = self._migrations
        return {
            "shards": list(self.ring.shards),
            "replicas": self.ring.replicas,
            "overrides": overrides,
            "migrations": migrations,
        }

    # ------------------------------------------------------------------
    # Live migration
    # ------------------------------------------------------------------
    def migrate(self, session_id: str, body: bytes) -> dict:
        """Move a live session to the shard named in the request body.

        Under the session's lock (no request can land mid-handoff):
        export on the source (which drains pending slices), import on
        the target, atomically repoint the placement override, close
        the source copy.  A failed import leaves the session exactly
        where it was; the upstream error envelope is relayed.
        """
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _ShardReply(
                400,
                _error_body(
                    "ValueError",
                    f"request body is not valid JSON: {exc}",
                    session_id,
                ),
            ) from None
        target = str(payload.get("target") or "").rstrip("/")
        if target not in self.ring.shards:
            raise _ShardReply(
                400,
                _error_body(
                    "ConfigError",
                    f"migration target must be one of {self.ring.shards},"
                    f" got {target!r}",
                    session_id,
                ),
            )
        with self.session_lock(session_id):
            source = self.placement(session_id)
            if source == target:
                return {
                    "session_id": session_id,
                    "from": source,
                    "to": target,
                    "migrated": False,
                }
            exported = self._forward_ok(
                source, "POST", f"/sessions/{session_id}/export"
            )
            handoff = {
                key: exported[key]
                for key in (
                    "state",
                    "next_seq",
                    "consumed",
                    "kernel_backend",
                )
                if exported.get(key) is not None
            }
            self._forward_ok(
                target,
                "POST",
                f"/sessions/{session_id}/import",
                body=json.dumps(handoff).encode("utf-8"),
            )
            with self._state_lock:
                self._overrides[session_id] = target
                self._migrations += 1
            # Best-effort close of the drained source copy; the
            # placement already points at the target, so a failure
            # here only leaks an idle model on the source.
            close_status, _ = self.forward(
                source, "DELETE", f"/sessions/{session_id}"
            )
        return {
            "session_id": session_id,
            "from": source,
            "to": target,
            "migrated": True,
            "source_closed": close_status < 400,
        }


def serve_router(
    shards,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    replicas: int = 64,
    proxy_timeout: float = 30.0,
    verbose: bool = False,
) -> ShardRouterServer:
    """Bind a router (``port=0`` picks a free port); caller runs it."""
    return ShardRouterServer(
        (host, port),
        shards,
        replicas=replicas,
        proxy_timeout=proxy_timeout,
        verbose=verbose,
    )


@dataclass
class LocalCluster:
    """A self-hosted router + N backend gateways, one ``close()``."""

    router: ShardRouterServer
    backends: tuple[ServingHTTPServer, ...]
    managers: tuple[SessionManager, ...]
    threads: tuple[threading.Thread, ...]

    @property
    def url(self) -> str:
        return self.router.url

    @property
    def shard_urls(self) -> tuple[str, ...]:
        return self.router.ring.shards

    def close(self) -> None:
        """Stop the router, then every backend, then the managers."""
        for server in (self.router, *self.backends):
            server.shutdown()
            server.server_close()
        for thread in self.threads:
            thread.join(timeout=10)
        for manager in self.managers:
            manager.close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_local_cluster(
    n_shards: int,
    *,
    host: str = "127.0.0.1",
    replicas: int = 64,
    verbose: bool = False,
    **manager_kwargs,
) -> LocalCluster:
    """Spin up N in-process gateways behind one router, all started.

    ``manager_kwargs`` go to each backend's
    :class:`~repro.serving.manager.SessionManager` verbatim.  Callers
    own the result and must :meth:`LocalCluster.close` it (it is a
    context manager).
    """
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    managers: list[SessionManager] = []
    backends: list[ServingHTTPServer] = []
    threads: list[threading.Thread] = []
    try:
        for _ in range(n_shards):
            manager = SessionManager(**manager_kwargs)
            managers.append(manager)
            server = serve(manager, host, 0, verbose=verbose)
            backends.append(server)
        router = serve_router(
            [
                f"http://{server.server_address[0]}:{server.port}"
                for server in backends
            ],
            host,
            0,
            replicas=replicas,
            verbose=verbose,
        )
    except BaseException:
        for server in backends:
            server.server_close()
        for manager in managers:
            manager.close()
        raise
    for server in (*backends, router):
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        threads.append(thread)
    return LocalCluster(
        router=router,
        backends=tuple(backends),
        managers=tuple(managers),
        threads=tuple(threads),
    )


def main(argv: list[str] | None = None) -> int:
    """``repro-serve-router``: route sessions across a gateway fleet."""
    parser = argparse.ArgumentParser(
        prog="repro-serve-router",
        description="Consistent-hash shard router in front of N "
        "repro-serve gateways, with live session migration.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8350)
    parser.add_argument(
        "--shard",
        action="append",
        default=None,
        metavar="URL",
        help="backend gateway base URL (repeat per shard)",
    )
    parser.add_argument(
        "--local-shards",
        type=int,
        default=None,
        dest="local_shards",
        help="instead of --shard, self-host this many backend "
        "gateways in-process (demo/CI clusters)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=64,
        help="virtual nodes per shard on the hash ring (default 64)",
    )
    parser.add_argument(
        "--proxy-timeout",
        type=float,
        default=30.0,
        dest="proxy_timeout",
        help="per-forwarded-request timeout in seconds (default 30)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="micro-batch flush size of --local-shards backends",
    )
    parser.add_argument(
        "--max-latency-ms",
        type=float,
        default=50.0,
        help="flush deadline of --local-shards backends (default 50)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="flush worker lanes per --local-shards backend",
    )
    parser.add_argument(
        "--worker-kind",
        choices=WORKER_KINDS,
        default="thread",
        help="worker tier of --local-shards backends (default thread)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    if (args.shard is None) == (args.local_shards is None):
        parser.error(
            "give exactly one of --shard (repeatable) or --local-shards"
        )

    cluster: LocalCluster | None = None
    if args.local_shards is not None:
        cluster = start_local_cluster(
            args.local_shards,
            host=args.host,
            replicas=args.replicas,
            verbose=args.verbose,
            max_batch=args.max_batch,
            max_latency_s=args.max_latency_ms / 1000.0,
            workers=args.workers,
            worker_kind=args.worker_kind,
        )
        shards = cluster.shard_urls
    else:
        shards = args.shard
    router = serve_router(
        shards,
        args.host,
        args.port,
        replicas=args.replicas,
        proxy_timeout=args.proxy_timeout,
        verbose=args.verbose,
    )
    print(
        f"repro-serve-router listening on http://{args.host}:"
        f"{router.port}{API_PREFIX} fronting {len(router.ring.shards)} "
        f"shard(s): {', '.join(router.ring.shards)}"
    )
    try:
        router.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        router.shutdown()
        router.server_close()
        if cluster is not None:
            cluster.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
