"""Robust statistics for forecasting: Huber ψ, biweight ρ, robust HW.

Implements the pre-cleaning mechanism of Gelper, Fried & Croux (paper
§III-D, [38]): observations whose one-step forecast error exceeds ``k``
error scales are clipped back (Eq. 7), and the error scale itself is
tracked by an exponentially smoothed biweight recursion (Eq. 8-9).

The constants follow the paper: ``k = 2`` for both functions and
``c_k = 2.52`` for the biweight ρ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError
from repro.forecast.holt_winters import (
    HoltWintersParams,
    HoltWintersState,
    hw_forecast,
    hw_update,
)
from repro.tensor.validation import as_float

__all__ = [
    "DEFAULT_CK",
    "DEFAULT_K",
    "RobustHoltWinters",
    "biweight_rho",
    "clean_value",
    "huber_psi",
    "update_scale_gelper",
]

DEFAULT_K = 2.0
DEFAULT_CK = 2.52


def huber_psi(x, k: float = DEFAULT_K):
    """Element-wise Huber ψ-function: identity inside ``[-k, k]``, clipped
    to ``sign(x) * k`` outside (§III-D)."""
    arr = as_float(x)
    result = np.clip(arr, -k, k)
    if np.isscalar(x) or arr.ndim == 0:
        return float(result)
    return result


def biweight_rho(x, k: float = DEFAULT_K, ck: float = DEFAULT_CK):
    """Element-wise biweight ρ-function (Eq. 9).

    Equals ``ck * (1 - (1 - (x/k)^2)^3)`` for ``|x| <= k`` and ``ck``
    outside; bounded, so one extreme residual cannot explode the scale.
    """
    arr = as_float(x)
    scaled = np.clip(np.abs(arr) / k, 0.0, 1.0)
    result = ck * (1.0 - (1.0 - scaled**2) ** 3)
    if np.isscalar(x) or arr.ndim == 0:
        return float(result)
    return result


def clean_value(value, forecast, sigma, k: float = DEFAULT_K):
    """Replace ``value`` with its cleaned version ``y*`` (Eq. 7).

    ``y* = ψ((y - yhat)/σ) σ + yhat``; inliers pass through unchanged,
    outliers are pulled to within ``k`` scales of the forecast.
    """
    val = np.asarray(value, dtype=np.float64)
    fc = np.asarray(forecast, dtype=np.float64)
    sg = np.asarray(sigma, dtype=np.float64)
    result = huber_psi((val - fc) / sg, k) * sg + fc
    if np.isscalar(value) and np.ndim(result) == 0:
        return float(result)
    return result


def update_scale_gelper(
    value,
    forecast,
    sigma,
    phi: float,
    k: float = DEFAULT_K,
    ck: float = DEFAULT_CK,
):
    """Update the error scale with the biweight recursion (Eq. 8).

    ``σ_t² = φ ρ((y - yhat)/σ_{t-1}) σ_{t-1}² + (1 - φ) σ_{t-1}²``.
    """
    if not 0.0 <= phi <= 1.0:
        raise ConfigError(f"phi must be in [0, 1], got {phi}")
    val = np.asarray(value, dtype=np.float64)
    fc = np.asarray(forecast, dtype=np.float64)
    sg = np.asarray(sigma, dtype=np.float64)
    sigma_sq = phi * biweight_rho((val - fc) / sg, k, ck) * sg**2 + (
        1.0 - phi
    ) * sg**2
    result = np.sqrt(sigma_sq)
    if np.isscalar(value) and np.ndim(result) == 0:
        return float(result)
    return result


@dataclass
class RobustHoltWinters:
    """Gelper-style robust Holt-Winters filter for a scalar series.

    Follows the original ordering from [38]: at each step the error scale
    is updated first, then the observation is cleaned, then the HW
    smoothing equations consume the cleaned value.  (SOFIA deliberately
    reverses the first two steps for tensors; see
    :mod:`repro.core.outliers`.)
    """

    params: HoltWintersParams
    state: HoltWintersState
    sigma: float
    phi: float = 0.1
    k: float = DEFAULT_K
    ck: float = DEFAULT_CK

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ConfigError(f"sigma must be positive, got {self.sigma}")
        if not 0.0 <= self.phi <= 1.0:
            raise ConfigError(f"phi must be in [0, 1], got {self.phi}")

    def step(self, value: float) -> tuple[float, float]:
        """Consume one observation.

        Returns ``(forecast_used, cleaned_value)`` where ``forecast_used``
        is the one-step-ahead forecast made before seeing ``value``.
        """
        forecast = self.state.forecast_next()
        self.sigma = update_scale_gelper(
            value, forecast, self.sigma, self.phi, self.k, self.ck
        )
        cleaned = clean_value(value, forecast, self.sigma, self.k)
        self.state = hw_update(self.state, cleaned, self.params)
        return forecast, cleaned

    def run(self, series: np.ndarray) -> np.ndarray:
        """Filter a whole series; returns the cleaned series."""
        cleaned = np.empty(len(series), dtype=np.float64)
        for t, value in enumerate(np.asarray(series, dtype=np.float64)):
            _, cleaned[t] = self.step(float(value))
        return cleaned

    def forecast(self, horizon: int) -> np.ndarray:
        """Forecast ``horizon`` steps ahead from the current state."""
        return hw_forecast(self.state, horizon)
