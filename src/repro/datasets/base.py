"""Dataset abstraction and registry (paper Table III).

The paper evaluates on four real-world datasets that cannot be downloaded
in this offline environment, so each is replaced by a synthetic stand-in
with the same mode structure, seasonal period and value transform (see
DESIGN.md §4).  The registry also records the paper's original shapes so
Table III can be rendered both ways.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DatasetError

__all__ = [
    "Dataset",
    "DatasetInfo",
    "dataset_info",
    "list_datasets",
    "load_dataset",
    "register_dataset",
]


@dataclass(frozen=True)
class DatasetInfo:
    """Static facts about a dataset (the Table III row).

    Attributes
    ----------
    name:
        Registry key, e.g. ``"chicago_taxi"``.
    title:
        Human-readable name as printed in the paper.
    paper_shape:
        The shape used in the paper (time mode last).
    period:
        Seasonal period of the paper's temporal granularity.
    granularity:
        Temporal granularity description.
    rank:
        The CP rank the paper uses for this dataset (Fig. 3 captions).
    modes:
        Meaning of each mode, time last.
    """

    name: str
    title: str
    paper_shape: tuple[int, ...]
    period: int
    granularity: str
    rank: int
    modes: tuple[str, ...]


@dataclass(frozen=True)
class Dataset:
    """A generated dataset: dense ground-truth stream plus metadata."""

    info: DatasetInfo
    data: np.ndarray = field(repr=False)
    period: int

    @property
    def name(self) -> str:
        return self.info.name

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.data.shape)

    @property
    def n_steps(self) -> int:
        return int(self.data.shape[-1])


GeneratorFn = Callable[..., Dataset]

_REGISTRY: dict[str, tuple[DatasetInfo, GeneratorFn]] = {}


def register_dataset(info: DatasetInfo):
    """Class/function decorator registering a dataset generator."""

    def decorator(fn: GeneratorFn) -> GeneratorFn:
        if info.name in _REGISTRY:
            raise DatasetError(f"dataset {info.name!r} already registered")
        _REGISTRY[info.name] = (info, fn)
        return fn

    return decorator


def list_datasets() -> list[str]:
    """Names of all registered datasets, sorted."""
    return sorted(_REGISTRY)


def dataset_info(name: str) -> DatasetInfo:
    """The Table III facts for one dataset."""
    try:
        return _REGISTRY[name][0]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {list_datasets()}"
        ) from None


def load_dataset(name: str, **kwargs) -> Dataset:
    """Generate a dataset by name.

    All generators accept ``seed`` plus size parameters documented on the
    individual generator functions; defaults are scaled down from the
    paper's shapes so the full experiment grid runs in minutes.
    """
    try:
        _, generator = _REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {list_datasets()}"
        ) from None
    return generator(**kwargs)
