"""Unit tests for RAE-based rank selection (paper §VI-A protocol)."""

import numpy as np
import pytest

from repro.core import SofiaConfig
from repro.core.rank_selection import select_rank
from repro.exceptions import ShapeError
from repro.streams import CorruptionSpec, TensorStream, corrupt

from tests.core.conftest import make_seasonal_stream


@pytest.fixture(scope="module")
def observed_stream():
    tensor, _, _ = make_seasonal_stream(
        dims=(10, 8), rank=3, period=8, n_steps=56, seed=9
    )
    corrupted = corrupt(tensor, CorruptionSpec(20, 5, 2), seed=10)
    return TensorStream(
        data=corrupted.observed, mask=corrupted.mask, period=8
    )


class TestSelectRank:
    def test_prefers_adequate_rank(self, observed_stream):
        config = SofiaConfig(
            rank=1, period=8, lambda1=0.1, lambda2=0.1,
            max_outer_iters=100, tol=1e-5,
        )
        result = select_rank(
            observed_stream,
            config,
            candidate_ranks=(1, 3, 6),
            seed=0,
        )
        # ground truth rank is 3: rank 1 must be clearly worse
        assert result.scores[1] > result.scores[3]
        assert result.best_rank in (3, 6)

    def test_scores_for_all_candidates(self, observed_stream):
        config = SofiaConfig(
            rank=1, period=8, lambda1=0.1, lambda2=0.1,
            max_outer_iters=50, tol=1e-4,
        )
        result = select_rank(
            observed_stream, config, candidate_ranks=(2, 4), seed=1
        )
        assert set(result.scores) == {2, 4}
        assert all(np.isfinite(v) for v in result.scores.values())

    def test_bad_fraction(self, observed_stream):
        config = SofiaConfig(rank=2, period=8)
        with pytest.raises(ShapeError):
            select_rank(
                observed_stream, config, validation_fraction=0.0
            )

    def test_stream_too_short(self):
        config = SofiaConfig(rank=2, period=8)
        short = TensorStream.fully_observed(np.ones((4, 4, 25)), period=8)
        with pytest.raises(ShapeError):
            select_rank(short, config)
